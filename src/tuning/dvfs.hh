/**
 * @file
 * Frequency scaling (paper §V-A, Fig. 13): simulation time versus
 * host core frequency, plus TurboBoost. Memory latency is fixed in
 * nanoseconds, so time scales slightly sub-linearly with 1/f — but
 * since gem5 barely touches DRAM, the paper (and this model) observe
 * an almost exactly linear relationship.
 */

#ifndef G5P_TUNING_DVFS_HH
#define G5P_TUNING_DVFS_HH

#include <vector>

#include "core/experiment.hh"

namespace g5p::tuning
{

/** The Fig. 13 frequency ladder for the Xeon (GHz). */
std::vector<double> xeonFrequencyLadderGHz();

/** Set the host frequency for a run. */
void applyFrequency(core::TuningConfig &tuning, double freq_ghz);

/** Enable TurboBoost for a run. */
void applyTurbo(core::TuningConfig &tuning, bool enabled = true);

/** Simulation time normalized to the base-frequency run. */
double normalizedTime(const core::RunResult &base,
                      const core::RunResult &scaled);

} // namespace g5p::tuning

#endif // G5P_TUNING_DVFS_HH
