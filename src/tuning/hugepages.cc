#include "tuning/hugepages.hh"

namespace g5p::tuning
{

const char *
hugePageModeName(HugePageMode mode)
{
    switch (mode) {
      case HugePageMode::None: return "base";
      case HugePageMode::Thp:  return "THP";
      case HugePageMode::Ehp:  return "EHP";
    }
    return "?";
}

void
applyHugePages(core::TuningConfig &tuning, HugePageMode mode)
{
    tuning.thpCode = mode == HugePageMode::Thp;
    tuning.ehpCode = mode == HugePageMode::Ehp;
}

double
speedupOver(const core::RunResult &base, const core::RunResult &tuned)
{
    if (tuned.hostSeconds <= 0)
        return 0.0;
    return base.hostSeconds / tuned.hostSeconds;
}

} // namespace g5p::tuning
