/**
 * @file
 * Compiler-flag tuning (paper §V-A, Fig. 12): rebuilding gem5 with
 * "-O3" shrinks the binary and the dynamic instruction count slightly
 * — but relinking also reshuffles the code layout, so individual
 * workloads can regress (the paper observes a few such cases).
 */

#ifndef G5P_TUNING_OPTFLAG_HH
#define G5P_TUNING_OPTFLAG_HH

#include "core/experiment.hh"

namespace g5p::tuning
{

/** Enable the -O3 build in a run's tuning config. */
void applyO3(core::TuningConfig &tuning, bool enabled = true);

/** Percent speedup of the -O3 build over the base build. */
double o3SpeedupPercent(const core::RunResult &base,
                        const core::RunResult &o3);

} // namespace g5p::tuning

#endif // G5P_TUNING_OPTFLAG_HH
