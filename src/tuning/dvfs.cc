#include "tuning/dvfs.hh"

namespace g5p::tuning
{

std::vector<double>
xeonFrequencyLadderGHz()
{
    return {3.1, 2.6, 2.1, 1.6, 1.2};
}

void
applyFrequency(core::TuningConfig &tuning, double freq_ghz)
{
    tuning.freqGHzOverride = freq_ghz;
}

void
applyTurbo(core::TuningConfig &tuning, bool enabled)
{
    tuning.turbo = enabled;
}

double
normalizedTime(const core::RunResult &base,
               const core::RunResult &scaled)
{
    if (base.hostSeconds <= 0)
        return 0.0;
    return scaled.hostSeconds / base.hostSeconds;
}

} // namespace g5p::tuning
