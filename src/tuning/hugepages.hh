/**
 * @file
 * Huge-page tuning (paper §V-A, Figs. 10–11): backing mg5's code
 * segment with 2MB pages via Transparent Huge Pages (THP, iodlr-style
 * partial remap) or Explicit Huge Pages (EHP, libhugetlbfs-style full
 * remap of a relinked binary).
 */

#ifndef G5P_TUNING_HUGEPAGES_HH
#define G5P_TUNING_HUGEPAGES_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace g5p::tuning
{

/** The three code-backing configurations of Fig. 10. */
enum class HugePageMode : std::uint8_t { None, Thp, Ehp };

/** Mode name ("base"/"THP"/"EHP"). */
const char *hugePageModeName(HugePageMode mode);

/** All modes, in the paper's presentation order. */
inline constexpr HugePageMode allHugePageModes[] = {
    HugePageMode::None, HugePageMode::Thp, HugePageMode::Ehp,
};

/** Apply @p mode to a run's tuning config. */
void applyHugePages(core::TuningConfig &tuning, HugePageMode mode);

/** Relative speedup of @p tuned over @p base (host seconds). */
double speedupOver(const core::RunResult &base,
                   const core::RunResult &tuned);

} // namespace g5p::tuning

#endif // G5P_TUNING_HUGEPAGES_HH
