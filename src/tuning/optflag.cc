#include "tuning/optflag.hh"

namespace g5p::tuning
{

void
applyO3(core::TuningConfig &tuning, bool enabled)
{
    tuning.optO3 = enabled;
}

double
o3SpeedupPercent(const core::RunResult &base,
                 const core::RunResult &o3)
{
    if (o3.hostSeconds <= 0)
        return 0.0;
    return (base.hostSeconds / o3.hostSeconds - 1.0) * 100.0;
}

} // namespace g5p::tuning
