#include "sim/event_dispatch.hh"

#include "base/sim_error.hh"
#include "sim/eventq.hh"

namespace g5p::sim
{

namespace
{

/** The fallback slot's handler: the classic virtual path. */
void
fallbackInvoke(Event &event)
{
    event.process();
}

// constinit: direct TLS load, and sidesteps GCC 12 UBSan's
// misdiagnosis of init-on-first-use thread_local wrappers.
constinit thread_local bool modeledVirtual = true;

} // namespace

bool
modeledDispatchVirtual()
{
    return modeledVirtual;
}

void
setModeledDispatchVirtual(bool v)
{
    modeledVirtual = v;
}

EventDispatch::EventDispatch()
{
    for (auto &slot : table_)
        slot.store(&fallbackInvoke, std::memory_order_relaxed);
    names_.reserve(maxKinds);
    names_.emplace_back("fallback");
}

EventDispatch &
EventDispatch::global()
{
    // Leaked on purpose: wrapper destructors may run during static
    // teardown in an order we do not control, and the table is
    // immutable once built.
    static EventDispatch *table = new EventDispatch;
    return *table;
}

EventKind
EventDispatch::registerKind(const std::string &name,
                            EventHandler handler)
{
    g5p_assert(handler, "registering null event handler");
    std::lock_guard<std::mutex> lock(mutex_);

    // Idempotent per handler: the same thunk re-registered (e.g. a
    // template instantiated in several translation units folded by
    // the linker) keeps its kind.
    for (std::size_t k = 1; k < names_.size(); ++k) {
        if (table_[k].load(std::memory_order_relaxed) == handler)
            return static_cast<EventKind>(k);
    }

    // Kind names are identities: one name, one handler. A second
    // handler under an existing name is a registration bug, not a
    // new kind.
    for (std::size_t k = 0; k < names_.size(); ++k) {
        if (names_[k] == name)
            g5p_throw(InvariantError, "event_dispatch", 0,
                      "event kind '%s' registered with two different "
                      "handlers", name.c_str());
    }

    if (names_.size() >= maxKinds)
        g5p_throw(InvariantError, "event_dispatch", 0,
                  "event kind table full (%zu kinds); cannot "
                  "register '%s'", names_.size(), name.c_str());

    auto kind = static_cast<EventKind>(names_.size());
    names_.push_back(name);
    table_[kind].store(handler, std::memory_order_relaxed);
    return kind;
}

std::string
EventDispatch::kindName(EventKind kind) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (kind >= names_.size())
        return "unregistered";
    return names_[kind];
}

std::size_t
EventDispatch::numKinds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return names_.size();
}

} // namespace g5p::sim
