#include "sim/eventq.hh"

#include "trace/recorder.hh"

namespace g5p::sim
{

Event::~Event()
{
    // Destroying a scheduled event would leave a dangling heap entry.
    g5p_assert(!scheduled_, "event destroyed while scheduled");
}

EventQueue::EventQueue(std::string name)
    : name_(std::move(name))
{
}

EventQueue::~EventQueue()
{
    // Release every live event so auto-delete events are not leaked
    // and member events can be destroyed without tripping the
    // assert. Dead entries may refer to freed events; never touch
    // them.
    while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        heap_.pop();
        if (deadSeqs_.count(top.sequence))
            continue;
        top.event->scheduled_ = false;
        if (top.event->autoDelete())
            delete top.event;
    }
}

void
EventQueue::schedule(Event *event, Tick when)
{
    G5P_TRACE_SCOPE("EventQueue::schedule", EventLoop, false);
    g5p_assert(event, "scheduling null event");
    g5p_assert(!event->scheduled_, "event '%s' already scheduled",
               event->name().c_str());
    g5p_assert(when >= curTick_,
               "scheduling event '%s' in the past (%llu < %llu)",
               event->name().c_str(),
               (unsigned long long)when,
               (unsigned long long)curTick_);

    event->when_ = when;
    event->sequence_ = nextSequence_++;
    event->scheduled_ = true;
    heap_.push(HeapEntry{when, event->priority_, event->sequence_, event});
    ++liveCount_;
    ++numScheduled_;
}

void
EventQueue::deschedule(Event *event)
{
    g5p_assert(event && event->scheduled_,
               "descheduling an unscheduled event");
    event->scheduled_ = false;
    deadSeqs_.insert(event->sequence_);
    --liveCount_;
    // Heap entries are reclaimed lazily in purgeSquashed(); when
    // dead entries dominate (heavy deschedule/reschedule churn with
    // no intervening service), compact the heap so memory stays
    // proportional to the live event count.
    if (deadSeqs_.size() > 64 && deadSeqs_.size() > 2 * liveCount_)
        compact();
}

void
EventQueue::compact()
{
    std::vector<HeapEntry> live;
    live.reserve(liveCount_);
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.top();
        if (!deadSeqs_.count(top.sequence))
            live.push_back(top);
        heap_.pop();
    }
    heap_ = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                std::greater<HeapEntry>>(
        std::greater<HeapEntry>(), std::move(live));
    deadSeqs_.clear();
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::purgeSquashed()
{
    while (!heap_.empty()) {
        // Dead entries (descheduled or superseded by a reschedule)
        // are identified by sequence number alone; their event may
        // already be freed.
        auto it = deadSeqs_.find(heap_.top().sequence);
        if (it == deadSeqs_.end())
            break;
        deadSeqs_.erase(it);
        heap_.pop();
    }
}

Tick
EventQueue::nextTick() const
{
    const_cast<EventQueue *>(this)->purgeSquashed();
    return heap_.empty() ? maxTick : heap_.top().when;
}

Event *
EventQueue::serviceOne()
{
    G5P_TRACE_SCOPE("EventQueue::serviceOne", EventLoop, false);
    purgeSquashed();
    if (heap_.empty())
        return nullptr;

    HeapEntry top = heap_.top();
    heap_.pop();
    Event *event = top.event;

    g5p_assert(top.when >= curTick_, "event queue went backwards");
    curTick_ = top.when;
    event->scheduled_ = false;
    --liveCount_;
    ++numServiced_;

    bool auto_delete = event->autoDelete();
    event->process();
    if (auto_delete && !event->scheduled())
        delete event;
    return event;
}

std::uint64_t
EventQueue::serviceUntil(Tick limit)
{
    G5P_TRACE_SCOPE("EventQueue::serviceUntil", EventLoop, false);
    std::uint64_t serviced = 0;
    while (true) {
        Tick next = nextTick();
        if (next == maxTick || next > limit)
            break;
        serviceOne();
        ++serviced;
    }
    if (curTick_ < limit && liveCount_ == 0) {
        // Nothing left; time does not advance past the last event.
    }
    return serviced;
}

void
EventQueue::setCurTick(Tick tick)
{
    g5p_assert(empty() || nextTick() >= tick,
               "setCurTick would pass pending events");
    curTick_ = tick;
}

} // namespace g5p::sim
