#include "sim/eventq.hh"

#include <algorithm>
#include <new>
#include <ostream>

#include "base/huge_alloc.hh"
#include "base/sim_error.hh"
#include "sim/profiler.hh"
#include "sim/serialize.hh"
#include "trace/recorder.hh"

namespace g5p::sim
{

Event::~Event()
{
    // Destroying a scheduled event would leave a dangling heap slot.
    g5p_assert(!scheduled(), "event destroyed while scheduled");
}

namespace
{

/**
 * Per-thread free list of EventPool blocks. Each simulation is
 * confined to one thread, so allocate and free always hit the same
 * arena and the pool needs no locking even when the parallel harness
 * runs many simulations at once. Slab memory comes from a
 * huge-page-backed ThpArena and is retained for the thread lifetime
 * (the working set is the peak dynamic-event count, a few KiB),
 * released at thread exit once no block is outstanding.
 */
struct PoolState
{
    /** Intrusive free-list node living inside an unused block. */
    struct FreeNode
    {
        FreeNode *next;
    };

    FreeNode *freeList = nullptr;
    std::size_t outstanding = 0;
    std::size_t slabCount = 0;
    base::ThpArena *arena = new base::ThpArena;

    void
    grow()
    {
        auto *slab = static_cast<unsigned char *>(arena->allocate(
            EventPool::blockSize * EventPool::slabBlocks));
        ++slabCount;
        for (std::size_t i = 0; i < EventPool::slabBlocks; ++i) {
            auto *node = reinterpret_cast<FreeNode *>(
                slab + i * EventPool::blockSize);
            node->next = freeList;
            freeList = node;
        }
    }

    ~PoolState()
    {
        // A block still outstanding at thread exit would mean an
        // event outlived its thread; leak the arena rather than
        // unmap memory someone may still hold.
        if (outstanding != 0)
            return;
        delete arena;
    }

    static PoolState &
    instance()
    {
        static thread_local PoolState state;
        return state;
    }
};

} // namespace

void *
EventPool::allocate(std::size_t size)
{
    if (size > blockSize)
        return ::operator new(size); // oversized subclass: bypass
    // The host-side model charges every dynamic event the same
    // (small) allocator cost regardless of pool state — slab growth
    // depends on what ran earlier in the process, and recording it
    // would make otherwise-identical runs diverge.
    trace::recordHeapAlloc((std::uint32_t)blockSize);
    auto &pool = PoolState::instance();
    if (G5P_UNLIKELY(!pool.freeList))
        pool.grow();
    auto *node = pool.freeList;
    pool.freeList = node->next;
    ++pool.outstanding;
    return node;
}

void
EventPool::deallocate(void *p, std::size_t size) noexcept
{
    if (size > blockSize) {
        ::operator delete(p);
        return;
    }
    auto &pool = PoolState::instance();
    auto *node = static_cast<PoolState::FreeNode *>(p);
    node->next = pool.freeList;
    pool.freeList = node;
    --pool.outstanding;
}

std::size_t
EventPool::outstanding()
{
    return PoolState::instance().outstanding;
}

std::size_t
EventPool::slabsAllocated()
{
    return PoolState::instance().slabCount;
}

bool
EventPool::usingHugePages()
{
    return PoolState::instance().arena->hugePagesAdvised();
}

static_assert(sizeof(EventFunctionWrapper) <= EventPool::blockSize,
              "EventFunctionWrapper must fit an EventPool block");

// The dispatch kind shares the tail-padding word; devirtualization
// must not grow events.
static_assert(sizeof(Event) == 7 * sizeof(void *),
              "Event::kind_ must live in tail padding");

EventQueue::EventQueue(std::string name)
    : name_(std::move(name)), dispatch_(&EventDispatch::global())
{
}

EventQueue::~EventQueue()
{
    // Release every event so auto-delete events are not leaked and
    // member events can be destroyed without tripping the assert.
    // Order is irrelevant; nothing runs.
    clear();
}

void
EventQueue::siftUp(std::size_t slot)
{
    HeapNode node = heap_[slot];
    while (slot > 0) {
        std::size_t parent = (slot - 1) / arity;
        if (!before(node, heap_[parent]))
            break;
        heap_[slot] = heap_[parent];
        heap_[slot].event->heapIndex_ = slot;
        slot = parent;
    }
    heap_[slot] = node;
    node.event->heapIndex_ = slot;
}

void
EventQueue::siftDown(std::size_t slot)
{
    HeapNode node = heap_[slot];
    const std::size_t count = heap_.size();
    while (true) {
        std::size_t first = slot * arity + 1;
        if (first >= count)
            break;
        std::size_t last = first + arity < count ? first + arity
                                                 : count;
        std::size_t best = first;
        for (std::size_t child = first + 1; child < last; ++child) {
            if (before(heap_[child], heap_[best]))
                best = child;
        }
        if (!before(heap_[best], node))
            break;
        heap_[slot] = heap_[best];
        heap_[slot].event->heapIndex_ = slot;
        slot = best;
    }
    heap_[slot] = node;
    node.event->heapIndex_ = slot;
}

void
EventQueue::schedule(Event &event, Tick when)
{
    G5P_TRACE_SCOPE("EventQueue::schedule", EventLoop, false);
    g5p_assert(!event.scheduled(), "event '%s' already scheduled",
               event.name().c_str());
    g5p_assert(when >= curTick_,
               "scheduling event '%s' in the past (%llu < %llu)",
               event.name().c_str(),
               (unsigned long long)when,
               (unsigned long long)curTick_);

    event.when_ = when;
    event.sequence_ = nextSequence_++;
    Event *tail = lastScheduled_;
    if (tail && tail->when_ == when &&
        tail->priority_ == event.priority_) {
        // Same key as the immediately preceding schedule: append to
        // its chain instead of taking a heap slot. Because appends
        // are consecutive schedules, a chain always holds a
        // contiguous sequence run — the invariant that keeps chain
        // promotion order-exact.
        event.heapIndex_ = Event::chainedIndex;
        event.chainPrev_ = tail;
        tail->chainNext_ = &event;
        ++chainedCount_;
    } else {
        event.heapIndex_ = heap_.size();
        heap_.push_back(HeapNode{when, event.sequence_, &event,
                                 event.priority_});
        siftUp(event.heapIndex_);
    }
    lastScheduled_ = &event;
    ++numScheduled_;
    if (event.autoDelete_)
        ++transientScheduled_;
    if (G5P_UNLIKELY(event.kind_ == fallbackKind))
        ++fallbackScheduled_;
}

void
EventQueue::promoteChained(Event *head, std::size_t slot)
{
    // The successor shares head's (when, priority) and, because chain
    // sequence runs are contiguous, precedes every other equal-key
    // event still in the heap — dropping it into head's old slot
    // cannot violate heap order in either direction.
    Event *next = head->chainNext_;
    head->chainNext_ = nullptr;
    next->chainPrev_ = nullptr;
    --chainedCount_;
    next->heapIndex_ = slot;
    heap_[slot] = HeapNode{next->when_, next->sequence_, next,
                           next->priority_};
}

void
EventQueue::unlinkChained(Event *event)
{
    Event *prev = event->chainPrev_; // never null: the head is in-heap
    prev->chainNext_ = event->chainNext_;
    if (event->chainNext_)
        event->chainNext_->chainPrev_ = prev;
    event->chainNext_ = nullptr;
    event->chainPrev_ = nullptr;
    event->heapIndex_ = Event::invalidIndex;
    --chainedCount_;
}

void
EventQueue::deschedule(Event &event)
{
    g5p_assert(event.scheduled(),
               "descheduling an unscheduled event");
    forgetMemo(&event);
    if (event.autoDelete_)
        --transientScheduled_;
    if (G5P_UNLIKELY(event.kind_ == fallbackKind))
        --fallbackScheduled_;
    if (event.heapIndex_ == Event::chainedIndex) {
        unlinkChained(&event);
        return;
    }
    std::size_t slot = event.heapIndex_;
    g5p_assert(slot < heap_.size() && heap_[slot].event == &event,
               "event '%s' not on this queue",
               event.name().c_str());
    event.heapIndex_ = Event::invalidIndex;
    if (event.chainNext_) {
        promoteChained(&event, slot);
        return;
    }

    HeapNode last = heap_.back();
    heap_.pop_back();
    if (last.event != &event) {
        // Refill the vacated slot in place; the replacement may need
        // to move either direction.
        heap_[slot] = last;
        last.event->heapIndex_ = slot;
        siftUp(slot);
        siftDown(last.event->heapIndex_);
    }
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (!event.scheduled()) {
        schedule(event, when);
        return;
    }
    g5p_assert(when >= curTick_,
               "rescheduling event '%s' in the past (%llu < %llu)",
               event.name().c_str(),
               (unsigned long long)when,
               (unsigned long long)curTick_);

    // Chain members (and chain heads) take the generic path: their
    // key is pinned to the chain's, so a re-key means leaving it.
    if (event.heapIndex_ == Event::chainedIndex ||
        event.chainNext_) {
        deschedule(event);
        schedule(event, when);
        return;
    }

    // In-place re-key. The fresh sequence number reproduces the
    // classic deschedule+schedule FIFO behavior bit-for-bit: a
    // rescheduled event always ties after events already queued at
    // the same (when, priority). The event also becomes the
    // consecutive-schedule memo, exactly as deschedule+schedule
    // would make it — required for chain-run contiguity.
    event.when_ = when;
    event.sequence_ = nextSequence_++;
    HeapNode &node = heap_[event.heapIndex_];
    node.when = when;
    node.sequence = event.sequence_;
    siftUp(event.heapIndex_);
    siftDown(event.heapIndex_);
    lastScheduled_ = &event;
    ++numScheduled_;
}

void
EventQueue::popTop()
{
    Event *top = heap_.front().event;
    if (top->autoDelete_)
        --transientScheduled_;
    if (G5P_UNLIKELY(top->kind_ == fallbackKind))
        --fallbackScheduled_;
    top->heapIndex_ = Event::invalidIndex;
    forgetMemo(top);
    if (top->chainNext_) {
        // Burst drain: the chain successor takes the root in O(1).
        promoteChained(top, 0);
        return;
    }
    HeapNode last = heap_.back();
    heap_.pop_back();
    const std::size_t count = heap_.size();
    if (count == 0)
        return;
    // Bottom-up pop: walk the hole to a leaf along the min-child path
    // (no compares against the replacement), then drop the replacement
    // in and sift it up. The replacement came from the bottom of the
    // heap, so the sift-up almost always stops immediately.
    std::size_t hole = 0;
    while (true) {
        std::size_t first = hole * arity + 1;
        if (first >= count)
            break;
        std::size_t end = first + arity < count ? first + arity
                                                : count;
        std::size_t best = first;
        for (std::size_t child = first + 1; child < end; ++child) {
            if (before(heap_[child], heap_[best]))
                best = child;
        }
        heap_[hole] = heap_[best];
        heap_[hole].event->heapIndex_ = hole;
        hole = best;
    }
    heap_[hole] = last;
    last.event->heapIndex_ = hole;
    siftUp(hole);
}

Event *
EventQueue::serviceTop()
{
    Event *event = heap_.front().event;
    Tick when = heap_.front().when;
    g5p_assert(when >= curTick_, "event queue went backwards");
    // Attribution key resolution must happen while the event is
    // alive; auto-delete events dangle after process().
    if (profiler_)
        profiler_->beginService(*event, when, size());
    popTop();
    curTick_ = when;
    ++numServiced_;

    bool auto_delete = event->autoDelete();
    // The devirtualized service call: registered kinds index the
    // flat handler table (one predictable load + call); only
    // fallback-kind events — out-of-tree subclasses — and queues in
    // forced-virtual mode take the classic megamorphic virtual path.
    const EventKind kind = event->kind_;
    if (G5P_LIKELY(kind != fallbackKind && !forceVirtual_))
        dispatch_->invoke(kind, *event);
    else
        event->process();
    if (profiler_)
        profiler_->endService();
    if (auto_delete && !event->scheduled())
        delete event;
    return event;
}

void
EventQueue::dumpPending(std::ostream &os, std::size_t max) const
{
    // Sort a copy of the pending keys (heap plus chains): the dump is
    // cold diagnostic code and service order is what a human
    // debugging a wedge wants.
    std::vector<HeapNode> nodes;
    nodes.reserve(size());
    for (const HeapNode &head : heap_)
        for (Event *ev = head.event; ev; ev = ev->chainNext_)
            nodes.push_back(HeapNode{ev->when_, ev->sequence_, ev,
                                     ev->priority_});
    std::sort(nodes.begin(), nodes.end(),
              [](const HeapNode &a, const HeapNode &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  return a.sequence < b.sequence;
              });
    os << "pending events (" << nodes.size() << "):\n";
    for (std::size_t i = 0; i < nodes.size() && i < max; ++i) {
        os << "  @" << nodes[i].when << " prio " << nodes[i].priority
           << " '" << nodes[i].event->name() << "'"
           << (nodes[i].event->autoDelete() ? " [transient]" : "")
           << "\n";
    }
    if (nodes.size() > max)
        os << "  ... " << (nodes.size() - max) << " more\n";
}

Event *
EventQueue::serviceOne()
{
    G5P_TRACE_SCOPE("EventQueue::serviceOne", EventLoop, false);
    if (heap_.empty())
        return nullptr;
    return serviceTop();
}

std::uint64_t
EventQueue::serviceUntil(Tick limit)
{
    G5P_TRACE_SCOPE("EventQueue::serviceUntil", EventLoop, false);
    std::uint64_t serviced = 0;
    // One top inspection per event: the loop condition reads the heap
    // root directly and serviceTop() consumes exactly that event.
    while (!heap_.empty() && heap_.front().when <= limit) {
        serviceTop();
        ++serviced;
    }
    return serviced;
}

void
EventQueue::setCurTick(Tick tick)
{
    g5p_assert(empty() || nextTick() >= tick,
               "setCurTick would pass pending events");
    curTick_ = tick;
}

void
EventQueue::registerSerial(const std::string &tag, Event *event)
{
    g5p_assert(event, "registering null event");
    auto [it, inserted] = serialRegistry_.emplace(tag, event);
    if (!inserted)
        g5p_throw(InvariantError, name_, curTick_,
                  "event tag '%s' registered twice", tag.c_str());
}

void
EventQueue::unregisterSerial(const std::string &tag)
{
    serialRegistry_.erase(tag);
}

void
EventQueue::serializeEvents(CheckpointOut &cp) const
{
    // Reverse map for tag lookup; the registry is small (one entry
    // per CPU tick event plus a handful of timers/exits).
    std::map<const Event *, std::string> tags;
    for (const auto &[tag, event] : serialRegistry_)
        tags.emplace(event, tag);

    struct Record
    {
        Tick when;
        std::int16_t priority;
        std::uint64_t sequence;
        std::string tag;
    };
    std::vector<Record> records;
    records.reserve(size());
    for (const HeapNode &node : heap_) {
        // Chained events are pending too: walk each head's chain.
        for (Event *ev = node.event; ev; ev = ev->chainNext_) {
            if (ev->autoDelete_)
                g5p_throw(CheckpointError, name_, curTick_,
                          "cannot checkpoint: transient event '%s' "
                          "pending (queue not quiescent)",
                          ev->name().c_str());
            auto it = tags.find(ev);
            if (it == tags.end())
                g5p_throw(CheckpointError, name_, curTick_,
                          "cannot checkpoint: pending event '%s' has "
                          "no serial registration",
                          ev->name().c_str());
            records.push_back(Record{ev->when_, ev->priority_,
                                     ev->sequence_, it->second});
        }
    }
    // Strict service order; restore re-schedules in this order so
    // fresh sequence numbers reproduce the same tie-breaks.
    std::sort(records.begin(), records.end(),
              [](const Record &a, const Record &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  return a.sequence < b.sequence;
              });

    cp.param("numEvents", records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        std::ostringstream os;
        os << records[i].when << " " << records[i].tag;
        cp.param("ev" + std::to_string(i), os.str());
    }
    cp.param("numServiced", numServiced_);
    cp.param("numScheduled", numScheduled_);
    cp.param("nextSequence", nextSequence_);
}

void
EventQueue::unserializeEvents(const CheckpointIn &cp)
{
    std::size_t count = 0;
    cp.param("numEvents", count);
    for (std::size_t i = 0; i < count; ++i) {
        std::string record;
        cp.param("ev" + std::to_string(i), record);
        std::istringstream is(record);
        Tick when = 0;
        std::string tag;
        is >> when >> tag;
        auto it = serialRegistry_.find(tag);
        if (it == serialRegistry_.end()) {
            g5p_warn("checkpoint event tag '%s' unknown in this "
                     "machine; skipping", tag.c_str());
            continue;
        }
        if (it->second->scheduled()) {
            g5p_warn("checkpoint event tag '%s' already scheduled; "
                     "skipping", tag.c_str());
            continue;
        }
        schedule(*it->second, when);
    }
    // Restore lifetime counters last (scheduling above bumped them);
    // nextSequence_ from the original run is >= anything assigned
    // here, so relative order of future events is unaffected.
    cp.param("numServiced", numServiced_);
    cp.param("numScheduled", numScheduled_);
    std::uint64_t next_seq = nextSequence_;
    cp.param("nextSequence", next_seq);
    if (next_seq > nextSequence_)
        nextSequence_ = next_seq;
}

void
EventQueue::clear()
{
    for (const HeapNode &node : heap_) {
        Event *ev = node.event;
        while (ev) {
            Event *next = ev->chainNext_;
            ev->chainNext_ = nullptr;
            ev->chainPrev_ = nullptr;
            ev->heapIndex_ = Event::invalidIndex;
            if (ev->autoDelete())
                delete ev;
            ev = next;
        }
    }
    heap_.clear();
    chainedCount_ = 0;
    transientScheduled_ = 0;
    fallbackScheduled_ = 0;
    lastScheduled_ = nullptr;
}

} // namespace g5p::sim
