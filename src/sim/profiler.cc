#include "sim/profiler.hh"

#include <atomic>
#include <chrono>

#include "base/logging.hh"
#include "sim/eventq.hh"

namespace g5p::sim
{

namespace
{

/** Open spans and annotations are cold; bound them anyway so a
 *  pathological run cannot grow without limit. */
constexpr std::size_t maxSpans = 65'536;
constexpr std::size_t maxInstants = 4'096;

std::uint64_t
steadyNowNs()
{
    return (std::uint64_t)std::chrono::duration_cast<
        std::chrono::nanoseconds>(
        std::chrono::steady_clock::now().time_since_epoch()).count();
}

/** Process-wide instance tags so keys cached in pooled (recycled)
 *  Event memory never alias across profiler instances. Atomic:
 *  profilers may be constructed concurrently by parallel runs. */
std::uint32_t
nextInstanceTag()
{
    static std::atomic<std::uint32_t> counter{0};
    return 1 + counter.fetch_add(1, std::memory_order_relaxed) % 255;
}

} // namespace

Profiler::Profiler(ProfilerConfig config)
    : instanceTag_(nextInstanceTag())
{
    configure(config);
}

Profiler::~Profiler()
{
    disarm();
}

void
Profiler::configure(const ProfilerConfig &config)
{
    g5p_assert(!armed_, "Profiler::configure while armed");
    config_ = config;
    if (config_.batchEvents == 0)
        config_.batchEvents = 1;
    // A trace destination implies per-event slices: an empty trace
    // would defeat the point of asking for one.
    if (!config_.tracePath.empty())
        config_.traceSlices = true;
    batch_.assign(config_.batchEvents, 0);
}

void
Profiler::arm()
{
    if (armed_)
        return;
    armed_ = true;
    originNs_ = steadyNowNs();
    stoppedNs_ = 0;
    batchFill_ = 0;
    batchT0Ns_ = 0;
    batchT0Tick_ = curTick_;
    if (!config_.metricsPath.empty()) {
        metrics_ = std::make_unique<std::ofstream>(
            config_.metricsPath, std::ios::trunc);
        if (!*metrics_) {
            g5p_warn("profiler: cannot open metrics stream '%s'; "
                     "metrics disabled", config_.metricsPath.c_str());
            metrics_.reset();
        }
    }
}

void
Profiler::disarm()
{
    if (!armed_)
        return;
    if (batchFill_ > 0)
        drainBatch();
    while (!spanStack_.empty())
        endSpan();
    stoppedNs_ = nowNs();
    armed_ = false;
    metrics_.reset();
}

std::uint64_t
Profiler::nowNs() const
{
    return steadyNowNs() - originNs_;
}

double
Profiler::wallSeconds() const
{
    return (armed_ ? nowNs() : stoppedNs_) * 1e-9;
}

void
Profiler::registerOwner(const std::string &name, std::uint32_t id)
{
    for (const ProfOwner &o : owners_)
        if (o.name == name)
            return;
    owners_.push_back({name, id});
}

std::uint32_t
Profiler::intern(const std::string &name)
{
    auto [it, inserted] =
        keyByName_.emplace(name, (std::uint32_t)classes_.size() + 1);
    if (inserted) {
        EventClassStats cls;
        cls.name = name;
        auto dot = name.rfind('.');
        if (dot == std::string::npos) {
            cls.type = name;
        } else {
            cls.owner = name.substr(0, dot);
            cls.type = name.substr(dot + 1);
        }
        classes_.push_back(std::move(cls));
    }
    return it->second;
}

void
Profiler::beginServiceSlow(Event &event, Tick when,
                           std::size_t queue_depth)
{
    std::uint32_t cached = event.profKey_;
    if ((cached >> 24) == instanceTag_ && (cached & 0xffffff) != 0) {
        curKey_ = cached & 0xffffff;
    } else {
        curKey_ = intern(event.name());
        event.profKey_ = (instanceTag_ << 24) | curKey_;
    }
    curTick_ = when;
    lastQueueDepth_ = (double)queue_depth;
    if (!sawEvent_) {
        sawEvent_ = true;
        firstTick_ = when;
        batchT0Tick_ = when;
        // Re-origin the first batch here so time between arm() and
        // the first serviced event (machine build, init phases) is
        // not charged to that batch.
        batchT0Ns_ = nowNs();
    }
    lastTick_ = when;
    if (config_.traceSlices)
        sliceT0Ns_ = nowNs();
}

void
Profiler::endServiceSlow()
{
    if (curKey_ == 0)
        return; // endService without a matching begin (defensive)
    EventClassStats &cls = classes_[curKey_ - 1];
    ++cls.count;
    ++totalEvents_;
    if (config_.traceSlices) {
        std::uint64_t t1 = nowNs();
        cls.wallNs += (double)(t1 - sliceT0Ns_);
        if (slices_.size() < config_.maxTraceSlices)
            slices_.push_back({curKey_, sliceT0Ns_, t1 - sliceT0Ns_,
                               curTick_});
        else
            ++droppedSlices_;
    }
    batch_[batchFill_++] = curKey_;
    curKey_ = 0;
    if (batchFill_ >= config_.batchEvents)
        drainBatch();
}

void
Profiler::drainBatch()
{
    std::uint64_t now = nowNs();
    double dt = (double)(now - batchT0Ns_);
    if (!config_.traceSlices && batchFill_ > 0) {
        // Batch mode: one clock read for the whole batch, the delta
        // spread evenly. Counts stay exact, per-class time converges
        // over many batches.
        double per = dt / batchFill_;
        for (std::uint32_t i = 0; i < batchFill_; ++i)
            classes_[batch_[i] - 1].wallNs += per;
    }

    ProfCounterSample sample;
    sample.atNs = now;
    sample.tick = lastTick_;
    sample.eventsPerSec = dt > 0 ? batchFill_ * 1e9 / dt : 0;
    sample.queueDepth = lastQueueDepth_;
    // Tick is one picosecond: sim ns advanced = delta ticks / 1000.
    double sim_ns = (double)(lastTick_ - batchT0Tick_) * 1e-3;
    sample.slowdown = sim_ns > 0 ? dt / sim_ns : 0;
    if (counters_.size() < config_.maxCounterSamples)
        counters_.push_back(sample);

    if (metrics_ &&
        totalEvents_ - lastMetricsEvents_ >= config_.metricsEveryEvents) {
        lastMetricsEvents_ = totalEvents_;
        writeMetricsLine(sample);
    }

    batchT0Ns_ = now;
    batchT0Tick_ = lastTick_;
    batchFill_ = 0;
}

void
Profiler::writeMetricsLine(const ProfCounterSample &sample)
{
    // One self-contained JSON object per line (JSONL), flushed so a
    // long campaign is observable while it runs.
    char line[256];
    std::snprintf(line, sizeof(line),
                  "{\"wall_s\":%.6f,\"tick\":%llu,\"events\":%llu,"
                  "\"eps\":%.1f,\"queue_depth\":%.1f,"
                  "\"slowdown\":%.1f}\n",
                  sample.atNs * 1e-9,
                  (unsigned long long)sample.tick,
                  (unsigned long long)totalEvents_,
                  sample.eventsPerSec, sample.queueDepth,
                  sample.slowdown);
    *metrics_ << line;
    metrics_->flush();
}

void
Profiler::beginSpan(const std::string &name)
{
    if (!armed_ || spans_.size() >= maxSpans)
        return;
    spanStack_.push_back(spans_.size());
    spans_.push_back({name, nowNs(), 0, lastTick_});
}

void
Profiler::endSpan()
{
    if (!armed_ || spanStack_.empty())
        return;
    ProfSpan &span = spans_[spanStack_.back()];
    spanStack_.pop_back();
    span.durNs = nowNs() - span.startNs;
}

void
Profiler::noteInstant(const std::string &name,
                      const std::string &detail)
{
    if (!armed_ || instants_.size() >= maxInstants)
        return;
    instants_.push_back({name, detail, nowNs(), lastTick_});
}

void
Profiler::noteError(const std::string &summary,
                    const std::vector<std::string> &recentEvents)
{
    // The flight-recorder tail rides along as the instant's detail so
    // the trace shows what the loop serviced just before the error.
    std::string detail;
    for (const std::string &ev : recentEvents) {
        if (!detail.empty())
            detail += "; ";
        detail += ev;
    }
    noteInstant("error: " + summary, detail);
}

} // namespace g5p::sim
