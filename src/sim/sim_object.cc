#include "sim/sim_object.hh"

#include "sim/simulator.hh"

namespace g5p::sim
{

namespace
{

/** Default synthetic state footprint for objects that do not say. */
constexpr std::size_t defaultStateBytes = 256;

} // namespace

SimObject::SimObject(Simulator &sim, const std::string &name,
                     stats::Group *parent, std::size_t state_bytes)
    : EventManager(sim.eventq()),
      stats::Group(parent ? parent : &sim, name),
      sim_(sim),
      name_(name),
      stateBytes_(state_bytes ? state_bytes : defaultStateBytes)
{
    stateBase_ = trace::DataSpace::instance().alloc(stateBytes_);
    sim_.registerObject(this);
}

SimObject::~SimObject()
{
    sim_.unregisterObject(this);
}

std::string
SimObject::fullName() const
{
    std::string full = statPrefix();
    if (!full.empty())
        full.pop_back(); // statPrefix ends in '.'
    return full;
}

} // namespace g5p::sim
