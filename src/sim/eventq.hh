/**
 * @file
 * Discrete-event queue, the core of the mg5 architectural simulator.
 *
 * Mirrors gem5's event model: events carry a (when, priority, sequence)
 * key; the queue services them in key order, advancing simulated time
 * (curTick) to each event's scheduled tick. The paper (§VI) notes that
 * gem5's "core, which is the event queue and event scheduler, has been
 * the same for many years" — this module is that core.
 */

#ifndef G5P_SIM_EVENTQ_HH
#define G5P_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "trace/recorder.hh"

namespace g5p::sim
{

class EventQueue;

/**
 * Abstract scheduled event. Subclasses implement process(). Events do
 * not own their memory unless flags say so; the common pattern (as in
 * gem5) is an event member inside the owning SimObject.
 */
class Event
{
  public:
    /** Standard priorities, lower runs earlier at the same tick. */
    enum Priority : std::int16_t
    {
        MinimumPri     = -100,
        DebugEnablePri = -90,
        CpuTickPri     = 50,
        DefaultPri     = 0,
        CacheRespPri   = 10,
        StatDumpPri    = 90,
        SimExitPri     = 100,
        MaximumPri     = 120,
    };

    explicit Event(Priority prio = DefaultPri) : priority_(prio) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** The event's action; runs with curTick == when(). */
    virtual void process() = 0;

    /** Diagnostic name. */
    virtual std::string name() const { return "event"; }

    /** Scheduled tick (valid only while scheduled). */
    Tick when() const { return when_; }

    /** Scheduling priority. */
    std::int16_t priority() const { return priority_; }

    /** True while on a queue. */
    bool scheduled() const { return scheduled_; }

    /** If set, the queue deletes the event after process(). */
    void setAutoDelete(bool v) { autoDelete_ = v; }

    /** @see setAutoDelete */
    bool autoDelete() const { return autoDelete_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    std::int16_t priority_;
    bool scheduled_ = false;
    bool autoDelete_ = false;
};

/** Event wrapping an arbitrary callback, like gem5's version. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name,
                         Priority prio = DefaultPri)
        : Event(prio), callback_(std::move(callback)),
          name_(std::move(name))
    {
        trace::recordHeapAlloc(96); // dynamic events churn the heap
    }

    void process() override { callback_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * A single-threaded discrete-event queue with its own curTick.
 *
 * Deschedule is O(1): the entry's sequence number is recorded as
 * dead and the heap slot is reclaimed lazily at pop time (or by a
 * compaction pass when dead entries dominate). Dead entries are
 * never dereferenced, so events may be destroyed immediately after
 * being descheduled.
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "eventq");
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time of this queue. */
    Tick curTick() const { return curTick_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Schedule @p event at absolute tick @p when (>= curTick). */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event. */
    void deschedule(Event *event);

    /** Deschedule + schedule at a new tick. */
    void reschedule(Event *event, Tick when);

    /** True if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of live (non-squashed) events. */
    std::size_t size() const { return liveCount_; }

    /** Tick of the next live event; maxTick if empty. */
    Tick nextTick() const;

    /**
     * Service exactly one event: advance curTick to its tick and run
     * process(). Returns the serviced event, or nullptr if empty.
     * The returned pointer is dangling if the event auto-deleted.
     */
    Event *serviceOne();

    /**
     * Run until the queue is empty or curTick would exceed @p limit.
     * @return number of events serviced.
     */
    std::uint64_t serviceUntil(Tick limit);

    /** Force curTick (checkpoint restore only). */
    void setCurTick(Tick tick);

    /** Total events serviced over the queue's lifetime. */
    std::uint64_t numServiced() const { return numServiced_; }

    /** Total schedule() calls over the queue's lifetime. */
    std::uint64_t numScheduled() const { return numScheduled_; }

  private:
    struct HeapEntry
    {
        Tick when;
        std::int16_t priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const HeapEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    /** Pop squashed entries off the heap top. */
    void purgeSquashed();

    /** Rebuild the heap without squashed/stale entries. */
    void compact();

    std::string name_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numServiced_ = 0;
    std::uint64_t numScheduled_ = 0;
    std::size_t liveCount_ = 0;

    /** Sequence numbers of descheduled (dead) heap entries. */
    std::unordered_set<std::uint64_t> deadSeqs_;

    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap_;
};

/**
 * Mixin giving SimObjects convenient scheduling helpers bound to one
 * queue (gem5's EventManager).
 */
class EventManager
{
  public:
    explicit EventManager(EventQueue &eventq) : eventq_(eventq) {}

    EventQueue &eventQueue() const { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    void
    schedule(Event &event, Tick when)
    {
        eventq_.schedule(&event, when);
    }

    void
    deschedule(Event &event)
    {
        eventq_.deschedule(&event);
    }

    void
    reschedule(Event &event, Tick when)
    {
        eventq_.reschedule(&event, when);
    }

  private:
    EventQueue &eventq_;
};

} // namespace g5p::sim

#endif // G5P_SIM_EVENTQ_HH
