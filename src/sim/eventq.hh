/**
 * @file
 * Discrete-event queue, the core of the mg5 architectural simulator.
 *
 * Mirrors gem5's event model: events carry a (when, priority, sequence)
 * key; the queue services them in key order, advancing simulated time
 * (curTick) to each event's scheduled tick. The paper (§VI) notes that
 * gem5's "core, which is the event queue and event scheduler, has been
 * the same for many years" — this module is that core.
 *
 * The queue is an intrusive indexed 4-ary min-heap: each Event stores
 * its own heap slot, so deschedule and reschedule fix the heap in
 * place (no lazy dead entries, no per-pop hash lookups, no compaction
 * stalls). See DESIGN.md §"Event queue internals".
 *
 * Dispatch: servicing an event no longer means a megamorphic virtual
 * call. Events carry an EventKind byte; registered kinds dispatch
 * through EventDispatch's flat handler table, and only kind-0
 * (fallback) events take the classic virtual process() path. See
 * sim/event_dispatch.hh and DESIGN.md §"Event dispatch".
 *
 * Scheduling API: the one documented entry point is the
 * reference-taking family — schedule(Event &, Tick),
 * deschedule(Event &), reschedule(Event &, Tick) — plus
 * scheduleOneShot() for pooled fire-and-forget callbacks. The
 * historical pointer spellings remain as deprecated inline
 * forwarders.
 */

#ifndef G5P_SIM_EVENTQ_HH
#define G5P_SIM_EVENTQ_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "base/compiler.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "sim/event_dispatch.hh"
#include "trace/recorder.hh"

namespace g5p::sim
{

class CheckpointIn;
class CheckpointOut;
class EventQueue;
class Profiler;

/**
 * Abstract scheduled event. Subclasses implement process(). Events do
 * not own their memory unless flags say so; the common pattern (as in
 * gem5) is an event member inside the owning SimObject.
 *
 * In-tree event classes also register a non-virtual handler (see
 * registeredEventKind) and adopt its kind via setKind(); subclasses
 * that don't are serviced through virtual process() — the fallback
 * contract that keeps out-of-tree events working unchanged.
 */
class Event
{
  public:
    /** Standard priorities, lower runs earlier at the same tick. */
    enum Priority : std::int16_t
    {
        MinimumPri     = -100,
        DebugEnablePri = -90,
        CpuTickPri     = 50,
        DefaultPri     = 0,
        CacheRespPri   = 10,
        StatDumpPri    = 90,
        SimExitPri     = 100,
        MaximumPri     = 120,
    };

    explicit Event(Priority prio = DefaultPri) : priority_(prio) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** The event's action; runs with curTick == when(). Kind-tagged
     *  events normally dispatch through their registered handler
     *  instead; process() remains the fallback/forced-virtual body
     *  and must stay equivalent to the handler. */
    virtual void process() = 0;

    /** Diagnostic name. */
    virtual std::string name() const { return "event"; }

    /** Scheduled tick (valid only while scheduled). */
    Tick when() const { return when_; }

    /** Scheduling priority. */
    std::int16_t priority() const { return priority_; }

    /** True while on a queue. */
    bool scheduled() const { return heapIndex_ != invalidIndex; }

    /** Dispatch-table kind (fallbackKind = virtual path). */
    EventKind kind() const { return kind_; }

    /** If set, the queue deletes the event after process(). Must not
     *  change while scheduled (the queue counts transient events). */
    void
    setAutoDelete(bool v)
    {
        g5p_assert(!scheduled(),
                   "setAutoDelete on a scheduled event");
        autoDelete_ = v;
    }

    /** @see setAutoDelete */
    bool autoDelete() const { return autoDelete_; }

  protected:
    /**
     * Adopt a registered dispatch kind (constructors of in-tree
     * event classes call this with their registeredEventKind). Must
     * not change while scheduled: the queue counts pending
     * fallback-kind events for the batching contract.
     */
    void
    setKind(EventKind kind)
    {
        g5p_assert(!scheduled(), "setKind on a scheduled event");
        kind_ = kind;
    }

  private:
    friend class EventQueue;
    friend class Profiler;

    /** Sentinel heap slot meaning "not scheduled". */
    static constexpr std::size_t invalidIndex = ~std::size_t{0};

    /** Sentinel heap slot meaning "scheduled, but parked on another
     *  event's equal-key chain rather than in the heap". */
    static constexpr std::size_t chainedIndex = ~std::size_t{0} - 1;

    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    /** Slot in the owning queue's heap array (intrusive index). */
    std::size_t heapIndex_ = invalidIndex;
    /** Equal-key FIFO chain links (see EventQueue's burst chains):
     *  events scheduled back-to-back at the same (when, priority)
     *  hang off the first one instead of occupying heap slots. */
    Event *chainNext_ = nullptr;
    Event *chainPrev_ = nullptr;
    /** Profiler's cached event-class key (0 = unresolved). Fits the
     *  tail padding, so profiling support costs no event bytes. */
    std::uint32_t profKey_ = 0;
    std::int16_t priority_;
    bool autoDelete_ = false;
    /** Dispatch kind; shares the tail-padding word with profKey_,
     *  so devirtualization costs no event bytes either. */
    EventKind kind_ = fallbackKind;
};

/**
 * Free-list pool for dynamically allocated callback events.
 *
 * Dynamic events (cache/xbar/dram responses, TLB-walk continuations)
 * are allocated and freed at simulation-event rate; routing them
 * through the global heap is pure churn. The pool carves fixed-size
 * blocks out of slabs and recycles them through an intrusive free
 * list, so steady-state event allocation touches no allocator at all.
 *
 * Arenas are thread-local: a simulation is confined to one thread
 * (the parallel harness runs one whole simulation per worker), so
 * allocate/free pair up within a thread and need no locking. Slabs
 * come from a huge-page-backed ThpArena (base/huge_alloc.hh), so the
 * pool's steady-state working set sits on as few d-TLB entries as
 * the kernel can manage — the paper's §V-A THP lever applied to
 * mg5's own hottest allocation site.
 */
class EventPool
{
  public:
    /** Block size covering EventFunctionWrapper and friends. */
    static constexpr std::size_t blockSize = 128;
    /** Blocks carved per slab. */
    static constexpr std::size_t slabBlocks = 64;

    /** Pop a block (grows by one slab when the free list is empty). */
    G5P_HOT static void *allocate(std::size_t size);

    /** Push a block back onto the free list. */
    G5P_HOT static void deallocate(void *p, std::size_t size) noexcept;

    /** Blocks handed out and not yet returned (calling thread). */
    static std::size_t outstanding();

    /** Slabs this thread carved from its arena so far. */
    static std::size_t slabsAllocated();

    /** True if this thread's slab arena got MADV_HUGEPAGE backing
     *  (false before first growth, or on fallback paths). */
    static bool usingHugePages();
};

/** Event wrapping an arbitrary callback, like gem5's version. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name,
                         Priority prio = DefaultPri)
        : Event(prio), callback_(std::move(callback)),
          name_(std::move(name))
    {
        setKind(registeredEventKind<EventFunctionWrapper>(
            "EventFunctionWrapper"));
    }

    /** Dynamic wrappers recycle through the event pool. */
    static void *
    operator new(std::size_t size)
    {
        return EventPool::allocate(size);
    }

    static void
    operator delete(void *p, std::size_t size) noexcept
    {
        EventPool::deallocate(p, size);
    }

    /** Devirtualized body (dispatch-table target). */
    void invoke() { callback_(); }

    void process() override { invoke(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * Non-allocating event bound to a member function at compile time
 * (gem5's MemberEventWrapper). The common "tick event member inside
 * the owning object" pattern needs neither a std::function nor a
 * name string allocation:
 *
 *   MemberEventWrapper<&MyCpu::tick> tickEvent_{this, CpuTickPri};
 *
 * Passing a name ("cpu0.tick") keeps the no-std::function layout but
 * gives the profiler and diagnostics a real label; the "owner.type"
 * convention is what wall-clock attribution splits on.
 *
 * Each instantiation registers its own dispatch kind, so servicing a
 * tick event compiles down to one table-indexed call that the
 * optimizer can devirtualize into a direct call to T::F.
 */
template <auto F>
class MemberEventWrapper;

template <typename T, void (T::*F)()>
class MemberEventWrapper<F> : public Event
{
  public:
    explicit MemberEventWrapper(T *object, Priority prio = DefaultPri)
        : Event(prio), object_(object)
    {
        setKind(registeredEventKind<MemberEventWrapper>(
            kindLabel()));
    }

    MemberEventWrapper(T *object, std::string name,
                       Priority prio = DefaultPri)
        : Event(prio), object_(object), name_(std::move(name))
    {
        setKind(registeredEventKind<MemberEventWrapper>(
            kindLabel()));
    }

    /** Devirtualized body (dispatch-table target). */
    void invoke() { (object_->*F)(); }

    void process() override { invoke(); }

    std::string
    name() const override
    {
        return name_.empty() ? Event::name() : name_;
    }

  private:
    /** Unique per-instantiation kind name (embeds T and F). */
    static const char *
    kindLabel()
    {
        return __PRETTY_FUNCTION__;
    }

    T *object_;
    std::string name_;
};

/**
 * A single-threaded discrete-event queue with its own curTick.
 *
 * Layout: a 4-ary min-heap of (key, Event*) nodes ordered by the
 * strict (when, priority, sequence) key. The key is stored inline in
 * the heap node so sift comparisons never chase the Event pointer;
 * heap_[i].event->heapIndex_ == i at all times. Deschedule removes
 * the event's slot in place (O(log n)
 * sifts, O(1) for the common leaf case) and reschedule is an in-place
 * decrease/increase-key — there are no dead entries, so every pop and
 * top inspection is branch-light and events may be destroyed the
 * moment they are descheduled.
 *
 * Equal-key burst chains (gem5's event "bins", adapted): clocked
 * systems schedule whole bursts — every CPU, cache and DRAM event of
 * a cycle — back-to-back at one (when, priority). Consecutive
 * schedules with a key equal to the immediately preceding schedule
 * append to an intrusive FIFO chain on that event instead of taking
 * heap slots; popping a chain head promotes its successor into the
 * vacated slot in O(1). Service order is unchanged: chain members
 * hold a contiguous run of sequence numbers (appends are consecutive
 * schedules by construction), so among equal (when, priority) keys
 * the promoted member always precedes every in-heap event.
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "eventq");
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time of this queue. */
    Tick curTick() const { return curTick_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /**
     * Schedule @p event at absolute tick @p when (>= curTick).
     *
     * This is THE scheduling entry point: every other spelling —
     * the deprecated pointer forwarders below, EventManager's
     * helpers, scheduleOneShot() — funnels into this overload (and
     * its deschedule/reschedule siblings), so service order,
     * FIFO-tie behaviour and the transient/fallback accounting have
     * exactly one implementation.
     */
    G5P_HOT void schedule(Event &event, Tick when);

    /** Remove a scheduled event (in place, no lazy entries). */
    G5P_HOT void deschedule(Event &event);

    /**
     * Move a scheduled event to a new tick in place, or schedule it
     * if idle. The event is re-sequenced, exactly as a
     * deschedule+schedule pair would be, so FIFO ties behave
     * identically to the classic implementation.
     */
    G5P_HOT void reschedule(Event &event, Tick when);

    /**
     * Schedule a one-shot callback at absolute tick @p when. The
     * event comes from the pool and frees itself after firing — the
     * standard "delayed response" pattern in caches, crossbars, DRAM
     * and TLB walks.
     */
    void
    scheduleOneShot(Tick when, std::function<void()> fn,
                    std::string name)
    {
        auto *ev = new EventFunctionWrapper(std::move(fn),
                                            std::move(name));
        ev->setAutoDelete(true);
        schedule(*ev, when);
    }

    /** @{ Deprecated pointer spellings; thin forwarders. */
    [[deprecated("use schedule(Event &, Tick)")]]
    void schedule(Event *event, Tick when) { schedule(*event, when); }

    [[deprecated("use deschedule(Event &)")]]
    void deschedule(Event *event) { deschedule(*event); }

    [[deprecated("use reschedule(Event &, Tick)")]]
    void reschedule(Event *event, Tick when)
    {
        reschedule(*event, when);
    }
    /** @} */

    /** True if no events remain (chains hang off in-heap heads, so
     *  an empty heap means nothing is chained either). */
    bool empty() const { return heap_.empty(); }

    /** Number of scheduled events (in-heap plus chained). */
    std::size_t size() const { return heap_.size() + chainedCount_; }

    /** Tick of the next event; maxTick if empty. O(1). */
    Tick
    nextTick() const
    {
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /**
     * The next event to be serviced (heap root); nullptr if empty.
     * Used by the watchdog flight recorder to label events before
     * servicing (the pointer may dangle afterwards).
     */
    const Event *
    peekTop() const
    {
        return heap_.empty() ? nullptr : heap_.front().event;
    }

    /**
     * Diagnostic dump of up to @p max pending events in service
     * order: "tick prio name [transient]". Part of the watchdog's
     * deadlock/livelock report.
     */
    G5P_COLD void dumpPending(std::ostream &os,
                              std::size_t max = 16) const;

    /**
     * Service exactly one event: advance curTick to its tick and run
     * its handler (table dispatch for kind-tagged events, virtual
     * process() for fallback kinds). Returns the serviced event, or
     * nullptr if empty. The returned pointer is dangling if the
     * event auto-deleted.
     */
    G5P_HOT Event *serviceOne();

    /**
     * Run until the queue is empty or curTick would exceed @p limit.
     * Inspects the heap top once per serviced event.
     * @return number of events serviced.
     */
    G5P_HOT std::uint64_t serviceUntil(Tick limit);

    /** Force curTick (checkpoint restore, and batching handlers —
     *  see serviceHorizon()). Asserts it never passes a pending
     *  event. */
    void setCurTick(Tick tick);

    /**
     * @{ Event-handler batching contract. A handler that services
     * multiple back-to-back units of work inside one process() call
     * (the Atomic CPU's instruction batching) may advance curTick
     * itself with setCurTick(), provided it (a) never passes the
     * next pending event, (b) never passes serviceHorizon() — the
     * run loop's tick limit — and (c) only batches while
     * batchingAllowed() holds. The run loop clears the flag when a
     * watchdog or profiler needs per-event granularity. The queue
     * additionally refuses batching while any fallback-kind event is
     * pending: out-of-tree events were never audited against the
     * batching contract, so their mere presence drops the queue to
     * per-event granularity (PR 6 contract, tightened).
     */
    bool
    batchingAllowed() const
    {
        return batchingAllowed_ && fallbackScheduled_ == 0;
    }
    void setBatchingAllowed(bool v) { batchingAllowed_ = v; }
    Tick serviceHorizon() const { return serviceHorizon_; }
    void setServiceHorizon(Tick t) { serviceHorizon_ = t; }
    /** @} */

    /**
     * @{ Force every serviced event through virtual process(), as if
     * no kind were registered. The determinism suite runs the same
     * seed both ways and requires byte-identical stats; the bench
     * uses it to isolate the dispatch-table win on the real queue.
     */
    bool forceVirtualDispatch() const { return forceVirtual_; }
    void setForceVirtualDispatch(bool v) { forceVirtual_ = v; }
    /** @} */

    /** Pending fallback-kind (virtual-dispatch) events. */
    std::size_t numFallbackPending() const { return fallbackScheduled_; }

    /** Total events serviced over the queue's lifetime. */
    std::uint64_t numServiced() const { return numServiced_; }

    /** Total schedule()/reschedule() calls over the lifetime. */
    std::uint64_t numScheduled() const { return numScheduled_; }

    /** Scheduled auto-delete (transient callback) events. */
    std::size_t numTransient() const { return transientScheduled_; }

    /**
     * True when no transient events are pending. Every in-flight
     * memory transaction (cache/xbar/DRAM hop, TLB walk, deferred
     * MSHR target) holds exactly one pending auto-delete callback, so
     * a quiescent queue means no transaction is in flight anywhere —
     * the precondition for taking a checkpoint.
     */
    bool quiescent() const { return transientScheduled_ == 0; }

    /**
     * Register a checkpointable event under a unique tag (e.g.
     * "cpu0.tick"). Only registered events may be pending when a
     * checkpoint is taken; the tag is what restore uses to find the
     * equivalent event in the freshly built machine. Throws
     * InvariantError on a tag collision.
     */
    G5P_COLD void registerSerial(const std::string &tag, Event *event);

    /** Drop a registration (owning object is being destroyed). */
    G5P_COLD void unregisterSerial(const std::string &tag);

    /**
     * Write every pending event as (service order, tick, tag) into
     * the current checkpoint section. Throws CheckpointError if a
     * pending event is transient (queue not quiescent) or
     * unregistered.
     */
    G5P_COLD void serializeEvents(CheckpointOut &cp) const;

    /**
     * Re-schedule checkpointed events in recorded service order, so
     * freshly assigned sequence numbers reproduce same-(tick,
     * priority) ties exactly. Unknown tags warn and are skipped
     * (graceful degradation when the machine shape changed).
     */
    G5P_COLD void unserializeEvents(const CheckpointIn &cp);

    /**
     * Deschedule everything (deleting auto-delete events), e.g. to
     * clear startup-scheduled events before a restore repopulates
     * the queue. Registrations are kept.
     */
    G5P_COLD void clear();

    /**
     * Install (or remove, with nullptr) the self-profiler whose
     * beginService/endService bracket every serviced event. The
     * queue does not own the profiler; the caller keeps it alive
     * while installed. Cost when null: one pointer test per event.
     */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /** The installed self-profiler (may be null). */
    Profiler *profiler() const { return profiler_; }

  private:
    /** Children per heap node; 4-ary keeps the tree shallow and the
     *  child scan within adjacent cache lines. */
    static constexpr std::size_t arity = 4;

    /**
     * Heap slot: the full sort key plus the event it stands for. The
     * key is duplicated from the Event so the hot sift loops compare
     * against contiguous memory instead of dereferencing every
     * candidate.
     */
    struct HeapNode
    {
        Tick when;
        std::uint64_t sequence;
        Event *event;
        std::int16_t priority;
    };

    /** Strict service order: (when, priority, sequence). */
    static bool
    before(const HeapNode &a, const HeapNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.sequence < b.sequence;
    }

    G5P_HOT void siftUp(std::size_t slot);
    G5P_HOT void siftDown(std::size_t slot);

    /** Detach the root and restore the heap. */
    G5P_HOT void popTop();

    /** Move @p head's chain successor into heap slot @p slot. */
    G5P_HOT void promoteChained(Event *head, std::size_t slot);

    /** Remove a chained (not in-heap) event from its chain. */
    void unlinkChained(Event *event);

    /** Drop the consecutive-schedule memo if it points at @p ev. */
    void
    forgetMemo(const Event *ev)
    {
        if (lastScheduled_ == ev)
            lastScheduled_ = nullptr;
    }

    /** Pop + advance time + run the root event (heap non-empty). */
    G5P_HOT Event *serviceTop();

    std::string name_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numServiced_ = 0;
    std::uint64_t numScheduled_ = 0;
    /** Pending auto-delete events (see quiescent()). */
    std::size_t transientScheduled_ = 0;
    /** Pending fallback-kind events (see batchingAllowed()). */
    std::size_t fallbackScheduled_ = 0;

    /** @{ Batching contract state (see batchingAllowed()). */
    bool batchingAllowed_ = true;
    Tick serviceHorizon_ = maxTick;
    /** @} */

    /** Forced-virtual dispatch (see setForceVirtualDispatch). */
    bool forceVirtual_ = false;

    /** Cached global dispatch table (avoids the function-local
     *  static guard in the service loop). */
    const EventDispatch *dispatch_;

    /** 4-ary min-heap; heap_[i].event->heapIndex_ == i. */
    std::vector<HeapNode> heap_;

    /**
     * The most recently scheduled event, while it is still on this
     * queue (every path that removes an event clears the memo via
     * forgetMemo). A schedule whose (when, priority) equals the
     * memo's chains onto it in O(1); the consecutive-schedule
     * requirement is what keeps chain sequence runs contiguous.
     */
    Event *lastScheduled_ = nullptr;

    /** Events parked on chains (scheduled but not in the heap). */
    std::size_t chainedCount_ = 0;

    /** Optional self-profiler (see setProfiler). */
    Profiler *profiler_ = nullptr;

    /** Checkpoint tag -> event (see registerSerial). */
    std::map<std::string, Event *> serialRegistry_;
};

/**
 * Mixin giving SimObjects convenient scheduling helpers bound to one
 * queue (gem5's EventManager). Forwards to EventQueue's canonical
 * reference-based entry points.
 */
class EventManager
{
  public:
    explicit EventManager(EventQueue &eventq) : eventq_(eventq) {}

    EventQueue &eventQueue() const { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    void
    schedule(Event &event, Tick when)
    {
        eventq_.schedule(event, when);
    }

    void
    deschedule(Event &event)
    {
        eventq_.deschedule(event);
    }

    void
    reschedule(Event &event, Tick when)
    {
        eventq_.reschedule(event, when);
    }

    /** @see EventQueue::scheduleOneShot */
    void
    scheduleOneShot(Tick when, std::function<void()> fn,
                    std::string name)
    {
        eventq_.scheduleOneShot(when, std::move(fn),
                                std::move(name));
    }

    /** Deprecated spelling of scheduleOneShot. */
    [[deprecated("use scheduleOneShot(Tick, fn, name)")]]
    void
    scheduleCallback(Tick when, std::function<void()> fn,
                     std::string name)
    {
        eventq_.scheduleOneShot(when, std::move(fn),
                                std::move(name));
    }

  private:
    EventQueue &eventq_;
};

} // namespace g5p::sim

#endif // G5P_SIM_EVENTQ_HH
