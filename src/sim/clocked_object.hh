/**
 * @file
 * Clock domains and clocked objects, following gem5's design: a
 * ClockedObject translates between cycles of its clock domain and
 * global ticks.
 */

#ifndef G5P_SIM_CLOCKED_OBJECT_HH
#define G5P_SIM_CLOCKED_OBJECT_HH

#include "base/logging.hh"
#include "sim/sim_object.hh"

namespace g5p::sim
{

/** A shared clock source with a fixed period in ticks. */
class ClockDomain
{
  public:
    /** @param period_ticks ticks per cycle; must be nonzero. */
    explicit ClockDomain(Tick period_ticks)
        : period_(period_ticks)
    {
        g5p_assert(period_ > 0, "zero clock period");
    }

    /** Construct from a frequency in MHz. */
    static ClockDomain
    fromMHz(std::uint64_t mhz)
    {
        return ClockDomain(ticksForMHz(mhz));
    }

    Tick period() const { return period_; }

    /** Frequency in Hz (rounded). */
    std::uint64_t
    frequencyHz() const
    {
        return simTicksPerSecond / period_;
    }

  private:
    Tick period_;
};

/**
 * A SimObject driven by a clock domain; provides cycle arithmetic
 * anchored at tick 0 (all domains are phase-aligned, as in gem5's
 * default SrcClockDomain).
 */
class ClockedObject : public SimObject
{
  public:
    ClockedObject(Simulator &sim, const std::string &name,
                  const ClockDomain &domain,
                  stats::Group *parent = nullptr,
                  std::size_t state_bytes = 0)
        : SimObject(sim, name, parent, state_bytes),
          period_(domain.period())
    {}

    /** Ticks per cycle of this object's clock. */
    Tick clockPeriod() const { return period_; }

    /** Current time in whole cycles. */
    Cycles
    curCycle() const
    {
        return curTick() / period_;
    }

    /**
     * Tick of the next clock edge at least @p cycles cycles in the
     * future (gem5's clockEdge).
     */
    Tick
    clockEdge(Cycles cycles = 0) const
    {
        Tick now = curTick();
        Tick aligned = ((now + period_ - 1) / period_) * period_;
        if (aligned == now && cycles == 0)
            return now;
        if (aligned == now)
            return now + cycles * period_;
        return aligned + (cycles ? (cycles - 1) * period_ : 0);
    }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** Convert ticks to whole cycles (rounding up). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

  private:
    Tick period_;
};

} // namespace g5p::sim

#endif // G5P_SIM_CLOCKED_OBJECT_HH
