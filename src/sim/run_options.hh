/**
 * @file
 * RunOptions: the one bundle of run-control knobs consumed by
 * Simulator::configure()/run() and os::System::run().
 *
 * PRs 1-3 accrued setters one at a time — a watchdog setter, an
 * auto-checkpoint enabler, a fault seed buried in
 * mem::FaultInjectorParams — and the profiler would have added more.
 * This struct replaces them: build one RunOptions, hand it to the
 * simulator (or System::run), done. (The transitional [[deprecated]]
 * setter shims were removed in PR 9.)
 */

#ifndef G5P_SIM_RUN_OPTIONS_HH
#define G5P_SIM_RUN_OPTIONS_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "sim/profiler.hh"

namespace g5p::sim
{

/**
 * Watchdog knobs for the run loop. All limits default to off;
 * deadlock detection additionally needs an activity probe (installed
 * automatically by os::System).
 */
struct WatchdogConfig
{
    /**
     * Declare livelock after this many consecutively serviced events
     * with curTick unchanged (0 = off). Same-tick bursts are normal —
     * every CPU and cache response at one tick — so set this well
     * above the machine's per-tick event fan-out (thousands).
     */
    std::uint64_t livelockEvents = 0;

    /** Event budget for one run() call (0 = unlimited). */
    std::uint64_t maxEvents = 0;

    /** Wall-clock budget for one run() call (0 = unlimited). */
    double maxWallSeconds = 0.0;

    /** Last-N serviced events kept for the diagnostic dump. */
    std::size_t flightRecorderDepth = 64;
};

/**
 * Retry policy for checkpoint writes (CheckpointOut::writeFile).
 * PR 3 hard-coded 3 attempts with a 1ms-doubling backoff; the sweep
 * service tightens both for fast-fail under chaos testing, so they
 * live in run control now.
 */
struct CheckpointRetryConfig
{
    /** Total write attempts before CheckpointError propagates
     *  (0 is treated as 1). */
    unsigned maxAttempts = 3;

    /** First retry delay in milliseconds, doubling per attempt
     *  (0 = retry immediately, no sleep). */
    double backoffBaseMs = 1.0;
};

/** Everything that controls how a simulation runs (not what it is). */
struct RunOptions
{
    /** Enable the watchdog with the budgets below. */
    bool supervise = false;
    WatchdogConfig watchdog;

    /** Write an automatic checkpoint every this many ticks to
     *  "<autoCheckpointPrefix>-<tick>.ckpt" (0 = off). */
    Tick autoCheckpointPeriod = 0;
    std::string autoCheckpointPrefix = "auto";

    /** Retry/backoff for every checkpoint write this simulator
     *  performs (explicit and automatic). */
    CheckpointRetryConfig checkpointRetry;

    /** Overrides mem::FaultInjectorParams::seed when nonzero, so a
     *  fault campaign is re-seeded from the run control in one place. */
    std::uint64_t faultSeed = 0;

    /** Self-profiler knobs (see sim/profiler.hh). */
    ProfilerConfig profiler;

    /**
     * Service every event through virtual process() even when a
     * dispatch-table kind is registered (see sim/event_dispatch.hh).
     * The determinism suite and the frontend bench run the same seed
     * with this flag flipped and require byte-identical stats.
     */
    bool forceVirtualDispatch = false;
};

} // namespace g5p::sim

#endif // G5P_SIM_RUN_OPTIONS_HH
