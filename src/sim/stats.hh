/**
 * @file
 * gem5-style statistics package.
 *
 * Statistics are declared as members of a stats::Group (every SimObject
 * is one), registered with name and description, and dumped as
 * "group.name value # desc" lines, matching gem5's stats.txt format.
 */

#ifndef G5P_SIM_STATS_HH
#define G5P_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace g5p::sim::stats
{

class Group;
class Info;

/**
 * The one traversal over a stats hierarchy. Every consumer — the
 * stats.txt dump, checkpoint snapshots, golden-fixture digests, the
 * telemetry exporter — implements this instead of walking
 * statList()/childGroups() by hand, so dotted naming and visit order
 * are defined in exactly one place (Group::visit).
 *
 * Order: a group's own stats in registration order (stat() then its
 * value() calls), then its children recursively.
 */
class Visitor
{
  public:
    virtual ~Visitor() = default;

    /** Entering @p group; @p path is its dotted prefix, e.g.
     *  "system.cpu0." (empty at a relative-visit root). */
    virtual void beginGroup(const Group &group,
                            const std::string &path)
    {
    }

    virtual void endGroup(const Group &group) {}

    /** One registered stat; @p dotted is path + name (mutable so
     *  restore-style visitors work from the same traversal). */
    virtual void stat(Info &stat, const std::string &dotted) {}

    /** One printable value of a stat: scalars and formulas once
     *  under their dotted name, vectors once per element under
     *  "dotted::subname". */
    virtual void value(const std::string &dotted, double value,
                       const Info &stat)
    {
    }
};

/** Base class for all statistic values. */
class Info
{
  public:
    virtual ~Info() = default;

    /** Register name/description (called via Group::addStat). */
    void setInfo(std::string name, std::string desc);

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Scalar reduction of the stat (sum for vectors). */
    virtual double total() const = 0;

    /** Reset to zero. */
    virtual void reset() = 0;

    /** Emit this stat's printable values to @p v (see
     *  Visitor::value). */
    virtual void visitValues(Visitor &v,
                             const std::string &dotted) const = 0;

    /**
     * Raw sample values for checkpointing. Empty means the stat holds
     * no state of its own (Formula) and is skipped on restore.
     */
    virtual std::vector<double> snapshotValues() const { return {}; }

    /** Inverse of snapshotValues; ignores mismatched shapes. */
    virtual void restoreValues(const std::vector<double> &) {}

  private:
    std::string name_ = "?";
    std::string desc_;
};

/** A single accumulating value. */
class Scalar : public Info
{
  public:
    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }
    double total() const override { return value_; }
    void reset() override { value_ = 0; }
    void visitValues(Visitor &v,
                     const std::string &dotted) const override;

    std::vector<double>
    snapshotValues() const override
    {
        return {value_};
    }

    void
    restoreValues(const std::vector<double> &v) override
    {
        if (v.size() == 1)
            value_ = v[0];
    }

  private:
    double value_ = 0;
};

/** A fixed-length vector of accumulating values. */
class Vector : public Info
{
  public:
    /** Size the vector (must be called before use). */
    void init(std::size_t n) { values_.assign(n, 0.0); }

    double &operator[](std::size_t i) { return values_[i]; }
    double operator[](std::size_t i) const { return values_[i]; }

    std::size_t size() const { return values_.size(); }

    /** Optional per-element names for printing. */
    void setSubnames(std::vector<std::string> names);

    double total() const override;
    void reset() override;
    void visitValues(Visitor &v,
                     const std::string &dotted) const override;

    std::vector<double>
    snapshotValues() const override
    {
        return values_;
    }

    void
    restoreValues(const std::vector<double> &v) override
    {
        if (v.size() == values_.size())
            values_ = v;
    }

  private:
    std::vector<double> values_;
    std::vector<std::string> subnames_;
};

/** A derived value computed on demand from other stats. */
class Formula : public Info
{
  public:
    /** Bind the computation. */
    void functor(std::function<double()> fn) { fn_ = std::move(fn); }

    double total() const override { return fn_ ? fn_() : 0.0; }
    void reset() override {}
    void visitValues(Visitor &v,
                     const std::string &dotted) const override;

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics, hierarchical via parent pointers.
 * SimObject derives from Group, giving "cpu0.dcache.hits"-style names.
 */
class Group
{
  public:
    explicit Group(Group *parent = nullptr, std::string name = "");
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Register @p stat under this group. */
    void addStat(Info *stat, const std::string &name,
                 const std::string &desc);

    /** Fully qualified prefix like "system.cpu0.". */
    std::string statPrefix() const;

    const std::string &groupName() const { return groupName_; }

    /**
     * Walk this subtree with fully qualified dotted names (rooted at
     * statPrefix()). The single traversal every stats consumer is
     * built on.
     */
    void visit(Visitor &v) const;

    /**
     * Walk with names relative to @p rootPath instead — pass "" for
     * group-relative names (checkpoint sections name stats relative
     * to their object). @p rootPath must be empty or end in '.'.
     */
    void visit(Visitor &v, const std::string &rootPath) const;

    /** Dump this group and all children in registration order. */
    void dumpStats(std::ostream &os) const;

    /** Reset this group and all children. */
    void resetStats();

    /** Hook for subclasses to register stats lazily (gem5 regStats). */
    virtual void regStats() {}

    const std::vector<Info *> &statList() const { return stats_; }
    const std::vector<Group *> &childGroups() const { return children_; }

    /** Position of @p child in childGroups(); npos if absent. */
    std::size_t childIndex(const Group *child) const;

    /**
     * Move @p child (already a child of this group) to @p index in
     * childGroups(). Dump and visit order follow registration order,
     * so a replacement object constructed later than its predecessor
     * (CPU-model switch) can reclaim the original slot and keep
     * stats.txt layout identical to a never-switched machine.
     */
    void placeChildAt(Group *child, std::size_t index);

    /** Look up a stat by dotted suffix within this subtree. */
    const Info *findStat(const std::string &dotted) const;

  private:
    Group *parent_;
    std::string groupName_;
    std::vector<Info *> stats_;
    std::vector<Group *> children_;
};

} // namespace g5p::sim::stats

#endif // G5P_SIM_STATS_HH
