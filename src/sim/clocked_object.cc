#include "sim/clocked_object.hh"

// ClockedObject is header-only; this translation unit exists to give
// the library a home for future out-of-line definitions and to keep
// the build graph uniform (one .cc per header in src/sim).
