#include "sim/serialize.hh"

#include <fstream>

#include "base/logging.hh"

namespace g5p::sim
{

void
CheckpointOut::pushSection(const std::string &name)
{
    sectionStack_.push_back(name);
}

void
CheckpointOut::popSection()
{
    g5p_assert(!sectionStack_.empty(), "popSection on empty stack");
    sectionStack_.pop_back();
}

std::string
CheckpointOut::currentSection() const
{
    std::string s;
    for (const auto &part : sectionStack_) {
        if (!s.empty())
            s += ".";
        s += part;
    }
    return s.empty() ? "root" : s;
}

void
CheckpointOut::set(const std::string &key, const std::string &value)
{
    sections_[currentSection()][key] = value;
}

std::string
CheckpointOut::toText() const
{
    std::ostringstream os;
    for (const auto &[section, kv] : sections_) {
        os << "[" << section << "]\n";
        for (const auto &[k, v] : kv)
            os << k << "=" << v << "\n";
        os << "\n";
    }
    return os.str();
}

void
CheckpointOut::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        g5p_fatal("cannot write checkpoint '%s'", path.c_str());
    out << toText();
}

CheckpointIn
CheckpointIn::fromText(const std::string &text)
{
    CheckpointIn cp;
    std::istringstream is(text);
    std::string line, section;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.front() == '[' && line.back() == ']') {
            section = line.substr(1, line.size() - 2);
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        cp.sections_[section][line.substr(0, eq)] = line.substr(eq + 1);
    }
    return cp;
}

CheckpointIn
CheckpointIn::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        g5p_fatal("cannot read checkpoint '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return fromText(os.str());
}

void
CheckpointIn::pushSection(const std::string &name)
{
    sectionStack_.push_back(name);
}

void
CheckpointIn::popSection()
{
    g5p_assert(!sectionStack_.empty(), "popSection on empty stack");
    sectionStack_.pop_back();
}

std::string
CheckpointIn::currentSection() const
{
    std::string s;
    for (const auto &part : sectionStack_) {
        if (!s.empty())
            s += ".";
        s += part;
    }
    return s.empty() ? "root" : s;
}

bool
CheckpointIn::has(const std::string &key) const
{
    auto sec = sections_.find(currentSection());
    return sec != sections_.end() && sec->second.count(key) > 0;
}

std::string
CheckpointIn::get(const std::string &key) const
{
    auto sec = sections_.find(currentSection());
    if (sec == sections_.end())
        g5p_fatal("checkpoint missing section '%s'",
                  currentSection().c_str());
    auto kv = sec->second.find(key);
    if (kv == sec->second.end())
        g5p_fatal("checkpoint missing key '%s.%s'",
                  currentSection().c_str(), key.c_str());
    return kv->second;
}

} // namespace g5p::sim
