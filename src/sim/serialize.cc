#include "sim/serialize.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "base/logging.hh"

namespace g5p::sim
{

namespace detail
{

std::string
encodeDouble(double v)
{
    // %a prints an exact hex-float; buffer is ample for any double.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double
decodeDouble(const std::string &s)
{
    return std::strtod(s.c_str(), nullptr);
}

} // namespace detail

namespace
{

/**
 * Escape a payload for one `key=value` line. Values only need the
 * characters that would corrupt the line structure (backslash,
 * newline, CR); keys also hide '=' (the first '=' splits the line),
 * '#' (comment marker) and '[' (section marker).
 */
std::string
escapeText(const std::string &s, bool is_key)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '=':
            if (is_key) { out += "\\e"; break; }
            out += c;
            break;
          case '#':
            if (is_key) { out += "\\h"; break; }
            out += c;
            break;
          case '[':
            if (is_key) { out += "\\b"; break; }
            out += c;
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeText(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 'e': out += '='; break;
          case 'h': out += '#'; break;
          case 'b': out += '['; break;
          default:
            // Unknown escape: keep both characters (graceful reads of
            // checkpoints written by a newer format revision).
            out += '\\';
            out += s[i];
        }
    }
    return out;
}

} // namespace

void
CheckpointOut::pushSection(const std::string &name)
{
    sectionStack_.push_back(name);
}

void
CheckpointOut::popSection()
{
    g5p_assert(!sectionStack_.empty(), "popSection on empty stack");
    sectionStack_.pop_back();
}

std::string
CheckpointOut::currentSection() const
{
    std::string s;
    for (const auto &part : sectionStack_) {
        if (!s.empty())
            s += ".";
        s += part;
    }
    return s.empty() ? "root" : s;
}

void
CheckpointOut::set(const std::string &key, const std::string &value)
{
    sections_[currentSection()][key] = value;
}

std::string
CheckpointOut::toText() const
{
    std::ostringstream os;
    for (const auto &[section, kv] : sections_) {
        os << "[" << section << "]\n";
        for (const auto &[k, v] : kv)
            os << escapeText(k, true) << "="
               << escapeText(v, false) << "\n";
        os << "\n";
    }
    return os.str();
}

void
CheckpointOut::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        g5p_fatal("cannot write checkpoint '%s'", path.c_str());
    out << toText();
}

CheckpointIn
CheckpointIn::fromText(const std::string &text)
{
    CheckpointIn cp;
    std::istringstream is(text);
    std::string line, section;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.front() == '[' && line.back() == ']') {
            section = line.substr(1, line.size() - 2);
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        cp.sections_[section][unescapeText(line.substr(0, eq))] =
            unescapeText(line.substr(eq + 1));
    }
    return cp;
}

CheckpointIn
CheckpointIn::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        g5p_fatal("cannot read checkpoint '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return fromText(os.str());
}

void
CheckpointIn::pushSection(const std::string &name) const
{
    sectionStack_.push_back(name);
}

void
CheckpointIn::popSection() const
{
    g5p_assert(!sectionStack_.empty(), "popSection on empty stack");
    sectionStack_.pop_back();
}

std::string
CheckpointIn::currentSection() const
{
    std::string s;
    for (const auto &part : sectionStack_) {
        if (!s.empty())
            s += ".";
        s += part;
    }
    return s.empty() ? "root" : s;
}

bool
CheckpointIn::has(const std::string &key) const
{
    auto sec = sections_.find(currentSection());
    return sec != sections_.end() && sec->second.count(key) > 0;
}

bool
CheckpointIn::hasSection(const std::string &name) const
{
    std::string full = sectionStack_.empty()
        ? name
        : currentSection() + "." + name;
    if (sections_.count(full))
        return true;
    // A section with only subsections has no entry of its own.
    std::string prefix = full + ".";
    auto it = sections_.lower_bound(prefix);
    return it != sections_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string>
CheckpointIn::sectionNames() const
{
    std::vector<std::string> names;
    names.reserve(sections_.size());
    for (const auto &[section, kv] : sections_)
        names.push_back(section);
    return names;
}

std::string
CheckpointIn::get(const std::string &key) const
{
    auto sec = sections_.find(currentSection());
    if (sec == sections_.end())
        throw std::runtime_error(
            "checkpoint missing section '" + currentSection() + "'");
    auto kv = sec->second.find(key);
    if (kv == sec->second.end())
        throw std::runtime_error(
            "checkpoint missing key '" + key + "' in section '" +
            currentSection() + "'");
    return kv->second;
}

} // namespace g5p::sim
