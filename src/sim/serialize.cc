#include "sim/serialize.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "base/logging.hh"
#include "base/sim_error.hh"

namespace g5p::sim
{

namespace detail
{

std::string
encodeDouble(double v)
{
    // %a prints an exact hex-float; buffer is ample for any double.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double
decodeDouble(const std::string &s)
{
    return std::strtod(s.c_str(), nullptr);
}

} // namespace detail

std::uint64_t
checkpointDigest(const std::string &text)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (unsigned char byte : text)
        hash = (hash ^ byte) * 1099511628211ULL;
    return hash;
}

namespace
{

/** Footer line prefix; a comment so fromText() skips it unchanged. */
constexpr const char *footerPrefix = "#checksum=";

/** "checkpoint" — errors raised outside any SimObject context. */
constexpr const char *ioObject = "checkpoint";

// Thread-local: fault-injecting tests swap the I/O shim for one run,
// and a pooled run on another thread must keep the default.
constinit thread_local CheckpointIo *installedIo = nullptr;

} // namespace

void
CheckpointIo::writeText(const std::string &path,
                        const std::string &text)
{
    // Never write through the live file: a crash (or a disk-full
    // error) mid-write must leave either the old checkpoint or none,
    // not a truncated hybrid. POSIX rename over an existing path is
    // atomic.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            g5p_throw(CheckpointError, ioObject, 0,
                      "cannot open '%s' for writing", tmp.c_str());
        out << text;
        out.flush();
        if (!out)
            g5p_throw(CheckpointError, ioObject, 0,
                      "short write to '%s'", tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        g5p_throw(CheckpointError, ioObject, 0,
                  "cannot rename '%s' over '%s': %s", tmp.c_str(),
                  path.c_str(), ec.message().c_str());
    }
}

std::string
CheckpointIo::readText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        g5p_throw(CheckpointError, ioObject, 0,
                  "cannot read checkpoint '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

CheckpointIo &
CheckpointIo::current()
{
    static CheckpointIo defaultIo;
    return installedIo ? *installedIo : defaultIo;
}

CheckpointIo *
CheckpointIo::install(CheckpointIo *io)
{
    CheckpointIo *prev = installedIo;
    installedIo = io;
    return prev;
}

namespace
{

/**
 * Escape a payload for one `key=value` line. Values only need the
 * characters that would corrupt the line structure (backslash,
 * newline, CR); keys also hide '=' (the first '=' splits the line),
 * '#' (comment marker) and '[' (section marker).
 */
std::string
escapeText(const std::string &s, bool is_key)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '=':
            if (is_key) { out += "\\e"; break; }
            out += c;
            break;
          case '#':
            if (is_key) { out += "\\h"; break; }
            out += c;
            break;
          case '[':
            if (is_key) { out += "\\b"; break; }
            out += c;
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeText(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 'e': out += '='; break;
          case 'h': out += '#'; break;
          case 'b': out += '['; break;
          default:
            // Unknown escape: keep both characters (graceful reads of
            // checkpoints written by a newer format revision).
            out += '\\';
            out += s[i];
        }
    }
    return out;
}

} // namespace

void
CheckpointOut::pushSection(const std::string &name)
{
    sectionStack_.push_back(name);
}

void
CheckpointOut::popSection()
{
    g5p_assert(!sectionStack_.empty(), "popSection on empty stack");
    sectionStack_.pop_back();
}

std::string
CheckpointOut::currentSection() const
{
    std::string s;
    for (const auto &part : sectionStack_) {
        if (!s.empty())
            s += ".";
        s += part;
    }
    return s.empty() ? "root" : s;
}

void
CheckpointOut::set(const std::string &key, const std::string &value)
{
    sections_[currentSection()][key] = value;
}

std::string
CheckpointOut::toText() const
{
    std::ostringstream os;
    for (const auto &[section, kv] : sections_) {
        os << "[" << section << "]\n";
        for (const auto &[k, v] : kv)
            os << escapeText(k, true) << "="
               << escapeText(v, false) << "\n";
        os << "\n";
    }
    return os.str();
}

void
CheckpointOut::writeFile(const std::string &path,
                         unsigned max_attempts,
                         double backoff_ms_base) const
{
    std::string text = toText();
    char footer[32];
    std::snprintf(footer, sizeof(footer), "%s%016llx\n", footerPrefix,
                  (unsigned long long)checkpointDigest(text));
    text += footer;

    if (max_attempts == 0)
        max_attempts = 1;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            CheckpointIo::current().writeText(path, text);
            return;
        } catch (const CheckpointError &e) {
            if (attempt >= max_attempts)
                throw;
            g5p_warn("checkpoint write attempt %u/%u failed (%s); "
                     "retrying", attempt, max_attempts,
                     e.summary().c_str());
            // Short exponential backoff: transient I/O conditions
            // (NFS hiccup, fd pressure) usually clear in
            // milliseconds. A zero base skips the sleep entirely
            // (fast-fail chaos testing).
            if (backoff_ms_base > 0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        backoff_ms_base * (double)(1u << (attempt - 1))));
        }
    }
}

CheckpointIn
CheckpointIn::fromText(const std::string &text)
{
    CheckpointIn cp;
    std::istringstream is(text);
    std::string line, section;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.front() == '[' && line.back() == ']') {
            section = line.substr(1, line.size() - 2);
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        cp.sections_[section][unescapeText(line.substr(0, eq))] =
            unescapeText(line.substr(eq + 1));
    }
    return cp;
}

CheckpointIn
CheckpointIn::readFile(const std::string &path)
{
    std::string text = CheckpointIo::current().readText(path);

    // The checksum footer is the last line; its absence means the
    // file was truncated (the footer is written last) or produced by
    // something that is not CheckpointOut::writeFile.
    const std::string prefix = footerPrefix;
    auto pos = text.rfind(prefix);
    if (pos == std::string::npos ||
        text.find('\n', pos) == std::string::npos)
        g5p_throw(CheckpointError, ioObject, 0,
                  "checkpoint '%s' has no checksum footer (file "
                  "truncated or not a checkpoint)", path.c_str());

    std::string body = text.substr(0, pos);
    std::uint64_t recorded = std::strtoull(
        text.c_str() + pos + prefix.size(), nullptr, 16);
    std::uint64_t actual = checkpointDigest(body);
    if (recorded != actual)
        g5p_throw(CheckpointError, ioObject, 0,
                  "checkpoint '%s' is corrupt: checksum %016llx "
                  "recorded, %016llx computed", path.c_str(),
                  (unsigned long long)recorded,
                  (unsigned long long)actual);
    return fromText(body);
}

void
CheckpointIn::pushSection(const std::string &name) const
{
    sectionStack_.push_back(name);
}

void
CheckpointIn::popSection() const
{
    g5p_assert(!sectionStack_.empty(), "popSection on empty stack");
    sectionStack_.pop_back();
}

std::string
CheckpointIn::currentSection() const
{
    std::string s;
    for (const auto &part : sectionStack_) {
        if (!s.empty())
            s += ".";
        s += part;
    }
    return s.empty() ? "root" : s;
}

bool
CheckpointIn::has(const std::string &key) const
{
    auto sec = sections_.find(currentSection());
    return sec != sections_.end() && sec->second.count(key) > 0;
}

bool
CheckpointIn::hasSection(const std::string &name) const
{
    std::string full = sectionStack_.empty()
        ? name
        : currentSection() + "." + name;
    if (sections_.count(full))
        return true;
    // A section with only subsections has no entry of its own.
    std::string prefix = full + ".";
    auto it = sections_.lower_bound(prefix);
    return it != sections_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string>
CheckpointIn::sectionNames() const
{
    std::vector<std::string> names;
    names.reserve(sections_.size());
    for (const auto &[section, kv] : sections_)
        names.push_back(section);
    return names;
}

std::string
CheckpointIn::get(const std::string &key) const
{
    auto sec = sections_.find(currentSection());
    if (sec == sections_.end())
        g5p_throw(CheckpointError, ioObject, 0,
                  "checkpoint missing section '%s'",
                  currentSection().c_str());
    auto kv = sec->second.find(key);
    if (kv == sec->second.end())
        g5p_throw(CheckpointError, ioObject, 0,
                  "checkpoint missing key '%s' in section '%s'",
                  key.c_str(), currentSection().c_str());
    return kv->second;
}

} // namespace g5p::sim
