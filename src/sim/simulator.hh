/**
 * @file
 * Simulator: the root object owning the event queue and the SimObject
 * list; runs the main simulation loop (gem5's simulate()).
 */

#ifndef G5P_SIM_SIMULATOR_HH
#define G5P_SIM_SIMULATOR_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"

namespace g5p::sim
{

class SimObject;

/** Why the simulation loop returned. */
enum class ExitCause
{
    Finished,       ///< a workload/exit event fired
    TickLimit,      ///< the caller's tick limit was reached
    EventQueueEmpty,///< nothing left to do
    User,           ///< user-requested exit (m5 exit equivalent)
};

/** Human-readable exit-cause name. */
const char *exitCauseName(ExitCause cause);

/** Result of Simulator::run(). */
struct SimResult
{
    ExitCause cause;
    Tick tick;          ///< curTick when the loop returned
    std::string message;///< exit message (e.g. workload status)
};

/**
 * The simulation root. Owns the event queue, tracks all SimObjects,
 * drives the init/regStats/startup phases, and runs the event loop.
 */
class Simulator : public stats::Group
{
  public:
    explicit Simulator(const std::string &name = "system");
    ~Simulator() override;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** The single event queue (mg5 is single threaded, as gem5). */
    EventQueue &eventq() { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);

    /**
     * Run init/regStats/startup once, then service events until an
     * exit is requested, the queue empties, or @p tick_limit passes.
     * May be called repeatedly to continue a simulation.
     */
    SimResult run(Tick tick_limit = maxTick);

    /**
     * Request the loop to return at @p when (now if 0). Mirrors
     * gem5's exitSimLoop().
     */
    void exitSimLoop(const std::string &message,
                     ExitCause cause = ExitCause::Finished,
                     Tick when = 0);

    /** Dump all statistics in stats.txt format. */
    void dumpStats(std::ostream &os) const;

    /** Reset all statistics (gem5 m5 resetstats). */
    void resetAllStats();

    /** Serialize every object plus the current tick. */
    void takeCheckpoint(CheckpointOut &cp) const;

    /** Restore every object plus the current tick. */
    void restoreCheckpoint(const CheckpointIn &cp);

    /** All registered objects (init order). */
    const std::vector<SimObject *> &objects() const { return objects_; }

    /** Total events serviced by run() so far. */
    std::uint64_t eventsServiced() const { return eventsServiced_; }

  private:
    class ExitEvent;

    void initPhase();

    /** Per-simulator synthetic data segment (determinism). */
    trace::DataSpace dataSpace_;

    EventQueue eventq_;
    std::vector<SimObject *> objects_;
    bool initDone_ = false;
    std::uint64_t eventsServiced_ = 0;

    bool exitRequested_ = false;
    ExitCause exitCause_ = ExitCause::Finished;
    std::string exitMessage_;
    std::vector<std::unique_ptr<ExitEvent>> pendingExits_;
};

} // namespace g5p::sim

#endif // G5P_SIM_SIMULATOR_HH
