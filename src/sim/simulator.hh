/**
 * @file
 * Simulator: the root object owning the event queue and the SimObject
 * list; runs the main simulation loop (gem5's simulate()).
 */

#ifndef G5P_SIM_SIMULATOR_HH
#define G5P_SIM_SIMULATOR_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"

namespace g5p::sim
{

class SimObject;

/** Why the simulation loop returned. */
enum class ExitCause
{
    Finished,       ///< a workload/exit event fired
    TickLimit,      ///< the caller's tick limit was reached
    EventQueueEmpty,///< nothing left to do
    User,           ///< user-requested exit (m5 exit equivalent)
};

/** Human-readable exit-cause name. */
const char *exitCauseName(ExitCause cause);

/** Result of Simulator::run(). */
struct SimResult
{
    ExitCause cause;
    Tick tick;          ///< curTick when the loop returned
    std::string message;///< exit message (e.g. workload status)
};

/**
 * The simulation root. Owns the event queue, tracks all SimObjects,
 * drives the init/regStats/startup phases, and runs the event loop.
 */
class Simulator : public stats::Group
{
  public:
    explicit Simulator(const std::string &name = "system");
    ~Simulator() override;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** The single event queue (mg5 is single threaded, as gem5). */
    EventQueue &eventq() { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);

    /**
     * Run init/regStats/startup once, then service events until an
     * exit is requested, the queue empties, or @p tick_limit passes.
     * May be called repeatedly to continue a simulation.
     */
    SimResult run(Tick tick_limit = maxTick);

    /**
     * Request the loop to return at @p when (now if 0). Mirrors
     * gem5's exitSimLoop().
     */
    void exitSimLoop(const std::string &message,
                     ExitCause cause = ExitCause::Finished,
                     Tick when = 0);

    /** Dump all statistics in stats.txt format. */
    void dumpStats(std::ostream &os) const;

    /** Reset all statistics (gem5 m5 resetstats). */
    void resetAllStats();

    /** Checkpoint format revision written into the meta section. */
    static constexpr unsigned checkpointVersion = 1;

    /**
     * Service events normally until the queue is quiescent (no
     * transient callback events pending, i.e. no memory transaction
     * in flight anywhere). Because this is exactly what run() would
     * do next, seeking a quiescent point does not perturb the
     * simulation — a run that checkpoints mid-way produces the same
     * final state as one that never did.
     *
     * @return false if an exit event fired before a quiescent point
     *         was found (the simulation ended); true otherwise.
     */
    bool advanceToQuiescence(std::uint64_t max_events = 100'000'000);

    /**
     * Advance to a quiescent point, then serialize the whole machine
     * to @p path. Fatal if the simulation exits during the seek.
     */
    void checkpoint(const std::string &path);

    /** Restore a checkpoint written by checkpoint(). */
    void restore(const std::string &path);

    /**
     * Serialize every object, pending events, and stats counters.
     * The queue must already be quiescent (see checkpoint()).
     */
    void takeCheckpoint(CheckpointOut &cp) const;

    /**
     * Restore into a freshly built, identically configured machine.
     * Runs the init phase first, clears startup-scheduled events,
     * then restores objects, stats and pending events. Unknown
     * checkpoint sections warn; objects missing from the checkpoint
     * keep their freshly built state.
     */
    void restoreCheckpoint(const CheckpointIn &cp);

    /** True once restoreCheckpoint() has run (skip CPU activation). */
    bool restored() const { return restored_; }

    /**
     * Write an automatic checkpoint every @p period ticks to
     * "<prefix>-<tick>.ckpt". Taken from the run() loop at the first
     * quiescent point after each period boundary, never from inside
     * event processing.
     */
    void enableAutoCheckpoint(Tick period, std::string prefix);

    /** All registered objects (init order). */
    const std::vector<SimObject *> &objects() const { return objects_; }

    /** Total events serviced by run() so far. */
    std::uint64_t eventsServiced() const { return eventsServiced_; }

  private:
    class ExitEvent;

    void initPhase();

    /** Auto-checkpoint event action: mark a checkpoint as due. */
    void autoCkptDue() { autoCkptPending_ = true; }

    /** Take the pending auto-checkpoint (called from run()). */
    void doAutoCheckpoint();

    /** Per-simulator synthetic data segment (determinism). */
    trace::DataSpace dataSpace_;

    EventQueue eventq_;
    std::vector<SimObject *> objects_;
    bool initDone_ = false;
    std::uint64_t eventsServiced_ = 0;

    bool exitRequested_ = false;
    ExitCause exitCause_ = ExitCause::Finished;
    std::string exitMessage_;
    std::vector<std::unique_ptr<ExitEvent>> pendingExits_;
    /** Monotonic id making exit-event checkpoint tags unique. */
    std::uint64_t nextExitId_ = 0;

    bool restored_ = false;

    Tick autoCkptPeriod_ = 0;
    std::string autoCkptPrefix_;
    bool autoCkptPending_ = false;
    MemberEventWrapper<&Simulator::autoCkptDue> autoCkptEvent_;
};

} // namespace g5p::sim

#endif // G5P_SIM_SIMULATOR_HH
