/**
 * @file
 * Simulator: the root object owning the event queue and the SimObject
 * list; runs the main simulation loop (gem5's simulate()).
 */

#ifndef G5P_SIM_SIMULATOR_HH
#define G5P_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/run_options.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"

namespace g5p::sim
{

class SimObject;

/** Why the simulation loop returned. */
enum class ExitCause
{
    Finished,       ///< a workload/exit event fired
    TickLimit,      ///< the caller's tick limit was reached
    EventQueueEmpty,///< nothing left to do
    User,           ///< user-requested exit (m5 exit equivalent)
    Deadlock,       ///< queue empty but the machine expects progress
    Livelock,       ///< events serviced but curTick stopped advancing
    WatchdogTimeout,///< wall-clock or event budget exhausted
};

/** Human-readable exit-cause name. */
const char *exitCauseName(ExitCause cause);

/** True for the supervision causes (Deadlock/Livelock/Timeout). */
bool isSupervisedExit(ExitCause cause);

/** Result of Simulator::run(). */
struct SimResult
{
    ExitCause cause;
    Tick tick;          ///< curTick when the loop returned
    std::string message;///< exit message (e.g. workload status)
    /** Watchdog report (pending events, machine state, flight
     *  recorder); empty unless isSupervisedExit(cause). */
    std::string diagnostic;
};

/** One flight-recorder entry: an event the loop serviced. */
struct FlightRecord
{
    Tick tick;
    std::int16_t priority;
    std::string name;
};

/**
 * Probe reporting how many transient pooled resources (packets) are
 * currently outstanding — allocated but not yet returned to their
 * pool. Registered by the pool's translation unit at static-init
 * time (sim/ stays ignorant of mem/); null when no pool is linked
 * in. The Simulator asserts the count has returned to its
 * construction-time baseline at every quiescent point and at
 * teardown: with packet-owning events, a count above the baseline
 * there is a leaked packet, and failing loudly turns a silent leak
 * into a diagnosable abort (with a live pointer for ASan). Baseline
 * rather than zero because the pool is per-thread and sibling
 * machines may hold legitimately parked packets (see
 * TransientDrainGuard).
 */
using TransientResourceProbe = std::uint64_t (*)();

/** Register @p probe (nullptr to remove). */
void setTransientResourceProbe(TransientResourceProbe probe);

/**
 * The simulation root. Owns the event queue, tracks all SimObjects,
 * drives the init/regStats/startup phases, and runs the event loop.
 */
class Simulator : public stats::Group
{
  public:
    explicit Simulator(const std::string &name = "system");
    ~Simulator() override;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** The single event queue (mg5 is single threaded, as gem5). */
    EventQueue &eventq() { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);

    /**
     * Run init/regStats/startup once, then service events until an
     * exit is requested, the queue empties, or @p tick_limit passes.
     * May be called repeatedly to continue a simulation.
     *
     * With a watchdog configured (configure() with supervise set)
     * the loop additionally
     * returns Livelock / WatchdogTimeout; with an activity probe
     * installed (setActivityProbe) an empty queue while the machine
     * still expects progress returns Deadlock. Supervised exits carry
     * a diagnostic dump instead of hanging or aborting.
     */
    SimResult run(Tick tick_limit = maxTick);

    /**
     * Apply a full RunOptions bundle: watchdog, auto-checkpoint,
     * fault seed, profiler. Idempotent; a later call replaces the
     * earlier one wholesale (so `configure({})` returns the
     * simulator to its unsupervised defaults). The one way run
     * control is meant to be set since PR 4.
     */
    void configure(const RunOptions &options);

    /** Convenience: configure() then run(). */
    SimResult
    run(const RunOptions &options, Tick tick_limit = maxTick)
    {
        configure(options);
        return run(tick_limit);
    }

    /** The options applied by the last configure() (default-built
     *  until then). FaultInjector reads faultSeed from here. */
    const RunOptions &runOptions() const { return runOptions_; }

    /**
     * Install a caller-owned profiler into the event loop (replacing
     * any RunOptions-owned one) and register all current objects as
     * owners. Arms it if not yet armed. The caller keeps it alive
     * until the simulator is destroyed or another profiler (or a
     * profiler-less configure()) replaces it.
     */
    void attachProfiler(Profiler &profiler);

    /** The active profiler (owned or attached); null if none. */
    Profiler *profiler() const { return profiler_; }

    /** The active watchdog configuration. */
    const WatchdogConfig &watchdog() const { return watchdog_; }

    /**
     * Install the deadlock probe: returns true while the machine
     * still expects progress (e.g. CPUs activated but not all
     * halted). An empty event queue with the probe returning true is
     * a deadlock, not a normal end-of-simulation. Pass nullptr to
     * remove.
     */
    void setActivityProbe(std::function<bool()> probe)
    { activityProbe_ = std::move(probe); }

    /**
     * Install the machine-state reporter appended to diagnostic
     * dumps (per-CPU PC/halt/instruction state). Pass nullptr to
     * remove.
     */
    void setDiagProbe(std::function<std::string()> probe)
    { diagProbe_ = std::move(probe); }

    /**
     * The watchdog report: pending events, the diag probe's machine
     * state, and the flight-recorder tail. Also callable directly
     * for ad-hoc debugging.
     */
    std::string diagnosticDump() const;

    /** Flight-recorder contents, oldest first. */
    std::vector<FlightRecord> flightRecords() const;

    /**
     * Request the loop to return at @p when (now if 0). Mirrors
     * gem5's exitSimLoop().
     */
    void exitSimLoop(const std::string &message,
                     ExitCause cause = ExitCause::Finished,
                     Tick when = 0);

    /** Dump all statistics in stats.txt format. */
    void dumpStats(std::ostream &os) const;

    /** Reset all statistics (gem5 m5 resetstats). */
    void resetAllStats();

    /** Checkpoint format revision written into the meta section. */
    static constexpr unsigned checkpointVersion = 1;

    /**
     * Service events normally until the queue is quiescent (no
     * transient callback events pending, i.e. no memory transaction
     * in flight anywhere). Because this is exactly what run() would
     * do next, seeking a quiescent point does not perturb the
     * simulation — a run that checkpoints mid-way produces the same
     * final state as one that never did.
     *
     * Throws InvariantError if no quiescent point is found within
     * @p max_events (a wedged or pathological machine).
     *
     * @return false if an exit event fired before a quiescent point
     *         was found (the simulation ended); true otherwise.
     */
    bool advanceToQuiescence(std::uint64_t max_events = 100'000'000);

    /**
     * Advance to a quiescent point, then serialize the whole machine
     * to @p path.
     *
     * @return true if the checkpoint was written; false if the
     *         simulation exited during the quiescence seek (it
     *         simply finished — not an error, nothing was written).
     * Throws CheckpointError on I/O failure after bounded retries.
     */
    bool checkpoint(const std::string &path);

    /** Restore a checkpoint written by checkpoint(). */
    void restore(const std::string &path);

    /**
     * Serialize every object, pending events, and stats counters.
     * The queue must already be quiescent (see checkpoint()).
     */
    void takeCheckpoint(CheckpointOut &cp) const;

    /**
     * Restore into a freshly built, identically configured machine.
     * Runs the init phase first, clears startup-scheduled events,
     * then restores objects, stats and pending events. Unknown
     * checkpoint sections warn; objects missing from the checkpoint
     * keep their freshly built state.
     */
    void restoreCheckpoint(const CheckpointIn &cp);

    /** True once restoreCheckpoint() has run (skip CPU activation). */
    bool restored() const { return restored_; }

    /**
     * Run the init/regStats/startup phases for objects constructed
     * after the first run() — the CPU-model switch constructs cores
     * mid-simulation. Objects that already had their phases keep
     * them; run() calls this implicitly, so it is only needed when
     * state must be restored into the new objects before the next
     * run() (e.g. os::System::switchCpu).
     */
    void initNewObjects() { initPhase(); }

    /** All registered objects (init order). */
    const std::vector<SimObject *> &objects() const { return objects_; }

    /** Total events serviced by run() so far. */
    std::uint64_t eventsServiced() const { return eventsServiced_; }

  private:
    class ExitEvent;

    void initPhase();

    /** configure() internals. */
    void applyWatchdog(const WatchdogConfig &config, bool enabled);
    void applyAutoCheckpoint(Tick period, std::string prefix);
    void applyProfiler(const ProfilerConfig &config);

    /** Install @p profiler into the event loop. */
    void installProfiler(Profiler *profiler, bool owned);

    /** Append one serviced event to the flight-recorder ring. */
    void recordFlight(Tick when, std::int16_t priority,
                      std::string name);

    /** Build the SimResult for a watchdog-detected condition. */
    SimResult supervisedExit(ExitCause cause, std::string message);

    /** Auto-checkpoint event action: mark a checkpoint as due. */
    void autoCkptDue() { autoCkptPending_ = true; }

    /** Take the pending auto-checkpoint (called from run()). */
    void doAutoCheckpoint();

    /** Assert the transient-resource probe reads zero (see
     *  setTransientResourceProbe); @p when names the check point. */
    void assertTransientsDrained(const char *when) const;

    /** Per-simulator synthetic data segment (determinism). */
    trace::DataSpace dataSpace_;

    /**
     * Teardown drain check. Declared immediately before eventq_ so
     * its destructor runs immediately *after* ~EventQueue — which
     * clears the queue and thereby destroys every unfired
     * packet-owning event, returning their packets to the pool. Any
     * packet beyond the construction-time baseline still outstanding
     * at that point has genuinely leaked.
     *
     * The baseline (probe reading when this Simulator was built)
     * rather than zero: the pool is per-thread, not per-simulator,
     * and another machine on this thread may legitimately hold
     * parked packets — e.g. a finished Minor/O3 run whose final
     * speculative fetches halted mid-flight and now sit on its MSHRs
     * and unfired events until that machine is torn down. This
     * simulator is only accountable for returning the count to what
     * it found.
     */
    struct TransientDrainGuard
    {
        TransientDrainGuard();
        ~TransientDrainGuard();
        std::uint64_t baseline;
    };
    TransientDrainGuard transientGuard_;

    EventQueue eventq_;
    std::vector<SimObject *> objects_;
    std::uint64_t eventsServiced_ = 0;

    bool exitRequested_ = false;
    ExitCause exitCause_ = ExitCause::Finished;
    std::string exitMessage_;
    std::vector<std::unique_ptr<ExitEvent>> pendingExits_;
    /** Monotonic id making exit-event checkpoint tags unique. */
    std::uint64_t nextExitId_ = 0;

    bool restored_ = false;

    WatchdogConfig watchdog_;
    /** True when supervision is configured; gates per-event checks. */
    bool watchdogEnabled_ = false;
    std::function<bool()> activityProbe_;
    std::function<std::string()> diagProbe_;

    /** Flight recorder: ring of the last-N serviced events. */
    std::vector<FlightRecord> flight_;
    std::size_t flightNext_ = 0;

    Tick autoCkptPeriod_ = 0;
    std::string autoCkptPrefix_;
    bool autoCkptPending_ = false;
    MemberEventWrapper<&Simulator::autoCkptDue> autoCkptEvent_;

    /** Last options handed to configure(). */
    RunOptions runOptions_;

    /** Profiler created by configure() when profiler.enabled. */
    std::unique_ptr<Profiler> ownedProfiler_;
    /** The installed profiler: ownedProfiler_.get() or an attached
     *  caller-owned one; null when profiling is off. */
    Profiler *profiler_ = nullptr;

    /** Next SimObject id (0 is this root). */
    std::uint32_t nextObjectId_ = 1;
};

/**
 * @{ Write/read the non-derived stats of @p group as a "stats"
 * subsection of the current checkpoint section (the format
 * takeCheckpoint uses per object). Shared with the CPU-model switch,
 * which serializes only the CPU sections of a machine.
 */
void serializeGroupStats(const stats::Group &group, CheckpointOut &cp);
void unserializeGroupStats(stats::Group &group, const CheckpointIn &cp);
/** @} */

} // namespace g5p::sim

#endif // G5P_SIM_SIMULATOR_HH
