#include "sim/stats.hh"

#include <algorithm>

#include "base/logging.hh"
#include "trace/recorder.hh"

namespace g5p::sim::stats
{

void
Info::setInfo(std::string name, std::string desc)
{
    name_ = std::move(name);
    desc_ = std::move(desc);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Vector::setSubnames(std::vector<std::string> names)
{
    subnames_ = std::move(names);
}

double
Vector::total() const
{
    double sum = 0;
    for (double v : values_)
        sum += v;
    return sum;
}

void
Vector::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

void
Vector::print(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        std::string sub = i < subnames_.size()
            ? subnames_[i] : std::to_string(i);
        os << prefix << name() << "::" << sub << " " << values_[i]
           << " # " << desc() << "\n";
    }
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << total() << " # " << desc() << "\n";
}

Group::Group(Group *parent, std::string name)
    : parent_(parent), groupName_(std::move(name))
{
    if (parent_)
        parent_->children_.push_back(this);
}

Group::~Group()
{
    if (parent_) {
        auto &sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this),
                   sibs.end());
    }
}

void
Group::addStat(Info *stat, const std::string &name,
               const std::string &desc)
{
    g5p_assert(stat, "null stat registered in group '%s'",
               groupName_.c_str());
    stat->setInfo(name, desc);
    stats_.push_back(stat);
}

std::string
Group::statPrefix() const
{
    std::string prefix;
    if (parent_)
        prefix = parent_->statPrefix();
    if (!groupName_.empty())
        prefix += groupName_ + ".";
    return prefix;
}

void
Group::dumpStats(std::ostream &os) const
{
    G5P_TRACE_SCOPE("stats::Group::dumpStats", Stats, false);
    std::string prefix = statPrefix();
    for (const Info *stat : stats_)
        stat->print(os, prefix);
    for (const Group *child : children_)
        child->dumpStats(os);
}

void
Group::resetStats()
{
    for (Info *stat : stats_)
        stat->reset();
    for (Group *child : children_)
        child->resetStats();
}

const Info *
Group::findStat(const std::string &dotted) const
{
    auto dot = dotted.find('.');
    if (dot == std::string::npos) {
        for (const Info *stat : stats_)
            if (stat->name() == dotted)
                return stat;
        return nullptr;
    }
    std::string head = dotted.substr(0, dot);
    std::string rest = dotted.substr(dot + 1);
    for (const Group *child : children_)
        if (child->groupName() == head)
            return child->findStat(rest);
    return nullptr;
}

} // namespace g5p::sim::stats
