#include "sim/stats.hh"

#include <algorithm>

#include "base/logging.hh"
#include "trace/recorder.hh"

namespace g5p::sim::stats
{

void
Info::setInfo(std::string name, std::string desc)
{
    name_ = std::move(name);
    desc_ = std::move(desc);
}

void
Scalar::visitValues(Visitor &v, const std::string &dotted) const
{
    v.value(dotted, value_, *this);
}

void
Vector::setSubnames(std::vector<std::string> names)
{
    subnames_ = std::move(names);
}

double
Vector::total() const
{
    double sum = 0;
    for (double v : values_)
        sum += v;
    return sum;
}

void
Vector::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

void
Vector::visitValues(Visitor &v, const std::string &dotted) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        std::string sub = i < subnames_.size()
            ? subnames_[i] : std::to_string(i);
        v.value(dotted + "::" + sub, values_[i], *this);
    }
}

void
Formula::visitValues(Visitor &v, const std::string &dotted) const
{
    v.value(dotted, total(), *this);
}

Group::Group(Group *parent, std::string name)
    : parent_(parent), groupName_(std::move(name))
{
    if (parent_)
        parent_->children_.push_back(this);
}

Group::~Group()
{
    if (parent_) {
        auto &sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this),
                   sibs.end());
    }
}

std::size_t
Group::childIndex(const Group *child) const
{
    for (std::size_t i = 0; i < children_.size(); ++i)
        if (children_[i] == child)
            return i;
    return std::string::npos;
}

void
Group::placeChildAt(Group *child, std::size_t index)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    g5p_assert(it != children_.end(),
               "'%s' is not a child of group '%s'",
               child->groupName().c_str(), groupName_.c_str());
    children_.erase(it);
    if (index > children_.size())
        index = children_.size();
    children_.insert(children_.begin() + (std::ptrdiff_t)index,
                     child);
}

void
Group::addStat(Info *stat, const std::string &name,
               const std::string &desc)
{
    g5p_assert(stat, "null stat registered in group '%s'",
               groupName_.c_str());
    stat->setInfo(name, desc);
    stats_.push_back(stat);
}

std::string
Group::statPrefix() const
{
    std::string prefix;
    if (parent_)
        prefix = parent_->statPrefix();
    if (!groupName_.empty())
        prefix += groupName_ + ".";
    return prefix;
}

void
Group::visit(Visitor &v) const
{
    visit(v, statPrefix());
}

void
Group::visit(Visitor &v, const std::string &rootPath) const
{
    v.beginGroup(*this, rootPath);
    for (Info *stat : stats_) {
        std::string dotted = rootPath + stat->name();
        v.stat(*stat, dotted);
        stat->visitValues(v, dotted);
    }
    for (const Group *child : children_) {
        child->visit(v, child->groupName().empty()
                            ? rootPath
                            : rootPath + child->groupName() + ".");
    }
    v.endGroup(*this);
}

namespace
{

/** stats.txt formatting: "name value # desc", one line per value. */
class TextDumpVisitor : public Visitor
{
  public:
    explicit TextDumpVisitor(std::ostream &os) : os_(os) {}

    void
    value(const std::string &dotted, double value,
          const Info &stat) override
    {
        os_ << dotted << " " << value << " # " << stat.desc() << "\n";
    }

  private:
    std::ostream &os_;
};

} // namespace

void
Group::dumpStats(std::ostream &os) const
{
    G5P_TRACE_SCOPE("stats::Group::dumpStats", Stats, false);
    TextDumpVisitor dump(os);
    visit(dump);
}

void
Group::resetStats()
{
    for (Info *stat : stats_)
        stat->reset();
    for (Group *child : children_)
        child->resetStats();
}

const Info *
Group::findStat(const std::string &dotted) const
{
    auto dot = dotted.find('.');
    if (dot == std::string::npos) {
        for (const Info *stat : stats_)
            if (stat->name() == dotted)
                return stat;
        return nullptr;
    }
    std::string head = dotted.substr(0, dot);
    std::string rest = dotted.substr(dot + 1);
    for (const Group *child : children_)
        if (child->groupName() == head)
            return child->findStat(rest);
    return nullptr;
}

} // namespace g5p::sim::stats
