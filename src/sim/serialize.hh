/**
 * @file
 * Checkpointing: serialize simulator state to an INI-like key/value
 * store, mirroring gem5's m5.ckpt format in spirit.
 *
 * The paper's Boot-Exit methodology relies on checkpoints ("M1 ... used
 * to recover from checkpoints taken by Intel_Xeon"); mg5 supports the
 * same take-on-one-run / restore-on-another flow.
 */

#ifndef G5P_SIM_SERIALIZE_HH
#define G5P_SIM_SERIALIZE_HH

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace g5p::sim
{

/** Writable checkpoint: section -> key -> value. */
class CheckpointOut
{
  public:
    /** Enter a (sub)section; sections nest with '.' separators. */
    void pushSection(const std::string &name);

    /** Leave the current section. */
    void popSection();

    /** Store one value in the current section. */
    template <typename T>
    void
    param(const std::string &key, const T &value)
    {
        std::ostringstream os;
        os << value;
        set(key, os.str());
    }

    /** Store a vector as a space-separated list. */
    template <typename T>
    void
    paramVector(const std::string &key, const std::vector<T> &values)
    {
        std::ostringstream os;
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i)
                os << " ";
            os << values[i];
        }
        set(key, os.str());
    }

    /** Serialize to the INI-like text format. */
    std::string toText() const;

    /** Write to a file; fatal on I/O error. */
    void writeFile(const std::string &path) const;

    const std::map<std::string, std::map<std::string, std::string>> &
    sections() const { return sections_; }

  private:
    void set(const std::string &key, const std::string &value);
    std::string currentSection() const;

    std::vector<std::string> sectionStack_;
    std::map<std::string, std::map<std::string, std::string>> sections_;
};

/** Readable checkpoint. */
class CheckpointIn
{
  public:
    /** Parse the text format produced by CheckpointOut. */
    static CheckpointIn fromText(const std::string &text);

    /** Read from a file; fatal on I/O error. */
    static CheckpointIn readFile(const std::string &path);

    void pushSection(const std::string &name);
    void popSection();

    /** Fetch one value; fatal if missing (corrupt checkpoint). */
    template <typename T>
    void
    param(const std::string &key, T &value) const
    {
        std::istringstream is(get(key));
        is >> value;
    }

    /** Fetch a vector stored by paramVector. */
    template <typename T>
    void
    paramVector(const std::string &key, std::vector<T> &values) const
    {
        values.clear();
        std::istringstream is(get(key));
        T v;
        while (is >> v)
            values.push_back(v);
    }

    /** True if the current section has @p key. */
    bool has(const std::string &key) const;

  private:
    std::string get(const std::string &key) const;
    std::string currentSection() const;

    std::vector<std::string> sectionStack_;
    std::map<std::string, std::map<std::string, std::string>> sections_;
};

/** Interface for checkpointable objects. */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Save state into the current checkpoint section. */
    virtual void serialize(CheckpointOut &cp) const = 0;

    /** Restore state from the current checkpoint section. */
    virtual void unserialize(const CheckpointIn &cp) = 0;
};

} // namespace g5p::sim

#endif // G5P_SIM_SERIALIZE_HH
