/**
 * @file
 * Checkpointing: serialize simulator state to an INI-like key/value
 * store, mirroring gem5's m5.ckpt format in spirit.
 *
 * The paper's Boot-Exit methodology relies on checkpoints ("M1 ... used
 * to recover from checkpoints taken by Intel_Xeon"); mg5 supports the
 * same take-on-one-run / restore-on-another flow.
 *
 * Format notes:
 *  - One `[section]` header per dotted section name, `key=value` lines.
 *  - Values round-trip arbitrary bytes: backslash, newline and CR are
 *    escaped (`\\`, `\n`, `\r`); keys additionally escape `=`, `#`
 *    and `[` so the line parser can never misread them.
 *  - Floating-point params are stored as C99 hex-floats (`%a`) so
 *    doubles restore bit-exactly.
 *
 * Durability guarantees (see DESIGN.md §"Error handling"):
 *  - `CheckpointOut::writeFile` is atomic: the text is written to
 *    `<path>.tmp`, flushed, and renamed over `<path>`, so a crash
 *    mid-write never leaves a half-written checkpoint at the target
 *    path. Transient I/O failures are retried with bounded backoff.
 *  - Every file carries a `#checksum=` FNV-1a footer;
 *    `CheckpointIn::readFile` rejects files with a missing or
 *    mismatched footer (truncation, corruption) with a typed
 *    `CheckpointError` naming the file.
 *  - All checkpoint file traffic flows through the injectable
 *    `CheckpointIo` shim so tests can fault the I/O layer
 *    deterministically.
 */

#ifndef G5P_SIM_SERIALIZE_HH
#define G5P_SIM_SERIALIZE_HH

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace g5p::sim
{

namespace detail
{

/** Exact textual encoding of a double (C99 %a hex-float). */
std::string encodeDouble(double v);

/** Inverse of encodeDouble (also accepts plain decimal floats). */
double decodeDouble(const std::string &s);

} // namespace detail

/**
 * Pluggable checkpoint file I/O. The default implementation performs
 * the atomic tmp+rename write and a plain read; tests and the
 * FaultInjector install shims that fail deterministically so the
 * retry/degradation paths can be exercised without touching a real
 * failing filesystem. Both methods throw CheckpointError on failure.
 */
class CheckpointIo
{
  public:
    virtual ~CheckpointIo() = default;

    /**
     * Durably write @p text to @p path: write `<path>.tmp`, flush,
     * rename over @p path. Throws CheckpointError on any failure; the
     * tmp file is removed on a failed rename.
     */
    virtual void writeText(const std::string &path,
                           const std::string &text);

    /** Read the whole file; throws CheckpointError if unreadable. */
    virtual std::string readText(const std::string &path);

    /** The active I/O implementation (default unless installed). */
    static CheckpointIo &current();

    /**
     * Install a replacement (nullptr restores the default). Returns
     * the previous shim so callers can chain/restore.
     */
    static CheckpointIo *install(CheckpointIo *io);
};

/** FNV-1a digest of a byte string (the checkpoint footer hash). */
std::uint64_t checkpointDigest(const std::string &text);

/** Writable checkpoint: section -> key -> value. */
class CheckpointOut
{
  public:
    /** Enter a (sub)section; sections nest with '.' separators. */
    void pushSection(const std::string &name);

    /** Leave the current section. */
    void popSection();

    /** Store one value in the current section. */
    template <typename T>
    void
    param(const std::string &key, const T &value)
    {
        if constexpr (std::is_floating_point_v<T>) {
            set(key, detail::encodeDouble(value));
        } else {
            std::ostringstream os;
            os << value;
            set(key, os.str());
        }
    }

    /** Store a vector as a space-separated list. */
    template <typename T>
    void
    paramVector(const std::string &key, const std::vector<T> &values)
    {
        std::ostringstream os;
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i)
                os << " ";
            if constexpr (std::is_floating_point_v<T>)
                os << detail::encodeDouble(values[i]);
            else
                os << values[i];
        }
        set(key, os.str());
    }

    /** Serialize to the INI-like text format. */
    std::string toText() const;

    /**
     * Write atomically (tmp + rename via CheckpointIo) with a
     * `#checksum=` footer, retrying transient I/O failures up to
     * @p max_attempts with exponential backoff starting at
     * @p backoff_ms_base milliseconds (doubling per attempt; 0 =
     * retry immediately). Throws CheckpointError once every attempt
     * has failed. The defaults match sim::CheckpointRetryConfig;
     * Simulator::checkpoint forwards its RunOptions policy here.
     */
    void writeFile(const std::string &path,
                   unsigned max_attempts = 3,
                   double backoff_ms_base = 1.0) const;

    const std::map<std::string, std::map<std::string, std::string>> &
    sections() const { return sections_; }

  private:
    void set(const std::string &key, const std::string &value);
    std::string currentSection() const;

    std::vector<std::string> sectionStack_;
    std::map<std::string, std::map<std::string, std::string>> sections_;
};

/** Strings are stored verbatim, not via operator<<. */
template <>
inline void
CheckpointOut::param<std::string>(const std::string &key,
                                  const std::string &value)
{
    set(key, value);
}

/** Readable checkpoint. */
class CheckpointIn
{
  public:
    /** Parse the text format produced by CheckpointOut. */
    static CheckpointIn fromText(const std::string &text);

    /**
     * Read from a file via CheckpointIo and verify the `#checksum=`
     * footer. Throws CheckpointError naming the file if it is
     * missing, unreadable, truncated (no footer), or corrupt
     * (footer mismatch).
     */
    static CheckpointIn readFile(const std::string &path);

    /**
     * Section navigation mirrors CheckpointOut. The stack is mutable
     * so restore code can walk a const checkpoint.
     */
    void pushSection(const std::string &name) const;
    void popSection() const;

    /**
     * Fetch one value; throws CheckpointError naming the section and
     * key if absent (corrupt or truncated checkpoint).
     */
    template <typename T>
    void
    param(const std::string &key, T &value) const
    {
        if constexpr (std::is_floating_point_v<T>) {
            value = static_cast<T>(detail::decodeDouble(get(key)));
        } else {
            std::istringstream is(get(key));
            is >> value;
        }
    }

    /** Fetch a vector stored by paramVector. */
    template <typename T>
    void
    paramVector(const std::string &key, std::vector<T> &values) const
    {
        values.clear();
        std::istringstream is(get(key));
        if constexpr (std::is_floating_point_v<T>) {
            std::string tok;
            while (is >> tok)
                values.push_back(
                    static_cast<T>(detail::decodeDouble(tok)));
        } else {
            T v;
            while (is >> v)
                values.push_back(v);
        }
    }

    /** True if the current section has @p key. */
    bool has(const std::string &key) const;

    /** True if @p name is a (sub)section of the current section. */
    bool hasSection(const std::string &name) const;

    /** All fully qualified section names in the checkpoint. */
    std::vector<std::string> sectionNames() const;

  private:
    std::string get(const std::string &key) const;
    std::string currentSection() const;

    mutable std::vector<std::string> sectionStack_;
    std::map<std::string, std::map<std::string, std::string>> sections_;
};

/** Strings come back verbatim (operator>> would stop at whitespace). */
template <>
inline void
CheckpointIn::param<std::string>(const std::string &key,
                                 std::string &value) const
{
    value = get(key);
}

/** Interface for checkpointable objects. */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Save state into the current checkpoint section. */
    virtual void serialize(CheckpointOut &cp) const = 0;

    /** Restore state from the current checkpoint section. */
    virtual void unserialize(const CheckpointIn &cp) = 0;
};

} // namespace g5p::sim

#endif // G5P_SIM_SERIALIZE_HH
