#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "sim/sim_object.hh"
#include "trace/recorder.hh"

namespace g5p::sim
{

const char *
exitCauseName(ExitCause cause)
{
    switch (cause) {
      case ExitCause::Finished:        return "finished";
      case ExitCause::TickLimit:       return "tick limit reached";
      case ExitCause::EventQueueEmpty: return "event queue empty";
      case ExitCause::User:            return "user exit";
      case ExitCause::Deadlock:        return "deadlock detected";
      case ExitCause::Livelock:        return "livelock detected";
      case ExitCause::WatchdogTimeout: return "watchdog timeout";
    }
    return "unknown";
}

bool
isSupervisedExit(ExitCause cause)
{
    return cause == ExitCause::Deadlock ||
           cause == ExitCause::Livelock ||
           cause == ExitCause::WatchdogTimeout;
}

/** Internal event that makes run() return at a chosen tick. */
class Simulator::ExitEvent : public Event
{
  public:
    ExitEvent(Simulator &sim, std::string message, ExitCause cause,
              std::string tag)
        : Event(SimExitPri), sim_(sim), message_(std::move(message)),
          cause_(cause), tag_(std::move(tag))
    {
        setKind(registeredEventKind<ExitEvent>("Simulator::ExitEvent"));
        sim_.eventq_.registerSerial(tag_, this);
    }

    ~ExitEvent() override { sim_.eventq_.unregisterSerial(tag_); }

    /** Devirtualized body (dispatch-table target). */
    void
    invoke()
    {
        sim_.exitRequested_ = true;
        sim_.exitCause_ = cause_;
        sim_.exitMessage_ = message_;
    }

    void process() override { invoke(); }

    std::string name() const override { return "exit-event"; }

    const std::string &tag() const { return tag_; }
    const std::string &message() const { return message_; }
    ExitCause cause() const { return cause_; }

  private:
    Simulator &sim_;
    std::string message_;
    ExitCause cause_;
    /** Checkpoint tag (see EventQueue::registerSerial). */
    std::string tag_;
};

namespace
{
/** See setTransientResourceProbe: written from a static initializer
 *  in the pool's TU, so it must be constant-initialized itself. */
constinit TransientResourceProbe transientProbe = nullptr;
} // namespace

void
setTransientResourceProbe(TransientResourceProbe probe)
{
    transientProbe = probe;
}

void
Simulator::assertTransientsDrained(const char *when) const
{
    if (!transientProbe)
        return;
    std::uint64_t outstanding = transientProbe();
    g5p_assert(outstanding == transientGuard_.baseline,
               "%s: %llu transient packet(s) leaked at %s "
               "(tick %llu, baseline %llu) — some object dropped a "
               "packet without deleting it or parking it on an "
               "owning event",
               groupName().c_str(),
               (unsigned long long)outstanding, when,
               (unsigned long long)eventq_.curTick(),
               (unsigned long long)transientGuard_.baseline);
}

Simulator::TransientDrainGuard::TransientDrainGuard()
    : baseline(transientProbe ? transientProbe() : 0)
{
}

Simulator::TransientDrainGuard::~TransientDrainGuard()
{
    if (!transientProbe)
        return;
    std::uint64_t outstanding = transientProbe();
    g5p_assert(outstanding == baseline,
               "simulator teardown: %llu transient packet(s) still "
               "outstanding after the event queue cleared (baseline "
               "%llu) — leaked out of the packet pool",
               (unsigned long long)outstanding,
               (unsigned long long)baseline);
}

Simulator::Simulator(const std::string &name)
    : stats::Group(nullptr, name), eventq_(name + ".eventq"),
      autoCkptEvent_(this, "sim.autockpt", Event::StatDumpPri)
{
    // Objects built under this simulator get addresses from its own
    // data space, so identical configurations lay out identically
    // regardless of what ran earlier in the process.
    trace::DataSpace::setCurrent(&dataSpace_);
    eventq_.registerSerial("sim.autockpt", &autoCkptEvent_);
}

Simulator::~Simulator()
{
    // Exit events may still be scheduled; deschedule them before their
    // unique_ptrs die so Event's "not scheduled" invariant holds.
    for (auto &ev : pendingExits_)
        if (ev->scheduled())
            eventq_.deschedule(*ev);
    if (autoCkptEvent_.scheduled())
        eventq_.deschedule(autoCkptEvent_);
}

void
Simulator::registerObject(SimObject *obj)
{
    obj->id_ = nextObjectId_++;
    objects_.push_back(obj);
    if (profiler_)
        profiler_->registerOwner(obj->name(), obj->id_);
}

void
Simulator::unregisterObject(SimObject *obj)
{
    objects_.erase(std::remove(objects_.begin(), objects_.end(), obj),
                   objects_.end());
}

void
Simulator::initPhase()
{
    // Phases match gem5: init, regStats, startup, in registration
    // order. Incremental: objects constructed after a previous pass
    // (the CPU-model switch builds cores mid-simulation) get the same
    // three phases, batched so every new object's init precedes any
    // new object's regStats, exactly as at cold start.
    std::vector<SimObject *> fresh;
    for (auto *obj : objects_)
        if (!obj->phased_)
            fresh.push_back(obj);
    for (auto *obj : fresh)
        obj->init();
    for (auto *obj : fresh)
        obj->regStats();
    for (auto *obj : fresh) {
        obj->startup();
        obj->phased_ = true;
    }
}

void
Simulator::applyWatchdog(const WatchdogConfig &config, bool enabled)
{
    watchdog_ = config;
    watchdogEnabled_ = enabled;
    flight_.clear();
    flightNext_ = 0;
}

void
Simulator::applyAutoCheckpoint(Tick period, std::string prefix)
{
    autoCkptPeriod_ = period;
    autoCkptPrefix_ = std::move(prefix);
    autoCkptPending_ = false;
    if (period == 0) {
        if (autoCkptEvent_.scheduled())
            eventq_.deschedule(autoCkptEvent_);
        return;
    }
    eventq_.reschedule(autoCkptEvent_, eventq_.curTick() + period);
}

void
Simulator::installProfiler(Profiler *profiler, bool owned)
{
    if (!owned && ownedProfiler_ && ownedProfiler_->armed())
        ownedProfiler_->disarm();
    profiler_ = profiler;
    eventq_.setProfiler(profiler);
    if (profiler) {
        for (const auto *obj : objects_)
            profiler->registerOwner(obj->name(), obj->id());
    }
}

void
Simulator::applyProfiler(const ProfilerConfig &config)
{
    if (!config.enabled) {
        if (profiler_ && profiler_ == ownedProfiler_.get())
            ownedProfiler_->disarm();
        profiler_ = nullptr;
        eventq_.setProfiler(nullptr);
        return;
    }
    if (!ownedProfiler_)
        ownedProfiler_ = std::make_unique<Profiler>();
    else if (ownedProfiler_->armed())
        ownedProfiler_->disarm();
    ownedProfiler_->configure(config);
    installProfiler(ownedProfiler_.get(), true);
    ownedProfiler_->arm();
}

void
Simulator::configure(const RunOptions &options)
{
    runOptions_ = options;
    applyWatchdog(options.watchdog, options.supervise);
    applyAutoCheckpoint(options.autoCheckpointPeriod,
                        options.autoCheckpointPrefix);
    applyProfiler(options.profiler);
    eventq_.setForceVirtualDispatch(options.forceVirtualDispatch);
}

void
Simulator::attachProfiler(Profiler &profiler)
{
    installProfiler(&profiler, false);
    if (!profiler.armed())
        profiler.arm();
}

void
Simulator::recordFlight(Tick when, std::int16_t priority,
                        std::string name)
{
    if (flight_.size() < watchdog_.flightRecorderDepth) {
        flight_.push_back({when, priority, std::move(name)});
        flightNext_ = flight_.size() % watchdog_.flightRecorderDepth;
    } else {
        flight_[flightNext_] = {when, priority, std::move(name)};
        flightNext_ = (flightNext_ + 1) % flight_.size();
    }
}

std::vector<FlightRecord>
Simulator::flightRecords() const
{
    // Unroll the ring: oldest entry first.
    std::vector<FlightRecord> out;
    out.reserve(flight_.size());
    for (std::size_t i = 0; i < flight_.size(); ++i)
        out.push_back(flight_[(flightNext_ + i) % flight_.size()]);
    return out;
}

std::string
Simulator::diagnosticDump() const
{
    std::ostringstream os;
    os << "=== " << groupName() << " diagnostic @ tick "
       << eventq_.curTick() << " (" << eventsServiced_
       << " events serviced) ===\n";
    eventq_.dumpPending(os);
    if (diagProbe_)
        os << diagProbe_();
    if (!flight_.empty()) {
        os << "last " << flight_.size()
           << " serviced events (oldest first):\n";
        for (const FlightRecord &r : flightRecords())
            os << "  @" << r.tick << " prio " << r.priority << " '"
               << r.name << "'\n";
    }
    return os.str();
}

SimResult
Simulator::supervisedExit(ExitCause cause, std::string message)
{
    std::string diag = diagnosticDump();
    g5p_warn("%s at tick %llu: %s", exitCauseName(cause),
             (unsigned long long)eventq_.curTick(), message.c_str());
    if (profiler_ && profiler_->armed()) {
        // Flight-recorder dump into the trace: the last events the
        // loop serviced ride along with the error instant.
        std::vector<std::string> recent;
        for (const FlightRecord &r : flightRecords())
            recent.push_back("@" + std::to_string(r.tick) + " '" +
                             r.name + "'");
        profiler_->noteError(
            std::string(exitCauseName(cause)) + ": " + message,
            recent);
    }
    return {cause, eventq_.curTick(), std::move(message),
            std::move(diag)};
}

namespace
{

/** RAII profiler span; no-op when @p profiler is null/disarmed. */
class SpanGuard
{
  public:
    SpanGuard(Profiler *profiler, const char *name)
        : profiler_(profiler)
    {
        if (profiler_)
            profiler_->beginSpan(name);
    }

    ~SpanGuard()
    {
        if (profiler_)
            profiler_->endSpan();
    }

  private:
    Profiler *profiler_;
};

} // namespace

SimResult
Simulator::run(Tick tick_limit)
{
    G5P_TRACE_SCOPE("Simulator::run", EventLoop, false);
    SpanGuard runSpan(profiler_, "run");
    initPhase();
    exitRequested_ = false;

    // Watchdog bookkeeping is per-run(): a fresh call gets a fresh
    // wall clock and budget even when continuing a simulation.
    const bool wd = watchdogEnabled_;

    // Batching handlers must honor this run's tick limit, and both
    // the watchdog and the self-profiler need the classic one-event-
    // per-unit granularity to attribute and count correctly.
    eventq_.setServiceHorizon(tick_limit);
    eventq_.setBatchingAllowed(!wd && !profiler_);
    std::uint64_t runEvents = 0;
    std::uint64_t sameTickEvents = 0;
    Tick lastTick = eventq_.curTick();
    const auto wallStart = std::chrono::steady_clock::now();

    while (!exitRequested_) {
        Tick next = eventq_.nextTick();
        if (next == maxTick) {
            if (activityProbe_ && activityProbe_())
                return supervisedExit(
                    ExitCause::Deadlock,
                    "event queue empty while the machine still "
                    "expects progress");
            return {ExitCause::EventQueueEmpty, eventq_.curTick(), ""};
        }
        if (next > tick_limit) {
            // Advance to the limit, but never rewind (a checkpoint
            // restore may have set curTick past a small limit).
            if (tick_limit > eventq_.curTick())
                eventq_.setCurTick(tick_limit);
            return {ExitCause::TickLimit, eventq_.curTick(), ""};
        }
        if (wd && watchdog_.flightRecorderDepth > 0) {
            const Event *top = eventq_.peekTop();
            recordFlight(next, top->priority(), top->name());
        }
        eventq_.serviceOne();
        ++eventsServiced_;
        if (wd) {
            ++runEvents;
            if (eventq_.curTick() != lastTick) {
                lastTick = eventq_.curTick();
                sameTickEvents = 0;
            } else if (watchdog_.livelockEvents &&
                       ++sameTickEvents >= watchdog_.livelockEvents) {
                return supervisedExit(
                    ExitCause::Livelock,
                    g5p::detail::vformat(
                        "curTick %llu unchanged across %llu "
                        "consecutively serviced events",
                        (unsigned long long)lastTick,
                        (unsigned long long)sameTickEvents));
            }
            if (watchdog_.maxEvents &&
                runEvents >= watchdog_.maxEvents) {
                return supervisedExit(
                    ExitCause::WatchdogTimeout,
                    g5p::detail::vformat(
                        "event budget of %llu serviced events "
                        "exhausted",
                        (unsigned long long)watchdog_.maxEvents));
            }
            // The wall clock is only sampled every 4096 events: a
            // syscall-rate check would dominate the loop.
            if (watchdog_.maxWallSeconds > 0 &&
                (runEvents & 0xfff) == 0) {
                std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - wallStart;
                if (elapsed.count() >= watchdog_.maxWallSeconds)
                    return supervisedExit(
                        ExitCause::WatchdogTimeout,
                        g5p::detail::vformat(
                            "wall-clock budget of %.3f s exhausted "
                            "after %.3f s",
                            watchdog_.maxWallSeconds,
                            elapsed.count()));
            }
        }
        if (autoCkptPending_)
            doAutoCheckpoint();
    }
    return {exitCause_, eventq_.curTick(), exitMessage_};
}

void
Simulator::exitSimLoop(const std::string &message, ExitCause cause,
                       Tick when)
{
    Tick at = std::max(when, eventq_.curTick());
    auto ev = std::make_unique<ExitEvent>(
        *this, message, cause, "exit" + std::to_string(nextExitId_++));
    eventq_.schedule(*ev, at);
    pendingExits_.push_back(std::move(ev));
}

void
Simulator::dumpStats(std::ostream &os) const
{
    stats::Group::dumpStats(os);
}

void
Simulator::resetAllStats()
{
    resetStats();
}

bool
Simulator::advanceToQuiescence(std::uint64_t max_events)
{
    initPhase();
    exitRequested_ = false;
    std::uint64_t serviced = 0;
    while (!eventq_.quiescent()) {
        // Transient events are heap-resident, so the queue cannot be
        // empty here. Servicing counts toward eventsServiced_ exactly
        // as run() would — the seek is indistinguishable from a
        // normal run continuing.
        eventq_.serviceOne();
        ++eventsServiced_;
        if (exitRequested_)
            return false;
        if (++serviced >= max_events)
            g5p_throw(InvariantError, groupName(), eventq_.curTick(),
                      "no quiescent point within %llu events",
                      (unsigned long long)max_events);
    }
    // Quiescent means no memory transaction is in flight anywhere, so
    // every pooled packet must be back home.
    assertTransientsDrained("quiescence");
    return true;
}

bool
Simulator::checkpoint(const std::string &path)
{
    SpanGuard span(profiler_, "checkpoint");
    if (!advanceToQuiescence()) {
        // Not a failure: the workload simply finished during the
        // quiescence seek. The caller sees the exit on its next
        // run()/result inspection; nothing was written.
        g5p_warn("checkpoint '%s' skipped: simulation exited before "
                 "reaching a quiescent point", path.c_str());
        return false;
    }
    CheckpointOut cp;
    takeCheckpoint(cp);
    cp.writeFile(path, runOptions_.checkpointRetry.maxAttempts,
                 runOptions_.checkpointRetry.backoffBaseMs);
    return true;
}

void
Simulator::restore(const std::string &path)
{
    SpanGuard span(profiler_, "restore");
    CheckpointIn cp = CheckpointIn::readFile(path);
    restoreCheckpoint(cp);
}

void
Simulator::doAutoCheckpoint()
{
    SpanGuard span(profiler_, "auto-checkpoint");
    autoCkptPending_ = false;
    if (autoCkptPeriod_ == 0) {
        // A restored checkpoint can carry a scheduled auto-checkpoint
        // event into a simulator that never enabled the feature.
        g5p_warn("auto-checkpoint event fired but auto-checkpointing "
                 "is not configured; ignoring");
        return;
    }
    if (exitRequested_)
        return; // the loop is about to return; nothing to resume
    if (!advanceToQuiescence()) {
        g5p_warn("auto-checkpoint skipped: simulation exited before "
                 "reaching a quiescent point");
        return;
    }
    std::string path = autoCkptPrefix_ + "-" +
                       std::to_string(eventq_.curTick()) + ".ckpt";
    try {
        CheckpointOut cp;
        takeCheckpoint(cp);
        cp.writeFile(path, runOptions_.checkpointRetry.maxAttempts,
                     runOptions_.checkpointRetry.backoffBaseMs);
        g5p_inform("auto-checkpoint written to '%s'", path.c_str());
    } catch (const CheckpointError &e) {
        // Degrade gracefully: a failed periodic checkpoint must not
        // kill a healthy simulation. Keep running; the next period
        // retries (and the last good checkpoint stays valid thanks
        // to the atomic tmp+rename write).
        g5p_warn("auto-checkpoint to '%s' failed (%s); continuing "
                 "without it", path.c_str(), e.summary().c_str());
    }
    eventq_.schedule(autoCkptEvent_,
                     eventq_.curTick() + autoCkptPeriod_);
}

namespace
{

/** Snapshot visitor: each non-derived stat becomes one paramVector
 *  keyed by its group-relative dotted name. */
class StatSnapshotVisitor : public stats::Visitor
{
  public:
    explicit StatSnapshotVisitor(CheckpointOut &cp) : cp_(cp) {}

    void
    stat(stats::Info &stat, const std::string &dotted) override
    {
        std::vector<double> vals = stat.snapshotValues();
        if (!vals.empty())
            cp_.paramVector(dotted, vals);
    }

  private:
    CheckpointOut &cp_;
};

/** Restore visitor: stats missing from the checkpoint keep their
 *  freshly built values. */
class StatRestoreVisitor : public stats::Visitor
{
  public:
    explicit StatRestoreVisitor(const CheckpointIn &cp) : cp_(cp) {}

    void
    stat(stats::Info &stat, const std::string &dotted) override
    {
        if (!cp_.has(dotted))
            return;
        std::vector<double> vals;
        cp_.paramVector(dotted, vals);
        stat.restoreValues(vals);
    }

  private:
    const CheckpointIn &cp_;
};

} // namespace

/** Write the non-derived stats of @p group as a "stats" subsection. */
void
serializeGroupStats(const stats::Group &group, CheckpointOut &cp)
{
    cp.pushSection("stats");
    StatSnapshotVisitor snapshot(cp);
    // Relative root: keys stay group-local ("hits", not
    // "system.cpu0.hits") exactly as the pre-visitor format wrote
    // them, keeping checkpoints compatible.
    group.visit(snapshot, "");
    cp.popSection();
}

/** Inverse of serializeGroupStats; missing stats keep fresh values. */
void
unserializeGroupStats(stats::Group &group, const CheckpointIn &cp)
{
    if (!cp.hasSection("stats"))
        return;
    cp.pushSection("stats");
    StatRestoreVisitor restore(cp);
    group.visit(restore, "");
    cp.popSection();
}

void
Simulator::takeCheckpoint(CheckpointOut &cp) const
{
    g5p_assert(eventq_.quiescent(),
               "takeCheckpoint requires a quiescent event queue "
               "(use Simulator::checkpoint)");
    assertTransientsDrained("takeCheckpoint");
    cp.pushSection(groupName());

    cp.pushSection("meta");
    cp.param("version", checkpointVersion);
    cp.param("curTick", eventq_.curTick());
    cp.param("eventsServiced", eventsServiced_);
    cp.param("nextExitId", nextExitId_);
    cp.popSection();

    // Pending exit requests: the payload lives here, the scheduled
    // tick (keyed by tag) in the eventq section.
    cp.pushSection("exits");
    std::size_t live = 0;
    for (const auto &ev : pendingExits_) {
        if (!ev->scheduled())
            continue;
        std::string key = "exit" + std::to_string(live++);
        cp.param(key + "_tag", ev->tag());
        cp.param(key + "_msg", ev->message());
        cp.param(key + "_cause", static_cast<int>(ev->cause()));
    }
    cp.param("numExits", live);
    cp.popSection();

    for (const auto *obj : objects_) {
        cp.pushSection(obj->name());
        obj->serialize(cp);
        serializeGroupStats(*obj, cp);
        cp.popSection();
    }

    cp.pushSection("eventq");
    eventq_.serializeEvents(cp);
    cp.popSection();

    cp.popSection();
}

void
Simulator::restoreCheckpoint(const CheckpointIn &cp)
{
    // The freshly built machine must be fully initialized (regStats,
    // startup) before state is overwritten; startup-scheduled events
    // are then cleared and replaced by the checkpointed set.
    initPhase();
    eventq_.clear();
    pendingExits_.clear();

    cp.pushSection(groupName());

    Tick tick = 0;
    if (cp.hasSection("meta")) {
        cp.pushSection("meta");
        unsigned version = 0;
        cp.param("version", version);
        if (version > checkpointVersion)
            g5p_warn("checkpoint version %u is newer than supported "
                     "%u; restoring best-effort", version,
                     checkpointVersion);
        cp.param("curTick", tick);
        cp.param("eventsServiced", eventsServiced_);
        cp.param("nextExitId", nextExitId_);
        cp.popSection();
    } else {
        // Pre-versioned layout kept curTick at the top level.
        g5p_warn("checkpoint has no meta section; assuming legacy "
                 "layout");
        if (cp.has("curTick"))
            cp.param("curTick", tick);
    }
    eventq_.setCurTick(tick);

    if (cp.hasSection("exits")) {
        cp.pushSection("exits");
        std::size_t count = 0;
        cp.param("numExits", count);
        for (std::size_t i = 0; i < count; ++i) {
            std::string key = "exit" + std::to_string(i);
            std::string tag, msg;
            int cause = 0;
            cp.param(key + "_tag", tag);
            cp.param(key + "_msg", msg);
            cp.param(key + "_cause", cause);
            // Recreate (and re-register) the event; the eventq
            // section below schedules it at the recorded tick.
            pendingExits_.push_back(std::make_unique<ExitEvent>(
                *this, msg, static_cast<ExitCause>(cause), tag));
        }
        cp.popSection();
    }

    for (auto *obj : objects_) {
        if (!cp.hasSection(obj->name())) {
            g5p_warn("checkpoint has no section for '%s'; keeping "
                     "freshly built state", obj->name().c_str());
            continue;
        }
        cp.pushSection(obj->name());
        obj->unserialize(cp);
        unserializeGroupStats(*obj, cp);
        cp.popSection();
    }

    if (cp.hasSection("eventq")) {
        cp.pushSection("eventq");
        eventq_.unserializeEvents(cp);
        cp.popSection();
    }

    cp.popSection();

    // Graceful degradation: report checkpoint content this machine
    // did not consume (e.g. an object that no longer exists).
    const std::string prefix = groupName() + ".";
    for (const std::string &section : cp.sectionNames()) {
        if (section.compare(0, prefix.size(), prefix) != 0)
            continue;
        std::string rest = section.substr(prefix.size());
        auto matches = [&rest](const std::string &known) {
            return rest == known ||
                   (rest.size() > known.size() &&
                    rest.compare(0, known.size(), known) == 0 &&
                    rest[known.size()] == '.');
        };
        bool known = matches("meta") || matches("exits") ||
                     matches("eventq");
        for (const auto *obj : objects_) {
            if (known)
                break;
            known = matches(obj->name());
        }
        if (!known)
            g5p_warn("unknown checkpoint section '%s' ignored",
                     section.c_str());
    }

    restored_ = true;
}

} // namespace g5p::sim
