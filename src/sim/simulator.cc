#include "sim/simulator.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/sim_object.hh"
#include "trace/recorder.hh"

namespace g5p::sim
{

const char *
exitCauseName(ExitCause cause)
{
    switch (cause) {
      case ExitCause::Finished:        return "finished";
      case ExitCause::TickLimit:       return "tick limit reached";
      case ExitCause::EventQueueEmpty: return "event queue empty";
      case ExitCause::User:            return "user exit";
    }
    return "unknown";
}

/** Internal event that makes run() return at a chosen tick. */
class Simulator::ExitEvent : public Event
{
  public:
    ExitEvent(Simulator &sim, std::string message, ExitCause cause)
        : Event(SimExitPri), sim_(sim), message_(std::move(message)),
          cause_(cause)
    {}

    void
    process() override
    {
        sim_.exitRequested_ = true;
        sim_.exitCause_ = cause_;
        sim_.exitMessage_ = message_;
    }

    std::string name() const override { return "exit-event"; }

  private:
    Simulator &sim_;
    std::string message_;
    ExitCause cause_;
};

Simulator::Simulator(const std::string &name)
    : stats::Group(nullptr, name), eventq_(name + ".eventq")
{
    // Objects built under this simulator get addresses from its own
    // data space, so identical configurations lay out identically
    // regardless of what ran earlier in the process.
    trace::DataSpace::setCurrent(&dataSpace_);
}

Simulator::~Simulator()
{
    // Exit events may still be scheduled; deschedule them before their
    // unique_ptrs die so Event's "not scheduled" invariant holds.
    for (auto &ev : pendingExits_)
        if (ev->scheduled())
            eventq_.deschedule(ev.get());
}

void
Simulator::registerObject(SimObject *obj)
{
    objects_.push_back(obj);
}

void
Simulator::unregisterObject(SimObject *obj)
{
    objects_.erase(std::remove(objects_.begin(), objects_.end(), obj),
                   objects_.end());
}

void
Simulator::initPhase()
{
    if (initDone_)
        return;
    // Phases match gem5: init, regStats, startup, in registration
    // order. Objects constructed later are picked up on the next
    // run() call because initPhase only runs once; mg5 configurations
    // construct everything before the first run.
    for (auto *obj : objects_)
        obj->init();
    for (auto *obj : objects_)
        obj->regStats();
    for (auto *obj : objects_)
        obj->startup();
    initDone_ = true;
}

SimResult
Simulator::run(Tick tick_limit)
{
    G5P_TRACE_SCOPE("Simulator::run", EventLoop, false);
    initPhase();
    exitRequested_ = false;

    while (!exitRequested_) {
        Tick next = eventq_.nextTick();
        if (next == maxTick)
            return {ExitCause::EventQueueEmpty, eventq_.curTick(), ""};
        if (next > tick_limit) {
            // Advance to the limit, but never rewind (a checkpoint
            // restore may have set curTick past a small limit).
            if (tick_limit > eventq_.curTick())
                eventq_.setCurTick(tick_limit);
            return {ExitCause::TickLimit, eventq_.curTick(), ""};
        }
        eventq_.serviceOne();
        ++eventsServiced_;
    }
    return {exitCause_, eventq_.curTick(), exitMessage_};
}

void
Simulator::exitSimLoop(const std::string &message, ExitCause cause,
                       Tick when)
{
    Tick at = std::max(when, eventq_.curTick());
    auto ev = std::make_unique<ExitEvent>(*this, message, cause);
    eventq_.schedule(ev.get(), at);
    pendingExits_.push_back(std::move(ev));
}

void
Simulator::dumpStats(std::ostream &os) const
{
    stats::Group::dumpStats(os);
}

void
Simulator::resetAllStats()
{
    resetStats();
}

void
Simulator::takeCheckpoint(CheckpointOut &cp) const
{
    cp.pushSection(groupName());
    cp.param("curTick", eventq_.curTick());
    for (const auto *obj : objects_) {
        cp.pushSection(obj->name());
        obj->serialize(cp);
        cp.popSection();
    }
    cp.popSection();
}

void
Simulator::restoreCheckpoint(const CheckpointIn &in)
{
    auto &cp = const_cast<CheckpointIn &>(in);
    cp.pushSection(groupName());
    Tick tick = 0;
    cp.param("curTick", tick);
    eventq_.setCurTick(tick);
    for (auto *obj : objects_) {
        cp.pushSection(obj->name());
        obj->unserialize(cp);
        cp.popSection();
    }
    cp.popSection();
}

} // namespace g5p::sim
