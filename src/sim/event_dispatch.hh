/**
 * @file
 * Type-indexed event dispatch: the registration surface behind mg5's
 * devirtualized service loop.
 *
 * The papers on gem5's host behaviour agree on where the service
 * loop's front-end stalls come from: every serviced event is an
 * indirect call through `Event::process()`, megamorphic at the one
 * call site that matters, so the BTB mispredicts and the i-fetch
 * stream restarts at simulation-event rate. mg5 removes that indirect
 * call structurally. Event classes register a non-virtual handler
 * once and receive a small `EventKind` id; every `Event` carries its
 * kind in a byte of tail padding; `EventQueue::serviceTop` indexes a
 * flat table of plain function pointers instead of loading a vtable.
 * The table lives in one cache line's worth of slots for the kinds a
 * simulation actually uses, and the handler thunks are `G5P_HOT`, so
 * dispatch target and dispatched code stay in the hot text region.
 *
 * Fallback contract: kind 0 (`fallbackKind`) means "use the virtual
 * path". Out-of-tree Event subclasses that never call setKind()
 * service exactly as before through `process()`; they also disable
 * handler batching while pending (see EventQueue::batchingAllowed),
 * because the batching contract was audited only for in-tree
 * handlers. In-tree wrappers register via `registeredEventKind<D>()`
 * below and keep their `process()` override as the forced-virtual /
 * fallback body, which is what the determinism suite runs both ways.
 *
 * Registration is process-global (`EventDispatch::global()`),
 * idempotent per handler, and bounded: 255 distinct kinds plus the
 * fallback. A same-name registration with a different handler throws
 * (kind names are identities, not labels), and overflowing the table
 * throws rather than silently degrading — both are covered by unit
 * tests against a private EventDispatch instance.
 */

#ifndef G5P_SIM_EVENT_DISPATCH_HH
#define G5P_SIM_EVENT_DISPATCH_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/compiler.hh"

namespace g5p::sim
{

class Event;

/** Small dense id naming a registered event class; 0 is reserved. */
using EventKind = std::uint8_t;

/** Kind carried by events that dispatch through virtual process(). */
inline constexpr EventKind fallbackKind = 0;

/** Non-virtual service handler: the devirtualized process(). */
using EventHandler = void (*)(Event &);

/**
 * The kind table. One process-global instance serves every queue
 * (`global()`); tests build private instances to probe the collision
 * and overflow contracts without poisoning the global table.
 */
class EventDispatch
{
  public:
    /** Table capacity, including the reserved fallback slot. */
    static constexpr std::size_t maxKinds = 256;

    EventDispatch();

    EventDispatch(const EventDispatch &) = delete;
    EventDispatch &operator=(const EventDispatch &) = delete;

    /** The process-wide table every EventQueue dispatches through. */
    static EventDispatch &global();

    /**
     * Register @p handler under @p name and return its kind.
     * Idempotent: re-registering the same handler returns the same
     * kind regardless of name. Throws InvariantError if @p name is
     * already bound to a *different* handler (collision) or the
     * table is full (overflow).
     */
    EventKind registerKind(const std::string &name,
                           EventHandler handler);

    /** Dispatch @p event through @p kind's handler. Hot path:
     *  one relaxed table load plus a direct-indexed call. */
    G5P_HOT void
    invoke(EventKind kind, Event &event) const
    {
        table_[kind].load(std::memory_order_relaxed)(event);
    }

    /** Handler bound to @p kind (the fallback thunk for kind 0). */
    EventHandler
    handler(EventKind kind) const
    {
        return table_[kind].load(std::memory_order_relaxed);
    }

    /** Diagnostic name of @p kind ("fallback" for kind 0). */
    std::string kindName(EventKind kind) const;

    /** Registered kinds, fallback included. */
    std::size_t numKinds() const;

  private:
    /**
     * Handler slots are atomics so a table published by one thread's
     * registration is read race-free by another thread's service
     * loop (the parallel harness runs simulations concurrently).
     * Relaxed suffices: a kind id only reaches a queue through an
     * Event whose construction happens-after the registration.
     */
    std::atomic<EventHandler> table_[maxKinds];

    mutable std::mutex mutex_;
    std::vector<std::string> names_;
};

/**
 * @{ Modeled virtuality of the event-entry trace scopes.
 *
 * The hostsim pipeline model treats a scope marked virtual as an
 * indirect-call site (trace::Synthesizer emits BTB-pressure for it).
 * Historically mg5's event-entry scopes — the CPU tick handlers, the
 * FS timer — were hard-coded virtual, faithfully modeling gem5's
 * `process()` chain. With table dispatch those entries are direct
 * calls, so the flag is now per-thread state: it defaults to true
 * (the gem5-faithful "before" model, keeping every existing modeled
 * figure unchanged) and the frontend bench flips it to false for the
 * "after" Top-Down leg. Thread-local for the same reason Recorder
 * activation is: the parallel harness runs one simulation per worker.
 * Flipping it between runs in one process requires
 * trace::FuncRegistry::resetForTest() (site caches key on the
 * registry generation).
 */
bool modeledDispatchVirtual();
void setModeledDispatchVirtual(bool v);
/** @} */

/**
 * Register (once per process) the non-virtual dispatch thunk for
 * event class @p D and return its kind. D must expose `invoke()`,
 * the devirtualized body of its process(). The thunk downcasts and
 * calls it directly — after inlining, servicing a kind-tagged event
 * is one predictable indirect through the flat table instead of a
 * megamorphic vtable load.
 *
 * The function-local static makes registration lazy, thread-safe,
 * and free after first use (one guard check, no lock).
 */
template <typename D>
G5P_HOT EventKind
registeredEventKind(const char *name)
{
    static const EventKind kind = EventDispatch::global().registerKind(
        name, [](Event &event) {
            static_cast<D &>(event).invoke();
        });
    return kind;
}

} // namespace g5p::sim

#endif // G5P_SIM_EVENT_DISPATCH_HH
