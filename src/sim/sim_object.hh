/**
 * @file
 * SimObject: the base class of every simulated component in mg5.
 *
 * Like gem5's SimObject it combines a name, an event-scheduling
 * capability, a statistics group, and checkpoint support. SimObjects
 * also register a synthetic host-side data footprint with the trace
 * DataSpace so the host d-cache model sees accesses to their state.
 */

#ifndef G5P_SIM_SIM_OBJECT_HH
#define G5P_SIM_SIM_OBJECT_HH

#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"
#include "trace/recorder.hh"

namespace g5p::sim
{

class Simulator;

/**
 * Base class for all simulated hardware/software components.
 *
 * Lifecycle (driven by Simulator): construct -> init() on all objects
 * -> regStats() on all objects -> startup() on all objects -> event
 * loop. Matches gem5's phases.
 */
class SimObject : public EventManager, public stats::Group,
                  public Serializable
{
  public:
    /**
     * @param sim owning simulator (provides the event queue and the
     *            registration list)
     * @param name instance name, e.g. "cpu0"
     * @param parent stats parent; defaults to the simulator root
     * @param state_bytes approximate host footprint of this object's
     *            mutable state, for the d-side trace model. Zero means
     *            "use a small default".
     */
    SimObject(Simulator &sim, const std::string &name,
              stats::Group *parent = nullptr,
              std::size_t state_bytes = 0);

    ~SimObject() override;

    /** Instance name. */
    const std::string &name() const { return name_; }

    /**
     * Stable per-simulator numeric id, assigned in registration
     * (construction) order starting at 1; 0 is the simulator root.
     * Identical configurations get identical ids, so telemetry can
     * key trace tracks on them across runs.
     */
    std::uint32_t id() const { return id_; }

    /** Fully qualified hierarchical name ("system.cpu0"). */
    std::string fullName() const;

    /** Phase 1: resolve inter-object references. */
    virtual void init() {}

    /** Phase 3: schedule initial events. */
    virtual void startup() {}

    /** Checkpoint hooks default to empty for stateless objects. */
    void serialize(CheckpointOut &cp) const override {}
    void unserialize(const CheckpointIn &cp) override {}

    /** Owning simulator. */
    Simulator &simulator() const { return sim_; }

    /**
     * Record a host-side access to this object's own state. Size is
     * clamped to the registered footprint. Offsets let distinct fields
     * land on distinct host cache lines.
     */
    void
    touchState(std::size_t offset, std::uint32_t size,
               bool is_write) const
    {
        trace::recordData(stateBase_ + offset % stateBytes_, size,
                          is_write);
    }

    /** Base host address of this object's state region. */
    HostAddr stateBase() const { return stateBase_; }

    /** Size of the state region in bytes. */
    std::size_t stateBytes() const { return stateBytes_; }

  private:
    friend class Simulator;

    Simulator &sim_;
    std::string name_;
    /** Assigned by Simulator::registerObject. */
    std::uint32_t id_ = 0;
    /** True once Simulator::initPhase has run this object's
     *  init/regStats/startup phases (objects constructed after the
     *  first run — a CPU-model switch — get them on the next pass). */
    bool phased_ = false;
    HostAddr stateBase_;
    std::size_t stateBytes_;
};

} // namespace g5p::sim

#endif // G5P_SIM_SIM_OBJECT_HH
