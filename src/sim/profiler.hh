/**
 * @file
 * Self-profiler: attributes host wall-clock to the events the
 * simulator services, per event type and owning SimObject.
 *
 * The paper's whole method is treating the simulator as the profiled
 * application (§IV); this module closes the loop by letting mg5
 * profile *itself*. The event loop calls beginService/endService
 * around every Event::process(); the profiler buckets host time by
 * event class (the "owner.type" convention of event names), samples
 * queue depth, events/sec and the sim-tick/wall-clock slowdown
 * factor, and keeps bounded slice/span/instant records that
 * core/telemetry turns into a Chrome trace_event JSON.
 *
 * Overhead contract (enforced by bench/abl_profiler):
 *  - not attached: one null-pointer test per serviced event;
 *  - attached but disarmed: plus one bool test (<= 2% on the eventq
 *    microbench);
 *  - armed, batch mode: the steady_clock is read once per
 *    batchEvents events, the batch delta is spread evenly over the
 *    batch — counts stay exact, per-class time is approximate;
 *  - armed, trace mode (traceSlices): two clock reads per event plus
 *    one bounded slice record — the accurate-but-heavier setting
 *    behind --profile.
 */

#ifndef G5P_SIM_PROFILER_HH
#define G5P_SIM_PROFILER_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace g5p::sim
{

class Event;

/** Knobs for the self-profiler; part of RunOptions. */
struct ProfilerConfig
{
    /** Master switch: RunOptions-driven paths create and arm a
     *  profiler only when set. */
    bool enabled = false;

    /** Events per steady_clock read in batch mode (>= 1). */
    std::uint32_t batchEvents = 64;

    /** Record a wall-clock slice per serviced event (two clock reads
     *  per event) so the Chrome trace shows individual events. Implied
     *  by a non-empty tracePath. */
    bool traceSlices = false;

    /** Where the caller intends to write the Chrome trace ("" = no
     *  trace). The profiler only collects; core/telemetry writes. */
    std::string tracePath;

    /** Bound on retained slices; once full, further slices are
     *  counted as dropped rather than recorded. */
    std::size_t maxTraceSlices = 200'000;

    /** JSONL live metrics stream ("" = off). One line roughly every
     *  metricsEveryEvents serviced events, flushed immediately so a
     *  long campaign can be watched with tail -f. */
    std::string metricsPath;
    std::uint64_t metricsEveryEvents = 100'000;

    /** Bound on retained counter samples (eps/qdepth/slowdown). */
    std::size_t maxCounterSamples = 65'536;
};

/** Aggregate for one event class ("owner.type" event name). */
struct EventClassStats
{
    std::string name;   ///< full event name, e.g. "cpu0.dcache.resp"
    std::string owner;  ///< name up to the last '.', "" for global
    std::string type;   ///< name after the last '.', e.g. "resp"
    std::uint64_t count = 0;
    double wallNs = 0;  ///< attributed host time
};

/** One per-event wall-clock slice (trace mode only). */
struct ProfSlice
{
    std::uint32_t key;      ///< 1-based index into eventClasses()
    std::uint64_t startNs;  ///< since arm()
    std::uint64_t durNs;
    Tick tick;              ///< sim tick the event ran at
};

/** A labelled wall-clock span (checkpoint, restore, run, ...). */
struct ProfSpan
{
    std::string name;
    std::uint64_t startNs;
    std::uint64_t durNs;
    Tick tick;
};

/** A point annotation (errors, watchdog trips). */
struct ProfInstant
{
    std::string name;
    std::string detail; ///< free text (e.g. flight-recorder tail)
    std::uint64_t atNs;
    Tick tick;
};

/** Periodic rate sample taken at batch boundaries. */
struct ProfCounterSample
{
    std::uint64_t atNs;
    Tick tick;
    double eventsPerSec;
    double queueDepth;
    /** Host seconds per simulated second (wall / sim time). */
    double slowdown;
};

/** A SimObject the trace writer may map slices onto (tid per owner). */
struct ProfOwner
{
    std::string name;
    std::uint32_t id;
};

/**
 * The collector. One per Simulator (owned via RunOptions) or caller
 * provided (Simulator::attachProfiler); install into the event loop
 * with EventQueue::setProfiler.
 */
class Profiler
{
  public:
    explicit Profiler(ProfilerConfig config = {});
    ~Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Replace the configuration (only while disarmed). */
    void configure(const ProfilerConfig &config);
    const ProfilerConfig &config() const { return config_; }

    /** Start collecting: zero the wall-clock origin, open the metrics
     *  stream. Idempotent. */
    void arm();

    /** Stop collecting: account the partial batch, close the metrics
     *  stream. Collected data stays readable. Idempotent. */
    void disarm();

    bool armed() const { return armed_; }

    /** Tell the trace writer about a SimObject (name -> stable id),
     *  so its slices get their own thread track. */
    void registerOwner(const std::string &name, std::uint32_t id);

    /** @{ Event-loop hot path (called by EventQueue::serviceTop).
     *  Disarmed cost is the bool test. */
    void
    beginService(Event &event, Tick when, std::size_t queue_depth)
    {
        if (!armed_)
            return;
        beginServiceSlow(event, when, queue_depth);
    }

    void
    endService()
    {
        if (!armed_)
            return;
        endServiceSlow();
    }
    /** @} */

    /** @{ Wall-clock spans; nest freely (stack discipline). No-ops
     *  while disarmed. */
    void beginSpan(const std::string &name);
    void endSpan();
    /** @} */

    /** Point annotation (e.g. "livelock detected"). */
    void noteInstant(const std::string &name,
                     const std::string &detail = "");

    /** Error annotation carrying the flight-recorder tail, so the
     *  trace shows what the loop serviced just before dying. */
    void noteError(const std::string &summary,
                   const std::vector<std::string> &recentEvents);

    /** @{ Collected data (valid while armed and after disarm). */
    const std::vector<EventClassStats> &eventClasses() const
    { return classes_; }
    const std::vector<ProfSlice> &slices() const { return slices_; }
    const std::vector<ProfSpan> &spans() const { return spans_; }
    const std::vector<ProfInstant> &instants() const
    { return instants_; }
    const std::vector<ProfCounterSample> &counterSamples() const
    { return counters_; }
    const std::vector<ProfOwner> &owners() const { return owners_; }
    std::uint64_t totalEvents() const { return totalEvents_; }
    std::uint64_t droppedSlices() const { return droppedSlices_; }
    /** Wall time spent armed, in seconds. */
    double wallSeconds() const;
    /** First/last tick any serviced event ran at. */
    Tick firstTick() const { return firstTick_; }
    Tick lastTick() const { return lastTick_; }
    /** @} */

  private:
    void beginServiceSlow(Event &event, Tick when,
                          std::size_t queue_depth);
    void endServiceSlow();

    /** Close out the key batch: read the clock once, spread the delta
     *  (batch mode), take a counter sample, maybe emit metrics. */
    void drainBatch();

    /** Resolve an event name to a 1-based class key (interning). */
    std::uint32_t intern(const std::string &name);

    /** Nanoseconds since arm(). */
    std::uint64_t nowNs() const;

    void writeMetricsLine(const ProfCounterSample &sample);

    ProfilerConfig config_;
    bool armed_ = false;
    /** Distinguishes this instance's keys cached in Event::profKey_
     *  from a previous profiler's (see Event::profKey_). */
    std::uint32_t instanceTag_;

    std::uint64_t originNs_ = 0; ///< steady_clock at arm()
    std::uint64_t stoppedNs_ = 0;///< elapsed at disarm()

    std::vector<EventClassStats> classes_;
    std::unordered_map<std::string, std::uint32_t> keyByName_;
    std::vector<ProfOwner> owners_;

    /** Ring of keys serviced since the last clock read. */
    std::vector<std::uint32_t> batch_;
    std::uint32_t batchFill_ = 0;
    std::uint64_t batchT0Ns_ = 0;
    Tick batchT0Tick_ = 0;

    /** In-flight event (between begin and end). */
    std::uint32_t curKey_ = 0;
    Tick curTick_ = 0;
    std::uint64_t sliceT0Ns_ = 0;
    double lastQueueDepth_ = 0;

    std::vector<ProfSlice> slices_;
    std::uint64_t droppedSlices_ = 0;
    std::vector<ProfSpan> spans_;
    /** Open spans: index into spans_ (duration patched on end). */
    std::vector<std::size_t> spanStack_;
    std::vector<ProfInstant> instants_;
    std::vector<ProfCounterSample> counters_;

    std::uint64_t totalEvents_ = 0;
    Tick firstTick_ = 0;
    Tick lastTick_ = 0;
    bool sawEvent_ = false;

    std::unique_ptr<std::ofstream> metrics_;
    std::uint64_t lastMetricsEvents_ = 0;
};

} // namespace g5p::sim

#endif // G5P_SIM_PROFILER_HH
