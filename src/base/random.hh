/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in gem5prof flows through a seeded
 * xoshiro256** generator so that all experiments are bit-reproducible
 * across runs and platforms. `std::mt19937` is avoided because its
 * distributions are not guaranteed identical across standard libraries.
 */

#ifndef G5P_BASE_RANDOM_HH
#define G5P_BASE_RANDOM_HH

#include <cstdint>

namespace g5p
{

/**
 * xoshiro256** PRNG with splitmix64 seeding. Deterministic, fast, and
 * good enough statistical quality for workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire reduction. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Geometric-ish positive sample with the given mean (used for
     * synthetic function sizes / run lengths). Always >= 1.
     */
    std::uint64_t geometric(double mean);

    /** Deterministic 64-bit hash of a string (FNV-1a). */
    static std::uint64_t hashString(const char *s);

  private:
    std::uint64_t s_[4];

    static std::uint64_t splitmix64(std::uint64_t &x);
    static std::uint64_t rotl(std::uint64_t x, int k);
};

} // namespace g5p

#endif // G5P_BASE_RANDOM_HH
