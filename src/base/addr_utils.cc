#include "base/addr_utils.hh"

// All helpers are inline in the header: address arithmetic sits on the
// per-access hot path of every cache and TLB model, and out-of-line
// calls here showed up in whole-run profiles.
