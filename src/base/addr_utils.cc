#include "base/addr_utils.hh"

#include "base/logging.hh"

namespace g5p
{

std::uint64_t
cacheSetIndex(Addr a, unsigned line_bytes, unsigned num_sets)
{
    g5p_assert(isPowerOf2(line_bytes) && isPowerOf2(num_sets),
               "cache geometry must be power of two (%u lines, %u sets)",
               line_bytes, num_sets);
    return (a / line_bytes) & (num_sets - 1);
}

std::uint64_t
cacheTag(Addr a, unsigned line_bytes, unsigned num_sets)
{
    return (a / line_bytes) >> floorLog2(num_sets);
}

} // namespace g5p
