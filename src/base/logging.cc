#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace g5p
{

Logger::Sink Logger::sink_ = &Logger::stderrSink;

Logger::Sink
Logger::setSink(Sink sink)
{
    Sink prev = sink_;
    sink_ = sink ? sink : &Logger::stderrSink;
    return prev;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    sink_(level, msg);
}

void
Logger::stderrSink(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    switch (level) {
      case LogLevel::Panic:  prefix = "panic: "; break;
      case LogLevel::Fatal:  prefix = "fatal: "; break;
      case LogLevel::Warn:   prefix = "warn: "; break;
      case LogLevel::Inform: prefix = "info: "; break;
      case LogLevel::Debug:  prefix = "debug: "; break;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

void
Logger::quietSink(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Panic || level == LogLevel::Fatal)
        stderrSink(level, msg);
}

namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(len > 0 ? len : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    Logger::log(LogLevel::Panic,
                msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    Logger::log(LogLevel::Fatal,
                msg + " (" + file + ":" + std::to_string(line) + ")");
    std::exit(1);
}

} // namespace detail

} // namespace g5p
