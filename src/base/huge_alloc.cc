#include "base/huge_alloc.hh"

#include <cstdlib>
#include <new>

#if defined(__linux__)
#  include <sys/mman.h>
#  include <unistd.h>
#  define G5P_HAVE_MMAP 1
#else
#  define G5P_HAVE_MMAP 0
#endif

namespace g5p::base
{

bool
ThpArena::thpEnabled()
{
    static const bool enabled = [] {
#if G5P_HAVE_MMAP
        const char *kill = std::getenv("G5P_NO_THP");
        return !(kill && kill[0] == '1');
#else
        return false;
#endif
    }();
    return enabled;
}

ThpArena::Region
ThpArena::mapRegion(std::size_t bytes)
{
    // Round to whole huge pages so the aligned mapping is a clean
    // MADV_HUGEPAGE candidate end to end.
    std::size_t size = (bytes + regionBytes - 1) / regionBytes *
                       regionBytes;
    Region region;
    region.size = size;

#if G5P_HAVE_MMAP
    if (thpEnabled()) {
        // Over-map by one huge page, then trim both ends, to get a
        // 2 MiB-aligned base without MAP_ALIGNED (not portable) or
        // relying on mmap's default placement.
        std::size_t span = size + regionBytes;
        void *raw = ::mmap(nullptr, span, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (raw != MAP_FAILED) {
            auto addr = reinterpret_cast<std::uintptr_t>(raw);
            std::uintptr_t aligned =
                (addr + regionBytes - 1) & ~(std::uintptr_t)
                (regionBytes - 1);
            std::size_t head = aligned - addr;
            std::size_t tail = span - head - size;
            if (head)
                ::munmap(raw, head);
            if (tail)
                ::munmap(reinterpret_cast<void *>(aligned + size),
                         tail);
            region.base = reinterpret_cast<void *>(aligned);
            region.mapped = true;
#ifdef MADV_HUGEPAGE
            if (::madvise(region.base, size, MADV_HUGEPAGE) == 0)
                hugeAdvised_ = true;
#endif
            return region;
        }
    }
#endif

    // Graceful fallback: plain heap memory, same alignment contract.
    region.base = ::operator new(size, std::align_val_t{blockAlign});
    region.mapped = false;
    return region;
}

void *
ThpArena::allocate(std::size_t bytes)
{
    std::size_t need = (bytes + blockAlign - 1) & ~(blockAlign - 1);

    if (need > regionBytes) {
        // Oversized request: dedicated region, current cursor kept.
        Region region = mapRegion(need);
        regions_.push_back(region);
        bytesAllocated_ += need;
        return region.base;
    }

    if (need > remaining_) {
        Region region = mapRegion(regionBytes);
        regions_.push_back(region);
        cursor_ = static_cast<std::byte *>(region.base);
        remaining_ = region.size;
    }

    void *out = cursor_;
    cursor_ += need;
    remaining_ -= need;
    bytesAllocated_ += need;
    return out;
}

ThpArena::~ThpArena()
{
    for (const Region &region : regions_) {
#if G5P_HAVE_MMAP
        if (region.mapped) {
            ::munmap(region.base, region.size);
            continue;
        }
#endif
        ::operator delete(region.base,
                          std::align_val_t{blockAlign});
    }
}

} // namespace g5p::base
