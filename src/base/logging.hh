/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * `panic()` is for internal invariant violations (aborts); `fatal()` is
 * for user/configuration errors (clean exit(1)); `warn()`/`inform()`
 * report conditions without stopping the simulation.
 */

#ifndef G5P_BASE_LOGGING_HH
#define G5P_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace g5p
{

/** Severity classes understood by the logger. */
enum class LogLevel { Panic, Fatal, Warn, Inform, Debug };

/**
 * Process-wide logging sink. Tests can silence or capture output by
 * swapping the sink function.
 */
class Logger
{
  public:
    using Sink = void (*)(LogLevel, const std::string &);

    /** Replace the output sink; returns the previous sink. */
    static Sink setSink(Sink sink);

    /** Emit one message at @p level through the current sink. */
    static void log(LogLevel level, const std::string &msg);

    /** Default sink: prefix + stderr. */
    static void stderrSink(LogLevel level, const std::string &msg);

    /** Suppress everything below Fatal (useful in benchmarks). */
    static void quietSink(LogLevel level, const std::string &msg);

  private:
    static Sink sink_;
};

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace g5p

/** Internal invariant violated: print and abort. */
#define g5p_panic(...) \
    ::g5p::detail::panicImpl(__FILE__, __LINE__, \
                             ::g5p::detail::vformat(__VA_ARGS__))

/** User-level error: print and exit(1). */
#define g5p_fatal(...) \
    ::g5p::detail::fatalImpl(__FILE__, __LINE__, \
                             ::g5p::detail::vformat(__VA_ARGS__))

/** Condition that might indicate a problem but allows progress. */
#define g5p_warn(...) \
    ::g5p::Logger::log(::g5p::LogLevel::Warn, \
                       ::g5p::detail::vformat(__VA_ARGS__))

/** Status message with no error connotation. */
#define g5p_inform(...) \
    ::g5p::Logger::log(::g5p::LogLevel::Inform, \
                       ::g5p::detail::vformat(__VA_ARGS__))

/** Assert-like helper that panics with a formatted message. */
#define g5p_assert(cond, ...) \
    do { \
        if (!(cond)) \
            g5p_panic("assertion failed: %s: %s", #cond, \
                      ::g5p::detail::vformat(__VA_ARGS__).c_str()); \
    } while (0)

#endif // G5P_BASE_LOGGING_HH
