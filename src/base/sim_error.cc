#include "base/sim_error.hh"

#include <cstdlib>
#include <sstream>

namespace g5p
{

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Config:     return "ConfigError";
      case SimErrorKind::Invariant:  return "InvariantError";
      case SimErrorKind::Checkpoint: return "CheckpointError";
      case SimErrorKind::Workload:   return "WorkloadError";
    }
    return "SimError";
}

namespace
{

/** Full what() text: kind, object@tick, message, file:line. */
std::string
decorate(SimErrorKind kind, const std::string &object, Tick tick,
         const char *file, int line, const std::string &summary)
{
    std::ostringstream os;
    os << simErrorKindName(kind) << " [" << object;
    if (tick)
        os << " @ tick " << tick;
    os << "]: " << summary << " (" << file << ":" << line << ")";
    return os.str();
}

} // namespace

SimError::SimError(SimErrorKind kind, std::string object, Tick tick,
                   const char *file, int line, std::string summary)
    : std::runtime_error(
          decorate(kind, object, tick, file, line, summary)),
      kind_(kind), object_(std::move(object)), tick_(tick),
      file_(file), line_(line), summary_(std::move(summary))
{
}

int
runGuarded(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const InvariantError &e) {
        // Invariant violations keep the g5p_panic contract: loud
        // abort so a debugger/core dump captures the broken state.
        Logger::log(LogLevel::Panic, e.what());
        std::abort();
    } catch (const SimError &e) {
        Logger::log(LogLevel::Fatal, e.what());
        return 1;
    } catch (const std::exception &e) {
        Logger::log(LogLevel::Fatal, e.what());
        return 1;
    }
}

} // namespace g5p
