#include "base/str.hh"

#include <cstdio>

namespace g5p
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double frac, int digits)
{
    return fmtDouble(frac * 100.0, digits) + "%";
}

std::string
fmtBytes(std::uint64_t bytes)
{
    if (bytes >= (1ULL << 20)) {
        double mb = (double)bytes / (1ULL << 20);
        // Integral megabyte counts print without a fraction.
        if (bytes % (1ULL << 20) == 0)
            return std::to_string(bytes >> 20) + "MB";
        return fmtDouble(mb, 1) + "MB";
    }
    if (bytes >= (1ULL << 10)) {
        if (bytes % (1ULL << 10) == 0)
            return std::to_string(bytes >> 10) + "KB";
        return fmtDouble((double)bytes / (1ULL << 10), 1) + "KB";
    }
    return std::to_string(bytes) + "B";
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace g5p
