/**
 * @file
 * Address arithmetic helpers shared by guest and host memory models.
 */

#ifndef G5P_BASE_ADDR_UTILS_HH
#define G5P_BASE_ADDR_UTILS_HH

#include <bit>
#include <cstdint>

#include "base/types.hh"

namespace g5p
{

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)). */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/**
 * Extract the set index for a cache with the given geometry. Both
 * dimensions must be nonzero powers of two — every cache/TLB asserts
 * that at construction, so the per-access path is pure shift/mask
 * (one guest memory access runs several of these; a hardware divide
 * here was a top-ten profile entry).
 */
inline std::uint64_t
cacheSetIndex(Addr a, unsigned line_bytes, unsigned num_sets)
{
    return (a >> std::countr_zero(line_bytes)) & (num_sets - 1);
}

/** Extract the tag for a cache with the given geometry. */
inline std::uint64_t
cacheTag(Addr a, unsigned line_bytes, unsigned num_sets)
{
    return a >> (std::countr_zero(line_bytes) +
                 std::countr_zero(num_sets));
}

/** Page number at the given power-of-two page size. */
constexpr std::uint64_t
pageNumber(Addr a, std::uint64_t page_bytes)
{
    return a / page_bytes;
}

} // namespace g5p

#endif // G5P_BASE_ADDR_UTILS_HH
