/**
 * @file
 * Typed, recoverable simulation errors.
 *
 * The original gem5-style reporting (`g5p_panic` aborts, `g5p_fatal`
 * calls `exit(1)`) kills the whole process — acceptable for a
 * five-minute run, fatal for a multi-hour profiling campaign where the
 * driver wants to salvage partial results or recover from the last
 * checkpoint. Error paths that a supervisor can reasonably react to
 * now throw a `SimError` subclass instead:
 *
 *  - `ConfigError`     user/configuration mistakes (bad CLI flag,
 *                      malformed parameter);
 *  - `InvariantError`  internal invariants violated (the recoverable
 *                      subset of what used to be `g5p_panic`);
 *  - `CheckpointError` checkpoint I/O, format, or content problems;
 *  - `WorkloadError`   guest-workload problems (unknown name, bad
 *                      image).
 *
 * Every error carries the reporting object's name, the simulated tick,
 * and the throwing file:line, so a failed run is diagnosable from the
 * exception alone. `runGuarded()` is the top-level handler for
 * executables: it preserves the historical process contract (fatal
 * class errors exit(1), invariant violations abort) while letting
 * library code stay exception-clean.
 *
 * Truly unrecoverable states (heap corruption detected mid-sift, a
 * dangling event) still use `g5p_panic`/`g5p_assert`.
 */

#ifndef G5P_BASE_SIM_ERROR_HH
#define G5P_BASE_SIM_ERROR_HH

#include <functional>
#include <stdexcept>
#include <string>

#include "base/logging.hh"
#include "base/types.hh"

namespace g5p
{

/** Coarse classification of a SimError (see class docs above). */
enum class SimErrorKind { Config, Invariant, Checkpoint, Workload };

/** Kind name ("ConfigError", ...). */
const char *simErrorKindName(SimErrorKind kind);

/**
 * Base of the typed error hierarchy. what() contains the full
 * decorated message; the accessors expose the parts.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, std::string object, Tick tick,
             const char *file, int line, std::string summary);

    SimErrorKind kind() const { return kind_; }

    /** Name of the SimObject/component that raised the error. */
    const std::string &object() const { return object_; }

    /** Simulated tick at the throw site (0 if outside a run). */
    Tick tick() const { return tick_; }

    /** Throwing source file (static string from __FILE__). */
    const char *file() const { return file_; }

    /** Throwing source line. */
    int line() const { return line_; }

    /** The undecorated message. */
    const std::string &summary() const { return summary_; }

  private:
    SimErrorKind kind_;
    std::string object_;
    Tick tick_;
    const char *file_;
    int line_;
    std::string summary_;
};

/** User/configuration error (what used to be a plain g5p_fatal). */
class ConfigError : public SimError
{
  public:
    ConfigError(std::string object, Tick tick, const char *file,
                int line, std::string summary)
        : SimError(SimErrorKind::Config, std::move(object), tick, file,
                   line, std::move(summary))
    {}
};

/** Recoverable internal invariant violation. */
class InvariantError : public SimError
{
  public:
    InvariantError(std::string object, Tick tick, const char *file,
                   int line, std::string summary)
        : SimError(SimErrorKind::Invariant, std::move(object), tick,
                   file, line, std::move(summary))
    {}
};

/** Checkpoint write/read/format failure. */
class CheckpointError : public SimError
{
  public:
    CheckpointError(std::string object, Tick tick, const char *file,
                    int line, std::string summary)
        : SimError(SimErrorKind::Checkpoint, std::move(object), tick,
                   file, line, std::move(summary))
    {}
};

/** Guest-workload failure (unknown name, bad image, bad result). */
class WorkloadError : public SimError
{
  public:
    WorkloadError(std::string object, Tick tick, const char *file,
                  int line, std::string summary)
        : SimError(SimErrorKind::Workload, std::move(object), tick,
                   file, line, std::move(summary))
    {}
};

/**
 * Top-level supervisor for executables: run @p body, mapping escaped
 * errors onto the historical process contract. `ConfigError`,
 * `CheckpointError`, `WorkloadError` and any other std::exception log
 * through the Fatal channel and return exit code 1 (exactly what
 * `g5p_fatal` produced); `InvariantError` logs through the Panic
 * channel and aborts (exactly what `g5p_panic` produced).
 */
int runGuarded(const std::function<int()> &body);

} // namespace g5p

/**
 * Throw a typed simulation error with file:line context:
 *
 *   g5p_throw(CheckpointError, name(), curTick(),
 *             "cannot write '%s'", path.c_str());
 */
#define g5p_throw(ErrorType, object_name, tick_now, ...) \
    throw ::g5p::ErrorType((object_name), (tick_now), __FILE__, \
                           __LINE__, \
                           ::g5p::detail::vformat(__VA_ARGS__))

#endif // G5P_BASE_SIM_ERROR_HH
