/**
 * @file
 * Transparent-huge-page-backed arena allocator.
 *
 * The paper's §V-A tuning experiment shows THP alone buys ~5.9% on
 * gem5: the simulator's hot data (event pool, decoded-instruction
 * cache) sprawls across enough 4 KiB pages that d-TLB misses become
 * measurable, and 2 MiB pages collapse the walk cost. mg5 applies the
 * same lever to its own hot arenas: ThpArena carves slabs out of
 * 2 MiB-aligned anonymous mappings tagged MADV_HUGEPAGE, so the
 * kernel backs them with huge pages when it can.
 *
 * Fallback contract: everything degrades gracefully. If mmap or
 * madvise is unavailable (non-Linux, sandbox, `G5P_NO_THP=1` in the
 * environment) the arena silently serves ::operator new memory with
 * identical alignment guarantees — callers never observe the
 * difference, only the TLB does. The arena never returns memory to
 * the OS until destruction; it is a grow-only slab source for
 * pool-style consumers that recycle blocks themselves.
 */

#ifndef G5P_BASE_HUGE_ALLOC_HH
#define G5P_BASE_HUGE_ALLOC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace g5p::base
{

/**
 * Grow-only slab arena whose regions are huge-page candidates.
 * Not thread safe: intended to be owned per-thread (EventPool) or
 * per-object (Decoder).
 */
class ThpArena
{
  public:
    /** Size of each mapped region; one host huge page. */
    static constexpr std::size_t regionBytes = 2u << 20;

    /** Alignment of every pointer handed out. */
    static constexpr std::size_t blockAlign = 64;

    ThpArena() = default;
    ~ThpArena();

    ThpArena(const ThpArena &) = delete;
    ThpArena &operator=(const ThpArena &) = delete;

    /**
     * Allocate @p bytes (64-byte aligned) from the current region,
     * mapping a new region when the remainder is too small. Requests
     * larger than regionBytes get a dedicated region of their own.
     * Never fails soft: falls back to ::operator new when mmap does.
     */
    void *allocate(std::size_t bytes);

    /** Whole-arena statistics (for tests and the bench report). @{ */
    std::size_t regionsMapped() const { return regions_.size(); }
    std::size_t bytesAllocated() const { return bytesAllocated_; }

    /** True if at least one region was successfully madvise()d
     *  MADV_HUGEPAGE. False on fallback paths. */
    bool hugePagesAdvised() const { return hugeAdvised_; }
    /** @} */

    /**
     * True when THP backing is compiled in and not disabled via the
     * `G5P_NO_THP` environment variable (checked once per process).
     */
    static bool thpEnabled();

  private:
    struct Region
    {
        void *base = nullptr;
        std::size_t size = 0;
        bool mapped = false; ///< mmap (true) vs ::operator new
    };

    /** Map (or heap-allocate) a region of at least @p bytes. */
    Region mapRegion(std::size_t bytes);

    std::vector<Region> regions_;
    std::byte *cursor_ = nullptr;
    std::size_t remaining_ = 0;
    std::size_t bytesAllocated_ = 0;
    bool hugeAdvised_ = false;
};

/**
 * Minimal C++-Allocator shim over a ThpArena, for grow-only standard
 * containers (the decoder cache). deallocate() is a no-op: freed
 * nodes and superseded bucket arrays stay in the arena until the
 * owning object dies — the right trade for containers that only ever
 * grow, and what keeps the whole structure inside a handful of huge
 * pages instead of scattered across the heap.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(ThpArena *arena) noexcept
        : arena_(arena)
    {
    }

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(arena_->allocate(n * sizeof(T)));
    }

    void deallocate(T *, std::size_t) noexcept {}

    ThpArena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena();
    }

  private:
    ThpArena *arena_;
};

} // namespace g5p::base

#endif // G5P_BASE_HUGE_ALLOC_HH
