/**
 * @file
 * Fundamental scalar types shared by every gem5prof subsystem.
 *
 * Mirrors gem5's `base/types.hh`: simulation time is a 64-bit tick
 * count, guest physical/virtual addresses are 64-bit, and cycle counts
 * on the host side are 64-bit as well.
 */

#ifndef G5P_BASE_TYPES_HH
#define G5P_BASE_TYPES_HH

#include <cstdint>

namespace g5p
{

/** Simulated time: one Tick is one picosecond of guest time. */
using Tick = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Guest (simulated) address, virtual or physical. */
using Addr = std::uint64_t;

/** Host-model cycle count. */
using Cycles = std::uint64_t;

/** Host-model code/data address in the synthetic address space. */
using HostAddr = std::uint64_t;

/** Guest register index. */
using RegIndex = std::uint8_t;

/** Number of ticks per simulated second (1 THz tick rate, as gem5). */
constexpr Tick simTicksPerSecond = 1'000'000'000'000ULL;

/** Convenience: ticks for one cycle of a clock at @p mhz megahertz. */
constexpr Tick
ticksForMHz(std::uint64_t mhz)
{
    return simTicksPerSecond / (mhz * 1'000'000ULL);
}

} // namespace g5p

#endif // G5P_BASE_TYPES_HH
