/**
 * @file
 * Small string helpers used by stats dumping and report formatting.
 */

#ifndef G5P_BASE_STR_HH
#define G5P_BASE_STR_HH

#include <string>
#include <vector>

namespace g5p
{

/** Split @p s on @p sep, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** printf "%.*f" with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format @p v as a percentage string like "41.5%". */
std::string fmtPercent(double frac, int digits = 1);

/** Human-readable byte size: 8192 -> "8KB", 3250585 -> "3.1MB". */
std::string fmtBytes(std::uint64_t bytes);

/** Left-pad @p s to @p width with spaces. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s to @p width with spaces. */
std::string padRight(const std::string &s, std::size_t width);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

} // namespace g5p

#endif // G5P_BASE_STR_HH
