/**
 * @file
 * Compiler attribute shims for the code-layout work.
 *
 * The paper's headline finding is that gem5 is front-end bound: the
 * event-service working set is bigger than the i-cache likes and no
 * single function dominates, so *layout* — keeping the service loop's
 * hot bytes together and pushing error/diagnostic code away from them
 * — is a first-class optimization. These macros are how mg5 states
 * hot/cold intent in one place:
 *
 *  - G5P_HOT marks a function as part of the event-service path. With
 *    G5P_HOT_LAYOUT (the default build), GCC/Clang place it in a
 *    .text.hot.* section; the default linker script groups .text.hot
 *    ahead of .text, so the service loop ends up contiguous.
 *  - G5P_COLD marks diagnostic/error/serialization code. Cold
 *    functions are optimized for size, placed in .text.unlikely, and
 *    calls to them are predicted not-taken — they stop diluting the
 *    hot bytes (the LayoutOptions::paddingFactor effect, attacked for
 *    real).
 *  - G5P_NOINLINE keeps a slow path out of its hot caller so the
 *    caller's fast path stays within a fetch window or two.
 *
 * tools/hot_order.txt carries the same intent to linkers that accept
 * an explicit symbol order (lld's --symbol-ordering-file); see the
 * top-level CMakeLists.
 */

#ifndef G5P_BASE_COMPILER_HH
#define G5P_BASE_COMPILER_HH

#if defined(__GNUC__) || defined(__clang__)
#  define G5P_HOT      __attribute__((hot))
#  define G5P_COLD     __attribute__((cold))
#  define G5P_NOINLINE __attribute__((noinline))
#  define G5P_LIKELY(x)   __builtin_expect(!!(x), 1)
#  define G5P_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#  define G5P_HOT
#  define G5P_COLD
#  define G5P_NOINLINE
#  define G5P_LIKELY(x)   (x)
#  define G5P_UNLIKELY(x) (x)
#endif

#endif // G5P_BASE_COMPILER_HH
