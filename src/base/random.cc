#include "base/random.hh"

#include <cmath>

namespace g5p
{

std::uint64_t
Rng::splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Lemire's multiply-shift rejection-free approximation is fine
    // here: bias is < 2^-64 * bound which is negligible for our use.
    unsigned __int128 m = (unsigned __int128)next() * bound;
    return (std::uint64_t)(m >> 64);
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    double u = uniform();
    // Inverse-CDF of an exponential, clamped to >= 1.
    double v = 1.0 - std::log(1.0 - u) * (mean - 1.0);
    if (v < 1.0)
        v = 1.0;
    if (v > 1e12)
        v = 1e12;
    return (std::uint64_t)v;
}

std::uint64_t
Rng::hashString(const char *s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s; ++s) {
        h ^= (unsigned char)*s;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace g5p
