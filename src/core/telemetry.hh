/**
 * @file
 * Telemetry export: turns what sim::Profiler collected into artifacts
 * a human can look at —
 *
 *  - Chrome trace_event JSON (open in Perfetto / chrome://tracing):
 *    per-event wall-clock slices on one thread track per SimObject,
 *    checkpoint/watchdog/run spans, error instants carrying the
 *    flight-recorder tail, and events/sec / queue-depth / slowdown
 *    counter tracks. Multiple sessions (e.g. quickstart's four CPU
 *    models) become separate trace processes in one file.
 *
 *  - A unified host-profile table: the same ranked-share format for
 *    the paper's modeled hot-function CDF (core/func_profile, Fig 15)
 *    and a real self-profile, so both report through one pipeline.
 */

#ifndef G5P_CORE_TELEMETRY_HH
#define G5P_CORE_TELEMETRY_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/func_profile.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"

namespace g5p::core
{

/** One profiled run in a trace file (a trace "process"). */
struct TraceSession
{
    std::string label;             ///< e.g. "O3" or "Intel_Xeon"
    const sim::Profiler *profiler; ///< collected data (not owned)
};

/**
 * Write a Chrome trace_event JSON for @p sessions. @p stats, when
 * given, is flattened (via the stats visitor) into otherData so the
 * final simulated-machine counters travel with the host profile.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceSession> &sessions,
                      const sim::stats::Group *stats = nullptr);

/** Single-session convenience. */
void writeChromeTrace(std::ostream &os, const sim::Profiler &profiler,
                      const std::string &label = "mg5",
                      const sim::stats::Group *stats = nullptr);

/**
 * Write to @p path; warns and returns false on I/O failure (telemetry
 * must never kill a finished simulation).
 */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceSession> &sessions,
                          const sim::stats::Group *stats = nullptr);

/** One row of a host profile: a function or an event class. */
struct HostProfileRow
{
    std::string name;
    double weight;  ///< self time in `unit`s
    double share;   ///< fraction of the total
};

/** Ranked host profile, the shared Fig 15-style report format. */
struct HostProfile
{
    std::string unit;  ///< what weight counts ("ns", "host insts")
    std::vector<HostProfileRow> rows; ///< descending share

    /** Share of the hottest entry (0 if empty). */
    double hottestShare() const;

    /** Cumulative share of the @p n hottest entries. */
    double cumulativeShare(std::size_t n) const;
};

/** Real self-profile: event classes ranked by attributed wall time. */
HostProfile hostProfileFromSelf(const sim::Profiler &profiler);

/** Modeled profile: the Fig 15 hot-function CDF, same format. */
HostProfile hostProfileFromCdf(const FunctionCdf &cdf);

/** Print the shared ranked-share table (top @p top rows). */
void printHostProfile(std::ostream &os, const std::string &title,
                      const HostProfile &profile, std::size_t top = 10);

} // namespace g5p::core

#endif // G5P_CORE_TELEMETRY_HH
