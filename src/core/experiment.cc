#include "core/experiment.hh"

#include "base/logging.hh"
#include "mem/packet_pool.hh"
#include "trace/code_layout.hh"
#include "trace/synthesizer.hh"

namespace g5p::core
{

namespace
{

/**
 * -O3 text shrink: dead cold code is eliminated, so the *padded*
 * text span contracts (executed bytes are unchanged — the same
 * instructions run, just packed into fewer pages).
 */
constexpr double o3PaddingScale = 0.85;

/**
 * -freorder-functions-style hot/cold splitting plus an explicit
 * order file roughly halves the touched-line footprint of hot text
 * (cold halves of split functions land in .text.unlikely pages the
 * run never fetches).
 */
constexpr double hotLayoutPaddingScale = 0.55;

/** Dynamic-instruction multiplier for -O3 builds. */
constexpr double o3WorkScale = 0.995;

/**
 * Fraction of 2MB code chunks THP actually promotes: iodlr remaps
 * the hot text but leaves tails, cold sections, and unaligned edges
 * on base pages (the paper's ~63% iTLB-overhead reduction implies
 * partial coverage).
 */
constexpr double thpCoverage = 0.55;

} // namespace

host::HostPlatformConfig
effectivePlatform(const RunConfig &config)
{
    host::HostPlatformConfig platform =
        host::applyCorun(config.platform, config.corun);
    if (config.tuning.freqGHzOverride > 0)
        platform.freqGHz = config.tuning.freqGHzOverride;
    return platform;
}

RunResult
runProfiledSimulation(const RunConfig &config)
{
    RunResult result;
    result.workload = config.workload;
    result.platform = config.platform.name;
    result.cpuModel = config.cpuModel;
    result.mode = config.mode;

    // --- Guest machine (mg5) ---------------------------------------
    sim::Simulator simulator("system");
    auto workload = workloads::Registry::instance().create(
        config.workload, config.workloadScale);

    bool fast_forward = config.fastForwardInsts > 0 &&
                        config.cpuModel != os::CpuModel::Atomic;

    os::SystemConfig sys_cfg;
    sys_cfg.cpuModel = fast_forward ? os::CpuModel::Atomic
                                    : config.cpuModel;
    sys_cfg.mode = config.mode;
    sys_cfg.numCpus = config.guestCpus;
    sys_cfg.maxInstsPerCpu = config.maxGuestInsts;
    os::System system(simulator, sys_cfg, *workload);

    // --- Host model ------------------------------------------------
    host::HostPlatformConfig platform = effectivePlatform(config);

    trace::LayoutOptions layout_opts;
    layout_opts.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
    if (config.tuning.optO3) {
        layout_opts.paddingFactor *= o3PaddingScale;
        // A different code layout entirely: -O3 relinks the binary,
        // changing which functions conflict in the i-cache.
        layout_opts.seed ^= 0x4f33;
    }
    if (config.tuning.hotLayout) {
        // Hot/cold splitting evicts asserts, throw paths and trace
        // slow paths from the fall-through text, and the order file
        // packs what remains — a much bigger densification than -O3's
        // code shrink, and a relink besides.
        layout_opts.paddingFactor *= hotLayoutPaddingScale;
        layout_opts.seed ^= 0x484f54;
    }
    trace::CodeLayout layout(trace::FuncRegistry::instance(),
                             layout_opts);

    host::PageSizePolicy policy(platform.pageBits);
    if (config.tuning.thpCode || config.tuning.ehpCode) {
        // Huge pages can only back the code segment region.
        double coverage = config.tuning.ehpCode ? 1.0 : thpCoverage;
        policy.addHugeRegion(layout_opts.codeBase,
                             layout_opts.codeBase + (64ull << 20),
                             coverage);
    }

    host::HostCore core(platform, policy);
    trace::Synthesizer synth(layout, core, config.seed,
                             config.tuning.optO3 ? o3WorkScale : 1.0);
    if (config.sinkBatchOps)
        synth.setBatchOps(config.sinkBatchOps);
    FuncProfile profile;

    trace::Recorder recorder;
    recorder.addConsumer(&synth);
    recorder.addConsumer(&profile);
    recorder.activate();

    simulator.configure(config.run);
    if (config.profiler) {
        simulator.attachProfiler(*config.profiler);
        config.profiler->beginSpan(config.workload + " on " +
                                   platform.name + "/" +
                                   os::cpuModelName(config.cpuModel));
    }

    // Per-run packet-pool peak (the pool itself is thread-local and
    // outlives runs).
    mem::PacketPool::resetHighWater();

    sim::SimResult sim_result;
    if (fast_forward) {
        // Atomic to the boundary, then drain-and-switch to the
        // detailed model for the remainder. Milestones are per-CPU,
        // so the boundary is defined as *cpu0's* committed-inst
        // count on every core count: cpu0 runs the workload's main
        // thread (workers park in the threading shim until spawned),
        // which keeps the boundary deterministic and meaningful on
        // multi-core guests too.
        system.cpu(0).setInstMilestone(
            config.fastForwardInsts, [&simulator] {
                simulator.exitSimLoop("fast-forward boundary",
                                      sim::ExitCause::User);
            });
        sim_result = system.run();
        if (sim_result.cause == sim::ExitCause::User) {
            // A false return means the workload finished during the
            // drain; the follow-up run() then surfaces the final
            // tick without perturbing anything.
            system.switchCpu(config.cpuModel);
            sim_result = system.run();
        }
    } else {
        sim_result = system.run();
    }
    recorder.deactivate();
    // Deliver the buffered tail before reading core counters.
    synth.flush();

    if (config.profiler)
        config.profiler->endSpan();

    // --- Collect ---------------------------------------------------
    result.exitCause = sim_result.cause;
    result.exitMessage = sim_result.message;
    result.counters = core.counters();
    result.topdown = core.topdown();
    result.hostSeconds = core.seconds(config.tuning.turbo);
    result.ipc = result.counters.ipc();
    result.hostInsts = result.counters.insts;
    result.codeBytes = layout.totalCodeBytes();

    result.guestInsts = system.totalInsts();
    result.simTicks = sim_result.tick;
    result.guestResult = system.result();
    std::uint64_t expected =
        workload->expectedResult(config.guestCpus);
    result.resultChecked = expected != 0 && config.maxGuestInsts == 0;
    result.resultOk =
        !result.resultChecked || result.guestResult == expected;
    if (result.resultChecked && !result.resultOk) {
        g5p_warn("%s on %s: guest checksum mismatch "
                 "(got %llx, want %llx)",
                 config.workload.c_str(),
                 os::cpuModelName(config.cpuModel),
                 (unsigned long long)result.guestResult,
                 (unsigned long long)expected);
    }

    // Memory-path health, from the plain accessors (not stats).
    result.packetPoolHighWater = mem::PacketPool::highWater();
    result.packetPoolSlabs = mem::PacketPool::slabsAllocated();
    {
        auto &xb = system.xbar();
        result.snoopFilterLines = xb.filterSize();
        result.snoopFilterCapacity = xb.filterCapacity();
        result.snoopFilterAvgProbe =
            xb.filterProbes()
                ? 1.0 + (double)xb.filterProbeSteps() /
                            (double)xb.filterProbes()
                : 0.0;
        std::uint64_t probes = system.l2().mshrIndexProbes();
        std::uint64_t steps = system.l2().mshrIndexProbeSteps();
        for (unsigned i = 0; i < system.numCpus(); ++i) {
            probes += system.l1i(i).mshrIndexProbes() +
                      system.l1d(i).mshrIndexProbes();
            steps += system.l1i(i).mshrIndexProbeSteps() +
                     system.l1d(i).mshrIndexProbeSteps();
        }
        result.mshrIndexProbes = probes;
        result.mshrIndexAvgProbe =
            probes ? 1.0 + (double)steps / (double)probes : 0.0;
    }

    result.functionCdf = FunctionCdf::build(synth.selfOps());
    // All functions with self time, including the synthetic callees
    // each instrumented scope expands to (what a VTune function
    // profile of the whole binary would count).
    result.distinctFunctions = result.functionCdf.size();
    return result;
}

RunResult
runSpecReference(const workloads::SpecStreamConfig &stream,
                 const host::HostPlatformConfig &platform,
                 std::uint64_t seed)
{
    RunResult result;
    result.workload = stream.name;
    result.platform = platform.name;

    host::PageSizePolicy policy(platform.pageBits);
    host::HostCore core(platform, policy);
    workloads::SpecStreamGenerator generator(stream, seed);
    generator.run(core);

    result.counters = core.counters();
    result.topdown = core.topdown();
    result.hostSeconds = core.seconds();
    result.ipc = result.counters.ipc();
    result.hostInsts = result.counters.insts;
    return result;
}

} // namespace g5p::core
