/**
 * @file
 * Experiment harness: one call runs a complete profiled simulation —
 * build an mg5 machine, run a workload on it, lower its dynamic trace
 * to host instructions, and account them on a host-platform model —
 * returning everything the paper's figures need. This is the
 * top-level public API of the reproduction.
 */

#ifndef G5P_CORE_EXPERIMENT_HH
#define G5P_CORE_EXPERIMENT_HH

#include <string>

#include "core/func_profile.hh"
#include "host/corun.hh"
#include "host/host_core.hh"
#include "os/system.hh"
#include "sim/run_options.hh"
#include "workloads/spec_streams.hh"
#include "workloads/workload.hh"

namespace g5p::core
{

/** Host-side tuning knobs (paper §V-A). */
struct TuningConfig
{
    /** Transparent huge pages over the code segment (~90% chunks). */
    bool thpCode = false;

    /** Explicit huge pages (libhugetlbfs-style, full coverage). */
    bool ehpCode = false;

    /** Compile with -O3: smaller code, slightly fewer instructions. */
    bool optO3 = false;

    /**
     * Build with hot/cold function splitting and the linker order
     * file (the G5P_HOT_LAYOUT build of mg5 itself): cold paths move
     * out of the fall-through text and tools/hot_order.txt packs the
     * survivors, so the same executed bytes land on far fewer lines
     * and pages. Models the layout half of the PR 9 front-end work;
     * pair with sim::setModeledDispatchVirtual(false) for the full
     * before/after story (bench/abl_frontend does exactly that).
     */
    bool hotLayout = false;

    /** Host frequency override in GHz (0 = platform default). */
    double freqGHzOverride = 0.0;

    /** TurboBoost enabled. */
    bool turbo = false;
};

/** Everything a profiled run needs. */
struct RunConfig
{
    std::string workload = "water_nsquared";
    os::CpuModel cpuModel = os::CpuModel::Atomic;
    os::SimMode mode = os::SimMode::SE;
    unsigned guestCpus = 1;
    double workloadScale = 1.0;
    std::uint64_t maxGuestInsts = 0;

    /**
     * Fast-forward: run the first N guest instructions on the Atomic
     * model, then drain-and-switch (os::System::switchCpu) to
     * cpuModel for the rest of the run. 0 runs cpuModel throughout.
     * No effect when cpuModel is already Atomic.
     */
    std::uint64_t fastForwardInsts = 0;

    host::HostPlatformConfig platform;
    host::CorunScenario corun;
    TuningConfig tuning;

    std::uint64_t seed = 1;

    /**
     * Trace->host delivery granularity: host instructions buffered
     * per batched sink call. 0 selects the synthesizer default
     * (trace::Synthesizer::defaultBatchOps); 1 forces the unbatched
     * per-op virtual path (the batching ablation). Either setting
     * produces bit-identical counters.
     */
    std::size_t sinkBatchOps = 0;

    /** Run-control knobs (watchdog, auto-checkpoint, fault seed,
     *  owned profiler) applied to the run's Simulator. */
    sim::RunOptions run;

    /** Caller-owned self-profiler to attach for this run (e.g. one
     *  shared across a campaign); the run is wrapped in a span named
     *  after the workload/platform. Overrides run.profiler. */
    sim::Profiler *profiler = nullptr;
};

/** Results of one profiled run. */
struct RunResult
{
    std::string workload;
    std::string platform;
    os::CpuModel cpuModel = os::CpuModel::Atomic;
    os::SimMode mode = os::SimMode::SE;

    /**
     * Why the final simulation loop returned. Finished for a normal
     * end of workload; WatchdogTimeout / Deadlock / Livelock when
     * the supervision machinery cut the run short (the counters then
     * cover only the portion that ran). Pooled sweeps report a
     * capped job here instead of aborting the whole sweep.
     */
    sim::ExitCause exitCause = sim::ExitCause::Finished;

    /** Exit message (supervised exits carry the watchdog verdict). */
    std::string exitMessage;

    /** @{ Host side. */
    host::HostCounters counters;
    host::TopdownBreakdown topdown;
    double hostSeconds = 0;   ///< the paper's "simulation time"
    double ipc = 0;
    std::uint64_t hostInsts = 0;
    std::uint64_t codeBytes = 0; ///< laid-out text footprint
    /** @} */

    /** @{ Guest side. */
    std::uint64_t guestInsts = 0;
    Tick simTicks = 0;
    std::uint64_t guestResult = 0;
    bool resultChecked = false;
    bool resultOk = false;
    /** @} */

    /** @{ Function profile (Fig. 15). */
    std::size_t distinctFunctions = 0;
    FunctionCdf functionCdf;
    /** @} */

    /**
     * @{ Detailed memory-path health (PR 10), read from the plain
     * observability counters after the run — never from stats, so
     * checkpoint stat dumps stay byte-identical. Zero on runs that
     * never touch the timing path (pure Atomic).
     */
    std::uint64_t packetPoolHighWater = 0; ///< peak packets in flight
    std::uint64_t packetPoolSlabs = 0;     ///< slabs carved so far
    std::uint64_t snoopFilterLines = 0;    ///< entries at run end
    std::uint64_t snoopFilterCapacity = 0; ///< slots at run end
    double snoopFilterAvgProbe = 0;        ///< mean probe length
    std::uint64_t mshrIndexProbes = 0;     ///< line-index lookups
    double mshrIndexAvgProbe = 0;          ///< mean probe length
    /** @} */
};

/**
 * Run one profiled simulation. Deterministic for a given config.
 */
RunResult runProfiledSimulation(const RunConfig &config);

/**
 * Run a SPEC reference stream (bare metal, no mg5) on a platform.
 * Fills only the host-side fields.
 */
RunResult runSpecReference(const workloads::SpecStreamConfig &stream,
                           const host::HostPlatformConfig &platform,
                           std::uint64_t seed = 1);

/**
 * The effective platform a run executes on, after co-run contention
 * and tuning adjustments (exposed for tests).
 */
host::HostPlatformConfig effectivePlatform(const RunConfig &config);

} // namespace g5p::core

#endif // G5P_CORE_EXPERIMENT_HH
