#include "core/parallel.hh"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "base/logging.hh"

namespace g5p::core
{

namespace
{

/**
 * One worker's job queue. The owner pops from the front (FIFO over
 * its round-robin share, so early jobs start early); thieves take
 * from the back (the jobs the owner would reach last, minimizing
 * contention on the front). A plain mutex per queue is plenty: jobs
 * are whole simulations, so queue operations are nanoseconds against
 * job runtimes of milliseconds and up.
 */
struct WorkQueue
{
    std::mutex mutex;
    std::deque<std::size_t> jobs;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.back();
        jobs.pop_back();
        return true;
    }
};

} // namespace

ParallelExecutor::ParallelExecutor(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

unsigned
ParallelExecutor::hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ParallelExecutor::forEach(std::size_t count,
                          const std::function<void(std::size_t)> &job)
{
    if (count == 0)
        return;

    const unsigned workers =
        (unsigned)std::min<std::size_t>(jobs_, count);
    std::vector<WorkQueue> queues(workers);
    for (std::size_t i = 0; i < count; ++i)
        queues[i % workers].jobs.push_back(i);

    // First failure by submission index; rethrown after the drain so
    // every non-failing job still completes (and later calls see a
    // consistent pool state).
    std::vector<std::exception_ptr> errors(count);

    auto work = [&](unsigned self) {
        std::size_t index;
        while (true) {
            bool found = queues[self].popFront(index);
            // No job ever enqueues another, so one empty sweep over
            // all queues means the pool is drained for good.
            for (unsigned v = 1; !found && v < workers; ++v)
                found = queues[(self + v) % workers].stealBack(index);
            if (!found)
                return;
            try {
                job(index);
            } catch (...) {
                errors[index] = std::current_exception();
            }
        }
    };

    if (workers == 1) {
        // Degenerate pool: run inline, no thread spawn.
        work(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads.emplace_back(work, w);
        for (auto &thread : threads)
            thread.join();
    }

    for (std::size_t i = 0; i < count; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

RunConfig
withJobWallCap(const RunConfig &config, double cap_seconds)
{
    if (cap_seconds <= 0)
        return config;
    RunConfig capped = config;
    double own = capped.run.supervise
                     ? capped.run.watchdog.maxWallSeconds
                     : 0.0;
    capped.run.supervise = true;
    if (own <= 0 || own > cap_seconds)
        capped.run.watchdog.maxWallSeconds = cap_seconds;
    return capped;
}

std::vector<RunResult>
ParallelExecutor::run(const std::vector<RunConfig> &configs)
{
    std::vector<RunResult> results(configs.size());
    forEach(configs.size(), [&](std::size_t i) {
        results[i] = runProfiledSimulation(
            withJobWallCap(configs[i], jobWallCapSeconds_));
    });
    return results;
}

std::vector<RunResult>
runExperiments(const std::vector<RunConfig> &configs, unsigned jobs,
               double wall_cap_seconds)
{
    if (jobs <= 1) {
        std::vector<RunResult> results;
        results.reserve(configs.size());
        for (const RunConfig &config : configs)
            results.push_back(runProfiledSimulation(
                withJobWallCap(config, wall_cap_seconds)));
        return results;
    }
    ParallelExecutor pool(jobs);
    pool.setJobWallCap(wall_cap_seconds);
    return pool.run(configs);
}

} // namespace g5p::core
