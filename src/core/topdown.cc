#include "core/topdown.hh"

#include "base/str.hh"

namespace g5p::core
{

using host::TopdownBreakdown;

std::vector<TopdownRow>
levelOneRows(const TopdownBreakdown &topdown)
{
    return {
        {"Retiring", topdown.retiring},
        {"Front-End Bound", topdown.frontendBound()},
        {"Bad Speculation", topdown.badSpeculation},
        {"Back-End Bound", topdown.backendBound},
    };
}

std::vector<TopdownRow>
frontendSplitRows(const TopdownBreakdown &topdown)
{
    return {
        {"Front-End Latency", topdown.frontendLatency},
        {"Front-End Bandwidth", topdown.frontendBandwidth},
    };
}

std::vector<TopdownRow>
frontendLatencyRows(const TopdownBreakdown &topdown)
{
    return {
        {"ICache Misses", topdown.feIcache},
        {"ITLB Misses", topdown.feItlb},
        {"Mispredict Resteers", topdown.feMispredictResteers},
        {"Unknown Branches", topdown.feUnknownBranches},
        {"Clear Resteers", topdown.feClearResteers},
    };
}

std::vector<TopdownRow>
frontendBandwidthRows(const TopdownBreakdown &topdown)
{
    return {
        {"MITE", topdown.feMite},
        {"DSB", topdown.feDsb},
    };
}

void
printTopdownTree(std::ostream &os, const TopdownBreakdown &topdown)
{
    auto line = [&os](int indent, const std::string &label,
                      double frac) {
        os << std::string(indent * 2, ' ')
           << padRight(label, 28 - indent * 2) << " "
           << padLeft(fmtPercent(frac), 7) << "\n";
    };
    line(0, "Retiring", topdown.retiring);
    line(0, "Bad Speculation", topdown.badSpeculation);
    line(0, "Front-End Bound", topdown.frontendBound());
    line(1, "Front-End Latency", topdown.frontendLatency);
    line(2, "ICache Misses", topdown.feIcache);
    line(2, "ITLB Misses", topdown.feItlb);
    line(2, "Mispredict Resteers", topdown.feMispredictResteers);
    line(2, "Unknown Branches", topdown.feUnknownBranches);
    line(2, "Clear Resteers", topdown.feClearResteers);
    line(1, "Front-End Bandwidth", topdown.frontendBandwidth);
    line(2, "MITE", topdown.feMite);
    line(2, "DSB", topdown.feDsb);
    line(0, "Back-End Bound", topdown.backendBound);
    line(1, "Memory Bound", topdown.beMemory);
    line(1, "Core Bound", topdown.beCore);
}

} // namespace g5p::core
