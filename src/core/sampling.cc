#include "core/sampling.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>

#include <vector>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "core/parallel.hh"
#include "sim/clocked_object.hh"
#include "sim/serialize.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace g5p::core
{

namespace
{

/**
 * A complete single-CPU guest machine for one sampling phase. The
 * Simulator, workload and System must share a lifetime, and each
 * phase (and each detailed interval) needs a fresh one.
 */
struct Machine
{
    sim::Simulator sim{"system"};
    std::unique_ptr<os::GuestWorkload> workload;
    std::unique_ptr<os::System> system;

    Machine(const SamplingConfig &cfg, os::CpuModel model)
    {
        workload = workloads::Registry::instance().create(
            cfg.workload, cfg.scale);
        os::SystemConfig sys = cfg.base;
        sys.cpuModel = model;
        sys.numCpus = 1;        // sampling is single-CPU (see header)
        sys.maxInstsPerCpu = 0; // boundaries come from milestones
        system = std::make_unique<os::System>(sim, sys, *workload);
    }
};

/** Every printable stat value under its dotted name. */
class TotalsVisitor : public sim::stats::Visitor
{
  public:
    void
    value(const std::string &dotted, double v,
          const sim::stats::Info &) override
    {
        totals[dotted] = v;
    }

    std::map<std::string, double> totals;
};

/** after - before for one dotted counter (absent counts as 0). */
double
delta(const TotalsVisitor &before, const TotalsVisitor &after,
      const std::string &name)
{
    auto get = [&](const TotalsVisitor &v) {
        auto it = v.totals.find(name);
        return it == v.totals.end() ? 0.0 : it->second;
    };
    return get(after) - get(before);
}

/** misses / (hits + misses) over the window, 0 when idle. */
double
missRate(const TotalsVisitor &before, const TotalsVisitor &after,
         const std::string &unit)
{
    double hits = delta(before, after, unit + ".hits");
    double misses = delta(before, after, unit + ".misses");
    double accesses = hits + misses;
    return accesses > 0 ? misses / accesses : 0.0;
}

/**
 * The K sampled boundaries: evenly strided over the usable farm
 * boundaries (interval 0 never has a checkpoint — the machine's cold
 * start is the Atomic pass's job), with the seed rotating the phase
 * within the stride. Operating on the boundary *list* keeps the old
 * dense-farm behavior bit-for-bit when the farm stride is 1.
 */
std::vector<std::size_t>
pickIntervals(const std::vector<std::size_t> &boundaries, unsigned k,
              std::uint64_t seed)
{
    std::size_t usable =
        std::min<std::size_t>(k, boundaries.size());
    std::size_t stride = boundaries.size() / usable;
    std::size_t first = (std::size_t)(seed % stride);
    std::vector<std::size_t> picks;
    picks.reserve(usable);
    for (std::size_t j = 0; j < usable; ++j)
        picks.push_back(boundaries[first + j * stride]);
    return picks;
}

std::string
farmPath(const SamplingConfig &cfg, std::size_t k)
{
    return cfg.farmPrefix + "-" + std::to_string(k) + ".ckpt";
}

std::string
manifestPath(const SamplingConfig &cfg)
{
    return cfg.farmPrefix + "-manifest.ckpt";
}

constexpr unsigned farmManifestVersion = 1;

/** One staged farm checkpoint: boundary index b (start = b * W). */
struct FarmEntry
{
    std::size_t b = 0;
    sim::CheckpointOut cp;
};

/**
 * Build the checkpoint farm and the whole-run totals in ONE Atomic
 * pass: run to completion, exiting at every current-stride boundary
 * (exact on Atomic) to stage a checkpoint in memory; when the farm
 * exceeds cfg.maxFarm, drop every odd-stride entry and double the
 * stride. Fills r's totals, writes the surviving checkpoints plus the
 * manifest, and returns the surviving boundary indices.
 */
std::vector<std::size_t>
buildFarm(const SamplingConfig &cfg, SamplingResult &r)
{
    std::vector<FarmEntry> farm;
    std::size_t stride = 1;

    Machine m(cfg, os::CpuModel::Atomic);
    cpu::BaseCpu &cpu = m.system->cpu(0);
    std::size_t next = 1;
    sim::SimResult fin;
    for (;;) {
        cpu.setInstMilestone(next * cfg.W, [&m] {
            m.sim.exitSimLoop("sampling boundary",
                              sim::ExitCause::User);
        });
        sim::SimResult res = m.system->run();
        if (res.cause != sim::ExitCause::User) {
            // The workload outran the next boundary: the pass is
            // done (any other cause shows up as a checksum failure).
            fin = res;
            break;
        }
        if (!m.sim.advanceToQuiescence()) {
            // Finished during the quiescence seek: drain the exit.
            fin = m.system->run();
            break;
        }
        FarmEntry e;
        e.b = next;
        m.sim.takeCheckpoint(e.cp);
        farm.push_back(std::move(e));
        if (farm.size() > cfg.maxFarm) {
            std::size_t doubled = stride * 2;
            std::erase_if(farm, [doubled](const FarmEntry &fe) {
                return fe.b % doubled != 0;
            });
            stride = doubled;
        }
        next = (next / stride + 1) * stride;
    }

    r.totalInsts = m.system->totalInsts();
    r.atomicTicks = fin.tick;
    r.guestResult = m.system->result();
    std::uint64_t expected = m.workload->expectedResult(1);
    r.resultOk = expected == 0 || r.guestResult == expected;

    std::vector<std::size_t> boundaries;
    boundaries.reserve(farm.size());
    for (const FarmEntry &e : farm) {
        e.cp.writeFile(farmPath(cfg, e.b));
        boundaries.push_back(e.b);
    }

    sim::CheckpointOut man;
    man.pushSection("samplingFarm");
    man.param("version", farmManifestVersion);
    man.param("workload", cfg.workload);
    man.param("scale", cfg.scale);
    man.param("W", cfg.W);
    man.param("stride", stride);
    man.param("totalInsts", r.totalInsts);
    man.param("atomicTicks", r.atomicTicks);
    man.param("guestResult", r.guestResult);
    man.param("resultOk", (unsigned)r.resultOk);
    man.paramVector("boundaries", boundaries);
    man.popSection();
    man.writeFile(manifestPath(cfg));

    r.farmStride = stride;
    return boundaries;
}

/**
 * Load an existing farm's manifest if it matches (workload, scale,
 * W) and every checkpoint it lists is still on disk; on a match the
 * Atomic pass's totals come from the manifest and the pass is
 * skipped. Any read/parse/checksum failure, mismatch, or missing
 * farm file simply means "no farm": return false and rebuild.
 */
bool
tryReuseFarm(const SamplingConfig &cfg, SamplingResult &r,
             std::vector<std::size_t> &boundaries)
{
    try {
        sim::CheckpointIn man =
            sim::CheckpointIn::readFile(manifestPath(cfg));
        man.pushSection("samplingFarm");
        unsigned version = 0;
        std::string workload;
        double scale = 0;
        std::uint64_t w = 0;
        man.param("version", version);
        man.param("workload", workload);
        man.param("scale", scale);
        man.param("W", w);
        if (version != farmManifestVersion ||
            workload != cfg.workload || scale != cfg.scale ||
            w != cfg.W) {
            return false;
        }
        std::size_t stride = 0;
        unsigned result_ok = 0;
        man.param("stride", stride);
        man.param("totalInsts", r.totalInsts);
        man.param("atomicTicks", r.atomicTicks);
        man.param("guestResult", r.guestResult);
        man.param("resultOk", result_ok);
        man.paramVector("boundaries", boundaries);
        man.popSection();
        // A partially deleted farm must not be sampled from — picks
        // would land on missing checkpoints, or silently shift.
        for (std::size_t b : boundaries) {
            std::ifstream f(farmPath(cfg, b));
            if (!f.good())
                return false;
        }
        r.resultOk = result_ok != 0;
        r.farmStride = stride;
        return !boundaries.empty();
    } catch (const CheckpointError &) {
        return false;
    }
}

/**
 * One detailed interval: restore interval k's Atomic checkpoint into
 * a fresh detailModel machine (the cross-model restore transplants
 * the architectural state and re-schedules the recorded event queue
 * under the new core's tags), run `warmup` instructions to re-warm
 * the microarchitectural state Atomic does not model, then run
 * exactly W measured committed instructions and report the stat
 * deltas over the measured window.
 */
IntervalSample
runInterval(const SamplingConfig &cfg, std::size_t k, Tick period)
{
    Machine m(cfg, cfg.detailModel);
    m.sim.restore(farmPath(cfg, k));
    cpu::BaseCpu &cpu = m.system->cpu(0);

    if (cfg.warmup > 0) {
        cpu.setInstMilestone(cpu.numInsts() + cfg.warmup, [&m] {
            m.sim.exitSimLoop("sample warmup end",
                              sim::ExitCause::User);
        });
        sim::SimResult wres = m.system->run();
        g5p_assert(wres.cause == sim::ExitCause::User,
                   "interval %zu ended (%s) during warmup — "
                   "boundary selection should have excluded it",
                   k, sim::exitCauseName(wres.cause));
    }

    TotalsVisitor before;
    m.sim.visit(before);
    Tick t0 = m.sim.curTick();
    std::uint64_t start = cpu.numInsts();

    cpu.setInstMilestone(start + cfg.W, [&m] {
        m.sim.exitSimLoop("sample window end", sim::ExitCause::User);
    });
    sim::SimResult res = m.system->run();

    TotalsVisitor after;
    m.sim.visit(after);

    IntervalSample s;
    s.index = k;
    s.startInsts = start;
    s.insts = cpu.numInsts() - start;
    s.ticks = res.tick - t0;
    s.cycles = (double)s.ticks / (double)period;
    s.ipc = s.cycles > 0 ? (double)s.insts / s.cycles : 0.0;
    s.l1iMissRate = missRate(before, after, "system.cpu0.icache");
    s.l1dMissRate = missRate(before, after, "system.cpu0.dcache");
    s.l2MissRate = missRate(before, after, "system.l2");
    s.itlbMissRate = missRate(before, after, "system.cpu0.itlb");
    s.dtlbMissRate = missRate(before, after, "system.cpu0.dtlb");
    return s;
}

/** Mean and standard error (s / sqrt(n)) of a sample. */
SampleMetric
summarize(const std::vector<double> &xs)
{
    SampleMetric m;
    if (xs.empty())
        return m;
    double sum = 0;
    for (double x : xs)
        sum += x;
    m.mean = sum / (double)xs.size();
    if (xs.size() > 1) {
        double ss = 0;
        for (double x : xs)
            ss += (x - m.mean) * (x - m.mean);
        double sd = std::sqrt(ss / (double)(xs.size() - 1));
        m.stdErr = sd / std::sqrt((double)xs.size());
    }
    return m;
}

} // namespace

SamplingResult
runSampledSimulation(const SamplingConfig &config)
{
    g5p_assert(config.W > 0 && config.K > 0,
               "sampling needs K and W >= 1");
    Tick period =
        sim::ClockDomain::fromMHz(config.base.cpuMHz).period();

    SamplingResult r;
    r.workload = config.workload;
    r.detailModel = config.detailModel;
    r.W = config.W;
    r.warmup = config.warmup;
    r.seed = config.seed;
    r.jobs = config.jobs;

    // --- Phase 1: measure + farm. A single full Atomic pass learns
    // the workload length, verifies the guest checksum and drops the
    // bounded checkpoint farm — unless a matching farm already
    // exists, in which case its manifest supplies the same totals and
    // the pass is skipped entirely.
    std::vector<std::size_t> boundaries;
    if (config.reuseFarm && tryReuseFarm(config, r, boundaries)) {
        r.farmReused = true;
    } else {
        boundaries = buildFarm(config, r);
    }
    r.farmSize = boundaries.size();

    std::size_t n = (std::size_t)(r.totalInsts / config.W);
    r.intervalsAvailable = n;
    if (n < 2) {
        g5p_throw(ConfigError, "sampling", 0,
                  "W=%llu leaves %zu complete interval(s) of %s "
                  "(%llu insts); need >= 2 — shrink W",
                  (unsigned long long)config.W, n,
                  config.workload.c_str(),
                  (unsigned long long)r.totalInsts);
    }

    // A usable boundary needs warmup + W committed instructions left
    // before the workload ends, so a warmed window never truncates.
    std::erase_if(boundaries, [&](std::size_t b) {
        return b * config.W + config.warmup + config.W >
               r.totalInsts;
    });
    if (boundaries.empty()) {
        g5p_throw(ConfigError, "sampling", 0,
                  "no farm boundary of %s leaves room for "
                  "warmup=%llu + W=%llu within %llu insts — shrink "
                  "W or warmup",
                  config.workload.c_str(),
                  (unsigned long long)config.warmup,
                  (unsigned long long)config.W,
                  (unsigned long long)r.totalInsts);
    }
    std::vector<std::size_t> picks =
        pickIntervals(boundaries, config.K, config.seed);
    r.K = (unsigned)picks.size();

    // --- Phase 2: detail. Independent machines, one per interval,
    // on the worker pool; slots are written by interval index, so the
    // aggregation below never sees scheduling order.
    r.intervals.resize(picks.size());
    ParallelExecutor pool(config.jobs);
    pool.forEach(picks.size(), [&](std::size_t i) {
        r.intervals[i] = runInterval(config, picks[i], period);
    });

    // --- Extrapolate.
    auto collect = [&](auto field) {
        std::vector<double> xs;
        xs.reserve(r.intervals.size());
        for (const IntervalSample &s : r.intervals)
            xs.push_back(s.*field);
        return summarize(xs);
    };
    r.ipc = collect(&IntervalSample::ipc);
    r.l1iMissRate = collect(&IntervalSample::l1iMissRate);
    r.l1dMissRate = collect(&IntervalSample::l1dMissRate);
    r.l2MissRate = collect(&IntervalSample::l2MissRate);
    r.itlbMissRate = collect(&IntervalSample::itlbMissRate);
    r.dtlbMissRate = collect(&IntervalSample::dtlbMissRate);
    if (r.ipc.mean > 0) {
        r.estCycles = (double)r.totalInsts / r.ipc.mean;
        r.estTicks = (Tick)(r.estCycles * (double)period);
    }
    return r;
}

void
printSamplingReport(std::ostream &os, const SamplingResult &r)
{
    // Fixed-width snprintf formatting throughout: the determinism
    // gate byte-compares this output across serial and pooled runs.
    char buf[256];

    os << "=== sampled simulation: " << r.workload << " on "
       << os::cpuModelName(r.detailModel) << " ===\n";
    std::snprintf(buf, sizeof(buf),
                  "full run (Atomic): %llu insts, %llu ticks, "
                  "checksum %s\n",
                  (unsigned long long)r.totalInsts,
                  (unsigned long long)r.atomicTicks,
                  r.resultOk ? "ok" : "MISMATCH");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "sampled: K=%u of N=%zu intervals, W=%llu insts, "
                  "warmup=%llu, seed=%llu\n",
                  r.K, r.intervalsAvailable,
                  (unsigned long long)r.W,
                  (unsigned long long)r.warmup,
                  (unsigned long long)r.seed);
    os << buf;
    // Deliberately no built/reused marker: the report must be
    // byte-identical whether the farm was just built or reused.
    std::snprintf(buf, sizeof(buf),
                  "farm: %zu boundaries, stride %zu interval(s)\n",
                  r.farmSize, r.farmStride);
    os << buf;

    os << "    k  start_inst    insts      cycles      ipc"
          "  l1i_miss  l1d_miss   l2_miss  itlb_miss  dtlb_miss\n";
    for (const IntervalSample &s : r.intervals) {
        std::snprintf(buf, sizeof(buf),
                      "%5zu  %10llu  %7llu  %10.1f  %7.4f"
                      "  %8.6f  %8.6f  %8.6f   %8.6f   %8.6f\n",
                      s.index, (unsigned long long)s.startInsts,
                      (unsigned long long)s.insts, s.cycles, s.ipc,
                      s.l1iMissRate, s.l1dMissRate, s.l2MissRate,
                      s.itlbMissRate, s.dtlbMissRate);
        os << buf;
    }

    os << "extrapolated (mean +/- stderr over K intervals):\n";
    auto line = [&](const char *label, const SampleMetric &m) {
        std::snprintf(buf, sizeof(buf), "  %-15s %9.6f +/- %9.6f\n",
                      label, m.mean, m.stdErr);
        os << buf;
    };
    line("ipc", r.ipc);
    line("l1i miss rate", r.l1iMissRate);
    line("l1d miss rate", r.l1dMissRate);
    line("l2 miss rate", r.l2MissRate);
    line("itlb miss rate", r.itlbMissRate);
    line("dtlb miss rate", r.dtlbMissRate);

    double detailed = (double)r.K * (double)(r.W + r.warmup);
    std::snprintf(buf, sizeof(buf),
                  "est cycles %.6e  est ticks %llu\n"
                  "detailed insts: %.0f of %llu (%.1f%%)\n",
                  r.estCycles, (unsigned long long)r.estTicks,
                  detailed, (unsigned long long)r.totalInsts,
                  r.totalInsts
                      ? 100.0 * detailed / (double)r.totalInsts
                      : 0.0);
    os << buf;
}

} // namespace g5p::core
