/**
 * @file
 * Named views over the Top-Down breakdown matching the paper's figure
 * categories, and pretty-printers for the level-1/level-2 trees.
 */

#ifndef G5P_CORE_TOPDOWN_HH
#define G5P_CORE_TOPDOWN_HH

#include <ostream>
#include <string>
#include <vector>

#include "host/counters.hh"

namespace g5p::core
{

/** A (label, fraction) row of a stacked-bar figure. */
struct TopdownRow
{
    std::string label;
    double fraction;
};

/** Fig. 2: retiring / front-end / bad-speculation / back-end. */
std::vector<TopdownRow> levelOneRows(
    const host::TopdownBreakdown &topdown);

/** Fig. 3: front-end latency vs bandwidth. */
std::vector<TopdownRow> frontendSplitRows(
    const host::TopdownBreakdown &topdown);

/** Fig. 4: front-end latency breakdown. */
std::vector<TopdownRow> frontendLatencyRows(
    const host::TopdownBreakdown &topdown);

/** Fig. 5: front-end bandwidth breakdown (MITE vs DSB). */
std::vector<TopdownRow> frontendBandwidthRows(
    const host::TopdownBreakdown &topdown);

/** Print a whole Top-Down tree with indentation. */
void printTopdownTree(std::ostream &os,
                      const host::TopdownBreakdown &topdown);

} // namespace g5p::core

#endif // G5P_CORE_TOPDOWN_HH
