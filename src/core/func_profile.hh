/**
 * @file
 * Function-level profiling (paper Fig. 15): counts calls and distinct
 * functions reached during a profiled simulation, and builds the
 * hot-function CDF from the synthesizer's per-function self
 * instruction counts.
 */

#ifndef G5P_CORE_FUNC_PROFILE_HH
#define G5P_CORE_FUNC_PROFILE_HH

#include <string>
#include <vector>

#include "trace/recorder.hh"

namespace g5p::core
{

/** Call-count collector (a trace consumer). */
class FuncProfile : public trace::TraceConsumer
{
  public:
    void
    funcEnter(trace::FuncId id) override
    {
        if (calls_.size() <= id)
            calls_.resize(id + 1, 0);
        ++calls_[id];
    }

    void funcExit(trace::FuncId id) override {}
    void dataRef(HostAddr addr, std::uint32_t size,
                 bool is_write) override {}

    /** Number of distinct functions called at least once. */
    std::size_t distinctFunctions() const;

    /** Total dynamic calls. */
    std::uint64_t totalCalls() const;

    const std::vector<std::uint64_t> &calls() const { return calls_; }

  private:
    std::vector<std::uint64_t> calls_;
};

/** One row of the hot-function table. */
struct HotFunction
{
    std::string name;
    std::uint64_t selfOps; ///< instructions attributed to the body
    double share;          ///< fraction of all instructions
};

/**
 * Hot-function CDF built from per-function self instruction counts
 * (CPU time proxy, as VTune's self-time ranking).
 */
class FunctionCdf
{
  public:
    static FunctionCdf build(const std::vector<std::uint64_t>
                                 &self_ops);

    /** Functions sorted by descending share. */
    const std::vector<HotFunction> &ranked() const { return ranked_; }

    /** Share of the hottest function. */
    double hottestShare() const;

    /** Cumulative share of the @p n hottest functions. */
    double cumulativeShare(std::size_t n) const;

    /** Number of functions with nonzero time. */
    std::size_t size() const { return ranked_.size(); }

  private:
    std::vector<HotFunction> ranked_;
};

} // namespace g5p::core

#endif // G5P_CORE_FUNC_PROFILE_HH
