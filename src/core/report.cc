#include "core/report.hh"

#include <algorithm>

#include "base/str.hh"

namespace g5p::core
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ")
               << (c == 0 ? padRight(cells[c], widths[c])
                          : padLeft(cells[c], widths[c]));
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto csv_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << cells[c];
        os << "\n";
    };
    csv_row(headers_);
    for (const auto &row : rows_)
        csv_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n\n";
}

namespace
{

class CollectVisitor : public sim::stats::Visitor
{
  public:
    explicit CollectVisitor(
        std::vector<std::pair<std::string, double>> &out)
        : out_(out)
    {
    }

    void
    value(const std::string &dotted, double value,
          const sim::stats::Info &) override
    {
        out_.emplace_back(dotted, value);
    }

  private:
    std::vector<std::pair<std::string, double>> &out_;
};

} // namespace

std::vector<std::pair<std::string, double>>
collectStatValues(const sim::stats::Group &root)
{
    std::vector<std::pair<std::string, double>> out;
    CollectVisitor v(out);
    root.visit(v);
    return out;
}

} // namespace g5p::core
