/**
 * @file
 * Parallel experiment harness: a work-stealing worker pool running
 * independent profiled simulations concurrently across host threads.
 *
 * The paper's methodology is embarrassingly parallel (Fig. 1 alone is
 * 9 workloads x 4 CPU models x 3 platforms, and the paper co-runs up
 * to one gem5 process per hardware thread at 4.15x aggregate
 * throughput), so the harness maps one RunConfig to one job and one
 * job to one worker thread at a time.
 *
 * Isolation contract — what makes results byte-identical to serial:
 *
 *  - every job builds its own Simulator, EventQueue, HostCore,
 *    Synthesizer, and DataSpace; nothing mutable is shared between
 *    jobs (the retired process-globals — the active Recorder, the
 *    current DataSpace, the EventPool arena, the checkpoint-I/O and
 *    timing-fault hooks — are all thread-local now);
 *  - each job's RNG streams are seeded from its RunConfig alone;
 *  - the shared trace::FuncRegistry is append-only with idempotent
 *    registration and lock-free reads, and every result quantity is
 *    independent of FuncId *values* (layout addresses are assigned in
 *    per-run first-use order, code sizes/structure are keyed by
 *    function name, profiles are ranked with name tie-breaks), so it
 *    does not matter which thread registers a name first.
 *
 * Scheduling order therefore cannot leak into results; the pool is
 * free to steal aggressively.
 *
 * The one sharing hazard left is opt-in: RunConfig::profiler lets a
 * caller attach one self-profiler to several runs. A sim::Profiler
 * instance is not concurrency-safe, so configs sharing a profiler
 * must go through runExperiments with jobs <= 1 (as the examples
 * do when --profile is given).
 */

#ifndef G5P_CORE_PARALLEL_HH
#define G5P_CORE_PARALLEL_HH

#include <functional>
#include <vector>

#include "core/experiment.hh"

namespace g5p::core
{

/**
 * Work-stealing pool over runProfiledSimulation jobs.
 *
 * Jobs are dealt round-robin onto per-worker queues; a worker drains
 * its own queue from the front and, when empty, steals from the back
 * of a victim's queue. Results come back in submission order
 * regardless of completion order.
 */
class ParallelExecutor
{
  public:
    /** @param jobs worker threads; 0 = hardwareJobs(). */
    explicit ParallelExecutor(unsigned jobs = 0);

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /**
     * Run every config through runProfiledSimulation on the pool and
     * return results in submission order. Blocks until all jobs
     * finish. If any job throws, the first failure (in submission
     * order) is rethrown after every worker has drained.
     *
     * With a job wall cap set (setJobWallCap), a job that exceeds it
     * is cut short by the in-simulator watchdog and comes back as a
     * normal result with exitCause == WatchdogTimeout — one hung or
     * pathological config can no longer stall or abort the sweep.
     */
    std::vector<RunResult> run(const std::vector<RunConfig> &configs);

    /**
     * Per-job wall-clock cap in seconds applied to every config run()
     * executes (0 = none). Configs that already supervise with a
     * tighter maxWallSeconds keep their own budget; everything else
     * gets `supervise = true` with this cap. The PR 3 watchdog's
     * event budgets count simulated work — this is the host-time
     * bound a long-running sweep service actually needs.
     */
    void setJobWallCap(double seconds) { jobWallCapSeconds_ = seconds; }
    double jobWallCap() const { return jobWallCapSeconds_; }

    /**
     * Generic form: run @p job for every index in [0, count) on the
     * pool, same dealing/stealing/error policy as run(). The job
     * writes its own results (typically into a pre-sized vector slot
     * at its index, which needs no locking); the same isolation
     * contract applies — a job must touch no mutable state shared
     * with other jobs. The sampling driver runs its detailed
     * intervals through this.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &job);

    /** Worker threads this executor uses. */
    unsigned jobs() const { return jobs_; }

    /** Usable hardware concurrency (never 0). */
    static unsigned hardwareJobs();

  private:
    unsigned jobs_;
    double jobWallCapSeconds_ = 0.0;
};

/**
 * The config @p executor-capped jobs actually run: a copy of
 * @p config with the wall cap folded into its watchdog (identity
 * when @p cap_seconds is 0 or the config already runs under a
 * tighter budget). Exposed so serial and pooled paths stay
 * byte-identical under a cap.
 */
RunConfig withJobWallCap(const RunConfig &config, double cap_seconds);

/**
 * Convenience entry point for sweep loops: serial in submission
 * order when @p jobs <= 1 (the reference path, no pool involved),
 * pooled otherwise. Both paths return byte-identical results.
 * @p wall_cap_seconds bounds each job's host time (0 = unlimited);
 * see ParallelExecutor::setJobWallCap.
 */
std::vector<RunResult>
runExperiments(const std::vector<RunConfig> &configs, unsigned jobs,
               double wall_cap_seconds = 0.0);

} // namespace g5p::core

#endif // G5P_CORE_PARALLEL_HH
