/**
 * @file
 * SimPoint-style interval sampling: estimate detailed-model stats for
 * a whole run while simulating only a few windows of it in detail.
 *
 * A single Atomic pass executes the whole workload once, learning its
 * length and verifying the guest checksum while dropping a crash-safe
 * checkpoint at every W-instruction boundary (the "checkpoint farm").
 * The farm is bounded: checkpoints are staged in memory and, whenever
 * more than maxFarm accumulate, every other one is discarded and the
 * boundary stride doubles — the classic reservoir-thinning scheme —
 * so one pass yields at most maxFarm evenly spaced restore points no
 * matter how long the run is, and only the survivors ever reach disk.
 *
 * K of those boundaries (evenly strided, seed-rotated phase) are then
 * simulated in detail from their checkpoints — restored cross-model
 * via the drain-and-switch machinery — first for `warmup` committed
 * instructions to re-warm microarchitectural state the Atomic pass
 * does not model (branch predictor, pipeline icache behavior), then
 * for exactly W measured instructions. Whole-run IPC and miss rates
 * are the means over the K windows with standard-error bars
 * (stderr = s/sqrt(K), s the sample standard deviation); estimated
 * whole-run cycles are totalInsts / meanIPC.
 *
 * The farm plus a manifest ("<farmPrefix>-manifest.ckpt") persists
 * between runs: a later run with the same (workload, scale, W) skips
 * the Atomic pass entirely and re-samples from the existing farm —
 * possibly with a different model, K, seed or warmup. This mirrors
 * how SimPoint checkpoints are used in gem5 practice: build the farm
 * once, then amortize it over every detailed configuration studied.
 *
 * The detailed intervals are independent simulations, so they run on
 * the ParallelExecutor pool; results are written by interval index,
 * making the extrapolated report byte-identical for serial and
 * --jobs N runs of the same (K, W, seed).
 */

#ifndef G5P_CORE_SAMPLING_HH
#define G5P_CORE_SAMPLING_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "os/system.hh"

namespace g5p::core
{

/** What to sample and how hard. */
struct SamplingConfig
{
    std::string workload = "water_nsquared";
    double scale = 1.0;

    /** Model the sampled intervals run on (Atomic is pointless —
     *  sampling exists to avoid paying for a detailed model). */
    os::CpuModel detailModel = os::CpuModel::O3;

    /** Detailed intervals to simulate (clamped to what the run
     *  length allows; see SamplingResult::intervalsAvailable). */
    unsigned K = 8;

    /** Committed guest instructions per detailed interval. */
    std::uint64_t W = 20000;

    /**
     * Detailed instructions executed before each measured window to
     * re-warm state the Atomic fast-forward does not model (branch
     * predictor, pipeline-driven icache behavior). 0 measures from
     * the cold restore point; the per-interval cold-start transient
     * then biases IPC low by a few percent.
     */
    std::uint64_t warmup = 0;

    /**
     * Upper bound on checkpoints kept in the farm. When the single
     * Atomic pass accumulates more, every other one is dropped and
     * the boundary stride doubles, so long workloads still produce
     * at most this many evenly spaced restore points.
     */
    std::size_t maxFarm = 32;

    /**
     * Reuse an existing farm whose manifest matches this (workload,
     * scale, W), skipping the Atomic pass. The manifest carries the
     * pass's totals, so results are identical either way.
     */
    bool reuseFarm = true;

    /** Worker threads for the detailed intervals (0 = hardware). */
    unsigned jobs = 1;

    /** Offsets which boundaries get picked within the stride, so
     *  different seeds sample different program phases. Same
     *  (K, W, seed) always picks the same intervals. */
    std::uint64_t seed = 1;

    /** Checkpoint-farm path prefix; interval k's checkpoint lands at
     *  "<farmPrefix>-<k>.ckpt". The directory must exist. */
    std::string farmPrefix = "sample-farm";

    /** Base machine configuration; cpuModel, numCpus and
     *  maxInstsPerCpu are overridden per phase. */
    os::SystemConfig base;
};

/** One detailed interval's measurements (deltas over its window). */
struct IntervalSample
{
    std::size_t index = 0;         ///< interval number k (start k*W)
    std::uint64_t startInsts = 0;  ///< committed insts at window start
    std::uint64_t insts = 0;       ///< committed inside the window
    Tick ticks = 0;                ///< simulated ticks in the window
    double cycles = 0;
    double ipc = 0;
    double l1iMissRate = 0;
    double l1dMissRate = 0;
    double l2MissRate = 0;
    double itlbMissRate = 0;
    double dtlbMissRate = 0;
};

/** A sampled metric: mean over the K intervals plus its error bar. */
struct SampleMetric
{
    double mean = 0;
    double stdErr = 0;  ///< s / sqrt(K); 0 when K < 2
};

/** Everything the sampling driver learned. */
struct SamplingResult
{
    std::string workload;
    os::CpuModel detailModel = os::CpuModel::O3;
    unsigned K = 0;         ///< intervals actually simulated
    std::uint64_t W = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 0;
    unsigned jobs = 0;

    /** @{ From the full Atomic pass (or the reused manifest). */
    std::uint64_t totalInsts = 0;
    Tick atomicTicks = 0;
    std::uint64_t guestResult = 0;
    bool resultOk = false;       ///< guest checksum matched
    /** @} */

    /** @{ Checkpoint farm actually used. */
    bool farmReused = false;     ///< manifest matched; pass skipped
    std::size_t farmSize = 0;    ///< boundaries with a checkpoint
    std::size_t farmStride = 0;  ///< boundary spacing, in intervals
    /** @} */

    std::size_t intervalsAvailable = 0;  ///< N = totalInsts / W
    std::vector<IntervalSample> intervals;

    /** @{ Extrapolated whole-run estimates. */
    SampleMetric ipc;
    SampleMetric l1iMissRate;
    SampleMetric l1dMissRate;
    SampleMetric l2MissRate;
    SampleMetric itlbMissRate;
    SampleMetric dtlbMissRate;
    double estCycles = 0;  ///< totalInsts / ipc.mean
    Tick estTicks = 0;     ///< estCycles * clock period
    /** @} */
};

/**
 * Run the sampling phases (combined measure+farm pass — or manifest
 * reuse — then parallel detail) and extrapolate. Throws ConfigError
 * when W is too large for the workload (fewer than two complete
 * intervals, or no boundary leaves room for warmup + W) and
 * WorkloadError / CheckpointError on the usual failures underneath.
 *
 * Deterministic: the same config (including seed and farmPrefix
 * contents being writable) yields a byte-identical printed report
 * regardless of `jobs` and regardless of whether the farm was just
 * built or reused.
 */
SamplingResult runSampledSimulation(const SamplingConfig &config);

/**
 * Fixed-precision, locale-independent report (per-interval table +
 * extrapolated metrics with error bars). Byte-identical across runs
 * of the same config — the determinism gate diffs this output.
 */
void printSamplingReport(std::ostream &os, const SamplingResult &r);

} // namespace g5p::core

#endif // G5P_CORE_SAMPLING_HH
