/**
 * @file
 * Report formatting shared by the bench binaries: fixed-width tables
 * and CSV series, so every figure's regeneration prints the same
 * rows/series the paper plots.
 */

#ifndef G5P_CORE_REPORT_HH
#define G5P_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace g5p::core
{

/** A simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (stringified cells). */
    void addRow(std::vector<std::string> cells);

    /** Print with aligned columns. */
    void print(std::ostream &os) const;

    /** Print as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace g5p::core

#endif // G5P_CORE_REPORT_HH
