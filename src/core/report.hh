/**
 * @file
 * Report formatting shared by the bench binaries: fixed-width tables
 * and CSV series, so every figure's regeneration prints the same
 * rows/series the paper plots.
 */

#ifndef G5P_CORE_REPORT_HH
#define G5P_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace g5p::core
{

/** A simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (stringified cells). */
    void addRow(std::vector<std::string> cells);

    /** Print with aligned columns. */
    void print(std::ostream &os) const;

    /** Print as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

/**
 * Flatten a stats tree into (dotted name, value) pairs via the stats
 * visitor — the one collection step behind golden digests, telemetry
 * export, and ad-hoc reporting.
 */
std::vector<std::pair<std::string, double>>
collectStatValues(const sim::stats::Group &root);

} // namespace g5p::core

#endif // G5P_CORE_REPORT_HH
