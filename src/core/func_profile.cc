#include "core/func_profile.hh"

#include <algorithm>

namespace g5p::core
{

std::size_t
FuncProfile::distinctFunctions() const
{
    std::size_t count = 0;
    for (auto c : calls_)
        if (c > 0)
            ++count;
    return count;
}

std::uint64_t
FuncProfile::totalCalls() const
{
    std::uint64_t total = 0;
    for (auto c : calls_)
        total += c;
    return total;
}

FunctionCdf
FunctionCdf::build(const std::vector<std::uint64_t> &self_ops)
{
    FunctionCdf cdf;
    std::uint64_t total = 0;
    for (auto ops : self_ops)
        total += ops;
    if (total == 0)
        return cdf;

    const auto &registry = trace::FuncRegistry::instance();
    for (trace::FuncId id = 0; id < self_ops.size(); ++id) {
        if (self_ops[id] == 0)
            continue;
        std::string name = id < registry.size()
            ? registry.info(id).name
            : "func#" + std::to_string(id);
        cdf.ranked_.push_back(HotFunction{
            name, self_ops[id],
            (double)self_ops[id] / (double)total});
    }
    // Tie-break by name: std::sort is unstable and FuncId assignment
    // order differs between serial and pooled runs (lazy registration
    // interleaves across threads), so equal self-counts must order on
    // a run-independent key for byte-identical reports.
    std::sort(cdf.ranked_.begin(), cdf.ranked_.end(),
              [](const HotFunction &a, const HotFunction &b) {
                  if (a.selfOps != b.selfOps)
                      return a.selfOps > b.selfOps;
                  return a.name < b.name;
              });
    return cdf;
}

double
FunctionCdf::hottestShare() const
{
    return ranked_.empty() ? 0.0 : ranked_.front().share;
}

double
FunctionCdf::cumulativeShare(std::size_t n) const
{
    double sum = 0;
    for (std::size_t i = 0; i < n && i < ranked_.size(); ++i)
        sum += ranked_[i].share;
    return sum;
}

} // namespace g5p::core
