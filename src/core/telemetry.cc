#include "core/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "base/logging.hh"
#include "base/str.hh"
#include "core/report.hh"

namespace g5p::core
{

namespace
{

/** Attribution rows kept in otherData per session. */
constexpr std::size_t maxAttributionRows = 50;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              (unsigned)(unsigned char)c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON number: finite, plain decimal (no nan/inf, no exponents that
 *  chrome://tracing chokes on for ts). */
std::string
jnum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Microsecond timestamp from a nanosecond offset. */
std::string
jts(std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", (double)ns / 1000.0);
    return buf;
}

/** Comma-separated trace-event emitter. */
class EventSink
{
  public:
    explicit EventSink(std::ostream &os) : os_(os) {}

    void
    emit(const std::string &body)
    {
        if (!first_)
            os_ << ",\n";
        first_ = false;
        os_ << "  " << body;
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

void
emitSession(EventSink &sink, const TraceSession &session, int pid)
{
    const sim::Profiler &prof = *session.profiler;
    const std::string p = std::to_string(pid);

    sink.emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + p +
              ",\"tid\":0,\"args\":{\"name\":\"" +
              jsonEscape(session.label) + "\"}}");
    sink.emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + p +
              ",\"tid\":0,\"args\":{\"name\":\"simulator\"}}");

    // One thread track per registered SimObject; slices whose owner
    // is not a SimObject (e.g. "sim.exit") land on the simulator
    // track (tid 0).
    std::unordered_map<std::string, std::uint32_t> tidByOwner;
    for (const auto &owner : prof.owners()) {
        tidByOwner.emplace(owner.name, owner.id);
        sink.emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                  p + ",\"tid\":" + std::to_string(owner.id) +
                  ",\"args\":{\"name\":\"" + jsonEscape(owner.name) +
                  "\"}}");
    }

    const auto &classes = prof.eventClasses();
    for (const auto &slice : prof.slices()) {
        if (slice.key == 0 || slice.key > classes.size())
            continue;
        const auto &cls = classes[slice.key - 1];
        std::uint32_t tid = 0;
        auto it = tidByOwner.find(cls.owner);
        if (it != tidByOwner.end())
            tid = it->second;
        sink.emit("{\"ph\":\"X\",\"cat\":\"event\",\"name\":\"" +
                  jsonEscape(cls.type) + "\",\"pid\":" + p +
                  ",\"tid\":" + std::to_string(tid) + ",\"ts\":" +
                  jts(slice.startNs) + ",\"dur\":" +
                  jts(slice.durNs) + ",\"args\":{\"tick\":" +
                  std::to_string(slice.tick) + ",\"class\":\"" +
                  jsonEscape(cls.name) + "\"}}");
    }

    for (const auto &span : prof.spans()) {
        sink.emit("{\"ph\":\"X\",\"cat\":\"phase\",\"name\":\"" +
                  jsonEscape(span.name) + "\",\"pid\":" + p +
                  ",\"tid\":0,\"ts\":" + jts(span.startNs) +
                  ",\"dur\":" + jts(span.durNs) +
                  ",\"args\":{\"tick\":" +
                  std::to_string(span.tick) + "}}");
    }

    for (const auto &instant : prof.instants()) {
        sink.emit("{\"ph\":\"i\",\"s\":\"p\",\"name\":\"" +
                  jsonEscape(instant.name) + "\",\"pid\":" + p +
                  ",\"tid\":0,\"ts\":" + jts(instant.atNs) +
                  ",\"args\":{\"tick\":" +
                  std::to_string(instant.tick) + ",\"detail\":\"" +
                  jsonEscape(instant.detail) + "\"}}");
    }

    for (const auto &sample : prof.counterSamples()) {
        const std::string ts = jts(sample.atNs);
        sink.emit("{\"ph\":\"C\",\"name\":\"events/sec\",\"pid\":" +
                  p + ",\"ts\":" + ts + ",\"args\":{\"value\":" +
                  jnum(sample.eventsPerSec) + "}}");
        sink.emit("{\"ph\":\"C\",\"name\":\"queue depth\",\"pid\":" +
                  p + ",\"ts\":" + ts + ",\"args\":{\"value\":" +
                  jnum(sample.queueDepth) + "}}");
        sink.emit("{\"ph\":\"C\",\"name\":\"slowdown\",\"pid\":" + p +
                  ",\"ts\":" + ts + ",\"args\":{\"value\":" +
                  jnum(sample.slowdown) + "}}");
    }
}

void
writeSessionSummary(std::ostream &os, const TraceSession &session)
{
    const sim::Profiler &prof = *session.profiler;
    os << "    {\"label\":\"" << jsonEscape(session.label)
       << "\",\"total_events\":" << prof.totalEvents()
       << ",\"wall_s\":" << jnum(prof.wallSeconds())
       << ",\"dropped_slices\":" << prof.droppedSlices()
       << ",\"sim_ticks\":" << (prof.lastTick() - prof.firstTick())
       << ",\"attribution\":[";

    HostProfile profile = hostProfileFromSelf(prof);
    std::size_t rows =
        std::min(profile.rows.size(), maxAttributionRows);
    for (std::size_t i = 0; i < rows; ++i) {
        const auto &row = profile.rows[i];
        os << (i ? "," : "") << "{\"name\":\""
           << jsonEscape(row.name) << "\",\"wall_ns\":"
           << jnum(row.weight) << ",\"share\":" << jnum(row.share)
           << "}";
    }
    os << "]}";
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceSession> &sessions,
                 const sim::stats::Group *stats)
{
    os << "{\n\"traceEvents\": [\n";
    EventSink sink(os);
    int pid = 1;
    for (const auto &session : sessions) {
        if (session.profiler)
            emitSession(sink, session, pid);
        ++pid;
    }
    os << "\n],\n";
    os << "\"displayTimeUnit\": \"ms\",\n";
    os << "\"otherData\": {\n";
    os << "  \"tool\": \"mg5-profiler\",\n";
    os << "  \"sessions\": [\n";
    bool first = true;
    for (const auto &session : sessions) {
        if (!session.profiler)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        writeSessionSummary(os, session);
    }
    os << "\n  ]";
    if (stats) {
        os << ",\n  \"stats\": {";
        bool firstStat = true;
        for (const auto &[dotted, value] : collectStatValues(*stats)) {
            os << (firstStat ? "" : ",") << "\n    \""
               << jsonEscape(dotted) << "\": " << jnum(value);
            firstStat = false;
        }
        os << "\n  }";
    }
    os << "\n}\n}\n";
}

void
writeChromeTrace(std::ostream &os, const sim::Profiler &profiler,
                 const std::string &label,
                 const sim::stats::Group *stats)
{
    writeChromeTrace(os, {TraceSession{label, &profiler}}, stats);
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceSession> &sessions,
                     const sim::stats::Group *stats)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        g5p_warn("telemetry: cannot open trace file '%s'",
                 path.c_str());
        return false;
    }
    writeChromeTrace(os, sessions, stats);
    os.flush();
    if (!os) {
        g5p_warn("telemetry: short write to trace file '%s'",
                 path.c_str());
        return false;
    }
    return true;
}

double
HostProfile::hottestShare() const
{
    return rows.empty() ? 0.0 : rows.front().share;
}

double
HostProfile::cumulativeShare(std::size_t n) const
{
    double sum = 0;
    for (std::size_t i = 0; i < n && i < rows.size(); ++i)
        sum += rows[i].share;
    return sum;
}

HostProfile
hostProfileFromSelf(const sim::Profiler &profiler)
{
    HostProfile profile;
    profile.unit = "ns";
    double total = 0;
    for (const auto &cls : profiler.eventClasses())
        total += cls.wallNs;
    for (const auto &cls : profiler.eventClasses()) {
        if (cls.wallNs <= 0)
            continue;
        profile.rows.push_back(
            {cls.name, cls.wallNs,
             total > 0 ? cls.wallNs / total : 0.0});
    }
    std::sort(profile.rows.begin(), profile.rows.end(),
              [](const HostProfileRow &a, const HostProfileRow &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.name < b.name;
              });
    return profile;
}

HostProfile
hostProfileFromCdf(const FunctionCdf &cdf)
{
    HostProfile profile;
    profile.unit = "host insts";
    for (const auto &fn : cdf.ranked())
        profile.rows.push_back(
            {fn.name, (double)fn.selfOps, fn.share});
    return profile;
}

void
printHostProfile(std::ostream &os, const std::string &title,
                 const HostProfile &profile, std::size_t top)
{
    printBanner(os, title);
    Table table({"#", "share", "cum", profile.unit, "name"});
    double cum = 0;
    std::size_t rows = std::min(profile.rows.size(), top);
    for (std::size_t i = 0; i < rows; ++i) {
        const auto &row = profile.rows[i];
        cum += row.share;
        table.addRow({std::to_string(i + 1), fmtPercent(row.share),
                      fmtPercent(cum), fmtDouble(row.weight, 0),
                      row.name});
    }
    table.print(os);
    if (profile.rows.size() > rows)
        os << "(+" << (profile.rows.size() - rows)
           << " more entries, "
           << fmtPercent(1.0 - cum)
           << " of the total)\n";
}

} // namespace g5p::core
