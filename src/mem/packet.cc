#include "mem/packet.hh"

#include "base/logging.hh"

namespace g5p::mem
{

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::ReadReq:        return "ReadReq";
      case MemCmd::ReadResp:       return "ReadResp";
      case MemCmd::WriteReq:       return "WriteReq";
      case MemCmd::WriteResp:      return "WriteResp";
      case MemCmd::ReadExReq:      return "ReadExReq";
      case MemCmd::ReadExResp:     return "ReadExResp";
      case MemCmd::WritebackDirty: return "WritebackDirty";
      case MemCmd::InvalidateReq:  return "InvalidateReq";
    }
    return "?";
}

void
Packet::makeResponse()
{
    switch (cmd_) {
      case MemCmd::ReadReq:   cmd_ = MemCmd::ReadResp; break;
      case MemCmd::WriteReq:  cmd_ = MemCmd::WriteResp; break;
      case MemCmd::ReadExReq: cmd_ = MemCmd::ReadExResp; break;
      default:
        g5p_panic("makeResponse on %s", memCmdName(cmd_));
    }
}

std::string
Packet::toString() const
{
    return std::string(memCmdName(cmd_)) + " @" +
        std::to_string(addr_) + " sz" + std::to_string(size_);
}

} // namespace g5p::mem
