#include "mem/packet.hh"

#include "base/sim_error.hh"

namespace g5p::mem
{

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::ReadReq:        return "ReadReq";
      case MemCmd::ReadResp:       return "ReadResp";
      case MemCmd::WriteReq:       return "WriteReq";
      case MemCmd::WriteResp:      return "WriteResp";
      case MemCmd::ReadExReq:      return "ReadExReq";
      case MemCmd::ReadExResp:     return "ReadExResp";
      case MemCmd::WritebackDirty: return "WritebackDirty";
      case MemCmd::InvalidateReq:  return "InvalidateReq";
      case MemCmd::UpgradeReq:     return "UpgradeReq";
      case MemCmd::UpgradeResp:    return "UpgradeResp";
    }
    return "?";
}

void
Packet::makeResponse()
{
    switch (cmd_) {
      case MemCmd::ReadReq:   cmd_ = MemCmd::ReadResp; break;
      case MemCmd::WriteReq:  cmd_ = MemCmd::WriteResp; break;
      case MemCmd::ReadExReq: cmd_ = MemCmd::ReadExResp; break;
      case MemCmd::UpgradeReq: cmd_ = MemCmd::UpgradeResp; break;
      default:
        // A response command here means a packet came back through a
        // request path — a protocol violation (or injected fault), so
        // let the supervisor decide instead of aborting outright.
        g5p_throw(InvariantError, "packet", 0,
                  "makeResponse on %s", memCmdName(cmd_));
    }
}

std::string
Packet::toString() const
{
    return std::string(memCmdName(cmd_)) + " @" +
        std::to_string(addr_) + " sz" + std::to_string(size_);
}

} // namespace g5p::mem
