/**
 * @file
 * Simple DRAM controller: fixed device latency plus a bandwidth-limited
 * channel with FCFS queuing, in the spirit of gem5's SimpleMemory.
 */

#ifndef G5P_MEM_DRAM_HH
#define G5P_MEM_DRAM_HH

#include "mem/packet.hh"
#include "mem/physical.hh"
#include "mem/port.hh"
#include "sim/clocked_object.hh"

namespace g5p::mem
{

/** DRAM timing parameters. */
struct DramParams
{
    Tick accessLatency = 30'000;  ///< ~30ns device latency (ticks)
    Tick ticksPerByte = 0;        ///< 0 = derive from bandwidthGBs
    double bandwidthGBs = 12.8;   ///< channel bandwidth
};

class DramCtrl : public sim::ClockedObject
{
  public:
    DramCtrl(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain, PhysicalMemory &backing,
             const DramParams &params);
    ~DramCtrl() override;

    ResponsePort &port() { return port_; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

    std::uint64_t reads() const
    { return (std::uint64_t)reads_.value(); }
    std::uint64_t writes() const
    { return (std::uint64_t)writes_.value(); }

  private:
    class MemoryPort : public ResponsePort
    {
      public:
        MemoryPort(DramCtrl &ctrl, const std::string &name)
            : ResponsePort(name), ctrl_(ctrl)
        {}
        Tick recvAtomic(Packet &pkt) override
        { return ctrl_.recvAtomic(pkt); }
        void recvFunctional(Packet &pkt) override
        { ctrl_.recvFunctional(pkt); }
        void recvTimingReq(PacketPtr pkt) override
        { ctrl_.recvTimingReq(pkt); }

      private:
        DramCtrl &ctrl_;
    };

    Tick recvAtomic(Packet &pkt);
    void recvFunctional(Packet &pkt);
    void recvTimingReq(PacketPtr pkt);

    /** Occupancy cost of one transfer on the channel. */
    Tick serviceTicks(unsigned bytes) const;

    /** Account the access and return its completion delay. */
    Tick access(Packet &pkt);

    PhysicalMemory &backing_;
    DramParams params_;
    Tick channelFreeAt_ = 0;

    MemoryPort port_;

    sim::stats::Scalar reads_;
    sim::stats::Scalar writes_;
    sim::stats::Scalar bytesTransferred_;
    sim::stats::Scalar queueDelayTicks_;
};

} // namespace g5p::mem

#endif // G5P_MEM_DRAM_HH
