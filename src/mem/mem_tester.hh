/**
 * @file
 * Coherence stress tester, after gem5's RubyRandomTester / MemTest.
 *
 * The tester builds its own private memory rig — N "tester cores"
 * (bare request ports, no ISA) each behind a private L1D, a coherent
 * xbar with its snoop filter, a shared L2 and DRAM over a functional
 * backing store — and hammers it with a seeded random mix of loads
 * and stores designed to maximise protocol stress:
 *
 *  - an *action pool* of false-shared lines: every core owns a 4-byte
 *    slot inside each line, so stores from different cores fight for
 *    ownership of the same line (S->M upgrades, invalidations,
 *    upgrade/fill races) while never aliasing each other's bytes;
 *  - a *check pool* of read-only lines holding a fixed seeded
 *    pattern, so wrong-address or wrong-data plumbing shows up as a
 *    pattern mismatch.
 *
 * Verification is layered: every load is value-checked against the
 * host-side last-writer table at completion time; after every
 * completed op the tester sweeps the pool lines and asserts the
 * protocol invariants (at most one writable holder per line; every
 * valid copy is covered by the xbar's snoop filter); and the run
 * itself proves forward progress — a lost response deadlocks the
 * event queue, which the simulator's activity probe reports.
 * Violations are collected (not fatal) so tests can print them with
 * the flight-recorder diagnostic dump.
 */

#ifndef G5P_MEM_MEM_TESTER_HH
#define G5P_MEM_MEM_TESTER_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/physical.hh"
#include "mem/port.hh"
#include "mem/xbar.hh"
#include "sim/clocked_object.hh"

namespace g5p::mem
{

/** Tester shape and op mix. */
struct MemTesterParams
{
    unsigned numCores = 2;        ///< tester cores (1..16)
    std::uint64_t seed = 1;       ///< master seed (per-core streams)
    std::uint64_t opsPerCore = 1000;
    unsigned actionLines = 4;     ///< false-shared, written pool
    unsigned checkLines = 8;      ///< read-only patterned pool
    bool atomicMode = false;      ///< drive the atomic protocol
    unsigned maxDelayCycles = 8;  ///< random gap between ops
    unsigned percentChecks = 30;  ///< check-pool reads
    unsigned percentWrites = 35;  ///< action writes (rest: action reads)
    std::uint64_t memBytes = 1 << 20;
};

class MemTester : public sim::ClockedObject
{
  public:
    MemTester(sim::Simulator &sim, const std::string &name,
              const MemTesterParams &params);
    ~MemTester() override;

    void startup() override;

    /** @{ Pool layout in the tester's private address space. */
    static constexpr Addr actionBase = 0x40000;
    static constexpr Addr checkBase = 0x80000;
    /** @} */

    /** True once every core has completed its op budget. */
    bool allDone() const;

    /** Invariant/value-check failures, in detection order. */
    const std::vector<std::string> &violations() const
    { return violations_; }

    /** @{ Progress counters. */
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t checkReads() const { return checkReads_; }
    std::uint64_t sweeps() const { return sweeps_; }
    /** @} */

    /** @{ Race counters summed over the tester L1s. */
    std::uint64_t upgradeRaces() const;
    std::uint64_t fillRaces() const;
    /** @} */

    /** @{ Rig access for white-box assertions. */
    CoherentXbar &testXbar() { return *xbar_; }
    Cache &l1(unsigned i) { return *l1s_.at(i); }
    unsigned numCores() const { return params_.numCores; }
    /** @} */

    void regStats() override;

  private:
    class CorePort : public RequestPort
    {
      public:
        CorePort(MemTester &tester, unsigned index,
                 const std::string &name)
            : RequestPort(name), tester_(tester), index_(index)
        {}
        void recvTimingResp(PacketPtr pkt) override
        { tester_.completeTiming(index_, pkt); }

      private:
        MemTester &tester_;
        unsigned index_;
    };

    /** One outstanding-op-at-a-time tester core. */
    struct Core
    {
        Rng rng{0};
        std::unique_ptr<CorePort> port;
        std::uint64_t done = 0;
        std::uint64_t writeSeq = 0;
        bool busy = false;
        /** @{ The op in flight (timing mode). */
        bool isWrite = false;
        bool isCheck = false;     ///< read from the check pool
        Addr addr = 0;
        unsigned size = 0;
        std::uint64_t storeVal = 0;
        unsigned targetLine = 0;  ///< action-pool index
        unsigned targetSlot = 0;  ///< action-pool slot (core index)
        std::uint64_t checkExpect = 0;
        /** @} */
    };

    /** Address of @p core's private slot in action line @p line. */
    Addr slotAddr(unsigned line, unsigned core) const
    { return actionBase + (Addr)line * lineBytes + core * 4; }

    /** Seeded pattern word @p word of check line @p line. */
    std::uint64_t checkPattern(unsigned line, unsigned word) const;

    /** Pick the next op for @p core into its in-flight fields. */
    void chooseOp(unsigned core);

    /** Run one op (choose, access, verify, reschedule). */
    void tick(unsigned core);

    void completeTiming(unsigned core, PacketPtr pkt);

    /** Functional access + value check at completion time. */
    void finishAccess(unsigned core);

    /** Book-keeping after an op fully completes. */
    void finishOp(unsigned core);

    void scheduleNext(unsigned core);

    /** Assert the protocol invariants over both pools. */
    void sweepInvariants();

    void fail(const std::string &what);

    MemTesterParams params_;

    std::unique_ptr<PhysicalMemory> physmem_;
    std::unique_ptr<DramCtrl> dram_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<CoherentXbar> xbar_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<Core> cores_;

    /** Host-side truth: last completed store per action slot,
     *  indexed [line * numCores + slot]. */
    std::vector<std::uint64_t> lastValue_;

    std::vector<std::string> violations_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t checkReads_ = 0;
    std::uint64_t sweeps_ = 0;
    unsigned finishedCores_ = 0;

    sim::stats::Scalar statLoads_;
    sim::stats::Scalar statStores_;
    sim::stats::Scalar statChecks_;
};

} // namespace g5p::mem

#endif // G5P_MEM_MEM_TESTER_HH
