#include "mem/physical.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace g5p::mem
{

PhysicalMemory::PhysicalMemory(sim::Simulator &sim,
                               const std::string &name,
                               std::uint64_t size_bytes)
    : sim::SimObject(sim, name, nullptr, /* descriptor only */ 128),
      data_(size_bytes, 0),
      touchedPages_((size_bytes >> pageShift) + 1, false)
{
    // The array itself is the dominant simulator data structure;
    // register it so host-side data refs land inside it.
    hostBase_ = trace::DataSpace::instance().alloc(size_bytes);
}

std::uint64_t
PhysicalMemory::peek(Addr addr, unsigned size) const
{
    checkRange(addr, size);
    std::uint64_t v = 0;
    std::memcpy(&v, data_.data() + addr, size);
    return v;
}

std::uint8_t
PhysicalMemory::flipBit(Addr addr, unsigned bit)
{
    checkRange(addr, 1);
    g5p_assert(bit < 8, "flipBit: bit index %u out of range", bit);
    data_[addr] ^= (std::uint8_t)(1u << bit);
    return data_[addr];
}

std::uint64_t
PhysicalMemory::contentDigest() const
{
    std::uint64_t hash = 14695981039346656037ULL;
    auto mix = [&hash](std::uint8_t byte) {
        hash = (hash ^ byte) * 1099511628211ULL;
    };
    for (std::uint64_t p = 0; p < touchedPages_.size(); ++p) {
        if (!touchedPages_[p])
            continue;
        for (unsigned i = 0; i < 8; ++i)
            mix((std::uint8_t)(p >> (8 * i)));
        const std::uint8_t *page = data_.data() + (p << pageShift);
        std::uint64_t bytes = std::min<std::uint64_t>(
            std::uint64_t{1} << pageShift,
            data_.size() - (p << pageShift));
        for (std::uint64_t i = 0; i < bytes; ++i)
            mix(page[i]);
    }
    return hash;
}

void
PhysicalMemory::writeBlock(Addr addr, const void *src, std::size_t len)
{
    g5p_assert(addr + len <= data_.size(),
               "writeBlock out of range");
    std::memcpy(data_.data() + addr, src, len);
    for (Addr a = addr; a < addr + len; a += (1u << pageShift))
        touch(a);
}

void
PhysicalMemory::serialize(sim::CheckpointOut &cp) const
{
    // Store only touched pages, as gem5 compresses checkpoints.
    cp.param("size", data_.size());
    std::vector<std::uint64_t> pages;
    for (std::uint64_t p = 0; p < touchedPages_.size(); ++p)
        if (touchedPages_[p])
            pages.push_back(p);
    cp.paramVector("touchedPages", pages);
    for (std::uint64_t p : pages) {
        std::vector<std::uint64_t> words((1u << pageShift) / 8);
        std::memcpy(words.data(), data_.data() + (p << pageShift),
                    1u << pageShift);
        cp.paramVector("page" + std::to_string(p), words);
    }
}

void
PhysicalMemory::unserialize(const sim::CheckpointIn &cp)
{
    std::uint64_t size = 0;
    cp.param("size", size);
    g5p_assert(size == data_.size(),
               "checkpoint memory size mismatch");
    std::vector<std::uint64_t> pages;
    cp.paramVector("touchedPages", pages);
    for (std::uint64_t p : pages) {
        std::vector<std::uint64_t> words;
        cp.paramVector("page" + std::to_string(p), words);
        g5p_assert(words.size() == (1u << pageShift) / 8,
                   "corrupt checkpoint page");
        std::memcpy(data_.data() + (p << pageShift), words.data(),
                    1u << pageShift);
        touch(p << pageShift);
    }
}

void
PhysicalMemory::regStats()
{
    addStat(&statReads_, "reads", "functional reads");
    addStat(&statWrites_, "writes", "functional writes");
    addStat(&statPagesTouched_, "pagesTouched",
            "distinct 4KB pages ever written or read");
    statPagesTouched_.functor([this] {
        return (double)pagesTouched_;
    });
}

} // namespace g5p::mem
