#include "mem/path_factory.hh"

namespace g5p::mem
{

namespace
{

class StandardMemPathFactory final : public MemPathFactory
{
  public:
    CacheHandles
    makeCache(sim::Simulator &sim, const std::string &name,
              const sim::ClockDomain &domain,
              const CacheParams &params) override
    {
        auto cache = std::make_unique<Cache>(sim, name, domain,
                                             params);
        CacheHandles handles;
        handles.cpuSide = &cache->cpuSidePort();
        handles.memSide = &cache->memSidePort();
        handles.object = std::move(cache);
        return handles;
    }

    XbarHandles
    makeXbar(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain,
             const XbarParams &params) override
    {
        auto xbar = std::make_unique<CoherentXbar>(sim, name, domain,
                                                   params);
        XbarHandles handles;
        handles.memSide = &xbar->memSidePort();
        handles.object = std::move(xbar);
        return handles;
    }

    ResponsePort &
    addUpstreamPort(sim::SimObject &xbar,
                    sim::SimObject *snooper) override
    {
        // Downcasts are safe by contract: both objects came out of
        // this factory's make* calls.
        return static_cast<CoherentXbar &>(xbar).addUpstreamPort(
            static_cast<Cache *>(snooper));
    }
};

} // namespace

MemPathFactory &
MemPathFactory::standard()
{
    static StandardMemPathFactory factory;
    return factory;
}

} // namespace g5p::mem
