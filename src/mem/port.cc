#include "mem/port.hh"

namespace g5p::mem
{

void
RequestPort::bind(ResponsePort &peer)
{
    g5p_assert(!peer_, "port '%s' already bound", name_.c_str());
    g5p_assert(!peer.peer_, "port '%s' already bound",
               peer.name().c_str());
    peer_ = &peer;
    peer.peer_ = this;
}

void
RequestPort::unbind()
{
    if (!peer_)
        return;
    peer_->peer_ = nullptr;
    peer_ = nullptr;
}

} // namespace g5p::mem
