#include "mem/port.hh"

namespace g5p::mem
{

namespace
{

// Thread-local: a FaultInjector interposes on its own run only;
// concurrent clean runs on other threads must not see its hook.
constinit thread_local TimingFaultHook *installedHook = nullptr;

} // namespace

TimingFaultHook *
TimingFaultHook::install(TimingFaultHook *hook)
{
    TimingFaultHook *prev = installedHook;
    installedHook = hook;
    return prev;
}

TimingFaultHook *
TimingFaultHook::current()
{
    return installedHook;
}

void
RequestPort::bind(ResponsePort &peer)
{
    g5p_assert(!peer_, "port '%s' already bound", name_.c_str());
    g5p_assert(!peer.peer_, "port '%s' already bound",
               peer.name().c_str());
    peer_ = &peer;
    peer.peer_ = this;
}

void
RequestPort::unbind()
{
    if (!peer_)
        return;
    peer_->peer_ = nullptr;
    peer_ = nullptr;
}

Tick
RequestPort::sendAtomic(Packet &pkt)
{
    g5p_assert(peer_, "atomic access through unbound port '%s'",
               name_.c_str());
    return peer_->recvAtomic(pkt);
}

void
RequestPort::sendFunctional(Packet &pkt)
{
    g5p_assert(peer_, "functional access through unbound port '%s'",
               name_.c_str());
    peer_->recvFunctional(pkt);
}

void
RequestPort::sendTimingReq(PacketPtr pkt)
{
    g5p_assert(peer_, "timing access through unbound port '%s'",
               name_.c_str());
    peer_->recvTimingReq(pkt);
}

void
ResponsePort::sendTimingResp(PacketPtr pkt)
{
    g5p_assert(peer_, "response through unbound port '%s'",
               name_.c_str());
    if (installedHook &&
        !installedHook->onTimingResp(*this, *peer_, pkt))
        return;
    peer_->recvTimingResp(pkt);
}

} // namespace g5p::mem
