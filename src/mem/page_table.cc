#include "mem/page_table.hh"

#include "base/logging.hh"
#include "trace/recorder.hh"

namespace g5p::mem
{

void
PageTable::map(Addr vaddr, Addr paddr, bool writable, bool executable)
{
    std::uint64_t vpn = vaddr >> guestPageShift;
    entries_[vpn] = PageEntry{paddr >> guestPageShift, writable,
                              executable};
}

void
PageTable::mapRange(Addr vaddr, Addr paddr, std::uint64_t bytes,
                    bool writable, bool executable)
{
    g5p_assert((vaddr & (guestPageBytes - 1)) ==
               (paddr & (guestPageBytes - 1)),
               "misaligned page mapping");
    Addr v = vaddr & ~(Addr)(guestPageBytes - 1);
    Addr p = paddr & ~(Addr)(guestPageBytes - 1);
    Addr end = vaddr + bytes;
    for (; v < end; v += guestPageBytes, p += guestPageBytes)
        map(v, p, writable, executable);
}

void
PageTable::unmap(Addr vaddr)
{
    entries_.erase(vaddr >> guestPageShift);
}

Translation
PageTable::translate(Addr vaddr) const
{
    G5P_TRACE_SCOPE("PageTable::translate", TlbWalk, false);
    auto it = entries_.find(vaddr >> guestPageShift);
    if (it == entries_.end())
        return Translation{};
    const PageEntry &e = it->second;
    return Translation{
        (e.pfn << guestPageShift) | (vaddr & (guestPageBytes - 1)),
        true, e.writable, e.executable};
}

} // namespace g5p::mem
