#include "mem/page_table.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/serialize.hh"
#include "trace/recorder.hh"

namespace g5p::mem
{

void
PageTable::map(Addr vaddr, Addr paddr, bool writable, bool executable)
{
    std::uint64_t vpn = vaddr >> guestPageShift;
    entries_[vpn] = PageEntry{paddr >> guestPageShift, writable,
                              executable};
}

void
PageTable::mapRange(Addr vaddr, Addr paddr, std::uint64_t bytes,
                    bool writable, bool executable)
{
    g5p_assert((vaddr & (guestPageBytes - 1)) ==
               (paddr & (guestPageBytes - 1)),
               "misaligned page mapping");
    Addr v = vaddr & ~(Addr)(guestPageBytes - 1);
    Addr p = paddr & ~(Addr)(guestPageBytes - 1);
    Addr end = vaddr + bytes;
    for (; v < end; v += guestPageBytes, p += guestPageBytes)
        map(v, p, writable, executable);
}

void
PageTable::unmap(Addr vaddr)
{
    entries_.erase(vaddr >> guestPageShift);
}

Translation
PageTable::translate(Addr vaddr) const
{
    G5P_TRACE_SCOPE("PageTable::translate", TlbWalk, false);
    auto it = entries_.find(vaddr >> guestPageShift);
    if (it == entries_.end())
        return Translation{};
    const PageEntry &e = it->second;
    return Translation{
        (e.pfn << guestPageShift) | (vaddr & (guestPageBytes - 1)),
        true, e.writable, e.executable};
}

void
PageTable::serialize(sim::CheckpointOut &cp) const
{
    std::vector<std::uint64_t> vpns, pfns, flags;
    vpns.reserve(entries_.size());
    for (const auto &[vpn, entry] : entries_)
        vpns.push_back(vpn);
    std::sort(vpns.begin(), vpns.end());
    for (std::uint64_t vpn : vpns) {
        const PageEntry &e = entries_.at(vpn);
        pfns.push_back(e.pfn);
        flags.push_back((e.writable ? 1u : 0u) |
                        (e.executable ? 2u : 0u));
    }
    cp.paramVector("ptVpns", vpns);
    cp.paramVector("ptPfns", pfns);
    cp.paramVector("ptFlags", flags);
}

void
PageTable::unserialize(const sim::CheckpointIn &cp)
{
    std::vector<std::uint64_t> vpns, pfns, flags;
    cp.paramVector("ptVpns", vpns);
    cp.paramVector("ptPfns", pfns);
    cp.paramVector("ptFlags", flags);
    g5p_assert(vpns.size() == pfns.size() &&
               vpns.size() == flags.size(),
               "corrupt page-table checkpoint");
    entries_.clear();
    for (std::size_t i = 0; i < vpns.size(); ++i)
        entries_[vpns[i]] = PageEntry{pfns[i],
                                      (flags[i] & 1u) != 0,
                                      (flags[i] & 2u) != 0};
}

} // namespace g5p::mem
