/**
 * @file
 * Guest TLB: a set-associative translation cache in front of the
 * functional page table, charging a fixed walk latency on misses.
 * Each CPU has an I-TLB and a D-TLB, as gem5's ARM configurations do.
 */

#ifndef G5P_MEM_TLB_HH
#define G5P_MEM_TLB_HH

#include <vector>

#include "mem/page_table.hh"
#include "sim/sim_object.hh"

namespace g5p::mem
{

/** TLB geometry. */
struct TlbParams
{
    unsigned entries = 64;
    unsigned assoc = 4;
    Cycles walkLatency = 20; ///< miss penalty (functional walk)
};

class Tlb : public sim::SimObject
{
  public:
    Tlb(sim::Simulator &sim, const std::string &name,
        const TlbParams &params);

    /** Bind the backing page table (Process or kernel owns it). */
    void setPageTable(const PageTable *table) { pageTable_ = table; }

    /** The bound page table (e.g. for functional re-translation). */
    const PageTable *pageTable() const { return pageTable_; }

    /** Result of a TLB lookup. */
    struct Result
    {
        Translation translation;
        bool hit = false;
        Cycles latency = 0; ///< 0 on hit, walkLatency on miss
    };

    /** Translate @p vaddr (guest virtual). */
    Result translate(Addr vaddr);

    /** Drop all entries (context switch). */
    void flush();

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

    std::uint64_t hits() const
    { return (std::uint64_t)hits_.value(); }
    std::uint64_t misses() const
    { return (std::uint64_t)misses_.value(); }

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        Translation translation;
        bool valid = false;
        std::uint64_t lastUsed = 0;
    };

    TlbParams params_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    std::uint64_t lruCounter_ = 0;
    const PageTable *pageTable_ = nullptr;

    sim::stats::Scalar hits_;
    sim::stats::Scalar misses_;
    sim::stats::Formula missRate_;
};

} // namespace g5p::mem

#endif // G5P_MEM_TLB_HH
