/**
 * @file
 * FaultInjector: deterministic, seeded fault injection for robustness
 * testing.
 *
 * A profiling campaign that survives hardware-grade misbehaviour needs
 * to be *tested* against that misbehaviour. The injector produces
 * three fault families, all driven by one seeded Rng so every scenario
 * replays bit-identically:
 *
 *  - DRAM bit flips: scheduled events that flip one bit of the
 *    PhysicalMemory backing store behind the simulation's back
 *    (PhysicalMemory::flipBit — no stats, no trace side effects);
 *  - timing-response faults: via the TimingFaultHook interposer the
 *    injector drops or delays responses anywhere in the memory system
 *    (a dropped response wedges the requesting CPU, which the
 *    Simulator watchdog then reports as a deadlock);
 *  - checkpoint I/O failures: an injected CheckpointIo shim fails the
 *    first N writes and/or reads with a CheckpointError, exercising
 *    the retry/backoff and corruption-rejection paths.
 *
 * The injector installs its hooks (TimingFaultHook, CheckpointIo) on
 * construction and restores the previous ones on destruction; the
 * hooks are thread-local (PR 5), so each pooled simulation sees at
 * most its own injector.
 *
 * Multi-core determinism contract (PR 8): on an N-core guest every
 * fault family is well-defined per core, not a function of how the
 * cores' memory traffic happens to interleave —
 *
 *  - bit flips draw from a dedicated stream, so the flip schedule
 *    (addresses, bits, ticks) is identical for every core count and
 *    CPU model given the same params;
 *  - timing-response faults draw from a per-requesting-core stream
 *    keyed by Packet::requestorId (the CPU id; responses with no
 *    requestor, e.g. tester probes, use a shared fallback stream),
 *    so whether core 0's third response is dropped cannot depend on
 *    core 1's traffic volume. respFaultMax likewise bounds faults
 *    *per core* (single-core behaviour is unchanged).
 */

#ifndef G5P_MEM_FAULT_INJECTOR_HH
#define G5P_MEM_FAULT_INJECTOR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "base/random.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"

namespace g5p::mem
{

class PhysicalMemory;

/** Knobs for FaultInjector. Defaults inject nothing. */
struct FaultInjectorParams
{
    /** Seed for the fault Rng (address, bit and chance draws). */
    std::uint64_t seed = 1;

    /** @{ DRAM bit flips: @p bitFlips flips starting at tick
     *  @p firstFlipAt, one every @p flipPeriod ticks, at uniform
     *  random byte/bit positions in [flipBase, flipBase+flipBytes)
     *  (flipBytes 0 = up to the end of memory). */
    unsigned bitFlips = 0;
    Addr flipBase = 0;
    std::uint64_t flipBytes = 0;
    Tick firstFlipAt = 0;
    Tick flipPeriod = 1'000'000;
    /** @} */

    /** @{ Timing-response faults: each response is independently
     *  dropped with @p dropChance, else delayed by @p delayTicks with
     *  @p delayChance, drawn from the requesting core's own stream.
     *  At most @p respFaultMax faults are injected *per core*
     *  (0 = unlimited). */
    double dropChance = 0.0;
    double delayChance = 0.0;
    Tick delayTicks = 0;
    unsigned respFaultMax = 0;
    /** @} */

    /** @{ Checkpoint I/O: fail the first @p failWrites writeText and
     *  @p failReads readText calls with a CheckpointError. */
    unsigned failWrites = 0;
    unsigned failReads = 0;
    /** @} */
};

class FaultInjector : public sim::SimObject, private TimingFaultHook
{
  public:
    FaultInjector(sim::Simulator &sim, const std::string &name,
                  const FaultInjectorParams &params);
    ~FaultInjector() override;

    /** Target of the bit-flip campaign (required if bitFlips > 0). */
    void setMemory(PhysicalMemory *mem) { mem_ = mem; }

    const FaultInjectorParams &params() const { return params_; }

    /** @{ Faults injected so far (aggregate over all cores). */
    unsigned flipsInjected() const { return flipsDone_; }
    unsigned dropsInjected() const { return dropsDone_; }
    unsigned delaysInjected() const { return delaysDone_; }
    unsigned ioFaultsInjected() const { return ioFaultsDone_; }
    /** @} */

    /** @{ Per-core response-fault counts (0 for untouched cores;
     *  pass -1 for the shared no-requestor stream). */
    unsigned dropsInjectedOn(int core) const;
    unsigned delaysInjectedOn(int core) const;
    /** @} */

    /** The bit flips performed so far, in schedule order. */
    const std::vector<std::pair<Addr, unsigned>> &flipLog() const
    { return flipLog_; }

    void init() override;
    void startup() override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

  private:
    /** Injected checkpoint-I/O shim failing the first N calls. */
    class FaultyIo : public sim::CheckpointIo
    {
      public:
        explicit FaultyIo(FaultInjector &owner) : owner_(owner) {}
        void writeText(const std::string &path,
                       const std::string &text) override;
        std::string readText(const std::string &path) override;

      private:
        FaultInjector &owner_;
    };

    bool onTimingResp(ResponsePort &src, RequestPort &dst,
                      PacketPtr pkt) override;

    /** Flip-event action: corrupt one bit, schedule the next flip. */
    void doFlip();

    /** Per-core state for the timing-response fault family. */
    struct CoreFaults
    {
        Rng rng{0};
        unsigned drops = 0;
        unsigned delays = 0;
    };

    /** The fault stream of requestor @p core (grown on demand;
     *  core < 0 selects the shared fallback stream). */
    CoreFaults &coreFaults(int core);

    /** Seed of core @p core's response stream (stable per core, so
     *  growth order cannot matter). */
    std::uint64_t coreSeed(int core) const;

    FaultInjectorParams params_;
    /** Dedicated bit-flip stream: the flip schedule is a function of
     *  the params alone, never of response traffic. */
    Rng flipRng_;
    PhysicalMemory *mem_ = nullptr;

    unsigned flipsDone_ = 0;
    unsigned dropsDone_ = 0;
    unsigned delaysDone_ = 0;
    unsigned ioFaultsDone_ = 0;
    unsigned writeFailsLeft_ = 0;
    unsigned readFailsLeft_ = 0;

    std::vector<std::pair<Addr, unsigned>> flipLog_;
    /** Per-requestor streams, indexed by core id (grown on demand). */
    std::vector<CoreFaults> perCore_;
    /** Fallback stream for responses with no requestor id. */
    CoreFaults shared_;

    FaultyIo io_;
    TimingFaultHook *prevHook_ = nullptr;
    sim::CheckpointIo *prevIo_ = nullptr;

    sim::MemberEventWrapper<&FaultInjector::doFlip> flipEvent_;

    sim::stats::Scalar statFlips_;
    sim::stats::Scalar statDrops_;
    sim::stats::Scalar statDelays_;
    sim::stats::Scalar statIoFaults_;
};

} // namespace g5p::mem

#endif // G5P_MEM_FAULT_INJECTOR_HH
