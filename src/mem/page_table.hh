/**
 * @file
 * Functional guest page table (gem5 SE-mode style): a vpn -> pfn map
 * managed by the Process (SE) or the FS-lite kernel (FS).
 */

#ifndef G5P_MEM_PAGE_TABLE_HH
#define G5P_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "base/types.hh"

namespace g5p::sim
{
class CheckpointIn;
class CheckpointOut;
} // namespace g5p::sim

namespace g5p::mem
{

/** Guest page size (4KB, as the paper's simulated ARM systems). */
constexpr unsigned guestPageBytes = 4096;
constexpr unsigned guestPageShift = 12;

/** One translation entry. */
struct PageEntry
{
    Addr pfn = 0;        ///< physical frame number
    bool writable = true;
    bool executable = true;
};

/** Result of a translation. */
struct Translation
{
    Addr paddr = 0;
    bool valid = false;
    bool writable = false;
    bool executable = false;
};

class PageTable
{
  public:
    /** Map one page: vpn(vaddr) -> pfn(paddr). */
    void map(Addr vaddr, Addr paddr, bool writable = true,
             bool executable = true);

    /** Map a contiguous range (sizes rounded up to pages). */
    void mapRange(Addr vaddr, Addr paddr, std::uint64_t bytes,
                  bool writable = true, bool executable = true);

    /** Remove a mapping. */
    void unmap(Addr vaddr);

    /** Translate @p vaddr; invalid Translation if unmapped. */
    Translation translate(Addr vaddr) const;

    /** Number of mapped pages. */
    std::size_t size() const { return entries_.size(); }

    /** Write all mappings (sorted by vpn) into the current section. */
    void serialize(sim::CheckpointOut &cp) const;

    /** Replace all mappings with the checkpointed set. */
    void unserialize(const sim::CheckpointIn &cp);

  private:
    std::unordered_map<std::uint64_t, PageEntry> entries_;
};

} // namespace g5p::mem

#endif // G5P_MEM_PAGE_TABLE_HH
