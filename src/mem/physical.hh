/**
 * @file
 * PhysicalMemory: the functional backing store for guest memory.
 *
 * All byte data lives here (see mem/packet.hh for the timing/functional
 * split). The backing array registers itself with the host-trace
 * DataSpace, so every guest byte has a stable host address — when mg5
 * touches guest memory, the host d-cache model sees the touch at the
 * corresponding address. This reproduces the paper's observation that
 * gem5's dynamic working set grows only as fast as the simulated
 * workload touches new pages (§IV-A).
 */

#ifndef G5P_MEM_PHYSICAL_HH
#define G5P_MEM_PHYSICAL_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/logging.hh"
#include "sim/sim_object.hh"

namespace g5p::mem
{

class PhysicalMemory : public sim::SimObject
{
  public:
    PhysicalMemory(sim::Simulator &sim, const std::string &name,
                   std::uint64_t size_bytes);

    std::uint64_t size() const { return data_.size(); }

    /**
     * Read up to 8 bytes (little endian) at @p addr.
     *
     * Defined inline: every simulated instruction fetch and data
     * access funnels through here, and the call overhead alone was
     * visible in whole-run profiles.
     */
    std::uint64_t
    read(Addr addr, unsigned size) const
    {
        G5P_TRACE_SCOPE("PhysicalMemory::read", MemAccess, false);
        checkRange(addr, size);
        touch(addr);
        trace::recordData(hostBase_ + addr, size, false);
        std::uint64_t v = 0;
        std::memcpy(&v, data_.data() + addr, size);
        statReads_ += 1;
        return v;
    }

    /** Write up to 8 bytes at @p addr. */
    void
    write(Addr addr, unsigned size, std::uint64_t value)
    {
        G5P_TRACE_SCOPE("PhysicalMemory::write", MemAccess, false);
        checkRange(addr, size);
        touch(addr);
        trace::recordData(hostBase_ + addr, size, true);
        std::memcpy(data_.data() + addr, &value, size);
        statWrites_ += 1;
    }

    /** Bulk load (program images). */
    void writeBlock(Addr addr, const void *src, std::size_t len);

    /**
     * Non-instrumented read: no stats, no page touch, no host-trace
     * record. For checkpoint restore (re-decoding pipeline contents)
     * and test digests, where an observing read must not perturb the
     * simulation.
     */
    std::uint64_t peek(Addr addr, unsigned size) const;

    /**
     * FNV-1a digest over every touched page (index and bytes).
     * Non-instrumented, like peek().
     */
    std::uint64_t contentDigest() const;

    /**
     * Flip one bit of the backing store without stats, page touch or
     * host-trace side effects: models a soft error striking DRAM
     * behind the simulation's back (used by the FaultInjector).
     * @return the byte value after the flip.
     */
    std::uint8_t flipBit(Addr addr, unsigned bit);

    /** Host address corresponding to guest physical @p addr. */
    HostAddr hostAddr(Addr addr) const { return hostBase_ + addr; }

    /** Number of distinct 4KB pages ever touched. */
    std::uint64_t pagesTouched() const { return pagesTouched_; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

  private:
    static constexpr unsigned pageShift = 12; // 4KB guest pages

    void
    checkRange(Addr addr, unsigned size) const
    {
        g5p_assert(size > 0 && size <= 8, "bad access size %u", size);
        g5p_assert(addr + size <= data_.size(),
                   "physical access out of range: %#llx+%u > %#llx",
                   (unsigned long long)addr, size,
                   (unsigned long long)data_.size());
    }

    void
    touch(Addr addr) const
    {
        std::uint64_t page = addr >> pageShift;
        if (!touchedPages_[page]) {
            touchedPages_[page] = true;
            ++pagesTouched_;
        }
    }

    mutable std::vector<std::uint8_t> data_;
    mutable std::vector<bool> touchedPages_;
    mutable std::uint64_t pagesTouched_ = 0;
    HostAddr hostBase_;

    mutable sim::stats::Scalar statReads_;
    mutable sim::stats::Scalar statWrites_;
    sim::stats::Formula statPagesTouched_;
};

} // namespace g5p::mem

#endif // G5P_MEM_PHYSICAL_HH
