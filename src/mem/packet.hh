/**
 * @file
 * Memory request/response packets, after gem5's classic-memory Packet.
 *
 * Design note: mg5 separates *functional* data movement from *timing*.
 * Byte data lives only in PhysicalMemory and is read/written
 * functionally at access time; caches carry tag/dirty state and model
 * latency, occupancy and coherence traffic. This "timing-tags +
 * functional backing store" organization (used by e.g. zsim) keeps the
 * memory system exact in what the profiling study needs — event counts,
 * function footprint, latencies — without per-line data arrays.
 */

#ifndef G5P_MEM_PACKET_HH
#define G5P_MEM_PACKET_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "mem/packet_pool.hh"
#include "trace/recorder.hh"

namespace g5p::mem
{

/** Guest cache line size in bytes (all levels). */
constexpr unsigned lineBytes = 64;

/** Packet commands. */
enum class MemCmd : std::uint8_t
{
    ReadReq,        ///< demand read (data or ifetch)
    ReadResp,
    WriteReq,       ///< demand write
    WriteResp,
    ReadExReq,      ///< read-for-ownership (store miss fill)
    ReadExResp,
    WritebackDirty, ///< eviction of a dirty line (no response)
    InvalidateReq,  ///< coherence invalidation (no response)
    UpgradeReq,     ///< S->M ownership upgrade (no data transfer)
    UpgradeResp,
};

/** Command name for diagnostics. */
const char *memCmdName(MemCmd cmd);

/**
 * One memory transaction. Packets are heap-allocated on the timing
 * path and owned by whoever currently holds the pointer, as in gem5.
 */
class Packet
{
  public:
    Packet(MemCmd cmd, Addr addr, unsigned size)
        : cmd_(cmd), addr_(addr), size_(size)
    {
        // Packets are allocated at high rate on the timing path; the
        // allocator churn is real simulator data traffic. The charge
        // is recorded here (not in the pool) so pool-on and pool-off
        // runs model identical host-side behaviour.
        trace::recordHeapAlloc(sizeof(Packet));
    }

    /** @{ Dynamic packets recycle through the packet pool (which
     *  falls back to the heap while disabled). */
    static void *
    operator new(std::size_t size)
    {
        return PacketPool::allocate(size);
    }

    static void
    operator delete(void *p, std::size_t size) noexcept
    {
        PacketPool::deallocate(p, size);
    }
    /** @} */

    MemCmd cmd() const { return cmd_; }
    Addr addr() const { return addr_; }
    unsigned size() const { return size_; }

    /** Address of the containing cache line. */
    Addr lineAddr() const { return addr_ & ~(Addr)(lineBytes - 1); }

    bool isRead() const
    { return cmd_ == MemCmd::ReadReq || cmd_ == MemCmd::ReadExReq; }
    bool isWrite() const { return cmd_ == MemCmd::WriteReq; }
    bool isWriteback() const { return cmd_ == MemCmd::WritebackDirty; }
    bool isInvalidate() const { return cmd_ == MemCmd::InvalidateReq; }

    /** Ownership upgrade for a line already held Shared. */
    bool isUpgrade() const
    {
        return cmd_ == MemCmd::UpgradeReq ||
               cmd_ == MemCmd::UpgradeResp;
    }

    bool
    isResponse() const
    {
        return cmd_ == MemCmd::ReadResp || cmd_ == MemCmd::WriteResp ||
               cmd_ == MemCmd::ReadExResp ||
               cmd_ == MemCmd::UpgradeResp;
    }

    bool
    needsResponse() const
    {
        return cmd_ == MemCmd::ReadReq || cmd_ == MemCmd::WriteReq ||
               cmd_ == MemCmd::ReadExReq || cmd_ == MemCmd::UpgradeReq;
    }

    /** Does this request need the line in exclusive/dirty state? */
    bool
    needsExclusive() const
    {
        return cmd_ == MemCmd::WriteReq || cmd_ == MemCmd::ReadExReq ||
               cmd_ == MemCmd::UpgradeReq;
    }

    /** Convert a request in place into its response. */
    void makeResponse();

    /** Instruction-fetch flag (routes to the I side of split L1s). */
    void setInstFetch(bool v) { instFetch_ = v; }
    bool isInstFetch() const { return instFetch_; }

    /**
     * @{ On fill responses: whether the requester may write the line
     * (no other cache holds a copy). Set by the coherent xbar.
     */
    void setWritable(bool v) { writable_ = v; }
    bool writable() const { return writable_; }
    /** @} */

    /** @{ Requestor bookkeeping (which CPU/port issued this). */
    void setRequestorId(int id) { requestorId_ = id; }
    int requestorId() const { return requestorId_; }
    /** @} */

    /** @{ Opaque pointer the sender can use to match responses. */
    void setSenderState(void *state) { senderState_ = state; }
    void *senderState() const { return senderState_; }
    /** @} */

    /**
     * @{ Intrusive singly-linked queue hook, used by the cache to
     * chain packets onto an MSHR's target list or the deferred
     * queue without a per-entry node allocation. A packet is on at
     * most one such queue at a time, and only while its owner (the
     * queue) holds the only pointer to it.
     */
    void setQueueNext(Packet *next) { queueNext_ = next; }
    Packet *queueNext() const { return queueNext_; }
    /** @} */

    /** Printable summary. */
    std::string toString() const;

  private:
    MemCmd cmd_;
    Addr addr_;
    unsigned size_;
    bool instFetch_ = false;
    bool writable_ = true;
    int requestorId_ = -1;
    void *senderState_ = nullptr;
    Packet *queueNext_ = nullptr;
};

static_assert(sizeof(Packet) <= PacketPool::blockSize,
              "Packet must fit a PacketPool block");

using PacketPtr = Packet *;

/**
 * Intrusive FIFO of packets chained through Packet::queueNext() —
 * MSHR target lists and the cache's deferred queue, with no
 * per-entry node allocation. The queue owns the packets it holds
 * (the usual one-owner rule); whoever drains or destroys it is
 * responsible for them.
 */
struct PacketQueue
{
    Packet *head = nullptr;
    Packet *tail = nullptr;

    bool empty() const { return head == nullptr; }

    void
    push(PacketPtr pkt)
    {
        pkt->setQueueNext(nullptr);
        if (tail)
            tail->setQueueNext(pkt);
        else
            head = pkt;
        tail = pkt;
    }

    /** Detach and return the oldest packet, or nullptr if empty. */
    PacketPtr
    pop()
    {
        Packet *pkt = head;
        if (pkt) {
            head = pkt->queueNext();
            if (!head)
                tail = nullptr;
            pkt->setQueueNext(nullptr);
        }
        return pkt;
    }
};

} // namespace g5p::mem

#endif // G5P_MEM_PACKET_HH
