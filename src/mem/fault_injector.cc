#include "mem/fault_injector.hh"

#include "base/sim_error.hh"
#include "mem/packet.hh"
#include "mem/physical.hh"
#include "sim/simulator.hh"

namespace g5p::mem
{

FaultInjector::FaultInjector(sim::Simulator &sim,
                             const std::string &name,
                             const FaultInjectorParams &params)
    : sim::SimObject(sim, name, nullptr, 256),
      params_(params),
      rng_(params.seed),
      writeFailsLeft_(params.failWrites),
      readFailsLeft_(params.failReads),
      io_(*this),
      flipEvent_(this, name + ".flip")
{
    // RunOptions is the one place run control lives: a nonzero
    // faultSeed there re-seeds the whole campaign.
    if (sim.runOptions().faultSeed != 0) {
        params_.seed = sim.runOptions().faultSeed;
        rng_.seed(params_.seed);
    }
    prevHook_ = TimingFaultHook::install(this);
    prevIo_ = sim::CheckpointIo::install(&io_);
}

FaultInjector::~FaultInjector()
{
    sim::CheckpointIo::install(prevIo_);
    TimingFaultHook::install(prevHook_);
    if (flipEvent_.scheduled())
        deschedule(flipEvent_);
    eventQueue().unregisterSerial(name() + ".flip");
}

void
FaultInjector::init()
{
    eventQueue().registerSerial(name() + ".flip", &flipEvent_);
}

void
FaultInjector::startup()
{
    if (params_.bitFlips > 0)
        schedule(flipEvent_, params_.firstFlipAt);
}

void
FaultInjector::doFlip()
{
    if (!mem_) {
        g5p_warn("%s: bit flip due but no memory attached; disabling",
                 name().c_str());
        return;
    }
    std::uint64_t span = params_.flipBytes
        ? params_.flipBytes
        : mem_->size() - params_.flipBase;
    Addr addr = params_.flipBase + rng_.below(span);
    unsigned bit = (unsigned)rng_.below(8);
    mem_->flipBit(addr, bit);
    ++flipsDone_;
    statFlips_ += 1;
    g5p_inform("%s: flipped bit %u of byte %#llx at tick %llu",
               name().c_str(), bit, (unsigned long long)addr,
               (unsigned long long)curTick());
    if (flipsDone_ < params_.bitFlips)
        schedule(flipEvent_, curTick() + params_.flipPeriod);
}

bool
FaultInjector::onTimingResp(ResponsePort &src, RequestPort &dst,
                            PacketPtr pkt)
{
    if (!pkt->isResponse())
        return true;
    unsigned injected = dropsDone_ + delaysDone_;
    if (params_.respFaultMax && injected >= params_.respFaultMax)
        return true;

    if (params_.dropChance > 0.0 && rng_.chance(params_.dropChance)) {
        ++dropsDone_;
        statDrops_ += 1;
        g5p_warn("%s: dropping response %s from '%s' at tick %llu",
                 name().c_str(), pkt->toString().c_str(),
                 src.name().c_str(),
                 (unsigned long long)curTick());
        delete pkt;
        return false;
    }

    if (params_.delayChance > 0.0 &&
        rng_.chance(params_.delayChance)) {
        ++delaysDone_;
        statDelays_ += 1;
        RequestPort *target = &dst;
        scheduleCallback(curTick() + params_.delayTicks,
                         [target, pkt] {
                             target->recvTimingResp(pkt);
                         },
                         name() + ".delayedResp");
        return false;
    }
    return true;
}

void
FaultInjector::FaultyIo::writeText(const std::string &path,
                                   const std::string &text)
{
    if (owner_.writeFailsLeft_ > 0) {
        --owner_.writeFailsLeft_;
        ++owner_.ioFaultsDone_;
        owner_.statIoFaults_ += 1;
        g5p_throw(CheckpointError, owner_.name(), owner_.curTick(),
                  "injected write failure for '%s' (%u more to come)",
                  path.c_str(), owner_.writeFailsLeft_);
    }
    CheckpointIo::writeText(path, text);
}

std::string
FaultInjector::FaultyIo::readText(const std::string &path)
{
    if (owner_.readFailsLeft_ > 0) {
        --owner_.readFailsLeft_;
        ++owner_.ioFaultsDone_;
        owner_.statIoFaults_ += 1;
        g5p_throw(CheckpointError, owner_.name(), owner_.curTick(),
                  "injected read failure for '%s' (%u more to come)",
                  path.c_str(), owner_.readFailsLeft_);
    }
    return CheckpointIo::readText(path);
}

void
FaultInjector::serialize(sim::CheckpointOut &cp) const
{
    cp.param("flipsDone", flipsDone_);
    cp.param("dropsDone", dropsDone_);
    cp.param("delaysDone", delaysDone_);
    cp.param("ioFaultsDone", ioFaultsDone_);
    cp.param("writeFailsLeft", writeFailsLeft_);
    cp.param("readFailsLeft", readFailsLeft_);
}

void
FaultInjector::unserialize(const sim::CheckpointIn &cp)
{
    cp.param("flipsDone", flipsDone_);
    cp.param("dropsDone", dropsDone_);
    cp.param("delaysDone", delaysDone_);
    cp.param("ioFaultsDone", ioFaultsDone_);
    cp.param("writeFailsLeft", writeFailsLeft_);
    cp.param("readFailsLeft", readFailsLeft_);
    // The raw xoshiro state is not checkpointed; re-derive a
    // deterministic (though different from uninterrupted) stream so
    // restored runs are still replayable against each other.
    rng_.seed(params_.seed + flipsDone_ + dropsDone_ + delaysDone_);
}

void
FaultInjector::regStats()
{
    addStat(&statFlips_, "bitFlips", "DRAM bit flips injected");
    addStat(&statDrops_, "respDrops", "timing responses dropped");
    addStat(&statDelays_, "respDelays", "timing responses delayed");
    addStat(&statIoFaults_, "ioFaults",
            "checkpoint I/O failures injected");
}

} // namespace g5p::mem
