#include "mem/fault_injector.hh"

#include <algorithm>

#include "base/sim_error.hh"
#include "mem/mem_events.hh"
#include "mem/packet.hh"
#include "mem/physical.hh"
#include "sim/simulator.hh"

namespace g5p::mem
{

FaultInjector::FaultInjector(sim::Simulator &sim,
                             const std::string &name,
                             const FaultInjectorParams &params)
    : sim::SimObject(sim, name, nullptr, 256),
      params_(params),
      flipRng_(params.seed),
      writeFailsLeft_(params.failWrites),
      readFailsLeft_(params.failReads),
      io_(*this),
      flipEvent_(this, name + ".flip")
{
    // RunOptions is the one place run control lives: a nonzero
    // faultSeed there re-seeds the whole campaign.
    if (sim.runOptions().faultSeed != 0) {
        params_.seed = sim.runOptions().faultSeed;
        flipRng_.seed(params_.seed);
    }
    shared_.rng.seed(coreSeed(-1));
    prevHook_ = TimingFaultHook::install(this);
    prevIo_ = sim::CheckpointIo::install(&io_);
}

FaultInjector::~FaultInjector()
{
    sim::CheckpointIo::install(prevIo_);
    TimingFaultHook::install(prevHook_);
    if (flipEvent_.scheduled())
        deschedule(flipEvent_);
    eventQueue().unregisterSerial(name() + ".flip");
}

void
FaultInjector::init()
{
    eventQueue().registerSerial(name() + ".flip", &flipEvent_);
}

void
FaultInjector::startup()
{
    if (params_.bitFlips > 0)
        schedule(flipEvent_, params_.firstFlipAt);
}

std::uint64_t
FaultInjector::coreSeed(int core) const
{
    // An affine mix is enough: Rng::seed runs splitmix64 over it, so
    // nearby cores still get unrelated streams. The +2 keeps the
    // fallback stream (core -1) distinct from core 0's.
    return params_.seed +
           0x9e3779b97f4a7c15ULL * (std::uint64_t)(core + 2);
}

FaultInjector::CoreFaults &
FaultInjector::coreFaults(int core)
{
    if (core < 0)
        return shared_;
    if ((std::size_t)core >= perCore_.size()) {
        std::size_t old = perCore_.size();
        perCore_.resize((std::size_t)core + 1);
        for (std::size_t i = old; i < perCore_.size(); ++i)
            perCore_[i].rng.seed(coreSeed((int)i));
    }
    return perCore_[(std::size_t)core];
}

unsigned
FaultInjector::dropsInjectedOn(int core) const
{
    if (core < 0)
        return shared_.drops;
    return (std::size_t)core < perCore_.size()
               ? perCore_[(std::size_t)core].drops
               : 0;
}

unsigned
FaultInjector::delaysInjectedOn(int core) const
{
    if (core < 0)
        return shared_.delays;
    return (std::size_t)core < perCore_.size()
               ? perCore_[(std::size_t)core].delays
               : 0;
}

void
FaultInjector::doFlip()
{
    if (!mem_) {
        g5p_warn("%s: bit flip due but no memory attached; disabling",
                 name().c_str());
        return;
    }
    std::uint64_t span = params_.flipBytes
        ? params_.flipBytes
        : mem_->size() - params_.flipBase;
    Addr addr = params_.flipBase + flipRng_.below(span);
    unsigned bit = (unsigned)flipRng_.below(8);
    mem_->flipBit(addr, bit);
    ++flipsDone_;
    flipLog_.emplace_back(addr, bit);
    statFlips_ += 1;
    g5p_inform("%s: flipped bit %u of byte %#llx at tick %llu",
               name().c_str(), bit, (unsigned long long)addr,
               (unsigned long long)curTick());
    if (flipsDone_ < params_.bitFlips)
        schedule(flipEvent_, curTick() + params_.flipPeriod);
}

bool
FaultInjector::onTimingResp(ResponsePort &src, RequestPort &dst,
                            PacketPtr pkt)
{
    if (!pkt->isResponse())
        return true;
    CoreFaults &core = coreFaults(pkt->requestorId());
    if (params_.respFaultMax &&
        core.drops + core.delays >= params_.respFaultMax)
        return true;

    if (params_.dropChance > 0.0 &&
        core.rng.chance(params_.dropChance)) {
        ++core.drops;
        ++dropsDone_;
        statDrops_ += 1;
        g5p_warn("%s: dropping response %s from '%s' at tick %llu",
                 name().c_str(), pkt->toString().c_str(),
                 src.name().c_str(),
                 (unsigned long long)curTick());
        delete pkt;
        return false;
    }

    if (params_.delayChance > 0.0 &&
        core.rng.chance(params_.delayChance)) {
        ++core.delays;
        ++delaysDone_;
        statDelays_ += 1;
        // Packet-owning event: if the queue is cleared before the
        // delayed delivery fires (teardown, restore), the packet is
        // reclaimed instead of leaking out of the pool.
        auto *ev = new PacketDeliverEvent(dst, pkt);
        schedule(*ev, curTick() + params_.delayTicks);
        return false;
    }
    return true;
}

void
FaultInjector::FaultyIo::writeText(const std::string &path,
                                   const std::string &text)
{
    if (owner_.writeFailsLeft_ > 0) {
        --owner_.writeFailsLeft_;
        ++owner_.ioFaultsDone_;
        owner_.statIoFaults_ += 1;
        g5p_throw(CheckpointError, owner_.name(), owner_.curTick(),
                  "injected write failure for '%s' (%u more to come)",
                  path.c_str(), owner_.writeFailsLeft_);
    }
    CheckpointIo::writeText(path, text);
}

std::string
FaultInjector::FaultyIo::readText(const std::string &path)
{
    if (owner_.readFailsLeft_ > 0) {
        --owner_.readFailsLeft_;
        ++owner_.ioFaultsDone_;
        owner_.statIoFaults_ += 1;
        g5p_throw(CheckpointError, owner_.name(), owner_.curTick(),
                  "injected read failure for '%s' (%u more to come)",
                  path.c_str(), owner_.readFailsLeft_);
    }
    return CheckpointIo::readText(path);
}

void
FaultInjector::serialize(sim::CheckpointOut &cp) const
{
    cp.param("flipsDone", flipsDone_);
    cp.param("dropsDone", dropsDone_);
    cp.param("delaysDone", delaysDone_);
    cp.param("ioFaultsDone", ioFaultsDone_);
    cp.param("writeFailsLeft", writeFailsLeft_);
    cp.param("readFailsLeft", readFailsLeft_);

    std::vector<Addr> flip_addrs;
    std::vector<unsigned> flip_bits;
    flip_addrs.reserve(flipLog_.size());
    flip_bits.reserve(flipLog_.size());
    for (const auto &[addr, bit] : flipLog_) {
        flip_addrs.push_back(addr);
        flip_bits.push_back(bit);
    }
    cp.paramVector("flipAddrs", flip_addrs);
    cp.paramVector("flipBits", flip_bits);

    std::vector<unsigned> core_drops, core_delays;
    core_drops.reserve(perCore_.size());
    core_delays.reserve(perCore_.size());
    for (const CoreFaults &core : perCore_) {
        core_drops.push_back(core.drops);
        core_delays.push_back(core.delays);
    }
    cp.paramVector("coreDrops", core_drops);
    cp.paramVector("coreDelays", core_delays);
    cp.param("sharedDrops", shared_.drops);
    cp.param("sharedDelays", shared_.delays);
}

void
FaultInjector::unserialize(const sim::CheckpointIn &cp)
{
    cp.param("flipsDone", flipsDone_);
    cp.param("dropsDone", dropsDone_);
    cp.param("delaysDone", delaysDone_);
    cp.param("ioFaultsDone", ioFaultsDone_);
    cp.param("writeFailsLeft", writeFailsLeft_);
    cp.param("readFailsLeft", readFailsLeft_);

    std::vector<Addr> flip_addrs;
    std::vector<unsigned> flip_bits;
    cp.paramVector("flipAddrs", flip_addrs);
    cp.paramVector("flipBits", flip_bits);
    flipLog_.clear();
    for (std::size_t i = 0;
         i < flip_addrs.size() && i < flip_bits.size(); ++i)
        flipLog_.emplace_back(flip_addrs[i], flip_bits[i]);

    std::vector<unsigned> core_drops, core_delays;
    cp.paramVector("coreDrops", core_drops);
    cp.paramVector("coreDelays", core_delays);
    perCore_.clear();
    perCore_.resize(std::max(core_drops.size(), core_delays.size()));
    // The raw xoshiro states are not checkpointed; re-derive a
    // deterministic (though different from uninterrupted) stream per
    // core so restored runs are still replayable against each other.
    for (std::size_t i = 0; i < perCore_.size(); ++i) {
        CoreFaults &core = perCore_[i];
        core.drops = i < core_drops.size() ? core_drops[i] : 0;
        core.delays = i < core_delays.size() ? core_delays[i] : 0;
        core.rng.seed(coreSeed((int)i) + core.drops + core.delays);
    }
    cp.param("sharedDrops", shared_.drops);
    cp.param("sharedDelays", shared_.delays);
    shared_.rng.seed(coreSeed(-1) + shared_.drops + shared_.delays);
    flipRng_.seed(params_.seed + flipsDone_);
}

void
FaultInjector::regStats()
{
    addStat(&statFlips_, "bitFlips", "DRAM bit flips injected");
    addStat(&statDrops_, "respDrops", "timing responses dropped");
    addStat(&statDelays_, "respDelays", "timing responses delayed");
    addStat(&statIoFaults_, "ioFaults",
            "checkpoint I/O failures injected");
}

} // namespace g5p::mem
