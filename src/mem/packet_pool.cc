#include "mem/packet_pool.hh"

#include <new>

#include "base/huge_alloc.hh"
#include "base/logging.hh"
#include "sim/simulator.hh"

namespace g5p::mem
{

namespace
{

/**
 * Per-thread pool state, mirroring sim::EventPool's PoolState: an
 * intrusive free list over fixed-size blocks carved from THP-backed
 * slabs, retained for the thread lifetime and released at thread
 * exit only when nothing is outstanding.
 */
struct PoolState
{
    struct FreeNode
    {
        FreeNode *next;
    };

    FreeNode *freeList = nullptr;
    std::size_t outstanding = 0;
    std::size_t highWater = 0;
    std::size_t slabCount = 0;
    bool enabled = true;
    base::ThpArena *arena = new base::ThpArena;

    void
    grow()
    {
        auto *slab = static_cast<unsigned char *>(arena->allocate(
            PacketPool::blockSize * PacketPool::slabBlocks));
        ++slabCount;
        for (std::size_t i = 0; i < PacketPool::slabBlocks; ++i) {
            auto *node = reinterpret_cast<FreeNode *>(
                slab + i * PacketPool::blockSize);
            node->next = freeList;
            freeList = node;
        }
    }

    ~PoolState()
    {
        // A packet still outstanding at thread exit would mean it
        // outlived its thread; leak the arena rather than unmap
        // memory someone may still hold.
        if (outstanding != 0)
            return;
        delete arena;
    }

    static PoolState &
    instance()
    {
        static thread_local PoolState state;
        return state;
    }
};

} // namespace

void *
PacketPool::allocate(std::size_t size)
{
    auto &pool = PoolState::instance();
    if (++pool.outstanding > pool.highWater)
        pool.highWater = pool.outstanding;
    if (G5P_UNLIKELY(!pool.enabled || size > blockSize))
        return ::operator new(size);
    if (G5P_UNLIKELY(!pool.freeList))
        pool.grow();
    auto *node = pool.freeList;
    pool.freeList = node->next;
    return node;
}

void
PacketPool::deallocate(void *p, std::size_t size) noexcept
{
    auto &pool = PoolState::instance();
    --pool.outstanding;
    if (G5P_UNLIKELY(!pool.enabled || size > blockSize)) {
        ::operator delete(p);
        return;
    }
    auto *node = static_cast<PoolState::FreeNode *>(p);
    node->next = pool.freeList;
    pool.freeList = node;
}

void
PacketPool::setEnabled(bool enabled)
{
    auto &pool = PoolState::instance();
    g5p_assert(pool.outstanding == 0,
               "PacketPool mode switch with %zu packets in flight",
               pool.outstanding);
    pool.enabled = enabled;
}

bool
PacketPool::enabled()
{
    return PoolState::instance().enabled;
}

std::size_t
PacketPool::outstanding()
{
    return PoolState::instance().outstanding;
}

std::size_t
PacketPool::highWater()
{
    return PoolState::instance().highWater;
}

void
PacketPool::resetHighWater()
{
    auto &pool = PoolState::instance();
    pool.highWater = pool.outstanding;
}

std::size_t
PacketPool::slabsAllocated()
{
    return PoolState::instance().slabCount;
}

std::size_t
PacketPool::writeOffLeaked()
{
    auto &pool = PoolState::instance();
    std::size_t leaked = pool.outstanding;
    pool.outstanding = 0;
    // highWater stays: it is a peak reading, and callers reset it
    // per run anyway.
    return leaked;
}

namespace
{

/**
 * Let the Simulator assert the pool drains at quiescent points and
 * at teardown. Registered from this TU (linked into anything that
 * uses Packet) so sim/ never depends on mem/; the probe target is a
 * constant-initialized pointer, so static-init order is immaterial.
 */
[[maybe_unused]] const bool drainProbeRegistered = [] {
    sim::setTransientResourceProbe(
        [] { return (std::uint64_t)PacketPool::outstanding(); });
    return true;
}();

} // namespace

} // namespace g5p::mem
