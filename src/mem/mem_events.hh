/**
 * @file
 * Pooled, packet-owning events for the timing memory path.
 *
 * Every delayed hop a packet takes — cache tag/data stages, xbar
 * forwarding, the DRAM response, a fault injector's delayed delivery
 * — used to be a scheduleOneShot() lambda: one pooled event, plus a
 * std::function capture, plus a freshly concatenated name string per
 * hop ("cpu0.icache.delayed" is past the SSO limit, so the busiest
 * allocation site on the whole detailed path was a *label*). The
 * typed events below replace that with plain members and a
 * registered dispatch kind; the name is built only when diagnostics
 * ask for it.
 *
 * Ownership: each event owns its packet from construction until the
 * moment it fires (take() hands the packet to the port/handler). An
 * event destroyed *unfired* — EventQueue::clear() at teardown or
 * before a checkpoint restore — deletes the packet in its destructor.
 * That closes the leak the lambda pattern had (a packet captured in a
 * cleared std::function leaked silently) and is what lets the
 * Simulator assert PacketPool::outstanding() returns to baseline at
 * every quiescent point and at teardown.
 *
 * Byte-identity: these events schedule at the same ticks, with the
 * same DefaultPri, from the same call sites in the same order as the
 * wrappers they replace, so (when, priority, sequence) keys — and
 * therefore service order, stats and commit traces — are unchanged.
 */

#ifndef G5P_MEM_MEM_EVENTS_HH
#define G5P_MEM_MEM_EVENTS_HH

#include <string>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/eventq.hh"

namespace g5p::mem
{

/**
 * Base: a pool-allocated, auto-delete event owning one packet until
 * it fires. Subclasses call take() exactly once, in invoke().
 */
class PooledPacketEvent : public sim::Event
{
  public:
    /** @{ Dynamic events recycle through the event pool. */
    static void *
    operator new(std::size_t size)
    {
        return sim::EventPool::allocate(size);
    }

    static void
    operator delete(void *p, std::size_t size) noexcept
    {
        sim::EventPool::deallocate(p, size);
    }
    /** @} */

    /** Deletes the packet if the event never fired (teardown
     *  drain); a no-op after take(). */
    ~PooledPacketEvent() override { delete pkt_; }

  protected:
    explicit PooledPacketEvent(PacketPtr pkt) : pkt_(pkt)
    {
        setAutoDelete(true);
    }

    /** Release ownership of the packet to the caller. */
    G5P_HOT PacketPtr
    take()
    {
        PacketPtr pkt = pkt_;
        pkt_ = nullptr;
        return pkt;
    }

  private:
    PacketPtr pkt_;
};

/**
 * Deliver a response upstream through a ResponsePort after a delay:
 * the cache hit/fill-drain path, the xbar's upgrade turnaround and
 * response forwarding, and the DRAM reply. With @p make_response the
 * pending request is converted in place first.
 */
class PacketRespEvent final : public PooledPacketEvent
{
  public:
    PacketRespEvent(ResponsePort &port, PacketPtr pkt,
                    bool make_response)
        : PooledPacketEvent(pkt), port_(port),
          makeResponse_(make_response)
    {
        setKind(sim::registeredEventKind<PacketRespEvent>(
            "mem::PacketRespEvent"));
    }

    /** Devirtualized body (dispatch-table target). */
    G5P_HOT void
    invoke()
    {
        PacketPtr pkt = take();
        if (makeResponse_)
            pkt->makeResponse();
        port_.sendTimingResp(pkt);
    }

    void process() override { invoke(); }
    std::string name() const override { return port_.name() + ".resp"; }

  private:
    ResponsePort &port_;
    bool makeResponse_;
};

/**
 * Forward a request downstream through a RequestPort after a delay
 * (the xbar's frontend stage). The writable grant decided by the
 * snoop pass at schedule time is re-applied at delivery, exactly as
 * the lambda capture used to.
 */
class PacketReqEvent final : public PooledPacketEvent
{
  public:
    PacketReqEvent(RequestPort &port, PacketPtr pkt)
        : PooledPacketEvent(pkt), port_(port),
          writable_(pkt->writable())
    {
        setKind(sim::registeredEventKind<PacketReqEvent>(
            "mem::PacketReqEvent"));
    }

    /** Devirtualized body (dispatch-table target). */
    G5P_HOT void
    invoke()
    {
        PacketPtr pkt = take();
        pkt->setWritable(writable_);
        port_.sendTimingReq(pkt);
    }

    void process() override { invoke(); }
    std::string name() const override { return port_.name() + ".req"; }

  private:
    RequestPort &port_;
    bool writable_;
};

/**
 * Hand a response directly to a RequestPort's receiver, bypassing
 * sendTimingResp and its fault hook — the FaultInjector's delayed
 * delivery (re-consulting the hook would let one response be delayed
 * forever).
 */
class PacketDeliverEvent final : public PooledPacketEvent
{
  public:
    PacketDeliverEvent(RequestPort &port, PacketPtr pkt)
        : PooledPacketEvent(pkt), port_(port)
    {
        setKind(sim::registeredEventKind<PacketDeliverEvent>(
            "mem::PacketDeliverEvent"));
    }

    void invoke() { port_.recvTimingResp(take()); }

    void process() override { invoke(); }
    std::string
    name() const override
    {
        return port_.name() + ".delayedResp";
    }

  private:
    RequestPort &port_;
};

/**
 * Hand the packet to a member function of its owner after a delay —
 * the cache's post-tag-lookup continuation and deferred-queue retry.
 * Each instantiation registers its own dispatch kind, like
 * MemberEventWrapper.
 */
template <auto F>
class PacketMemberEvent;

template <typename T, void (T::*F)(PacketPtr)>
class PacketMemberEvent<F> final : public PooledPacketEvent
{
  public:
    PacketMemberEvent(T &owner, PacketPtr pkt)
        : PooledPacketEvent(pkt), owner_(owner)
    {
        setKind(sim::registeredEventKind<PacketMemberEvent>(
            kindLabel()));
    }

    /** Devirtualized body (dispatch-table target). */
    G5P_HOT void invoke() { (owner_.*F)(take()); }

    void process() override { invoke(); }

  private:
    /** Unique per-instantiation kind name (embeds T and F). */
    static const char *
    kindLabel()
    {
        return __PRETTY_FUNCTION__;
    }

    T &owner_;
};

static_assert(sizeof(PacketRespEvent) <= sim::EventPool::blockSize,
              "PacketRespEvent must fit an EventPool block");
static_assert(sizeof(PacketReqEvent) <= sim::EventPool::blockSize,
              "PacketReqEvent must fit an EventPool block");
static_assert(sizeof(PacketDeliverEvent) <= sim::EventPool::blockSize,
              "PacketDeliverEvent must fit an EventPool block");

} // namespace g5p::mem

#endif // G5P_MEM_MEM_EVENTS_HH
