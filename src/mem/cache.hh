/**
 * @file
 * Set-associative write-back cache with MSHRs, modeled on gem5's
 * classic `Cache`. Used for guest L1I, L1D, and the shared L2.
 *
 * Tags-only timing model: data lives in PhysicalMemory (see
 * mem/packet.hh). Lines track valid/dirty/writable; misses allocate
 * MSHRs that coalesce same-line requests; dirty victims generate
 * WritebackDirty packets downstream. Coherence between sibling L1s is
 * invalidation-based, orchestrated by the CoherentXbar.
 *
 * The valid/writable/dirty bits encode a MESI state machine:
 * Invalid (!valid), Shared (valid, !writable), Exclusive (valid,
 * writable, !dirty), Modified (valid, writable, dirty). A write to a
 * Shared line raises an UpgradeReq (ownership only, no data); the
 * line stays readable while the upgrade is in flight (transient SM),
 * and a crossing invalidation downgrades the upgrade into a full
 * ReadEx refill (transient SM -> IM).
 *
 * Hot-path layout (the timing-round optimization pass):
 *  - tags are packed one-word TagWords, way-grouped per set in a
 *    single contiguous array, so an 8-way tag scan touches one host
 *    cache line instead of three; the cold LRU stamps live in a
 *    parallel array only the hit/victim paths touch;
 *  - MSHRs live in a fixed slab with an intrusive free list, found
 *    through an open-addressed line-address index (O(1)) instead of
 *    a std::list scan; coalesced targets and the deferred queue
 *    chain packets intrusively (Packet::queueNext) with no per-entry
 *    node allocation;
 *  - delayed work is typed pooled events (mem/mem_events.hh) rather
 *    than std::function wrappers with per-event name strings.
 */

#ifndef G5P_MEM_CACHE_HH
#define G5P_MEM_CACHE_HH

#include <vector>

#include "mem/addr_table.hh"
#include "mem/mem_events.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/clocked_object.hh"

namespace g5p::mem
{

/**
 * MESI coherence state of one line, decoded from the tag bits. The
 * stable states only; transient states live in the MSHRs (an MSHR
 * with isUpgrade set is SM; one whose fill is outstanding is IS/IM).
 */
enum class CoherState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** State name for diagnostics ("I"/"S"/"E"/"M"). */
const char *coherStateName(CoherState state);

/** Cache geometry and latency parameters. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    Cycles tagLatency = 1;      ///< lookup latency
    Cycles dataLatency = 1;     ///< added on hits
    Cycles responseLatency = 1; ///< fill-to-response latency
    unsigned numMshrs = 8;
    bool isL1 = false;          ///< participates in xbar snooping
};

class Cache : public sim::ClockedObject
{
  public:
    Cache(sim::Simulator &sim, const std::string &name,
          const sim::ClockDomain &domain, const CacheParams &params);
    ~Cache() override;

    /** Upstream (CPU or L1) side. */
    ResponsePort &cpuSidePort() { return cpuPort_; }

    /** Downstream (xbar, L2, or DRAM) side. */
    RequestPort &memSidePort() { return memPort_; }

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /** True if the line containing @p addr is present. */
    bool isCached(Addr addr) const;

    /** MESI state of the line containing @p addr (no LRU touch). */
    CoherState coherenceStateOf(Addr addr) const;

    /** Coherence: drop the line (invalidate from a sibling). */
    void invalidateLine(Addr addr);

    /** True while misses or deferred requests are outstanding. */
    bool hasPendingMisses() const
    { return mshrInUse_ != 0 || deferredCount_ != 0; }

    /** Upgrades that lost the race to a crossing invalidation. */
    std::uint64_t upgradeRaces() const { return upgradeRaces_; }

    /** Fills whose permission grant a sibling stole in flight. */
    std::uint64_t fillRaces() const { return fillRaces_; }

    /** @{ Host-side observability of the MSHR line-address index
     *  (plain counters, not stat lines — probe placement depends on
     *  insertion history, so these can never be checkpoint-stable). */
    std::uint64_t mshrIndexProbes() const { return mshrIndex_.probes(); }
    std::uint64_t mshrIndexProbeSteps() const
    { return mshrIndex_.probeSteps(); }
    /** @} */

    /**
     * Checkpoint tags, line state and LRU clock. MSHRs and deferred
     * requests must be drained (quiescent point); asserted.
     */
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

    /** @{ Raw counters for tests and reports. */
    std::uint64_t hits() const { return (std::uint64_t)hits_.value(); }
    std::uint64_t misses() const
    { return (std::uint64_t)misses_.value(); }
    std::uint64_t writebacks() const
    { return (std::uint64_t)writebacks_.value(); }
    /** @} */

  private:
    /**
     * One packed tag entry: tag<<3 | writable<<2 | dirty<<1 | valid.
     * A whole way's state fits one 64-bit load, and the common "valid
     * and tag match" test is two mask-and-compares on one register.
     * (The *checkpoint* flag encoding — dirty=1, writable=2 — is
     * unchanged; serialize() re-derives it from the accessors.)
     */
    class TagWord
    {
      public:
        bool valid() const { return (bits_ & validBit) != 0; }
        bool dirty() const { return (bits_ & dirtyBit) != 0; }
        bool writable() const { return (bits_ & writableBit) != 0; }
        std::uint64_t tag() const { return bits_ >> tagShift; }

        /** The hit test: valid with a matching tag. */
        bool
        matches(std::uint64_t tag) const
        {
            return (bits_ & validBit) != 0 && (bits_ >> tagShift) == tag;
        }

        void
        setValid(bool v)
        {
            bits_ = v ? (bits_ | validBit) : (bits_ & ~validBit);
        }
        void
        setDirty(bool v)
        {
            bits_ = v ? (bits_ | dirtyBit) : (bits_ & ~dirtyBit);
        }
        void
        setWritable(bool v)
        {
            bits_ = v ? (bits_ | writableBit) : (bits_ & ~writableBit);
        }
        void
        setTag(std::uint64_t tag)
        {
            bits_ = (tag << tagShift) | (bits_ & flagMask);
        }

        void reset() { bits_ = 0; }

      private:
        static constexpr std::uint64_t validBit = 1;
        static constexpr std::uint64_t dirtyBit = 2;
        static constexpr std::uint64_t writableBit = 4;
        static constexpr std::uint64_t flagMask = 7;
        static constexpr unsigned tagShift = 3;

        std::uint64_t bits_ = 0;
    };
    static_assert(sizeof(TagWord) == 8, "TagWord must pack to a word");

    /**
     * One slab-resident MSHR. Slots come from an intrusive free list
     * over the fixed mshrSlab_ array; live slots are found through
     * mshrIndex_. Coalesced targets chain intrusively through the
     * packets themselves.
     */
    struct Mshr
    {
        Addr lineAddr = 0;
        PacketQueue targets;
        std::uint16_t nextFree = 0;
        bool inUse = false;
        bool needsExclusive = false;
        bool isUpgrade = false; ///< transient SM: fill is ownership-only
        /** A sibling's exclusive request raced ahead of the pending
         *  fill: its permission grant (and our snoop-filter bit) is
         *  void; the response drains its targets uncached instead of
         *  filling (re-requesting could livelock: two cores would
         *  steal each other's in-flight fills forever). */
        bool stolen = false;
    };

    /** "No MSHR" slot value (free-list end, index miss). */
    static constexpr std::uint16_t invalidMshr = 0xffff;

    class CpuSidePort : public ResponsePort
    {
      public:
        CpuSidePort(Cache &cache, const std::string &name)
            : ResponsePort(name), cache_(cache)
        {}
        Tick recvAtomic(Packet &pkt) override
        { return cache_.recvAtomic(pkt); }
        void recvFunctional(Packet &pkt) override
        { cache_.recvFunctional(pkt); }
        void recvTimingReq(PacketPtr pkt) override
        { cache_.recvTimingReq(pkt); }

      private:
        Cache &cache_;
    };

    class MemSidePort : public RequestPort
    {
      public:
        MemSidePort(Cache &cache, const std::string &name)
            : RequestPort(name), cache_(cache)
        {}
        void recvTimingResp(PacketPtr pkt) override
        { cache_.recvTimingResp(pkt); }

      private:
        Cache &cache_;
    };

    /** @{ Protocol entry points (via the ports). */
    Tick recvAtomic(Packet &pkt);
    void recvFunctional(Packet &pkt);
    void recvTimingReq(PacketPtr pkt);
    void recvTimingResp(PacketPtr pkt);
    /** @} */

    /** Tag lookup; returns the entry or nullptr. Touches LRU on hit. */
    G5P_HOT TagWord *lookup(Addr addr, bool update_lru);
    const TagWord *lookupConst(Addr addr) const;

    /** Pick a victim in the set of @p addr (invalid first, else LRU). */
    TagWord &victimFor(Addr addr);

    /** Install @p addr over the victim; emits writeback if needed. */
    TagWord &insertLine(Addr addr, bool writable, bool timing);

    /** Record a host-side touch of tag entry @p index. */
    void touchTagState(std::size_t index) const;

    /** Find the MSHR covering @p line_addr, or nullptr. O(1). */
    G5P_HOT Mshr *findMshr(Addr line_addr);

    /** Take a free MSHR slot for @p line_addr (caller checked one is
     *  free) and index it. */
    Mshr &allocMshr(Addr line_addr);

    /** Return @p mshr to the free list and drop its index entry. */
    void freeMshr(Mshr &mshr);

    /** Handle one demand request after the tag-lookup delay. */
    void satisfyTiming(PacketPtr pkt);

    /** Drain an MSHR's coalesced targets against a present line. */
    void completeMshr(Addr line_addr, TagWord &line);

    /** Drain a stolen MSHR's targets without installing the line
     *  (data comes from the functional backing store regardless). */
    void completeUncached(Addr line_addr);

    /** Pull one deferred request back into the pipeline, if any. */
    void retryDeferred();

    /** Continuation event for the post-tag-lookup stage. */
    using AccessEvent = PacketMemberEvent<&Cache::satisfyTiming>;

    /** Schedule satisfyTiming(@p pkt) after @p cycles. */
    void scheduleAccess(Cycles cycles, PacketPtr pkt);

    /** Respond to @p pkt upstream after @p cycles. */
    void scheduleResp(Cycles cycles, PacketPtr pkt);

    CacheParams params_;
    unsigned numSets_;

    /** Way-grouped packed tags: entry for (set, way) lives at
     *  set * assoc + way. */
    std::vector<TagWord> tags_;
    /** LRU stamps, parallel to tags_ (kept out of the scan array). */
    std::vector<std::uint64_t> lastUsed_;
    std::uint64_t lruCounter_ = 0;

    /** @{ MSHR slab + free list + O(1) line-address index. */
    std::vector<Mshr> mshrSlab_;
    std::uint16_t mshrFreeHead_ = invalidMshr;
    unsigned mshrInUse_ = 0;
    AddrTable<std::uint16_t> mshrIndex_;
    /** @} */

    PacketQueue deferred_; ///< requests waiting for an MSHR
    std::size_t deferredCount_ = 0;

    CpuSidePort cpuPort_;
    MemSidePort memPort_;

    sim::stats::Scalar hits_;
    sim::stats::Scalar misses_;
    sim::stats::Scalar mshrHits_;
    sim::stats::Scalar mshrBlocked_;
    sim::stats::Scalar writebacks_;
    sim::stats::Scalar invalidations_;
    sim::stats::Scalar upgradeMisses_;
    sim::stats::Formula missRate_;

    /** @{ Plain counters (not stat lines: keeps single-core stat
     *  text identical) — coherence races, for the tester. */
    std::uint64_t upgradeRaces_ = 0;
    std::uint64_t fillRaces_ = 0;
    /** @} */
};

} // namespace g5p::mem

#endif // G5P_MEM_CACHE_HH
