#include "mem/tlb.hh"

#include "base/addr_utils.hh"
#include "trace/recorder.hh"

namespace g5p::mem
{

Tlb::Tlb(sim::Simulator &sim, const std::string &name,
         const TlbParams &params)
    : sim::SimObject(sim, name, nullptr, params.entries * 24),
      params_(params),
      numSets_(params.entries / params.assoc)
{
    g5p_assert(isPowerOf2(numSets_) && numSets_ > 0,
               "%s: TLB sets must be a power of two", name.c_str());
    entries_.resize(params.entries);
}

Tlb::Result
Tlb::translate(Addr vaddr)
{
    G5P_TRACE_SCOPE("Tlb::translate", TlbWalk, true);
    g5p_assert(pageTable_, "%s: no page table bound", name().c_str());

    std::uint64_t vpn = vaddr >> guestPageShift;
    std::uint64_t set = vpn & (numSets_ - 1);
    Entry *base = &entries_[set * params_.assoc];

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.vpn == vpn) {
            e.lastUsed = ++lruCounter_;
            touchState((set * params_.assoc + w) * 24, 24, false);
            hits_ += 1;
            Translation t = e.translation;
            t.paddr = (t.paddr & ~(Addr)(guestPageBytes - 1)) |
                      (vaddr & (guestPageBytes - 1));
            return Result{t, true, 0};
        }
    }

    misses_ += 1;
    {
        // The walk itself is a distinct simulator function in gem5.
        G5P_TRACE_SCOPE("Tlb::walk", TlbWalk, false);
        Translation t = pageTable_->translate(vaddr);
        if (!t.valid)
            return Result{t, false, params_.walkLatency};

        Entry *victim = base;
        for (unsigned w = 0; w < params_.assoc; ++w) {
            Entry &e = base[w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lastUsed < victim->lastUsed)
                victim = &e;
        }
        victim->valid = true;
        victim->vpn = vpn;
        victim->translation = t;
        victim->translation.paddr &= ~(Addr)(guestPageBytes - 1);
        victim->lastUsed = ++lruCounter_;
        touchState((std::size_t)(victim - entries_.data()) * 24, 24,
                   true);
        return Result{t, false, params_.walkLatency};
    }
}

void
Tlb::flush()
{
    for (Entry &e : entries_)
        e.valid = false;
}

void
Tlb::serialize(sim::CheckpointOut &cp) const
{
    cp.param("lruCounter", lruCounter_);
    std::vector<std::uint64_t> idx, vpns, paddrs, flags, lastUsed;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        if (!e.valid)
            continue;
        idx.push_back(i);
        vpns.push_back(e.vpn);
        paddrs.push_back(e.translation.paddr);
        flags.push_back((e.translation.writable ? 1u : 0u) |
                        (e.translation.executable ? 2u : 0u));
        lastUsed.push_back(e.lastUsed);
    }
    cp.paramVector("entryIdx", idx);
    cp.paramVector("entryVpn", vpns);
    cp.paramVector("entryPaddr", paddrs);
    cp.paramVector("entryFlags", flags);
    cp.paramVector("entryLastUsed", lastUsed);
}

void
Tlb::unserialize(const sim::CheckpointIn &cp)
{
    cp.param("lruCounter", lruCounter_);
    std::vector<std::uint64_t> idx, vpns, paddrs, flags, lastUsed;
    cp.paramVector("entryIdx", idx);
    cp.paramVector("entryVpn", vpns);
    cp.paramVector("entryPaddr", paddrs);
    cp.paramVector("entryFlags", flags);
    cp.paramVector("entryLastUsed", lastUsed);
    g5p_assert(idx.size() == vpns.size() &&
               idx.size() == paddrs.size() &&
               idx.size() == flags.size() &&
               idx.size() == lastUsed.size(),
               "%s: corrupt TLB checkpoint", name().c_str());
    for (Entry &e : entries_)
        e = Entry{};
    for (std::size_t i = 0; i < idx.size(); ++i) {
        g5p_assert(idx[i] < entries_.size(),
                   "%s: TLB checkpoint entry out of range",
                   name().c_str());
        Entry &e = entries_[idx[i]];
        e.valid = true;
        e.vpn = vpns[i];
        e.translation.valid = true;
        e.translation.paddr = paddrs[i];
        e.translation.writable = (flags[i] & 1u) != 0;
        e.translation.executable = (flags[i] & 2u) != 0;
        e.lastUsed = lastUsed[i];
    }
}

void
Tlb::regStats()
{
    addStat(&hits_, "hits", "TLB hits");
    addStat(&misses_, "misses", "TLB misses");
    addStat(&missRate_, "missRate", "TLB miss rate");
    missRate_.functor([this] {
        double total = hits_.value() + misses_.value();
        return total > 0 ? misses_.value() / total : 0.0;
    });
}

} // namespace g5p::mem
