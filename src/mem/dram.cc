#include "mem/dram.hh"

#include <algorithm>

#include "mem/mem_events.hh"
#include "trace/recorder.hh"

namespace g5p::mem
{

DramCtrl::DramCtrl(sim::Simulator &sim, const std::string &name,
                   const sim::ClockDomain &domain,
                   PhysicalMemory &backing, const DramParams &params)
    : sim::ClockedObject(sim, name, domain, nullptr, 2048),
      backing_(backing),
      params_(params),
      port_(*this, name + ".port")
{
    if (params_.ticksPerByte == 0) {
        // bandwidthGBs GB/s over 1e12 ticks/s.
        double bytes_per_tick =
            params_.bandwidthGBs * 1e9 / (double)simTicksPerSecond;
        params_.ticksPerByte =
            std::max<Tick>(1, (Tick)(1.0 / bytes_per_tick));
        // ticksPerByte now holds ticks-per-byte; see serviceTicks.
    }
}

DramCtrl::~DramCtrl() = default;

Tick
DramCtrl::serviceTicks(unsigned bytes) const
{
    return (Tick)bytes * params_.ticksPerByte;
}

Tick
DramCtrl::access(Packet &pkt)
{
    G5P_TRACE_SCOPE("DramCtrl::access", MemAccess, true);
    touchState(pkt.addr() % stateBytes(), 16, true);

    Tick now = curTick();
    Tick start = std::max(now, channelFreeAt_);
    Tick busy = serviceTicks(pkt.size());
    channelFreeAt_ = start + busy;
    Tick queue_delay = start - now;
    queueDelayTicks_ += (double)queue_delay;
    bytesTransferred_ += pkt.size();

    if (pkt.isRead())
        reads_ += 1;
    else
        writes_ += 1;

    return queue_delay + busy + params_.accessLatency;
}

Tick
DramCtrl::recvAtomic(Packet &pkt)
{
    return access(pkt);
}

void
DramCtrl::recvFunctional(Packet &pkt)
{
    // Functional accesses bypass timing entirely; data already lives
    // in PhysicalMemory, so nothing to move.
}

void
DramCtrl::recvTimingReq(PacketPtr pkt)
{
    G5P_TRACE_SCOPE("DramCtrl::recvTimingReq", MemAccess, true);
    Tick delay = access(*pkt);

    if (!pkt->needsResponse()) {
        delete pkt; // writebacks are fire-and-forget
        return;
    }

    auto *ev = new PacketRespEvent(port_, pkt, true);
    schedule(*ev, curTick() + delay);
}

void
DramCtrl::serialize(sim::CheckpointOut &cp) const
{
    cp.param("channelFreeAt", channelFreeAt_);
}

void
DramCtrl::unserialize(const sim::CheckpointIn &cp)
{
    cp.param("channelFreeAt", channelFreeAt_);
}

void
DramCtrl::regStats()
{
    addStat(&reads_, "reads", "read transactions");
    addStat(&writes_, "writes", "write transactions");
    addStat(&bytesTransferred_, "bytes", "bytes transferred");
    addStat(&queueDelayTicks_, "queueDelay",
            "cumulative channel queueing delay (ticks)");
}

} // namespace g5p::mem
