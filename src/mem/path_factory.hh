/**
 * @file
 * Factory seam for the detailed memory path: os::System builds its
 * caches and coherent xbar through a MemPathFactory instead of naming
 * the concrete classes, so an alternative implementation of the path
 * (bench/abl_timing's embedded pre-optimization reference copies) can
 * be dropped into an otherwise identical machine — same object names,
 * same stats slots, same wiring order — and compared byte-for-byte.
 *
 * The factory hands back opaque handles: the owning SimObject plus
 * the two ports System needs for wiring. Everything else (tag arrays,
 * MSHR organization, snoop-filter layout) stays private to the
 * implementation. The concrete-type accessors on System (l1i(),
 * xbar(), ...) downcast and are only valid on the standard path.
 */

#ifndef G5P_MEM_PATH_FACTORY_HH
#define G5P_MEM_PATH_FACTORY_HH

#include <memory>
#include <string>

#include "mem/cache.hh"
#include "mem/port.hh"
#include "mem/xbar.hh"
#include "sim/clocked_object.hh"

namespace g5p::mem
{

/** A factory-built cache: the owning object plus its two ports. */
struct CacheHandles
{
    std::unique_ptr<sim::SimObject> object;
    ResponsePort *cpuSide = nullptr;
    RequestPort *memSide = nullptr;
};

/** A factory-built coherent xbar: owner plus its downstream port.
 *  Upstream ports are added through the factory (it knows the
 *  concrete type). */
struct XbarHandles
{
    std::unique_ptr<sim::SimObject> object;
    RequestPort *memSide = nullptr;
};

class MemPathFactory
{
  public:
    virtual ~MemPathFactory() = default;

    virtual CacheHandles makeCache(sim::Simulator &sim,
                                   const std::string &name,
                                   const sim::ClockDomain &domain,
                                   const CacheParams &params) = 0;

    virtual XbarHandles makeXbar(sim::Simulator &sim,
                                 const std::string &name,
                                 const sim::ClockDomain &domain,
                                 const XbarParams &params) = 0;

    /**
     * Add an upstream port to @p xbar for the snooping cache
     * @p snooper (null for a non-caching requestor). Both must have
     * been built by this factory; the implementation downcasts.
     */
    virtual ResponsePort &addUpstreamPort(sim::SimObject &xbar,
                                          sim::SimObject *snooper) = 0;

    /** The standard (optimized) memory path. */
    static MemPathFactory &standard();
};

} // namespace g5p::mem

#endif // G5P_MEM_PATH_FACTORY_HH
