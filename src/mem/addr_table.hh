/**
 * @file
 * Open-addressed hash table keyed by line address, replacing the
 * std::unordered_map snoop filter and the linear MSHR scans on the
 * timing hot path.
 *
 * Layout: one flat power-of-two array of {addr, value} slots probed
 * linearly from a multiplicative hash. No per-entry nodes, no bucket
 * pointers — a lookup is one cache line in the common case, where
 * unordered_map pays a bucket-array load plus a node chase per hit.
 *
 * Deletion is tombstone-free (backward-shift): erasing a slot walks
 * the following cluster and shifts every displaced entry one step
 * back toward its home slot, restoring the invariant that probing
 * from home hits an entry before any empty slot. Long-running
 * simulations (the snoop filter sees one erase per writeback of a
 * tracked line) therefore never accumulate dead slots and never need
 * an anti-tombstone rehash.
 *
 * Not checkpoint-stable by design: slot placement depends on
 * insertion history, so the serialized form must be (and is) the
 * sorted entry list, exactly as the unordered_map version wrote.
 * Probe-length counters are host-side observability (surfaced by
 * --profile), deliberately kept out of the stats groups so stat
 * text stays byte-identical across pool/table configurations.
 */

#ifndef G5P_MEM_ADDR_TABLE_HH
#define G5P_MEM_ADDR_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/compiler.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace g5p::mem
{

template <typename V>
class AddrTable
{
  public:
    /** @param capacity_hint initial slot count (rounded up to a
     *  power of two, minimum 16). The table grows itself at 11/16
     *  load, so the hint only sizes the first allocation. */
    explicit AddrTable(std::size_t capacity_hint = 64)
    {
        std::size_t cap = 16;
        while (cap < capacity_hint)
            cap <<= 1;
        slots_.resize(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Value for @p addr, or @p missing if untracked. */
    G5P_HOT V
    lookup(Addr addr, V missing = V{}) const
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = homeSlot(addr);
        ++probes_;
        while (slots_[i].used) {
            if (slots_[i].addr == addr)
                return slots_[i].value;
            i = (i + 1) & mask;
            ++probeSteps_;
        }
        return missing;
    }

    /** True if @p addr is tracked. */
    bool contains(Addr addr) const
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = homeSlot(addr);
        while (slots_[i].used) {
            if (slots_[i].addr == addr)
                return true;
            i = (i + 1) & mask;
        }
        return false;
    }

    /**
     * Reference to @p addr's value, inserting a default-constructed
     * entry if untracked (the unordered_map operator[] this table
     * replaces). The reference is invalidated by any later insert
     * or erase.
     */
    G5P_HOT V &
    refOrInsert(Addr addr)
    {
        if (G5P_UNLIKELY((size_ + 1) * 16 > slots_.size() * 11))
            grow();
        std::size_t mask = slots_.size() - 1;
        std::size_t i = homeSlot(addr);
        ++probes_;
        while (slots_[i].used) {
            if (slots_[i].addr == addr)
                return slots_[i].value;
            i = (i + 1) & mask;
            ++probeSteps_;
        }
        slots_[i].used = true;
        slots_[i].addr = addr;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
    }

    /** Remove @p addr (no-op if untracked), backward-shifting the
     *  probe cluster so no tombstone is left behind. */
    G5P_HOT void
    erase(Addr addr)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = homeSlot(addr);
        ++probes_;
        while (slots_[i].used && slots_[i].addr != addr) {
            i = (i + 1) & mask;
            ++probeSteps_;
        }
        if (!slots_[i].used)
            return;
        --size_;
        // Shift the rest of the cluster back: any entry whose home
        // slot lies at or before the hole (cyclically) moves into
        // it, leaving the hole where that entry was.
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask;
        while (slots_[j].used) {
            std::size_t home = homeSlot(slots_[j].addr);
            // "home is cyclically outside (hole, j]" — the standard
            // backward-shift condition.
            bool movable = ((j - home) & mask) >= ((j - hole) & mask);
            if (movable) {
                slots_[hole] = slots_[j];
                hole = j;
            }
            j = (j + 1) & mask;
        }
        slots_[hole].used = false;
    }

    /** Visit every entry (unspecified order), e.g. for serialize. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots_)
            if (slot.used)
                fn(slot.addr, slot.value);
    }

    /** Drop every entry, keeping the current capacity. */
    void
    clear()
    {
        for (Slot &slot : slots_)
            slot.used = false;
        size_ = 0;
    }

    /** @{ Probe telemetry: lookups started / extra slots walked
     *  beyond the home slot. avg probe length = 1 + steps/probes.
     *  Host-side observability only — never a stat line. */
    std::uint64_t probes() const { return probes_; }
    std::uint64_t probeSteps() const { return probeSteps_; }
    /** @} */

  private:
    struct Slot
    {
        Addr addr = 0;
        V value{};
        bool used = false;
    };

    std::size_t
    homeSlot(Addr addr) const
    {
        // Fibonacci hashing on the line address; callers key on
        // line-aligned addresses, so mix before masking.
        std::uint64_t h = (std::uint64_t)addr *
                          0x9e3779b97f4a7c15ULL;
        return (std::size_t)(h >> 32) & (slots_.size() - 1);
    }

    G5P_COLD void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        size_ = 0;
        for (const Slot &slot : old)
            if (slot.used)
                refOrInsert(slot.addr) = slot.value;
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    mutable std::uint64_t probes_ = 0;
    mutable std::uint64_t probeSteps_ = 0;
};

} // namespace g5p::mem

#endif // G5P_MEM_ADDR_TABLE_HH
