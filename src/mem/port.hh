/**
 * @file
 * Master/slave (request/response) ports connecting memory objects,
 * following gem5's port model with its three protocols:
 *
 *  - atomic: sendAtomic returns the full latency immediately (used by
 *    the AtomicSimpleCPU);
 *  - functional: data access with no timing side effects;
 *  - timing: requests flow downstream, responses return later through
 *    recvTimingResp, driven by events.
 *
 * mg5 simplifies gem5's flow control: timing requests are always
 * accepted (queueing delays are modeled inside the receiving objects),
 * so there is no retry protocol.
 *
 * Hot/cold split: the send* calls are the inner edges of the whole
 * detailed-model call chain (CPU -> L1 -> xbar -> L2 -> DRAM and
 * back), so their bodies live here in the header — after inlining, a
 * send is the peer-pointer load plus the virtual recv* dispatch, with
 * no extra call frame in between. Binding and unbinding stay
 * out-of-line in port.cc; they run a handful of times per machine.
 */

#ifndef G5P_MEM_PORT_HH
#define G5P_MEM_PORT_HH

#include <string>

#include "base/compiler.hh"
#include "base/logging.hh"
#include "mem/packet.hh"

namespace g5p::mem
{

class RequestPort;
class ResponsePort;

/**
 * Interposer on the timing-response path, consulted by every
 * ResponsePort::sendTimingResp before delivery. The one installation
 * point covers DRAM, caches and crossbars alike, so a FaultInjector
 * can drop or delay any response in the machine without the memory
 * objects knowing. At most one hook is installed at a time (mg5 is
 * single threaded); install(nullptr) removes it.
 */
class TimingFaultHook
{
  public:
    virtual ~TimingFaultHook() = default;

    /**
     * Called with the response about to be delivered from @p src to
     * @p dst. Return true to let delivery proceed; return false to
     * swallow the packet (the hook then owns @p pkt and must delete
     * it or deliver it later via dst.recvTimingResp).
     */
    virtual bool onTimingResp(ResponsePort &src, RequestPort &dst,
                              PacketPtr pkt) = 0;

    /** Install a hook (nullptr to remove); returns the previous one. */
    static TimingFaultHook *
    install(TimingFaultHook *hook)
    {
        TimingFaultHook *prev = installed_;
        installed_ = hook;
        return prev;
    }

    /** The installed hook, or nullptr. */
    static TimingFaultHook *current() { return installed_; }

  private:
    friend class ResponsePort;

    /**
     * Thread-local: a FaultInjector interposes on its own run only;
     * concurrent clean runs on other threads must not see its hook.
     * The clean-path cost is one TLS load and a predictable branch on
     * every response. (constinit: GCC 12's UBSan miscompiles the lazy
     * TLS init guard of non-constinit thread_local pointers.)
     */
    static constinit inline thread_local TimingFaultHook *installed_ =
        nullptr;
};

/** Upstream side: issues requests, receives responses. */
class RequestPort
{
  public:
    explicit RequestPort(std::string name) : name_(std::move(name)) {}
    virtual ~RequestPort() = default;

    /** Connect to the downstream port (one-to-one). */
    void bind(ResponsePort &peer);

    /**
     * Disconnect from the downstream port (both directions), so the
     * pair can be re-bound — e.g. a cache's cpu-side port surviving a
     * CPU-model switch. No-op when unbound; must not be called with a
     * transaction in flight across the link.
     */
    void unbind();

    bool isBound() const { return peer_ != nullptr; }
    const std::string &name() const { return name_; }

    /** Atomic access: returns total latency in ticks. */
    G5P_HOT Tick sendAtomic(Packet &pkt);

    /** Functional access: no timing. */
    void sendFunctional(Packet &pkt);

    /** Timing request: ownership of @p pkt passes downstream. */
    G5P_HOT void sendTimingReq(PacketPtr pkt);

    /** Response delivery (called by the peer). */
    virtual void recvTimingResp(PacketPtr pkt) = 0;

  private:
    std::string name_;
    ResponsePort *peer_ = nullptr;
};

/** Downstream side: receives requests, issues responses. */
class ResponsePort
{
  public:
    explicit ResponsePort(std::string name) : name_(std::move(name)) {}
    virtual ~ResponsePort() = default;

    const std::string &name() const { return name_; }

    virtual Tick recvAtomic(Packet &pkt) = 0;
    virtual void recvFunctional(Packet &pkt) = 0;
    virtual void recvTimingReq(PacketPtr pkt) = 0;

    /** Deliver a response (or snoop) upstream. */
    G5P_HOT void
    sendTimingResp(PacketPtr pkt)
    {
        g5p_assert(peer_, "response through unbound port '%s'",
                   name_.c_str());
        TimingFaultHook *hook = TimingFaultHook::installed_;
        if (G5P_UNLIKELY(hook != nullptr) &&
            !hook->onTimingResp(*this, *peer_, pkt))
            return;
        peer_->recvTimingResp(pkt);
    }

  private:
    friend class RequestPort;
    std::string name_;
    RequestPort *peer_ = nullptr;
};

inline Tick
RequestPort::sendAtomic(Packet &pkt)
{
    g5p_assert(peer_, "atomic access through unbound port '%s'",
               name_.c_str());
    return peer_->recvAtomic(pkt);
}

inline void
RequestPort::sendFunctional(Packet &pkt)
{
    g5p_assert(peer_, "functional access through unbound port '%s'",
               name_.c_str());
    peer_->recvFunctional(pkt);
}

inline void
RequestPort::sendTimingReq(PacketPtr pkt)
{
    g5p_assert(peer_, "timing access through unbound port '%s'",
               name_.c_str());
    peer_->recvTimingReq(pkt);
}

} // namespace g5p::mem

#endif // G5P_MEM_PORT_HH
