#include "mem/mem_tester.hh"

#include <sstream>

#include "base/logging.hh"
#include "sim/simulator.hh"

namespace g5p::mem
{

MemTester::MemTester(sim::Simulator &sim, const std::string &name,
                     const MemTesterParams &params)
    : sim::ClockedObject(sim, name, sim::ClockDomain::fromMHz(2000),
                         nullptr, 4096),
      params_(params)
{
    g5p_assert(params_.numCores >= 1 && params_.numCores <= 16,
               "%s: %u cores (a line holds 16 4-byte slots)",
               name.c_str(), params_.numCores);
    g5p_assert(params_.actionLines >= 1 && params_.checkLines >= 1,
               "%s: empty address pool", name.c_str());

    const sim::ClockDomain clock = sim::ClockDomain::fromMHz(2000);
    physmem_ = std::make_unique<PhysicalMemory>(
        sim, name + ".physmem", params_.memBytes);
    dram_ = std::make_unique<DramCtrl>(sim, name + ".dram", clock,
                                       *physmem_, DramParams{});
    l2_ = std::make_unique<Cache>(
        sim, name + ".l2", clock,
        CacheParams{64 * 1024, 8, 2, 2, 1, 16, false});
    xbar_ = std::make_unique<CoherentXbar>(sim, name + ".xbar", clock,
                                           XbarParams{});
    l2_->memSidePort().bind(dram_->port());
    xbar_->memSidePort().bind(l2_->cpuSidePort());

    // Tiny L1s: conflict evictions are part of the stress (they
    // create the transient states the upgrade/fill races live in).
    for (unsigned i = 0; i < params_.numCores; ++i) {
        l1s_.push_back(std::make_unique<Cache>(
            sim, name + ".l1d" + std::to_string(i), clock,
            CacheParams{2 * 1024, 2, 1, 1, 1, 4, true}));
        l1s_[i]->memSidePort().bind(xbar_->addUpstreamPort(
            l1s_[i].get()));
    }

    cores_.resize(params_.numCores);
    for (unsigned i = 0; i < params_.numCores; ++i) {
        Core &core = cores_[i];
        core.rng.seed(params_.seed ^
                      (0x517cc1b727220a95ULL * (i + 1)));
        core.port = std::make_unique<CorePort>(
            *this, i, name + ".core" + std::to_string(i));
        core.port->bind(l1s_[i]->cpuSidePort());
    }

    lastValue_.assign((std::size_t)params_.actionLines *
                          params_.numCores, 0);
    for (unsigned l = 0; l < params_.checkLines; ++l)
        for (unsigned w = 0; w < lineBytes / 8; ++w)
            physmem_->write(checkBase + (Addr)l * lineBytes + w * 8,
                            8, checkPattern(l, w));
}

MemTester::~MemTester() = default;

std::uint64_t
MemTester::checkPattern(unsigned line, unsigned word) const
{
    std::uint64_t x = params_.seed ^
        (0x9e3779b97f4a7c15ULL * ((std::uint64_t)line * 8 + word + 1));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return x | 1;
}

void
MemTester::startup()
{
    for (unsigned i = 0; i < params_.numCores; ++i)
        scheduleNext(i);
}

bool
MemTester::allDone() const
{
    return finishedCores_ == params_.numCores;
}

std::uint64_t
MemTester::upgradeRaces() const
{
    std::uint64_t total = 0;
    for (const auto &l1 : l1s_)
        total += l1->upgradeRaces();
    return total;
}

std::uint64_t
MemTester::fillRaces() const
{
    std::uint64_t total = 0;
    for (const auto &l1 : l1s_)
        total += l1->fillRaces();
    return total;
}

void
MemTester::chooseOp(unsigned core)
{
    Core &c = cores_[core];
    std::uint64_t r = c.rng.below(100);
    if (r < params_.percentChecks) {
        // Read-only pool: the pattern must never change.
        unsigned line = (unsigned)c.rng.below(params_.checkLines);
        unsigned word = (unsigned)c.rng.below(lineBytes / 8);
        c.isWrite = false;
        c.isCheck = true;
        c.addr = checkBase + (Addr)line * lineBytes + word * 8;
        c.size = 8;
        c.checkExpect = checkPattern(line, word);
        return;
    }
    unsigned line = (unsigned)c.rng.below(params_.actionLines);
    if (r < params_.percentChecks + params_.percentWrites) {
        // Store to our own slot in a false-shared line.
        c.isWrite = true;
        c.isCheck = false;
        c.targetLine = line;
        c.targetSlot = core;
        c.addr = slotAddr(line, core);
        c.size = 4;
        c.storeVal = ((std::uint64_t)(core + 1) << 24) |
                     (++c.writeSeq & 0xffffffULL);
        return;
    }
    // Load any core's slot; verified against the last-writer table
    // at completion time.
    unsigned slot = (unsigned)c.rng.below(params_.numCores);
    c.isWrite = false;
    c.isCheck = false;
    c.targetLine = line;
    c.targetSlot = slot;
    c.addr = slotAddr(line, slot);
    c.size = 4;
}

void
MemTester::tick(unsigned core)
{
    Core &c = cores_[core];
    chooseOp(core);
    MemCmd cmd = c.isWrite ? MemCmd::WriteReq : MemCmd::ReadReq;
    if (params_.atomicMode) {
        Packet pkt(cmd, c.addr, c.size);
        pkt.setRequestorId((int)core);
        c.port->sendAtomic(pkt);
        finishAccess(core);
        finishOp(core);
        return;
    }
    auto *pkt = new Packet(cmd, c.addr, c.size);
    pkt->setRequestorId((int)core);
    c.busy = true;
    c.port->sendTimingReq(pkt);
}

void
MemTester::completeTiming(unsigned core, PacketPtr pkt)
{
    Core &c = cores_[core];
    g5p_assert(c.busy, "%s: stray response on core %u",
               name().c_str(), core);
    g5p_assert(pkt->isResponse() && pkt->addr() == c.addr,
               "%s: response mismatch on core %u", name().c_str(),
               core);
    delete pkt;
    c.busy = false;
    finishAccess(core);
    finishOp(core);
}

void
MemTester::finishAccess(unsigned core)
{
    Core &c = cores_[core];
    if (c.isWrite) {
        // Functional commit at completion time, exactly as the
        // timing CPUs do; the host-side table updates in the same
        // instant, so loads completing later must observe it.
        physmem_->write(c.addr, c.size, c.storeVal);
        lastValue_[(std::size_t)c.targetLine * params_.numCores +
                   c.targetSlot] = c.storeVal;
        stores_ += 1;
        statStores_ += 1;
        return;
    }
    std::uint64_t got = physmem_->read(c.addr, c.size);
    std::uint64_t want =
        c.isCheck
            ? c.checkExpect
            : lastValue_[(std::size_t)c.targetLine * params_.numCores +
                         c.targetSlot];
    if (got != want) {
        std::ostringstream os;
        os << (c.isCheck ? "check-pool" : "last-writer")
           << " value mismatch: core " << core << " read " << c.size
           << "B @ 0x" << std::hex << c.addr << " got 0x" << got
           << " want 0x" << want << std::dec;
        fail(os.str());
    }
    if (c.isCheck) {
        checkReads_ += 1;
        statChecks_ += 1;
    } else {
        loads_ += 1;
        statLoads_ += 1;
    }
}

void
MemTester::finishOp(unsigned core)
{
    sweepInvariants();
    Core &c = cores_[core];
    c.done += 1;
    if (c.done >= params_.opsPerCore) {
        finishedCores_ += 1;
        if (allDone())
            simulator().exitSimLoop("mem_tester done");
        return;
    }
    scheduleNext(core);
}

void
MemTester::scheduleNext(unsigned core)
{
    Core &c = cores_[core];
    Cycles gap = 1 + (Cycles)c.rng.below(params_.maxDelayCycles);
    scheduleOneShot(clockEdge(gap), [this, core] { tick(core); },
                     name() + ".core" + std::to_string(core) +
                         ".tick");
}

void
MemTester::sweepInvariants()
{
    auto sweepLine = [this](Addr addr) {
        unsigned writable = 0;
        std::uint32_t filter = xbar_->holdersOf(addr);
        for (unsigned i = 0; i < (unsigned)l1s_.size(); ++i) {
            CoherState st = l1s_[i]->coherenceStateOf(addr);
            if (st == CoherState::Invalid)
                continue;
            if (st == CoherState::Exclusive ||
                st == CoherState::Modified)
                ++writable;
            if (!(filter & (1u << i))) {
                std::ostringstream os;
                os << "snoop filter lost a holder: " <<
                    l1s_[i]->name() << " has line 0x" << std::hex
                   << addr << std::dec << " in "
                   << coherStateName(st) << " but filter mask is 0x"
                   << std::hex << filter << std::dec;
                fail(os.str());
            }
        }
        if (writable > 1) {
            std::ostringstream os;
            os << "SWMR violation: " << writable
               << " writable copies of line 0x" << std::hex << addr
               << std::dec;
            fail(os.str());
        }
    };
    for (unsigned l = 0; l < params_.actionLines; ++l)
        sweepLine(actionBase + (Addr)l * lineBytes);
    for (unsigned l = 0; l < params_.checkLines; ++l)
        sweepLine(checkBase + (Addr)l * lineBytes);
    sweeps_ += 1;
}

void
MemTester::fail(const std::string &what)
{
    if (violations_.size() >= 32)
        return; // keep the report readable; the first ones matter
    std::ostringstream os;
    os << "tick " << curTick() << ": " << what;
    violations_.push_back(os.str());
}

void
MemTester::regStats()
{
    addStat(&statLoads_, "loads", "action-pool loads completed");
    addStat(&statStores_, "stores", "action-pool stores completed");
    addStat(&statChecks_, "checkReads",
            "check-pool reads completed");
}

} // namespace g5p::mem
