/**
 * @file
 * Free-list pool for timing-path Packets, the mem-layer sibling of
 * sim::EventPool.
 *
 * The detailed models allocate and free one Packet per cache/xbar/
 * DRAM transaction — on a Timing L1 hit that is a third of the heap
 * traffic of the whole instruction (the other two thirds being the
 * two transient events, which PR 1 already pooled). Routing Packets
 * through the global allocator is pure churn: every block is the
 * same size and is freed on the thread that allocated it.
 *
 * Like the event pool, arenas are thread-local (a simulation is
 * confined to one thread; the parallel harness runs one whole
 * simulation per worker), slabs come from a huge-page-backed
 * ThpArena, and steady-state allocation touches no allocator at all.
 *
 * Unlike the event pool the packet pool can be switched off
 * (setEnabled(false)) so the same binary can run the faithful
 * pre-pool heap behaviour — the reference leg of bench/abl_timing
 * and the pool-vs-heap byte-identity tests. The toggle is only legal
 * while no packet is outstanding, which keeps every block's
 * allocation and release on the same side of the switch.
 *
 * Ownership rule (unchanged from the heap days): exactly one owner
 * holds a PacketPtr at any time — the pending delivery event, the
 * MSHR/deferred queue it is parked on, or the CPU that just received
 * it — and that owner deletes it. The pool adds the enforcement the
 * heap never had: outstanding() must return to its baseline at every
 * quiescent point and at Simulator teardown (asserted there), so a
 * leaked packet fails loudly at its source.
 */

#ifndef G5P_MEM_PACKET_POOL_HH
#define G5P_MEM_PACKET_POOL_HH

#include <cstddef>

#include "base/compiler.hh"

namespace g5p::mem
{

class PacketPool
{
  public:
    /** Block size covering Packet (with its intrusive queue link). */
    static constexpr std::size_t blockSize = 64;
    /** Blocks carved per slab (8 KiB slabs). */
    static constexpr std::size_t slabBlocks = 128;

    /** Pop a block (grows by one slab when the free list is empty);
     *  falls through to the global heap while disabled. */
    G5P_HOT static void *allocate(std::size_t size);

    /** Push a block back onto the free list (or the heap). */
    G5P_HOT static void deallocate(void *p, std::size_t size) noexcept;

    /**
     * Route allocations through the pool (true, the default) or the
     * global heap (false, the faithful pre-pool behaviour). Asserts
     * outstanding() == 0: a block must be freed in the mode it was
     * allocated in. Thread-local, like the pool itself.
     */
    static void setEnabled(bool enabled);

    /** @see setEnabled */
    static bool enabled();

    /** Packets allocated and not yet freed (calling thread), pool
     *  and heap mode alike. */
    static std::size_t outstanding();

    /**
     * Peak outstanding() since the last resetHighWater() — the
     * maximum number of simultaneously in-flight packets, i.e. the
     * pool's real working set. Surfaced by --profile runs.
     */
    static std::size_t highWater();

    /** Restart high-water tracking from the current outstanding()
     *  (each Simulator resets it so sweeps report per-run peaks). */
    static void resetHighWater();

    /** Slabs this thread carved from its arena so far. */
    static std::size_t slabsAllocated();

    /**
     * Zero the outstanding count, returning what it was. Escape
     * hatch for harnesses that deliberately run a pre-ownership-rule
     * memory path (bench/abl_timing's embedded reference leg): that
     * code parks packets in lambda events which do NOT delete them
     * when the event queue clears at teardown, so the packets are
     * genuinely — and unreachably — leaked. Writing them off keeps
     * the drain assert armed for everything that runs afterwards.
     * Never call this to paper over a leak in current code; the
     * assert firing means an owner is missing.
     */
    static std::size_t writeOffLeaked();
};

} // namespace g5p::mem

#endif // G5P_MEM_PACKET_POOL_HH
