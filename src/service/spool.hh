/**
 * @file
 * On-disk job spool: the sweep service's crash-safe state machine.
 *
 * One directory per job state:
 *
 *     <dir>/queued/    jobs waiting to run
 *     <dir>/running/   jobs dispatched to the executor
 *     <dir>/done/      jobs whose result is committed to the cache
 *     <dir>/failed/    (transient home while a retry is scheduled —
 *                       normally empty; kept for inspection symmetry)
 *     <dir>/poisoned/  jobs given up on (permanent error or retry
 *                       budget exhausted), quarantined with their
 *                       last error
 *     <dir>/results/   the verified result cache (see ResultCache)
 *     <dir>/scratch/   per-job scratch (auto-checkpoints of
 *                       resumable jobs): <dir>/scratch/j<id>/
 *
 * Each job lives in exactly one state file, `j<id>.job`, in the
 * checkpoint text format with its FNV-1a `#checksum=` footer — the
 * same atomic write-to-tmp-then-rename path (PR 2) checkpoints use,
 * so a state file is either the complete old version or the complete
 * new version, never a torn one.
 *
 * A state *transition* writes the job file at the destination (the
 * rename inside writeFile is the commit point) and then removes the
 * source file. A crash between the two leaves the job visible in two
 * states; recover() resolves that deterministically — the most
 * advanced state wins (done > poisoned > failed > running > queued) —
 * then requeues every `running` job (the daemon died while they ran;
 * their effects are confined to scratch/ and the idempotent result
 * cache, so re-running is safe), moves `failed` back to `queued`,
 * deletes stray `*.tmp` files, and quarantines unreadable job files
 * into `poisoned/` with a `.corrupt` suffix.
 */

#ifndef G5P_SERVICE_SPOOL_HH
#define G5P_SERVICE_SPOOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/spec.hh"

namespace g5p::service
{

/** Job states, in advancement order (recover() keeps the max). */
enum class JobState { Queued, Running, Done, Failed, Poisoned };

/** Directory name of a state ("queued", ...). */
const char *jobStateName(JobState state);

/** One spooled job: the spec plus supervision bookkeeping. */
struct SpoolJob
{
    std::uint64_t id = 0;
    JobSpec spec;
    /** Failed attempts so far (drives backoff and poisoning). */
    unsigned attempts = 0;
    /** Last failure, as "<ErrorKind>: <summary>" (diagnostic only —
     *  never part of a result, so retries stay byte-stable). */
    std::string lastError;
};

/** Outcome of Spool::recover, for logs and tests. */
struct RecoveryReport
{
    unsigned requeuedRunning = 0;
    unsigned requeuedFailed = 0;
    unsigned duplicatesDropped = 0;
    unsigned tmpFilesRemoved = 0;
    unsigned corruptQuarantined = 0;
};

class Spool
{
  public:
    /** Open (creating if needed) the spool rooted at @p dir. */
    explicit Spool(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /** Directory of @p state. */
    std::string stateDir(JobState state) const;

    /** Scratch directory of job @p id (created on demand). */
    std::string scratchDir(std::uint64_t id) const;

    /** Results (cache) directory. */
    std::string resultsDir() const;

    /** Client drop-box for sweep-spec JSON files (see SweepService::
     *  pollIncoming; clients write `<name>.json.tmp` then rename). */
    std::string incomingDir() const;

    /**
     * Admit a new job: assign the next id and write it to queued/.
     * Ids are assigned in submission order, which makes every
     * downstream ordering (dispatch, commit, result files)
     * deterministic for a given submission sequence.
     */
    std::uint64_t submit(const JobSpec &spec);

    /** All jobs in @p state, sorted by id. Unreadable files are
     *  skipped here (recover() quarantines them). */
    std::vector<SpoolJob> list(JobState state) const;

    /** Count of jobs in @p state. */
    std::size_t count(JobState state) const;

    /** Read one job from @p state; throws CheckpointError if absent
     *  or corrupt. */
    SpoolJob read(JobState state, std::uint64_t id) const;

    /**
     * Move @p job from @p from to @p to, persisting its (possibly
     * updated) bookkeeping. Write-at-destination happens before
     * remove-at-source; the rename inside the write is the commit.
     */
    void move(const SpoolJob &job, JobState from, JobState to);

    /** Rewrite @p job in place (attempts / lastError updates). */
    void update(const SpoolJob &job, JobState state);

    /** Drop @p id from @p state (admission-control shedding). */
    void remove(JobState state, std::uint64_t id);

    /** Crash recovery; see file header for the policy. */
    RecoveryReport recover();

  private:
    std::string jobPath(JobState state, std::uint64_t id) const;
    void write(const SpoolJob &job, JobState state) const;

    std::string dir_;
    std::uint64_t nextId_ = 1;
};

} // namespace g5p::service

#endif // G5P_SERVICE_SPOOL_HH
