#include "service/spool.hh"

#include <algorithm>
#include <filesystem>
#include <map>
#include <utility>

#include "base/logging.hh"
#include "base/sim_error.hh"

namespace fs = std::filesystem;

namespace g5p::service
{

namespace
{

constexpr JobState allStates[] = {
    JobState::Queued, JobState::Running, JobState::Done,
    JobState::Failed, JobState::Poisoned,
};

/** Advancement rank for recover()'s duplicate resolution. */
int
stateRank(JobState state)
{
    switch (state) {
      case JobState::Queued:   return 0;
      case JobState::Running:  return 1;
      case JobState::Failed:   return 2;
      case JobState::Poisoned: return 3;
      case JobState::Done:     return 4;
    }
    return 0;
}

/** Parse "j<id>.job" -> id; 0 if the name is not a job file. */
std::uint64_t
idFromFilename(const std::string &name)
{
    if (name.size() < 6 || name[0] != 'j' ||
        name.compare(name.size() - 4, 4, ".job") != 0)
        return 0;
    std::uint64_t id = 0;
    for (std::size_t i = 1; i + 4 < name.size(); ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            return 0;
        id = id * 10 + (std::uint64_t)(c - '0');
    }
    return id;
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:   return "queued";
      case JobState::Running:  return "running";
      case JobState::Done:     return "done";
      case JobState::Failed:   return "failed";
      case JobState::Poisoned: return "poisoned";
    }
    return "?";
}

Spool::Spool(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    for (JobState state : allStates)
        fs::create_directories(stateDir(state), ec);
    fs::create_directories(resultsDir(), ec);
    fs::create_directories(incomingDir(), ec);
    fs::create_directories(dir_ + "/scratch", ec);
    if (ec)
        g5p_throw(CheckpointError, "service.spool", 0,
                  "cannot create spool directories under '%s': %s",
                  dir_.c_str(), ec.message().c_str());

    // Resume id assignment after the highest id anywhere in the
    // spool, so restarted daemons never reuse an id.
    for (JobState state : allStates) {
        for (const auto &entry : fs::directory_iterator(
                 stateDir(state), ec)) {
            std::uint64_t id =
                idFromFilename(entry.path().filename().string());
            nextId_ = std::max(nextId_, id + 1);
        }
    }
}

std::string
Spool::stateDir(JobState state) const
{
    return dir_ + "/" + jobStateName(state);
}

std::string
Spool::scratchDir(std::uint64_t id) const
{
    std::string path = dir_ + "/scratch/j" + std::to_string(id);
    std::error_code ec;
    fs::create_directories(path, ec);
    return path;
}

std::string
Spool::resultsDir() const
{
    return dir_ + "/results";
}

std::string
Spool::incomingDir() const
{
    return dir_ + "/incoming";
}

std::string
Spool::jobPath(JobState state, std::uint64_t id) const
{
    return stateDir(state) + "/j" + std::to_string(id) + ".job";
}

void
Spool::write(const SpoolJob &job, JobState state) const
{
    sim::CheckpointOut cp;
    cp.pushSection("job");
    cp.param("id", job.id);
    cp.param("attempts", job.attempts);
    cp.param("lastError", job.lastError);
    cp.pushSection("spec");
    serializeJob(job.spec, cp);
    cp.popSection();
    cp.popSection();
    cp.writeFile(jobPath(state, job.id));
}

std::uint64_t
Spool::submit(const JobSpec &spec)
{
    SpoolJob job;
    job.id = nextId_++;
    job.spec = spec;
    write(job, JobState::Queued);
    return job.id;
}

SpoolJob
Spool::read(JobState state, std::uint64_t id) const
{
    sim::CheckpointIn cp = sim::CheckpointIn::readFile(
        jobPath(state, id));
    SpoolJob job;
    cp.pushSection("job");
    cp.param("id", job.id);
    cp.param("attempts", job.attempts);
    cp.param("lastError", job.lastError);
    cp.pushSection("spec");
    job.spec = unserializeJob(cp);
    cp.popSection();
    cp.popSection();
    return job;
}

std::vector<SpoolJob>
Spool::list(JobState state) const
{
    std::vector<std::uint64_t> ids;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(stateDir(state), ec)) {
        std::uint64_t id =
            idFromFilename(entry.path().filename().string());
        if (id)
            ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());

    std::vector<SpoolJob> jobs;
    jobs.reserve(ids.size());
    for (std::uint64_t id : ids) {
        try {
            jobs.push_back(read(state, id));
        } catch (const CheckpointError &) {
            // Unreadable here; recover() quarantines it.
        }
    }
    return jobs;
}

std::size_t
Spool::count(JobState state) const
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(stateDir(state), ec))
        if (idFromFilename(entry.path().filename().string()))
            ++n;
    return n;
}

void
Spool::move(const SpoolJob &job, JobState from, JobState to)
{
    write(job, to);
    std::error_code ec;
    fs::remove(jobPath(from, job.id), ec);
}

void
Spool::update(const SpoolJob &job, JobState state)
{
    write(job, state);
}

void
Spool::remove(JobState state, std::uint64_t id)
{
    std::error_code ec;
    fs::remove(jobPath(state, id), ec);
}

RecoveryReport
Spool::recover()
{
    RecoveryReport report;
    std::error_code ec;

    // Pass 1: sweep stray tmp files (a crash mid-write leaves them;
    // the rename contract means they are never the committed copy).
    for (JobState state : allStates) {
        for (const auto &entry :
             fs::directory_iterator(stateDir(state), ec)) {
            if (entry.path().extension() == ".tmp") {
                fs::remove(entry.path(), ec);
                ++report.tmpFilesRemoved;
            }
        }
    }

    // Snapshot the job files up front; the passes below mutate the
    // directories they would otherwise be iterating.
    std::vector<std::pair<JobState, std::uint64_t>> found;
    for (JobState state : allStates) {
        for (const auto &entry :
             fs::directory_iterator(stateDir(state), ec)) {
            std::uint64_t id =
                idFromFilename(entry.path().filename().string());
            if (id)
                found.emplace_back(state, id);
        }
    }

    // Pass 2: resolve duplicates — a crash between
    // write-at-destination and remove-at-source leaves one job in
    // two states; the more advanced copy is the committed one.
    std::map<std::uint64_t, JobState> best;
    for (const auto &[state, id] : found) {
        auto it = best.find(id);
        if (it == best.end()) {
            best[id] = state;
        } else if (stateRank(state) > stateRank(it->second)) {
            remove(it->second, id);
            it->second = state;
            ++report.duplicatesDropped;
        } else {
            remove(state, id);
            ++report.duplicatesDropped;
        }
    }

    // Pass 3: quarantine unreadable job files (torn by something
    // other than our writer, or bit-rotted on disk).
    for (const auto &[id, state] : best) {
        try {
            (void)read(state, id);
        } catch (const CheckpointError &err) {
            g5p_warn("spool: quarantining unreadable %s/j%llu: %s",
                     jobStateName(state), (unsigned long long)id,
                     err.summary().c_str());
            fs::rename(jobPath(state, id),
                       stateDir(JobState::Poisoned) + "/j" +
                           std::to_string(id) + ".job.corrupt",
                       ec);
            ++report.corruptQuarantined;
        }
    }

    // Pass 4: requeue interrupted work. Running jobs died with the
    // daemon; failed jobs were awaiting a retry slot.
    for (JobState state : {JobState::Running, JobState::Failed}) {
        for (SpoolJob &job : list(state)) {
            move(job, state, JobState::Queued);
            if (state == JobState::Running)
                ++report.requeuedRunning;
            else
                ++report.requeuedFailed;
        }
    }
    return report;
}

} // namespace g5p::service
