/**
 * @file
 * Verified, content-addressed result cache for the sweep service.
 *
 * Entries are addressed by jobDigest (FNV-1a over the canonical job
 * key) and stored as `<hex16>.res` files in the checkpoint text
 * format, which gives every entry the PR 2 durability contract for
 * free: atomic tmp+rename writes and an FNV-1a `#checksum=` footer.
 *
 * A lookup trusts nothing on disk:
 *
 *  - the footer is re-verified on every read (truncated or
 *    bit-flipped entries throw CheckpointError) — corrupt entries
 *    are *evicted* and the lookup misses, so the service
 *    transparently recomputes;
 *  - the stored binary version must equal the cache's (results from
 *    an older build are evicted as stale, not served);
 *  - the stored job key must equal the query's key (a digest
 *    collision therefore misses instead of serving a wrong result —
 *    the full key is the authority, the digest only the address).
 *
 * Entry bytes are a pure function of (job key, result, binary
 * version): no timestamps, attempt counts, or host wall times are
 * stored. That is what makes the chaos gate's byte-identity check
 * meaningful — a killed-and-resumed sweep must produce cache files
 * identical to an uninterrupted one.
 */

#ifndef G5P_SERVICE_RESULT_CACHE_HH
#define G5P_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <string>

#include "service/spec.hh"

namespace g5p::service
{

/**
 * The byte-stable subset of a run's outcome the service persists.
 * Only successful (ExitCause::Finished) runs are cached. Full
 * profile jobs fill the host-side block; resumable guest-only jobs
 * fill the digest block instead (the host trace side cannot survive
 * a checkpoint, so a resumed job proves its integrity with guest
 * digests — bit-identical across interruption per the PR 2 gate).
 */
struct ServiceResult
{
    /** @{ Identity echo (human-readable; the key is authoritative). */
    std::string workload;
    std::string platform;
    std::string cpuModel;
    unsigned cores = 1;
    /** @} */

    /** @{ Guest side (both job kinds). */
    std::uint64_t guestInsts = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t guestResult = 0;
    bool resultChecked = false;
    bool resultOk = false;
    /** @} */

    /** @{ Host side (full profile jobs; zero for guest-only). */
    double hostSeconds = 0;
    double ipc = 0;
    std::uint64_t hostInsts = 0;
    std::uint64_t codeBytes = 0;
    std::uint64_t distinctFunctions = 0;
    /** FNV-1a over every host counter and top-down field — full
     *  byte-identity strength without forty columns. */
    std::uint64_t countersDigest = 0;
    /** @} */

    /** @{ Guest digests (resumable jobs; zero for full profile). */
    std::uint64_t statsDigest = 0; ///< FNV over the stats dump
    std::uint64_t memDigest = 0;   ///< PhysicalMemory::contentDigest
    /** @} */
};

class ResultCache
{
  public:
    /**
     * @param dir        entry directory (created if needed)
     * @param binaryVersion version tag baked into every entry;
     *        entries from a different tag are stale.
     */
    ResultCache(const std::string &dir,
                const std::string &binaryVersion);

    /** Counters for the cache gate (cumulative per instance). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t corruptEvicted = 0;
        std::uint64_t staleEvicted = 0;
        std::uint64_t collisionMisses = 0;
    };

    /**
     * Verified lookup. @return true and fill @p out on a hit; false
     * on a miss, after evicting the entry if it was corrupt or
     * stale (see file header).
     */
    bool lookup(const JobSpec &job, ServiceResult &out);

    /** Store (overwrite) the entry for @p job atomically. */
    void store(const JobSpec &job, const ServiceResult &result);

    /** Path of @p job's entry (exposed for tests that corrupt it). */
    std::string entryPath(const JobSpec &job) const;

    const Stats &stats() const { return stats_; }
    const std::string &binaryVersion() const { return version_; }

  private:
    std::string dir_;
    std::string version_;
    Stats stats_;
};

/** @{ Entry payload round-trip (shared with tests). */
void serializeResult(const ServiceResult &result,
                     sim::CheckpointOut &cp);
ServiceResult unserializeResult(const sim::CheckpointIn &cp);
/** @} */

} // namespace g5p::service

#endif // G5P_SERVICE_RESULT_CACHE_HH
