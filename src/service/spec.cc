#include "service/spec.hh"

#include <cctype>
#include <cmath>
#include <sstream>

#include "base/sim_error.hh"
#include "host/platforms.hh"
#include "workloads/workload.hh"

namespace g5p::service
{

namespace
{

/** Where spec errors claim to come from. */
const char *const specObject = "service.spec";

/**
 * Recursive-descent JSON parser. Throws ConfigError with a byte
 * offset; depth-limited so a malicious spec cannot blow the stack.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        g5p_throw(ConfigError, specObject, 0,
                  "JSON error at offset %zu: %s", pos_, why.c_str());
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consume(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue(unsigned depth)
    {
        if (depth > maxDepth_)
            fail("nesting too deep");
        skipWs();
        char c = peek();
        JsonValue value;
        if (c == '{') {
            return parseObject(depth);
        } else if (c == '[') {
            return parseArray(depth);
        } else if (c == '"') {
            value.kind = JsonValue::Kind::String;
            value.string = parseString();
            return value;
        } else if (consume("true")) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
            return value;
        } else if (consume("false")) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = false;
            return value;
        } else if (consume("null")) {
            return value;
        }
        return parseNumber();
    }

    JsonValue
    parseObject(unsigned depth)
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            value.object[key] = parseValue(depth + 1);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray(unsigned depth)
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.array.push_back(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= h - '0';
                    else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                    else fail("bad \\u escape digit");
                }
                // Encode as UTF-8 (BMP only; specs are ASCII anyway).
                if (code < 0x80) {
                    out += (char)code;
                } else if (code < 0x800) {
                    out += (char)(0xC0 | (code >> 6));
                    out += (char)(0x80 | (code & 0x3F));
                } else {
                    out += (char)(0xE0 | (code >> 12));
                    out += (char)(0x80 | ((code >> 6) & 0x3F));
                    out += (char)(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail(std::string("unknown escape '\\") + e + "'");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        try {
            value.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("malformed number '" +
                 text_.substr(start, pos_ - start) + "'");
        }
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    static constexpr unsigned maxDepth_ = 64;
};

/** Typed field access with spec-level error messages. */
double
asNumber(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::Number)
        g5p_throw(ConfigError, specObject, 0,
                  "spec field '%s' must be a number", key.c_str());
    return v.number;
}

std::uint64_t
asU64(const JsonValue &v, const std::string &key)
{
    double d = asNumber(v, key);
    if (d < 0 || d != std::floor(d))
        g5p_throw(ConfigError, specObject, 0,
                  "spec field '%s' must be a non-negative integer",
                  key.c_str());
    return (std::uint64_t)d;
}

bool
asBool(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::Bool)
        g5p_throw(ConfigError, specObject, 0,
                  "spec field '%s' must be a boolean", key.c_str());
    return v.boolean;
}

std::string
asString(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::String)
        g5p_throw(ConfigError, specObject, 0,
                  "spec field '%s' must be a string", key.c_str());
    return v.string;
}

/** A non-empty array axis of T, via per-element converter. */
template <typename T, typename Conv>
std::vector<T>
asAxis(const JsonValue &v, const std::string &key, Conv conv)
{
    if (v.kind != JsonValue::Kind::Array)
        g5p_throw(ConfigError, specObject, 0,
                  "spec field '%s' must be an array", key.c_str());
    if (v.array.empty())
        g5p_throw(ConfigError, specObject, 0,
                  "spec axis '%s' must not be empty", key.c_str());
    std::vector<T> out;
    out.reserve(v.array.size());
    for (const JsonValue &e : v.array)
        out.push_back(conv(e, key));
    return out;
}

/** Bit-exact double rendering for the cache key. */
std::string
hexDouble(double d)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", d);
    return buf;
}

} // namespace

const JsonValue &
JsonValue::get(const std::string &key) const
{
    static const JsonValue nullValue;
    auto it = object.find(key);
    return it == object.end() ? nullValue : it->second;
}

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

os::CpuModel
cpuModelFromName(const std::string &name)
{
    for (os::CpuModel model : os::allCpuModels)
        if (name == os::cpuModelName(model))
            return model;
    g5p_throw(ConfigError, specObject, 0,
              "unknown CPU model '%s' (expected Atomic, Timing, "
              "Minor, or O3)", name.c_str());
}

host::HostPlatformConfig
platformByName(const std::string &name)
{
    for (const auto &cfg : {host::xeonConfig(), host::m1ProConfig(),
                            host::m1UltraConfig(),
                            host::firesimConfig()})
        if (name == cfg.name)
            return cfg;
    g5p_throw(ConfigError, specObject, 0,
              "unknown platform '%s' (expected Intel_Xeon, M1_Pro, "
              "M1_Ultra, or FireSim)", name.c_str());
}

SweepSpec
parseSweepSpec(const std::string &json)
{
    JsonValue root = parseJson(json);
    if (root.kind != JsonValue::Kind::Object)
        g5p_throw(ConfigError, specObject, 0,
                  "sweep spec must be a JSON object");

    SweepSpec spec;
    for (const auto &[key, value] : root.object) {
        if (key == "name") {
            spec.name = asString(value, key);
        } else if (key == "workloads") {
            spec.workloads = asAxis<std::string>(value, key, asString);
        } else if (key == "cpu_models") {
            spec.cpuModels = asAxis<std::string>(value, key, asString);
        } else if (key == "cores") {
            spec.cores = asAxis<unsigned>(
                value, key, [](const JsonValue &v,
                               const std::string &k) {
                    return (unsigned)asU64(v, k);
                });
        } else if (key == "platforms") {
            spec.platforms = asAxis<std::string>(value, key, asString);
        } else if (key == "l2_kb") {
            spec.l2KB = asAxis<unsigned>(
                value, key, [](const JsonValue &v,
                               const std::string &k) {
                    return (unsigned)asU64(v, k);
                });
        } else if (key == "dram_gb_s") {
            spec.dramGBs = asAxis<double>(value, key, asNumber);
        } else if (key == "workload_scale") {
            spec.workloadScale = asNumber(value, key);
        } else if (key == "max_guest_insts") {
            spec.maxGuestInsts = asU64(value, key);
        } else if (key == "seed") {
            spec.seed = asU64(value, key);
        } else if (key == "resume") {
            spec.resume = asBool(value, key);
        } else if (key == "priority") {
            spec.priority = (int)asNumber(value, key);
        } else if (key == "wall_cap_seconds") {
            spec.wallCapSeconds = asNumber(value, key);
        } else if (key == "max_attempts") {
            spec.maxAttempts = (unsigned)asU64(value, key);
        } else if (key == "chaos") {
            if (value.kind != JsonValue::Kind::Object)
                g5p_throw(ConfigError, specObject, 0,
                          "spec field 'chaos' must be an object");
            for (const auto &[ckey, cvalue] : value.object) {
                if (ckey == "fail_first_attempts")
                    spec.failFirstAttempts =
                        (unsigned)asU64(cvalue, ckey);
                else
                    g5p_throw(ConfigError, specObject, 0,
                              "unknown chaos field '%s'",
                              ckey.c_str());
            }
        } else {
            g5p_throw(ConfigError, specObject, 0,
                      "unknown sweep-spec field '%s'", key.c_str());
        }
    }

    // Fail the whole spec up front, not job-by-job at run time.
    for (const std::string &model : spec.cpuModels)
        (void)cpuModelFromName(model);
    for (const std::string &platform : spec.platforms)
        (void)platformByName(platform);
    for (unsigned n : spec.cores)
        if (n == 0)
            g5p_throw(ConfigError, specObject, 0,
                      "core count 0 is not a machine");
    if (spec.workloadScale <= 0)
        g5p_throw(ConfigError, specObject, 0,
                  "workload_scale must be positive");
    return spec;
}

std::vector<JobSpec>
expandSweep(const SweepSpec &sweep)
{
    std::vector<JobSpec> jobs;
    for (const std::string &workload : sweep.workloads)
        for (const std::string &model : sweep.cpuModels)
            for (unsigned cores : sweep.cores)
                for (const std::string &platform : sweep.platforms)
                    for (unsigned l2_kb : sweep.l2KB)
                        for (double dram : sweep.dramGBs) {
                            JobSpec job;
                            job.workload = workload;
                            job.cpuModel = cpuModelFromName(model);
                            job.cores = cores;
                            job.platform = platform;
                            job.l2KB = l2_kb;
                            job.dramGBs = dram;
                            job.workloadScale = sweep.workloadScale;
                            job.maxGuestInsts = sweep.maxGuestInsts;
                            job.seed = sweep.seed;
                            job.resume = sweep.resume;
                            job.priority = sweep.priority;
                            job.wallCapSeconds = sweep.wallCapSeconds;
                            job.maxAttempts = sweep.maxAttempts;
                            job.failFirstAttempts =
                                sweep.failFirstAttempts;
                            jobs.push_back(std::move(job));
                        }
    return jobs;
}

std::string
jobKey(const JobSpec &job)
{
    std::ostringstream os;
    os << "workload=" << job.workload
       << " cpu=" << os::cpuModelName(job.cpuModel)
       << " cores=" << job.cores
       << " platform=" << job.platform
       << " l2KB=" << job.l2KB
       << " dramGBs=" << hexDouble(job.dramGBs)
       << " scale=" << hexDouble(job.workloadScale)
       << " maxInsts=" << job.maxGuestInsts
       << " seed=" << job.seed
       << " resume=" << (job.resume ? 1 : 0);
    return os.str();
}

std::uint64_t
jobDigest(const JobSpec &job)
{
    return sim::checkpointDigest(jobKey(job));
}

core::RunConfig
toRunConfig(const JobSpec &job)
{
    // Registry::create is fatal on unknown names; a daemon must turn
    // that into a poisonable ConfigError instead.
    auto names = workloads::Registry::instance().names();
    bool known = false;
    for (const std::string &name : names)
        known = known || name == job.workload;
    if (!known)
        g5p_throw(ConfigError, specObject, 0,
                  "unknown workload '%s'", job.workload.c_str());

    core::RunConfig config;
    config.workload = job.workload;
    config.cpuModel = job.cpuModel;
    config.guestCpus = job.cores;
    config.workloadScale = job.workloadScale;
    config.maxGuestInsts = job.maxGuestInsts;
    config.seed = job.seed;
    config.platform = platformByName(job.platform);
    if (job.l2KB > 0) {
        host::HostCacheGeometry &l2 = config.platform.l2;
        l2.sizeBytes = (std::uint64_t)job.l2KB * 1024;
        // Keep the base associativity where the size allows full
        // sets; shrink it for tiny L2s so numSets() stays >= 1.
        while (l2.assoc > 1 &&
               l2.sizeBytes < (std::uint64_t)l2.assoc * l2.lineBytes)
            l2.assoc /= 2;
        if (l2.numSets() == 0)
            g5p_throw(ConfigError, specObject, 0,
                      "l2_kb=%u is below one cache line", job.l2KB);
    }
    if (job.dramGBs > 0)
        config.platform.memBwGBs = job.dramGBs;
    return config;
}

void
serializeJob(const JobSpec &job, sim::CheckpointOut &cp)
{
    cp.param("workload", job.workload);
    cp.param("cpuModel",
             std::string(os::cpuModelName(job.cpuModel)));
    cp.param("cores", job.cores);
    cp.param("platform", job.platform);
    cp.param("l2KB", job.l2KB);
    cp.param("dramGBs", job.dramGBs);
    cp.param("workloadScale", job.workloadScale);
    cp.param("maxGuestInsts", job.maxGuestInsts);
    cp.param("seed", job.seed);
    cp.param("resume", (unsigned)job.resume);
    cp.param("priority", job.priority);
    cp.param("wallCapSeconds", job.wallCapSeconds);
    cp.param("maxAttempts", job.maxAttempts);
    cp.param("failFirstAttempts", job.failFirstAttempts);
}

JobSpec
unserializeJob(const sim::CheckpointIn &cp)
{
    JobSpec job;
    std::string model;
    unsigned resume = 0;
    cp.param("workload", job.workload);
    cp.param("cpuModel", model);
    job.cpuModel = cpuModelFromName(model);
    cp.param("cores", job.cores);
    cp.param("platform", job.platform);
    cp.param("l2KB", job.l2KB);
    cp.param("dramGBs", job.dramGBs);
    cp.param("workloadScale", job.workloadScale);
    cp.param("maxGuestInsts", job.maxGuestInsts);
    cp.param("seed", job.seed);
    cp.param("resume", resume);
    job.resume = resume != 0;
    cp.param("priority", job.priority);
    cp.param("wallCapSeconds", job.wallCapSeconds);
    cp.param("maxAttempts", job.maxAttempts);
    cp.param("failFirstAttempts", job.failFirstAttempts);
    return job;
}

} // namespace g5p::service
