/**
 * @file
 * SweepService: the crash-resilient sweep daemon's engine.
 *
 * A service instance owns a Spool (crash-safe job state machine) and
 * a ResultCache (verified, content-addressed results) and drives
 * jobs through the PR 5 ParallelExecutor in supervised batches:
 *
 *   submit  — admission control: a bounded queue sheds the
 *             lowest-priority queued job when a higher-priority one
 *             arrives, and rejects lower-priority work outright
 *             (graceful degradation instead of unbounded growth);
 *   step    — one scheduling round: serve what the cache already
 *             proves, dispatch the rest to the pool under a per-job
 *             wall cap, then commit outcomes serially in id order —
 *             success stores to the cache and advances to done/,
 *             failure is classified (ConfigError/WorkloadError are
 *             permanent -> poisoned/; InvariantError /
 *             CheckpointError / supervised exits are transient ->
 *             exponential backoff and requeue, poisoned once the
 *             retry budget is spent);
 *   recover — on construction the spool is healed (interrupted
 *             `running` jobs requeued, torn files quarantined), so
 *             kill -9 at any instant costs at most the in-flight
 *             batch's compute, never correctness.
 *
 * Determinism: job ids are assigned in submission order, batches are
 * dispatched in (priority, id) order, and outcomes commit in id
 * order, so a sweep killed and restarted any number of times
 * produces cache entries byte-identical to an uninterrupted run (the
 * chaos suite's gate). Resumable guest jobs additionally continue
 * from their newest valid auto-checkpoint instead of restarting,
 * skipping corrupt checkpoints (verified reads) transparently.
 *
 * Chaos hooks: setCrashPoint makes step() throw ServiceCrash at a
 * chosen commit-path location, simulating kill -9 at the worst
 * moments without process gymnastics; the real daemon additionally
 * drains cleanly on SIGTERM via requestStop().
 */

#ifndef G5P_SERVICE_SWEEPD_HH
#define G5P_SERVICE_SWEEPD_HH

#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/result_cache.hh"
#include "service/spool.hh"

namespace g5p::service
{

/** Daemon-level knobs. */
struct ServiceConfig
{
    /** Spool root (state dirs, cache, scratch live under it). */
    std::string spoolDir = "spool";

    /** Version tag baked into cache entries; bump to invalidate
     *  results produced by older builds. */
    std::string binaryVersion = "g5p-8";

    /** Executor width (1 = serial reference scheduling). */
    unsigned jobs = 1;

    /** Jobs dispatched per step (0 = same as jobs). */
    unsigned batch = 0;

    /** Per-job wall-clock cap in seconds (0 = uncapped); a capped
     *  job comes back as a supervised WatchdogTimeout failure and is
     *  retried, not allowed to stall the sweep. */
    double jobWallCapSeconds = 0.0;

    /** Attempts before a transiently failing job is poisoned. */
    unsigned maxAttempts = 3;

    /** First retry delay in ms, doubling per failed attempt. */
    double backoffBaseMs = 1.0;

    /** Queued-job bound for admission control (0 = unbounded). */
    std::size_t queueBound = 0;

    /** Auto-checkpoint period for resumable jobs (0 disables
     *  resume; such jobs then run like ordinary ones). */
    Tick autoCheckpointPeriod = 0;
};

/** Thrown by the chaos crash points (simulated kill -9). */
class ServiceCrash : public std::runtime_error
{
  public:
    explicit ServiceCrash(const std::string &where)
        : std::runtime_error("service crashed at " + where) {}
};

/** Commit-path locations the chaos suite can crash at. */
enum class CrashPoint
{
    None,
    AfterDispatch,  ///< jobs marked running, nothing run yet
    MidCompletion,  ///< first outcome committed, rest lost
    MidCacheWrite,  ///< cache entry stored, job not yet in done/
};

/** Cumulative service counters (the supervision gate's evidence). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< admission refused (queue full)
    std::uint64_t shed = 0;       ///< queued job evicted for priority
    std::uint64_t dispatched = 0; ///< handed to the executor
    std::uint64_t completed = 0;  ///< reached done/
    std::uint64_t cacheServed = 0;///< completed without running
    std::uint64_t retries = 0;    ///< transient failures requeued
    std::uint64_t poisoned = 0;
    std::uint64_t resumedFromCheckpoint = 0;
    double backoffMsTotal = 0.0;  ///< backoff delay scheduled so far
};

/** What one executed job attempt produced (exposed for tests). */
struct JobOutcome
{
    bool success = false;
    /** Failure class: permanent failures poison immediately. */
    bool permanent = false;
    bool resumed = false; ///< continued from an auto-checkpoint
    std::string error;    ///< "<Kind>: <summary>" when !success
    ServiceResult result; ///< valid when success
};

/**
 * Run one spooled job attempt to an outcome. Never throws: every
 * failure — typed SimError, supervised exit, unexpected exception —
 * is folded into the outcome for the service to classify. Exposed
 * so tests can drive single attempts without a service.
 */
JobOutcome runSpooledJob(const SpoolJob &job,
                         const ServiceConfig &config,
                         const std::string &scratch_dir);

class SweepService
{
  public:
    /** Opens the spool, heals it (recover), opens the cache. */
    explicit SweepService(const ServiceConfig &config);

    Spool &spool() { return spool_; }
    const Spool &spool() const { return spool_; }
    ResultCache &cache() { return cache_; }
    const ResultCache &cache() const { return cache_; }
    const ServiceConfig &config() const { return config_; }
    const ServiceStats &stats() const { return stats_; }

    /** What construction-time recovery found/fixed. */
    const RecoveryReport &recoveryReport() const { return recovery_; }

    /**
     * Admit one job. @return its id, or 0 if admission control
     * rejected it (queue at bound and the job outranks nothing).
     */
    std::uint64_t submit(const JobSpec &spec);

    /** Expand and admit a sweep; per-job ids (0 = rejected). */
    std::vector<std::uint64_t> submitSweep(const SweepSpec &sweep);

    /**
     * Admit sweep specs clients dropped into `<spool>/incoming/`
     * (`*.json`, written via tmp+rename so never torn). Each spec is
     * expanded and admitted under admission control, then its file
     * is removed; malformed specs are renamed to `*.bad` with a
     * warning instead of wedging the daemon. @return jobs admitted.
     */
    unsigned pollIncoming();

    /**
     * One scheduling round (see file header). @return false when
     * the spool has no queued work (drained or stopping) — i.e.
     * "call me again" is true.
     */
    bool step();

    /** step() until drained or requestStop(). */
    void runUntilDrained();

    /** Ask the service to stop after the current round commits
     *  (async-signal-safe; the daemon's SIGTERM handler calls it). */
    void requestStop() { stop_.store(true); }
    bool stopRequested() const { return stop_.load(); }

    /** Arm a chaos crash: the @p countdown-th time execution passes
     *  @p point, throw ServiceCrash. */
    void
    setCrashPoint(CrashPoint point, unsigned countdown = 1)
    {
        crashPoint_ = point;
        crashCountdown_ = countdown;
    }

  private:
    void crashMaybe(CrashPoint here);
    unsigned attemptBudget(const JobSpec &spec) const;

    ServiceConfig config_;
    Spool spool_;
    ResultCache cache_;
    ServiceStats stats_;
    RecoveryReport recovery_;
    std::atomic<bool> stop_{false};

    CrashPoint crashPoint_ = CrashPoint::None;
    unsigned crashCountdown_ = 0;

    /** Backoff schedule: job id -> earliest next attempt. In-memory
     *  only — after a daemon crash the backoff clock restarts, which
     *  only ever retries *sooner*. */
    std::map<std::uint64_t,
             std::chrono::steady_clock::time_point> notBefore_;
};

} // namespace g5p::service

#endif // G5P_SERVICE_SWEEPD_HH
