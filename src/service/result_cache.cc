#include "service/result_cache.hh"

#include <cstdio>
#include <filesystem>

#include "base/logging.hh"
#include "base/sim_error.hh"

namespace fs = std::filesystem;

namespace g5p::service
{

ResultCache::ResultCache(const std::string &dir,
                         const std::string &binaryVersion)
    : dir_(dir), version_(binaryVersion)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        g5p_throw(CheckpointError, "service.cache", 0,
                  "cannot create cache directory '%s': %s",
                  dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::entryPath(const JobSpec &job) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.res",
                  (unsigned long long)jobDigest(job));
    return dir_ + "/" + name;
}

void
serializeResult(const ServiceResult &result, sim::CheckpointOut &cp)
{
    cp.param("workload", result.workload);
    cp.param("platform", result.platform);
    cp.param("cpuModel", result.cpuModel);
    cp.param("cores", result.cores);
    cp.param("guestInsts", result.guestInsts);
    cp.param("simTicks", result.simTicks);
    cp.param("guestResult", result.guestResult);
    cp.param("resultChecked", (unsigned)result.resultChecked);
    cp.param("resultOk", (unsigned)result.resultOk);
    cp.param("hostSeconds", result.hostSeconds);
    cp.param("ipc", result.ipc);
    cp.param("hostInsts", result.hostInsts);
    cp.param("codeBytes", result.codeBytes);
    cp.param("distinctFunctions", result.distinctFunctions);
    cp.param("countersDigest", result.countersDigest);
    cp.param("statsDigest", result.statsDigest);
    cp.param("memDigest", result.memDigest);
}

ServiceResult
unserializeResult(const sim::CheckpointIn &cp)
{
    ServiceResult result;
    unsigned checked = 0, ok = 0;
    cp.param("workload", result.workload);
    cp.param("platform", result.platform);
    cp.param("cpuModel", result.cpuModel);
    cp.param("cores", result.cores);
    cp.param("guestInsts", result.guestInsts);
    cp.param("simTicks", result.simTicks);
    cp.param("guestResult", result.guestResult);
    cp.param("resultChecked", checked);
    cp.param("resultOk", ok);
    result.resultChecked = checked != 0;
    result.resultOk = ok != 0;
    cp.param("hostSeconds", result.hostSeconds);
    cp.param("ipc", result.ipc);
    cp.param("hostInsts", result.hostInsts);
    cp.param("codeBytes", result.codeBytes);
    cp.param("distinctFunctions", result.distinctFunctions);
    cp.param("countersDigest", result.countersDigest);
    cp.param("statsDigest", result.statsDigest);
    cp.param("memDigest", result.memDigest);
    return result;
}

bool
ResultCache::lookup(const JobSpec &job, ServiceResult &out)
{
    std::string path = entryPath(job);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        ++stats_.misses;
        return false;
    }

    sim::CheckpointIn cp;
    try {
        cp = sim::CheckpointIn::readFile(path);
    } catch (const CheckpointError &err) {
        // Truncated or bit-flipped entry: evict, recompute upstream.
        g5p_warn("cache: evicting corrupt entry %s: %s",
                 path.c_str(), err.summary().c_str());
        fs::remove(path, ec);
        ++stats_.corruptEvicted;
        ++stats_.misses;
        return false;
    }

    try {
        cp.pushSection("entry");
        std::string version, key;
        cp.param("binaryVersion", version);
        cp.param("jobKey", key);
        if (version != version_) {
            g5p_warn("cache: evicting stale entry %s "
                     "(built by '%s', this is '%s')",
                     path.c_str(), version.c_str(), version_.c_str());
            fs::remove(path, ec);
            ++stats_.staleEvicted;
            ++stats_.misses;
            return false;
        }
        if (key != jobKey(job)) {
            // Digest collision: the full key is the authority.
            ++stats_.collisionMisses;
            ++stats_.misses;
            return false;
        }
        cp.pushSection("result");
        out = unserializeResult(cp);
        cp.popSection();
        cp.popSection();
    } catch (const CheckpointError &err) {
        // Verified footer but missing fields: written by an
        // incompatible layout; treat as stale.
        g5p_warn("cache: evicting unreadable entry %s: %s",
                 path.c_str(), err.summary().c_str());
        fs::remove(path, ec);
        ++stats_.staleEvicted;
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    return true;
}

void
ResultCache::store(const JobSpec &job, const ServiceResult &result)
{
    sim::CheckpointOut cp;
    cp.pushSection("entry");
    cp.param("binaryVersion", version_);
    cp.param("jobKey", jobKey(job));
    cp.pushSection("result");
    serializeResult(result, cp);
    cp.popSection();
    cp.popSection();
    cp.writeFile(entryPath(job));
    ++stats_.stores;
}

} // namespace g5p::service
