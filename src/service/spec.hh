/**
 * @file
 * Sweep specifications: the JSON experiment description a client
 * submits to the sweep service, and its expansion into jobs.
 *
 * A SweepSpec names axes (workloads x CPU models x core counts x
 * platforms x L2 sizes x DRAM bandwidths); expandSweep takes the
 * cross product, one JobSpec per point. A JobSpec is the unit the
 * spool queues, the executor runs, and the result cache keys.
 *
 * The cache key (jobKey/jobDigest) covers exactly the fields that
 * determine the result bytes — workload, model, cores, platform,
 * geometry overrides, scale, instruction limit, seed, and the job
 * kind (resumable guest-only vs full profile). Scheduling knobs
 * (priority, wall cap, retry budget, chaos fields) deliberately do
 * NOT enter the key: re-running the same experiment under a
 * different retry policy must hit the same cache entry.
 *
 * The JSON parser is a deliberately small recursive-descent one
 * (objects, arrays, strings, numbers, booleans, null; UTF-8 passed
 * through verbatim) — enough for spec files, no dependency added.
 * All spec errors are reported as ConfigError with position info.
 */

#ifndef G5P_SERVICE_SPEC_HH
#define G5P_SERVICE_SPEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "sim/serialize.hh"

namespace g5p::service
{

/** A parsed JSON value (tree form). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion order preserved separately for error messages. */
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool has(const std::string &key) const
    { return object.count(key) != 0; }

    /** Member lookup; null value if absent (object kind required). */
    const JsonValue &get(const std::string &key) const;
};

/** Parse JSON text; throws ConfigError with offset on malformed
 *  input or trailing garbage. */
JsonValue parseJson(const std::string &text);

/** One point of a sweep: everything one run needs, plus how the
 *  service should schedule it. */
struct JobSpec
{
    /** @{ Experiment identity — these enter the cache key. */
    std::string workload = "sieve";
    os::CpuModel cpuModel = os::CpuModel::Atomic;
    unsigned cores = 1;
    std::string platform = "Intel_Xeon";
    unsigned l2KB = 0;        ///< L2 size override (0 = platform's)
    double dramGBs = 0.0;     ///< DRAM bandwidth override (0 = keep)
    double workloadScale = 1.0;
    std::uint64_t maxGuestInsts = 0;
    std::uint64_t seed = 1;
    /** Resumable guest-only job: runs under auto-checkpoint and
     *  reports guest-side digests instead of host-model counters
     *  (the host trace side is not serialized, so only guest-kind
     *  jobs can continue from a checkpoint after a daemon crash). */
    bool resume = false;
    /** @} */

    /** @{ Scheduling — excluded from the cache key. */
    int priority = 0;         ///< higher runs (and is kept) first
    double wallCapSeconds = 0.0; ///< per-job override (0 = service's)
    unsigned maxAttempts = 0;    ///< retry budget override (0 = ...)
    /** Chaos knob: the runner fails this job's first N attempts with
     *  an injected transient InvariantError (tests the retry path
     *  end-to-end without a flaky workload). */
    unsigned failFirstAttempts = 0;
    /** @} */
};

/** A sweep request: axes plus shared settings. */
struct SweepSpec
{
    std::string name = "sweep";
    std::vector<std::string> workloads{"sieve"};
    std::vector<std::string> cpuModels{"Atomic"};
    std::vector<unsigned> cores{1};
    std::vector<std::string> platforms{"Intel_Xeon"};
    std::vector<unsigned> l2KB{0};
    std::vector<double> dramGBs{0.0};

    double workloadScale = 1.0;
    std::uint64_t maxGuestInsts = 0;
    std::uint64_t seed = 1;
    bool resume = false;
    int priority = 0;
    double wallCapSeconds = 0.0;
    unsigned maxAttempts = 0;
    unsigned failFirstAttempts = 0;
};

/** Parse a sweep spec from JSON text (see README for the schema);
 *  throws ConfigError on unknown keys, wrong types, or empty axes. */
SweepSpec parseSweepSpec(const std::string &json);

/** Cross product of the axes, in deterministic order (workloads
 *  outermost, dramGBs innermost). */
std::vector<JobSpec> expandSweep(const SweepSpec &sweep);

/** Canonical identity text of a job (doubles as hex-floats so the
 *  key is bit-exact); scheduling fields excluded. */
std::string jobKey(const JobSpec &job);

/** FNV-1a digest of jobKey — the result-cache address. */
std::uint64_t jobDigest(const JobSpec &job);

/**
 * Lower a job to the experiment harness config. Validates workload
 * and platform names and the geometry overrides; throws ConfigError
 * (a *permanent* failure — the service poisons, not retries) on
 * anything unknown.
 */
core::RunConfig toRunConfig(const JobSpec &job);

/** @{ Spool-file round-trip (checkpoint text format). */
void serializeJob(const JobSpec &job, sim::CheckpointOut &cp);
JobSpec unserializeJob(const sim::CheckpointIn &cp);
/** @} */

/** Parse "Atomic|Timing|Minor|O3" (the paper's spellings);
 *  throws ConfigError otherwise. */
os::CpuModel cpuModelFromName(const std::string &name);

/** Resolve a platform by its Table I/II name; throws ConfigError. */
host::HostPlatformConfig platformByName(const std::string &name);

} // namespace g5p::service

#endif // G5P_SERVICE_SPEC_HH
