#include "service/sweepd.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "core/parallel.hh"
#include "os/system.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace fs = std::filesystem;

namespace g5p::service
{

namespace
{

/** Canonical, bit-exact rendering of the host counters for the
 *  cache's countersDigest (topdown derives from these, so digesting
 *  the counters covers the whole host side). */
std::uint64_t
countersDigest(const host::HostCounters &c)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << c.insts << ' ' << c.uops << ' ' << c.loads << ' '
       << c.stores << ' ' << c.branches << ' ' << c.baseCycles << ' '
       << c.feLatIcacheCycles << ' ' << c.feLatItlbCycles << ' '
       << c.feLatMispredictCycles << ' ' << c.feLatUnknownCycles
       << ' ' << c.feLatClearCycles << ' ' << c.feBwMiteCycles << ' '
       << c.feBwDsbCycles << ' ' << c.badSpecCycles << ' '
       << c.beMemCycles << ' ' << c.beCoreCycles << ' '
       << c.icacheAccesses << ' ' << c.icacheMisses << ' '
       << c.dcacheAccesses << ' ' << c.dcacheMisses << ' '
       << c.itlbAccesses << ' ' << c.itlbMisses << ' '
       << c.dtlbAccesses << ' ' << c.dtlbMisses << ' '
       << c.l2Misses << ' ' << c.llcMisses << ' ' << c.mispredicts
       << ' ' << c.unknownBranches << ' ' << c.uopsFromDsb << ' '
       << c.uopsFromMite << ' ' << c.dramBytes << ' '
       << c.llcOccupancyBytes;
    return sim::checkpointDigest(os.str());
}

/** The wall cap this job runs under (job override, else service). */
double
effectiveWallCap(const JobSpec &spec, const ServiceConfig &config)
{
    return spec.wallCapSeconds > 0 ? spec.wallCapSeconds
                                   : config.jobWallCapSeconds;
}

/** Auto-checkpoints in @p scratch, newest (highest tick) first. */
std::vector<std::string>
checkpointsNewestFirst(const std::string &scratch)
{
    std::vector<std::pair<std::uint64_t, std::string>> found;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(scratch, ec)) {
        std::string name = entry.path().filename().string();
        if (name.size() < 11 || name.compare(0, 5, "auto-") != 0 ||
            name.compare(name.size() - 5, 5, ".ckpt") != 0)
            continue;
        std::uint64_t tick = 0;
        bool numeric = true;
        for (std::size_t i = 5; i + 5 < name.size(); ++i) {
            if (name[i] < '0' || name[i] > '9') {
                numeric = false;
                break;
            }
            tick = tick * 10 + (std::uint64_t)(name[i] - '0');
        }
        if (numeric)
            found.emplace_back(tick, entry.path().string());
    }
    std::sort(found.begin(), found.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    std::vector<std::string> paths;
    paths.reserve(found.size());
    for (auto &[tick, path] : found)
        paths.push_back(std::move(path));
    return paths;
}

/** Full-profile job attempt (host model included, runs from zero —
 *  deterministic, so a restart is byte-identical to a first run). */
JobOutcome
runProfileJob(const JobSpec &spec, const ServiceConfig &config)
{
    core::RunConfig run_config = core::withJobWallCap(
        toRunConfig(spec), effectiveWallCap(spec, config));
    core::RunResult run = core::runProfiledSimulation(run_config);

    JobOutcome outcome;
    if (run.exitCause != sim::ExitCause::Finished) {
        outcome.error = std::string("supervised exit: ") +
                        sim::exitCauseName(run.exitCause) +
                        (run.exitMessage.empty()
                             ? ""
                             : ": " + run.exitMessage);
        return outcome;
    }
    if (run.resultChecked && !run.resultOk) {
        outcome.error = "guest checksum mismatch";
        return outcome;
    }

    ServiceResult &result = outcome.result;
    result.workload = run.workload;
    result.platform = run.platform;
    result.cpuModel = os::cpuModelName(run.cpuModel);
    result.cores = spec.cores;
    result.guestInsts = run.guestInsts;
    result.simTicks = run.simTicks;
    result.guestResult = run.guestResult;
    result.resultChecked = run.resultChecked;
    result.resultOk = run.resultOk;
    result.hostSeconds = run.hostSeconds;
    result.ipc = run.ipc;
    result.hostInsts = run.hostInsts;
    result.codeBytes = run.codeBytes;
    result.distinctFunctions = run.distinctFunctions;
    result.countersDigest = countersDigest(run.counters);
    outcome.success = true;
    return outcome;
}

/**
 * Resumable guest-only attempt: auto-checkpoints into scratch and
 * continues from the newest valid one. Host-model counters cannot
 * survive a checkpoint (the trace side is not serialized), so this
 * kind reports guest digests instead — bit-identical across
 * interruption per the PR 2/3 restore guarantee.
 */
JobOutcome
runGuestJob(const JobSpec &spec, const ServiceConfig &config,
            const std::string &scratch)
{
    // Validates workload/platform names (throws ConfigError).
    (void)toRunConfig(spec);

    auto workload = workloads::Registry::instance().create(
        spec.workload, spec.workloadScale);

    sim::Simulator simulator("system");
    os::SystemConfig sys_cfg;
    sys_cfg.cpuModel = spec.cpuModel;
    sys_cfg.numCpus = spec.cores;
    sys_cfg.maxInstsPerCpu = spec.maxGuestInsts;
    os::System system(simulator, sys_cfg, *workload);

    sim::RunOptions options;
    double cap = effectiveWallCap(spec, config);
    if (cap > 0) {
        options.supervise = true;
        options.watchdog.maxWallSeconds = cap;
    }
    options.autoCheckpointPeriod = config.autoCheckpointPeriod;
    options.autoCheckpointPrefix = scratch + "/auto";

    JobOutcome outcome;
    for (const std::string &path : checkpointsNewestFirst(scratch)) {
        try {
            // Verified read first: a corrupt checkpoint is evicted
            // and the next-older one tried, never half-restored.
            (void)sim::CheckpointIn::readFile(path);
            simulator.restore(path);
            outcome.resumed = true;
            break;
        } catch (const CheckpointError &err) {
            g5p_warn("service: skipping corrupt checkpoint %s: %s",
                     path.c_str(), err.summary().c_str());
            std::error_code ec;
            fs::remove(path, ec);
        }
    }

    sim::SimResult run = system.run(options);
    if (run.cause != sim::ExitCause::Finished) {
        outcome.resumed = false; // failed attempts don't count
        outcome.error = std::string("supervised exit: ") +
                        sim::exitCauseName(run.cause) +
                        (run.message.empty() ? "" : ": " + run.message);
        return outcome;
    }

    ServiceResult &result = outcome.result;
    result.workload = spec.workload;
    result.platform = spec.platform;
    result.cpuModel = os::cpuModelName(spec.cpuModel);
    result.cores = spec.cores;
    result.guestInsts = system.totalInsts();
    result.simTicks = run.tick;
    result.guestResult = system.result();
    std::uint64_t expected = workload->expectedResult(spec.cores);
    result.resultChecked = expected != 0 && spec.maxGuestInsts == 0;
    result.resultOk =
        !result.resultChecked || result.guestResult == expected;
    if (result.resultChecked && !result.resultOk) {
        outcome.resumed = false;
        outcome.error = "guest checksum mismatch";
        return outcome;
    }

    std::ostringstream stats;
    simulator.dumpStats(stats);
    result.statsDigest = sim::checkpointDigest(stats.str());
    result.memDigest = system.physmem().contentDigest();
    outcome.success = true;
    return outcome;
}

} // namespace

JobOutcome
runSpooledJob(const SpoolJob &job, const ServiceConfig &config,
              const std::string &scratch_dir)
{
    JobOutcome outcome;
    try {
        // Chaos knob: deterministic transient failures for the
        // retry-path tests, spelled in the spec itself.
        if (job.attempts < job.spec.failFirstAttempts)
            g5p_throw(InvariantError, "service.chaos", 0,
                      "injected transient failure "
                      "(attempt %u of %u fails)",
                      job.attempts + 1, job.spec.failFirstAttempts);

        bool resumable = job.spec.resume &&
                         config.autoCheckpointPeriod > 0;
        outcome = resumable
                      ? runGuestJob(job.spec, config, scratch_dir)
                      : runProfileJob(job.spec, config);
    } catch (const SimError &err) {
        outcome.success = false;
        outcome.error = std::string(simErrorKindName(err.kind())) +
                        ": " + err.summary();
        // Configuration and workload identity problems cannot heal
        // with a retry; everything else might (I/O, invariants hit
        // under fault injection, ...).
        outcome.permanent = err.kind() == SimErrorKind::Config ||
                            err.kind() == SimErrorKind::Workload;
    } catch (const std::exception &err) {
        outcome.success = false;
        outcome.error = std::string("exception: ") + err.what();
    }
    return outcome;
}

SweepService::SweepService(const ServiceConfig &config)
    : config_(config),
      spool_(config.spoolDir),
      cache_(spool_.resultsDir(), config.binaryVersion)
{
    recovery_ = spool_.recover();
    if (recovery_.requeuedRunning || recovery_.corruptQuarantined)
        g5p_inform("service: recovery requeued %u running job(s), "
                   "quarantined %u corrupt file(s)",
                   recovery_.requeuedRunning,
                   recovery_.corruptQuarantined);
}

unsigned
SweepService::attemptBudget(const JobSpec &spec) const
{
    unsigned budget =
        spec.maxAttempts ? spec.maxAttempts : config_.maxAttempts;
    return budget ? budget : 1;
}

std::uint64_t
SweepService::submit(const JobSpec &spec)
{
    ++stats_.submitted;
    if (config_.queueBound &&
        spool_.count(JobState::Queued) >= config_.queueBound) {
        // Shed the youngest lowest-priority queued job if the
        // newcomer outranks it; otherwise refuse the newcomer.
        std::vector<SpoolJob> queued = spool_.list(JobState::Queued);
        const SpoolJob *victim = nullptr;
        for (const SpoolJob &job : queued)
            if (!victim ||
                job.spec.priority < victim->spec.priority ||
                (job.spec.priority == victim->spec.priority &&
                 job.id > victim->id))
                victim = &job;
        if (!victim || spec.priority <= victim->spec.priority) {
            ++stats_.rejected;
            return 0;
        }
        spool_.remove(JobState::Queued, victim->id);
        notBefore_.erase(victim->id);
        ++stats_.shed;
        g5p_warn("service: queue at bound %zu, shed j%llu "
                 "(priority %d) for priority %d",
                 config_.queueBound,
                 (unsigned long long)victim->id,
                 victim->spec.priority, spec.priority);
    }
    ++stats_.admitted;
    return spool_.submit(spec);
}

std::vector<std::uint64_t>
SweepService::submitSweep(const SweepSpec &sweep)
{
    std::vector<std::uint64_t> ids;
    for (const JobSpec &spec : expandSweep(sweep))
        ids.push_back(submit(spec));
    return ids;
}

unsigned
SweepService::pollIncoming()
{
    std::vector<std::string> specs;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(spool_.incomingDir(), ec))
        if (entry.path().extension() == ".json")
            specs.push_back(entry.path().string());
    std::sort(specs.begin(), specs.end());

    unsigned admitted = 0;
    for (const std::string &path : specs) {
        std::string text;
        try {
            text = sim::CheckpointIo::current().readText(path);
        } catch (const CheckpointError &err) {
            g5p_warn("service: cannot read spec %s: %s",
                     path.c_str(), err.summary().c_str());
            continue;
        }
        try {
            SweepSpec sweep = parseSweepSpec(text);
            for (std::uint64_t id : submitSweep(sweep))
                admitted += id != 0;
            fs::remove(path, ec);
            g5p_inform("service: admitted sweep '%s' from %s",
                       sweep.name.c_str(), path.c_str());
        } catch (const ConfigError &err) {
            g5p_warn("service: rejecting malformed spec %s: %s",
                     path.c_str(), err.summary().c_str());
            fs::rename(path, path + ".bad", ec);
        }
    }
    return admitted;
}

void
SweepService::crashMaybe(CrashPoint here)
{
    if (crashPoint_ != here || crashCountdown_ == 0)
        return;
    if (--crashCountdown_ > 0)
        return;
    crashPoint_ = CrashPoint::None;
    const char *name =
        here == CrashPoint::AfterDispatch  ? "after-dispatch"
        : here == CrashPoint::MidCompletion ? "mid-completion"
                                            : "mid-cache-write";
    throw ServiceCrash(name);
}

bool
SweepService::step()
{
    if (stop_.load())
        return false;

    std::vector<SpoolJob> queued = spool_.list(JobState::Queued);
    if (queued.empty())
        return false;

    // Dispatch order: priority first, then submission order.
    std::stable_sort(queued.begin(), queued.end(),
                     [](const SpoolJob &a, const SpoolJob &b) {
                         if (a.spec.priority != b.spec.priority)
                             return a.spec.priority > b.spec.priority;
                         return a.id < b.id;
                     });

    // Serve everything the cache already proves — no run slot spent.
    std::vector<SpoolJob> ready;
    auto now = std::chrono::steady_clock::now();
    bool backlogged = false;
    auto earliest = now;
    for (SpoolJob &job : queued) {
        ServiceResult cached;
        if (cache_.lookup(job.spec, cached)) {
            spool_.move(job, JobState::Queued, JobState::Done);
            notBefore_.erase(job.id);
            ++stats_.cacheServed;
            ++stats_.completed;
            continue;
        }
        auto it = notBefore_.find(job.id);
        if (it != notBefore_.end() && it->second > now) {
            if (!backlogged || it->second < earliest)
                earliest = it->second;
            backlogged = true;
            continue;
        }
        ready.push_back(std::move(job));
    }

    std::size_t batch = config_.batch ? config_.batch
                                      : std::max(1u, config_.jobs);
    if (ready.empty()) {
        if (!backlogged)
            return true; // everything this round was cache-served
        // All runnable work is backing off; wait out the earliest.
        std::this_thread::sleep_until(earliest);
        return true;
    }
    if (ready.size() > batch)
        ready.resize(batch);

    // Commit point: the batch is now running on disk. A crash here
    // loses only compute — recovery requeues all of it.
    for (SpoolJob &job : ready)
        spool_.move(job, JobState::Queued, JobState::Running);
    stats_.dispatched += ready.size();
    crashMaybe(CrashPoint::AfterDispatch);

    std::vector<JobOutcome> outcomes(ready.size());
    core::ParallelExecutor pool(config_.jobs);
    pool.forEach(ready.size(), [&](std::size_t i) {
        outcomes[i] = runSpooledJob(ready[i], config_,
                                    spool_.scratchDir(ready[i].id));
    });

    // Serial commit, id order (ready is sorted): deterministic
    // spool/cache evolution for a given submission sequence.
    for (std::size_t i = 0; i < ready.size(); ++i) {
        if (i == 1)
            crashMaybe(CrashPoint::MidCompletion);
        SpoolJob &job = ready[i];
        JobOutcome &outcome = outcomes[i];
        if (outcome.resumed)
            ++stats_.resumedFromCheckpoint;
        if (outcome.success) {
            cache_.store(job.spec, outcome.result);
            crashMaybe(CrashPoint::MidCacheWrite);
            job.lastError.clear();
            spool_.move(job, JobState::Running, JobState::Done);
            notBefore_.erase(job.id);
            ++stats_.completed;
            continue;
        }

        ++job.attempts;
        job.lastError = outcome.error;
        if (outcome.permanent ||
            job.attempts >= attemptBudget(job.spec)) {
            spool_.move(job, JobState::Running, JobState::Poisoned);
            notBefore_.erase(job.id);
            ++stats_.poisoned;
            g5p_warn("service: poisoned j%llu after %u attempt(s): %s",
                     (unsigned long long)job.id, job.attempts,
                     job.lastError.c_str());
            continue;
        }

        double backoff_ms =
            config_.backoffBaseMs *
            (double)(1ull << (job.attempts - 1));
        stats_.backoffMsTotal += backoff_ms;
        ++stats_.retries;
        notBefore_[job.id] =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(
                    backoff_ms));
        spool_.move(job, JobState::Running, JobState::Queued);
        g5p_inform("service: retrying j%llu (attempt %u/%u, "
                   "backoff %.1fms): %s",
                   (unsigned long long)job.id, job.attempts,
                   attemptBudget(job.spec), backoff_ms,
                   job.lastError.c_str());
    }
    return true;
}

void
SweepService::runUntilDrained()
{
    while (!stop_.load() && step()) {
    }
}

} // namespace g5p::service
