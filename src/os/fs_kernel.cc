#include "os/fs_kernel.hh"

#include "sim/event_dispatch.hh"
#include "trace/recorder.hh"

namespace g5p::os
{

using namespace isa;

FsKernel::FsKernel(sim::Simulator &sim, const std::string &name,
                   const sim::ClockDomain &domain, Process &process,
                   mem::PhysicalMemory &physmem,
                   const FsKernelParams &params)
    : sim::ClockedObject(sim, name, domain, nullptr, 16 * 1024),
      process_(process),
      physmem_(physmem),
      params_(params),
      timerEvent_(this, name + ".timer")
{
    // The timer survives checkpoints: restore re-schedules it by tag
    // (see EventQueue::registerSerial).
    eventQueue().registerSerial(name + ".timer", &timerEvent_);
}

FsKernel::~FsKernel()
{
    if (timerEvent_.scheduled())
        deschedule(timerEvent_);
    eventQueue().unregisterSerial(name() + ".timer");
}

void
FsKernel::emitBoot(isa::Assembler &as) const
{
    // CPU0 boots; the others spin on the boot flag.
    as.bne(RegA0, RegZero, "fs_secondary_wait");

    // --- BSS clear loop: zero the boot scratch region. ---
    as.li(RegT0, bootTableAddr);
    as.li(RegT1, bootTableAddr +
                 (std::int64_t)params_.bootTableEntries * 8);
    as.label("fs_bss_clear");
    as.sd(RegZero, RegT0, 0);
    as.addi(RegT0, RegT0, 8);
    as.blt(RegT0, RegT1, "fs_bss_clear");

    // --- Page-table construction: fill descriptor slots. ---
    as.li(RegT0, bootTableAddr);
    as.li(RegT2, 0); // frame cursor
    as.li(RegT1, (std::int64_t)params_.bootTableEntries);
    as.label("fs_pt_build");
    as.slli(RegS0, RegT2, 12);   // frame address
    as.opImm(Opcode::Ori, RegS0, RegS0, 0x7); // V|R|W bits
    as.sd(RegS0, RegT0, 0);
    as.addi(RegT0, RegT0, 8);
    as.addi(RegT2, RegT2, 1);
    as.blt(RegT2, RegT1, "fs_pt_build");

    // --- Device probe: read-modify-write the "device" region. ---
    as.li(RegT0, bootTableAddr);
    as.li(RegT1, 16);
    as.li(RegT2, 0);
    as.label("fs_dev_probe");
    as.ld(RegS0, RegT0, 0);
    as.xor_(RegS0, RegS0, RegT1);
    as.sd(RegS0, RegT0, 0);
    as.addi(RegT0, RegT0, 64);
    as.addi(RegT2, RegT2, 1);
    as.blt(RegT2, RegT1, "fs_dev_probe");

    // --- Publish boot completion and enter the workload. ---
    as.li(RegT0, bootFlagAddr);
    as.li(RegT1, 1);
    as.sd(RegT1, RegT0, 0);
    as.j("_start");

    // Secondary CPUs: spin until the flag is set.
    as.label("fs_secondary_wait");
    as.li(RegT0, bootFlagAddr);
    as.label("fs_spin");
    as.ld(RegT1, RegT0, 0);
    as.beq(RegT1, RegZero, "fs_spin");
    as.j("_start");
}

void
FsKernel::handleSyscall(cpu::BaseCpu &cpu)
{
    // The trap path exercises simulated-kernel code that SE mode
    // never touches: context save, dispatch table, context restore.
    G5P_TRACE_SCOPE("FsKernel::trapEnter", KernelSim, true);
    kernelSyscalls_ += 1;
    touchState(0, 256, true);
    {
        G5P_TRACE_SCOPE("FsKernel::dispatchSyscall", KernelSim, true);
        process_.handleSyscall(cpu);
    }
    {
        G5P_TRACE_SCOPE("FsKernel::trapReturn", KernelSim, false);
        touchState(256, 128, true);
    }
}

void
FsKernel::startup()
{
    schedule(timerEvent_, curTick() + params_.timerPeriod);
}

void
FsKernel::timerTick()
{
    G5P_TRACE_SCOPE("FsKernel::timerTick", KernelSim,
                    ::g5p::sim::modeledDispatchVirtual());
    timerTicks_ += 1;

    // Scheduler bookkeeping: walk the run-queue region.
    {
        G5P_TRACE_SCOPE("FsKernel::schedulerTick", KernelSim, true);
        for (unsigned i = 0; i < 8; ++i)
            touchState(512 + i * 64, 16, i % 2 == 0);
    }
    // Timekeeping update in guest memory (jiffies-like counter).
    {
        G5P_TRACE_SCOPE("FsKernel::updateJiffies", KernelSim, false);
        Addr jiffies = bootTableAddr - 8;
        physmem_.write(jiffies, 8, physmem_.read(jiffies, 8) + 1);
    }

    if (!stopped_)
        schedule(timerEvent_, curTick() + params_.timerPeriod);
}

void
FsKernel::serialize(sim::CheckpointOut &cp) const
{
    cp.param("stopped", (int)stopped_);
}

void
FsKernel::unserialize(const sim::CheckpointIn &cp)
{
    int stopped = 0;
    cp.param("stopped", stopped);
    stopped_ = stopped != 0;
}

void
FsKernel::regStats()
{
    addStat(&timerTicks_, "timerTicks", "kernel scheduler ticks");
    addStat(&kernelSyscalls_, "syscalls",
            "syscalls trapped through the kernel");
}

} // namespace g5p::os
