/**
 * @file
 * Guest syscall ABI (RISC-V Linux flavored) and the SE-mode syscall
 * emulation layer. In SE mode, syscalls bypass the simulated system
 * and are serviced by mg5 itself — exactly gem5's system-call
 * emulation mode, and one of the behavioural differences between the
 * paper's SE and FS experiments.
 */

#ifndef G5P_OS_SYSCALLS_HH
#define G5P_OS_SYSCALLS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace g5p::cpu { class BaseCpu; }
namespace g5p::mem { class PhysicalMemory; class PageTable; }
namespace g5p::sim { class CheckpointIn; class CheckpointOut; }

namespace g5p::os
{

class ThreadRuntime;

/** Syscall numbers (passed in a7). */
enum class SyscallNr : std::uint64_t
{
    Exit = 93,      ///< a0 = status; halts the calling CPU
    Write = 64,     ///< a0 = fd, a1 = buf vaddr, a2 = len
    Brk = 214,      ///< a0 = new break (0 queries)
    ClockGetTime = 113, ///< returns sim time in ns in a0
    GetPid = 172,
    GetCpu = 168,   ///< returns cpu id in a0

    /**
     * @{ m5ops-style pseudo-syscalls (gem5's `m5 resetstats` /
     * `m5 dumpstats`): workloads bracket their region of interest so
     * warmup is excluded from the statistics, exactly the paper's
     * checkpoint-then-measure methodology.
     */
    ResetStats = 1000,
    DumpStats = 1001,
    /** @} */

    // 1010..1013: guest threading shim (see os/threads.hh).
};

/**
 * Emulation engine shared by Process (SE) and FsKernel (FS). Decodes
 * the registers of @p cpu and performs the call.
 */
class SyscallEmulator
{
  public:
    SyscallEmulator(mem::PhysicalMemory &physmem,
                    const mem::PageTable &page_table, std::uint64_t pid)
        : physmem_(physmem), pageTable_(page_table), pid_(pid)
    {}

    /** Service the syscall pending on @p cpu; sets a0 to the result. */
    void emulate(cpu::BaseCpu &cpu);

    /** Everything written to fd 1/2 so far. */
    const std::string &consoleOutput() const { return console_; }

    /** Stats snapshots taken by DumpStats, in order. */
    const std::vector<std::string> &statsDumps() const
    { return statsDumps_; }

    /** Exit status of the last Exit call. */
    std::uint64_t exitStatus() const { return exitStatus_; }

    /** @{ Heap-break bookkeeping (set up by the Process). */
    void setBrkRange(std::uint64_t base, std::uint64_t limit)
    {
        brk_ = base;
        brkLimit_ = limit;
    }
    std::uint64_t brk() const { return brk_; }
    /** @} */

    /** Attach the thread shim (multi-core; see os/threads.hh). */
    void setThreadRuntime(ThreadRuntime *threads)
    { threads_ = threads; }

    /** Checkpoint console output, stats dumps and break state. */
    void serialize(sim::CheckpointOut &cp) const;
    void unserialize(const sim::CheckpointIn &cp);

  private:
    mem::PhysicalMemory &physmem_;
    const mem::PageTable &pageTable_;
    std::uint64_t pid_;
    std::string console_;
    std::vector<std::string> statsDumps_;
    std::uint64_t exitStatus_ = 0;
    std::uint64_t brk_ = 0;
    std::uint64_t brkLimit_ = 0;
    ThreadRuntime *threads_ = nullptr;
};

} // namespace g5p::os

#endif // G5P_OS_SYSCALLS_HH
