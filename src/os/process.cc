#include "os/process.hh"

#include "trace/recorder.hh"

namespace g5p::os
{

Process::Process(sim::Simulator &sim, const std::string &name,
                 mem::PhysicalMemory &physmem, std::uint64_t pid)
    : sim::SimObject(sim, name, nullptr, 4096),
      physmem_(physmem),
      emulator_(physmem, pageTable_, pid)
{
}

void
Process::mapAll()
{
    pageTable_.mapRange(0, 0, physmem_.size(), true, true);
}

void
Process::loadImage(const isa::Program &program)
{
    G5P_TRACE_SCOPE("Process::loadImage", Syscall, false);
    g5p_assert(program.end() <= physmem_.size(),
               "program image does not fit in guest memory");
    physmem_.writeBlock(program.base, program.words.data(),
                        program.size());
}

Addr
Process::stackTop(unsigned cpu_id) const
{
    Addr top = physmem_.size() - cpu_id * stackBytes - 64;
    return top & ~(Addr)15;
}

void
Process::handleSyscall(cpu::BaseCpu &cpu)
{
    G5P_TRACE_SCOPE("Process::handleSyscall", Syscall, true);
    touchState(0, 64, true);
    emulator_.emulate(cpu);
}

void
Process::serialize(sim::CheckpointOut &cp) const
{
    pageTable_.serialize(cp);
    emulator_.serialize(cp);
}

void
Process::unserialize(const sim::CheckpointIn &cp)
{
    pageTable_.unserialize(cp);
    emulator_.unserialize(cp);
}

} // namespace g5p::os
