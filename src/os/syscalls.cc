#include "os/syscalls.hh"

#include <sstream>

#include "base/logging.hh"
#include "cpu/base_cpu.hh"
#include "os/threads.hh"
#include "sim/simulator.hh"
#include "mem/page_table.hh"
#include "mem/physical.hh"
#include "trace/recorder.hh"

namespace g5p::os
{

void
SyscallEmulator::emulate(cpu::BaseCpu &cpu)
{
    auto nr = (SyscallNr)cpu.readArchReg(isa::RegA7);
    std::uint64_t a0 = cpu.readArchReg(isa::RegA0);
    std::uint64_t a1 = cpu.readArchReg(isa::RegA1);
    std::uint64_t a2 = cpu.readArchReg(isa::RegA2);

    switch (nr) {
      case SyscallNr::Exit: {
        G5P_TRACE_SCOPE("Syscall::exit", Syscall, false);
        exitStatus_ = a0;
        cpu.setArchReg(isa::RegA0, 0);
        cpu.requestHalt();
        break;
      }

      case SyscallNr::Write: {
        G5P_TRACE_SCOPE("Syscall::write", Syscall, false);
        g5p_assert(a0 == 1 || a0 == 2,
                   "write to unsupported fd %llu",
                   (unsigned long long)a0);
        for (std::uint64_t i = 0; i < a2; ++i) {
            auto tr = pageTable_.translate(a1 + i);
            if (!tr.valid)
                break;
            console_.push_back((char)physmem_.read(tr.paddr, 1));
        }
        cpu.setArchReg(isa::RegA0, a2);
        break;
      }

      case SyscallNr::Brk: {
        G5P_TRACE_SCOPE("Syscall::brk", Syscall, false);
        if (a0 != 0 && a0 <= brkLimit_)
            brk_ = a0;
        cpu.setArchReg(isa::RegA0, brk_);
        break;
      }

      case SyscallNr::ClockGetTime: {
        G5P_TRACE_SCOPE("Syscall::clock_gettime", Syscall, false);
        // Simulated nanoseconds (1000 ticks per ns at 1THz).
        cpu.setArchReg(isa::RegA0, cpu.curTick() / 1000);
        break;
      }

      case SyscallNr::GetPid:
        cpu.setArchReg(isa::RegA0, pid_);
        break;

      case SyscallNr::GetCpu:
        cpu.setArchReg(isa::RegA0, (std::uint64_t)cpu.cpuId());
        break;

      case SyscallNr::ResetStats: {
        G5P_TRACE_SCOPE("Syscall::resetStats", Stats, false);
        cpu.simulator().resetAllStats();
        cpu.setArchReg(isa::RegA0, 0);
        break;
      }

      case SyscallNr::DumpStats: {
        G5P_TRACE_SCOPE("Syscall::dumpStats", Stats, false);
        std::ostringstream dump;
        cpu.simulator().dumpStats(dump);
        statsDumps_.push_back(dump.str());
        cpu.setArchReg(isa::RegA0, (std::uint64_t)statsDumps_.size());
        break;
      }

      default:
        if (threads_ && ThreadRuntime::handles((std::uint64_t)nr)) {
            threads_->emulate(cpu);
            break;
        }
        g5p_fatal("unimplemented syscall %llu",
                  (unsigned long long)nr);
    }
}

void
SyscallEmulator::serialize(sim::CheckpointOut &cp) const
{
    // Console text and stats dumps embed newlines; the checkpoint
    // text format escapes them (see sim/serialize.hh).
    cp.param("console", console_);
    cp.param("numStatsDumps", statsDumps_.size());
    for (std::size_t i = 0; i < statsDumps_.size(); ++i)
        cp.param("statsDump" + std::to_string(i), statsDumps_[i]);
    cp.param("exitStatus", exitStatus_);
    cp.param("brk", brk_);
    cp.param("brkLimit", brkLimit_);
}

void
SyscallEmulator::unserialize(const sim::CheckpointIn &cp)
{
    cp.param("console", console_);
    std::size_t dumps = 0;
    cp.param("numStatsDumps", dumps);
    statsDumps_.clear();
    for (std::size_t i = 0; i < dumps; ++i) {
        std::string dump;
        cp.param("statsDump" + std::to_string(i), dump);
        statsDumps_.push_back(std::move(dump));
    }
    cp.param("exitStatus", exitStatus_);
    cp.param("brk", brk_);
    cp.param("brkLimit", brkLimit_);
}

} // namespace g5p::os
