#include "os/system.hh"

#include <sstream>

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::os
{

const char *
cpuModelName(CpuModel model)
{
    switch (model) {
      case CpuModel::Atomic: return "Atomic";
      case CpuModel::Timing: return "Timing";
      case CpuModel::Minor:  return "Minor";
      case CpuModel::O3:     return "O3";
    }
    return "?";
}

const char *
simModeName(SimMode mode)
{
    return mode == SimMode::SE ? "SE" : "FS";
}

System::System(sim::Simulator &sim, const SystemConfig &config,
               const GuestWorkload &workload)
    : sim_(sim), config_(config),
      clock_(sim::ClockDomain::fromMHz(config.cpuMHz))
{
    build(workload);
}

System::~System()
{
    // The probes capture `this`; the Simulator outlives the System in
    // every configuration, so remove them before our members go away.
    sim_.setActivityProbe(nullptr);
    sim_.setDiagProbe(nullptr);
}

std::unique_ptr<cpu::BaseCpu>
System::makeCpu(unsigned i)
{
    cpu::CpuParams base;
    base.cpuId = (int)i;
    base.resetPc = 0x1000;
    base.maxInsts = config_.maxInstsPerCpu;
    std::string name = "cpu" + std::to_string(i);

    switch (config_.cpuModel) {
      case CpuModel::Atomic:
        return std::make_unique<cpu::AtomicCpu>(sim_, name, clock_,
                                                base, *physmem_);
      case CpuModel::Timing:
        return std::make_unique<cpu::TimingCpu>(sim_, name, clock_,
                                                base, *physmem_);
      case CpuModel::Minor:
        return std::make_unique<cpu::MinorCpu>(sim_, name, clock_,
                                               base, config_.minor,
                                               *physmem_);
      case CpuModel::O3:
        return std::make_unique<cpu::O3Cpu>(sim_, name, clock_, base,
                                            config_.o3, *physmem_);
    }
    g5p_panic("bad CPU model");
}

mem::Cache &
System::asCache(const mem::CacheHandles &handles)
{
    auto *cache = dynamic_cast<mem::Cache *>(handles.object.get());
    g5p_assert(cache, "concrete cache access on a custom memory path");
    return *cache;
}

mem::CoherentXbar &
System::xbar()
{
    auto *xbar = dynamic_cast<mem::CoherentXbar *>(xbar_.object.get());
    g5p_assert(xbar, "concrete xbar access on a custom memory path");
    return *xbar;
}

void
System::wireCpu(cpu::BaseCpu &cpu, unsigned i)
{
    cpu.setTlbs(itlbs_[i].get(), dtlbs_[i].get());
    cpu.setSyscallHandler(config_.mode == SimMode::FS
                              ? (cpu::SyscallHandler *)fsKernel_.get()
                              : process_.get());
    cpu.setHaltCallback([this](cpu::BaseCpu &) {
        if (++haltedCount_ == cpus_.size())
            sim_.exitSimLoop("workload complete");
    });
    cpu.icachePort().bind(*l1is_[i].cpuSide);
    cpu.dcachePort().bind(*l1ds_[i].cpuSide);
}

void
System::build(const GuestWorkload &workload)
{
    g5p_assert(config_.numCpus >= 1 && config_.numCpus <= 16,
               "unsupported CPU count %u", config_.numCpus);

    mem::MemPathFactory &mem_path =
        config_.memPath ? *config_.memPath
                        : mem::MemPathFactory::standard();

    physmem_ = std::make_unique<mem::PhysicalMemory>(
        sim_, "physmem", config_.memBytes);
    dram_ = std::make_unique<mem::DramCtrl>(sim_, "dram", clock_,
                                            *physmem_, config_.dram);
    l2_ = mem_path.makeCache(sim_, "l2", clock_, config_.l2);
    xbar_ = mem_path.makeXbar(sim_, "xbar", clock_, config_.xbar);

    l2_.memSide->bind(dram_->port());
    xbar_.memSide->bind(*l2_.cpuSide);

    process_ = std::make_unique<Process>(sim_, "process", *physmem_,
                                         100);
    process_->mapAll();

    // Thread shim: always present (stats-invisible when unused) so
    // threaded workloads run under every mode and CPU count.
    threads_ = std::make_unique<ThreadRuntime>(
        sim_, "threads", *physmem_, config_.numCpus);
    process_->emulator().setThreadRuntime(threads_.get());

    if (config_.mode == SimMode::FS) {
        fsKernel_ = std::make_unique<FsKernel>(
            sim_, "kernel", clock_, *process_, *physmem_, config_.fs);
    }

    for (unsigned i = 0; i < config_.numCpus; ++i) {
        auto idx = std::to_string(i);
        l1is_.push_back(mem_path.makeCache(
            sim_, "cpu" + idx + ".icache", clock_, config_.l1i));
        l1ds_.push_back(mem_path.makeCache(
            sim_, "cpu" + idx + ".dcache", clock_, config_.l1d));
        itlbs_.push_back(std::make_unique<mem::Tlb>(
            sim_, "cpu" + idx + ".itlb", config_.itlb));
        dtlbs_.push_back(std::make_unique<mem::Tlb>(
            sim_, "cpu" + idx + ".dtlb", config_.dtlb));

        itlbs_[i]->setPageTable(&process_->pageTable());
        dtlbs_[i]->setPageTable(&process_->pageTable());

        auto cpu = makeCpu(i);
        wireCpu(*cpu, i);
        l1is_[i].memSide->bind(mem_path.addUpstreamPort(
            *xbar_.object, l1is_[i].object.get()));
        l1ds_[i].memSide->bind(mem_path.addUpstreamPort(
            *xbar_.object, l1ds_[i].object.get()));

        cpus_.push_back(std::move(cpu));
    }

    // Assemble the guest image: optional FS boot prologue first.
    isa::Assembler as(0x1000);
    if (config_.mode == SimMode::FS)
        fsKernel_->emitBoot(as);
    workload.emit(as, config_.numCpus, config_.mode);
    program_ = as.assemble();

    process_->loadImage(program_);
    workload.initMemory(*physmem_);

    // Heap: from just past the image (page aligned) to below stacks.
    Addr heap_base = alignUp(program_.end(), mem::guestPageBytes);
    Addr heap_limit = config_.memBytes -
                      config_.numCpus * Process::stackBytes;
    process_->setHeapRange(heap_base, heap_limit);

    // Reset state: pc at image base, a0 = cpu id, sp = stack top.
    for (unsigned i = 0; i < config_.numCpus; ++i) {
        cpus_[i]->setPc(program_.base);
        cpus_[i]->setArchReg(isa::RegA0, i);
        cpus_[i]->setArchReg(isa::RegSp, process_->stackTop(i));
    }

    // Supervision: an empty event queue while CPUs are running but
    // not all halted means the machine wedged (e.g. a lost memory
    // response), not that the workload finished.
    sim_.setActivityProbe([this] {
        return cpusActivated_ && !allHalted();
    });
    sim_.setDiagProbe([this] {
        std::ostringstream os;
        os << "machine state (" << cpus_.size() << " CPUs, "
           << haltedCount_ << " halted):\n";
        for (const auto &cpu : cpus_) {
            os << "  " << cpu->name() << ": pc=0x" << std::hex
               << cpu->pc() << std::dec << " insts="
               << cpu->numInsts()
               << (cpu->halted() ? " [halted]" : " [running]")
               << "\n";
        }
        return os.str();
    });
}

sim::SimResult
System::run(const sim::RunOptions &options, Tick tick_limit)
{
    sim_.configure(options);
    return run(tick_limit);
}

sim::SimResult
System::run(Tick tick_limit)
{
    if (!activated_) {
        activated_ = true;
        if (sim_.restored()) {
            // A restored machine resumes from the checkpointed event
            // queue: the CPU tick events are already re-scheduled, so
            // activating here would perturb timing. Just rebuild the
            // halt tally the checkpointed callbacks had accumulated.
            haltedCount_ = 0;
            for (auto &cpu : cpus_)
                if (cpu->halted())
                    ++haltedCount_;
        } else {
            sim::SimResult first = sim_.run(0); // init/startup phases
            (void)first;
            for (auto &cpu : cpus_)
                cpu->activate();
        }
        cpusActivated_ = true;
    }
    return sim_.run(tick_limit);
}

bool
System::switchCpu(CpuModel target)
{
    if (target == config_.cpuModel)
        return true;
    g5p_assert(!cpus_.empty(), "switchCpu on an empty machine");
    if (!sim_.advanceToQuiescence())
        return false; // the workload finished during the drain

    // Serialize each core (architectural state + stats) and the
    // pending event schedule into an in-memory checkpoint — the same
    // per-object format takeCheckpoint writes, minus everything that
    // stays in place (memory, caches, TLBs, page table).
    sim::CheckpointOut out;
    for (const auto &cpu : cpus_) {
        out.pushSection(cpu->name());
        cpu->serialize(out);
        sim::serializeGroupStats(*cpu, out);
        out.popSection();
    }
    out.pushSection("eventq");
    sim_.eventq().serializeEvents(out);
    out.popSection();
    sim::CheckpointIn in = sim::CheckpointIn::fromText(out.toText());

    // Tear the old cores out: remember their stats slots (dump order
    // must not change), unbind the L1 cpu-side ports (the request
    // side dies with the core), then destroy — the destructors
    // deschedule tick events and free the ".tick" serial tags the
    // replacement cores re-register under the same names.
    std::vector<std::size_t> slots;
    for (auto &cpu : cpus_) {
        slots.push_back(sim_.childIndex(cpu.get()));
        cpu->icachePort().unbind();
        cpu->dcachePort().unbind();
    }
    cpus_.clear();

    config_.cpuModel = target;
    for (unsigned i = 0; i < config_.numCpus; ++i) {
        auto cpu = makeCpu(i);
        wireCpu(*cpu, i);
        sim_.placeChildAt(cpu.get(), slots[i]);
        cpus_.push_back(std::move(cpu));
    }
    // The replacements missed the cold-start init/regStats/startup
    // phases; run them now, then rebuild the event schedule exactly
    // as restoreCheckpoint does — clear everything (including any
    // startup-scheduled events) and re-schedule in recorded service
    // order, so fresh sequence numbers reproduce the same tie-breaks
    // as a from-checkpoint cold start.
    sim_.initNewObjects();
    sim_.eventq().clear();

    for (auto &cpu : cpus_) {
        in.pushSection(cpu->name());
        cpu->unserialize(in);
        sim::unserializeGroupStats(*cpu, in);
        in.popSection();
    }
    in.pushSection("eventq");
    sim_.eventq().unserializeEvents(in);
    in.popSection();

    // Halted cores restore halted_ directly (no callback fires), so
    // the tally carries over unchanged.
    return true;
}

std::uint64_t
System::result() const
{
    return physmem_->read(GuestWorkload::resultAddr, 8);
}

std::uint64_t
System::totalInsts() const
{
    std::uint64_t total = 0;
    for (const auto &cpu : cpus_)
        total += cpu->numInsts();
    return total;
}

} // namespace g5p::os
