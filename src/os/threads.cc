#include "os/threads.hh"

#include "base/logging.hh"
#include "cpu/base_cpu.hh"
#include "isa/assembler.hh"
#include "mem/physical.hh"
#include "sim/serialize.hh"
#include "trace/recorder.hh"

namespace g5p::os
{

ThreadRuntime::ThreadRuntime(sim::Simulator &sim,
                             const std::string &name,
                             mem::PhysicalMemory &physmem,
                             unsigned num_cpus)
    : sim::SimObject(sim, name, nullptr, num_cpus * 16),
      physmem_(physmem), numCpus_(num_cpus),
      state_(num_cpus, TState::Idle)
{
    // CPU 0 runs the main thread from reset.
    state_[0] = TState::Running;
}

void
ThreadRuntime::emulate(cpu::BaseCpu &cpu)
{
    G5P_TRACE_SCOPE("ThreadRuntime::emulate", Syscall, false);
    auto nr = (ThreadCall)cpu.readArchReg(isa::RegA7);
    std::uint64_t a0 = cpu.readArchReg(isa::RegA0);
    std::uint64_t a1 = cpu.readArchReg(isa::RegA1);
    unsigned cpu_id = (unsigned)cpu.cpuId();

    std::uint64_t result = 0;
    switch (nr) {
      case ThreadCall::Spawn:      result = spawn(a0, a1); break;
      case ThreadCall::Join:       result = join(a0); break;
      case ThreadCall::Barrier:    result = barrier(cpu_id, a0, a1);
                                   break;
      case ThreadCall::ExitNotify: result = exitNotify(cpu_id); break;
      default:
        g5p_fatal("bad thread syscall %llu", (unsigned long long)nr);
    }
    cpu.setArchReg(isa::RegA0, result);
}

std::uint64_t
ThreadRuntime::spawn(std::uint64_t entry, std::uint64_t arg)
{
    // Pick the lowest idle CPU; the main thread owns CPU 0 forever.
    for (unsigned c = 1; c < numCpus_; ++c) {
        if (state_[c] != TState::Idle)
            continue;
        state_[c] = TState::Running;
        spawns_ += 1;
        // Argument first: the parked worker polls the entry word and
        // syscalls are atomic wrt all guest CPUs anyway.
        physmem_.write(mailboxAddr(c) + 8, 8, arg);
        physmem_.write(mailboxAddr(c), 8, entry);
        return c;
    }
    return (std::uint64_t)-1;
}

std::uint64_t
ThreadRuntime::join(std::uint64_t tid)
{
    if (tid == 0 || tid >= numCpus_)
        return 0; // nothing to join
    switch (state_[tid]) {
      case TState::Running: return 1; // guest keeps spinning
      case TState::Exited:
        state_[tid] = TState::Idle; // consumed; slot reusable
        return 0;
      case TState::Idle: return 0;
    }
    return 0;
}

std::uint64_t
ThreadRuntime::exitNotify(unsigned cpu_id)
{
    g5p_assert(cpu_id != 0 && cpu_id < numCpus_ &&
               state_[cpu_id] == TState::Running,
               "%s: stray thread exit on cpu%u", name().c_str(),
               cpu_id);
    state_[cpu_id] = TState::Exited;
    // Clear the mailbox so the park loop resumes waiting.
    physmem_.write(mailboxAddr(cpu_id), 8, 0);
    physmem_.write(mailboxAddr(cpu_id) + 8, 8, 0);
    return 0;
}

std::uint64_t
ThreadRuntime::barrier(unsigned cpu_id, std::uint64_t id,
                       std::uint64_t n)
{
    g5p_assert(n >= 1 && n <= numCpus_,
               "%s: barrier %llu with %llu participants on a %u-CPU "
               "machine", name().c_str(), (unsigned long long)id,
               (unsigned long long)n, numCpus_);
    Barrier &b = barriers_[id];
    if (b.cpuGen.empty()) {
        b.cpuGen.resize(numCpus_, 0);
        b.waiting.resize(numCpus_, 0);
    }

    if (b.waiting[cpu_id]) {
        // Re-poll: released once the generation moved past ours.
        if (b.gen >= b.cpuGen[cpu_id]) {
            b.waiting[cpu_id] = 0;
            return 0;
        }
        return 1;
    }

    // New arrival for the current generation.
    b.cpuGen[cpu_id] = b.gen + 1;
    b.count += 1;
    if (b.count == n) {
        // Last arriver releases everyone and passes straight through.
        b.count = 0;
        b.gen += 1;
        return 0;
    }
    b.waiting[cpu_id] = 1;
    return 1;
}

unsigned
ThreadRuntime::runningThreads() const
{
    unsigned n = 0;
    for (unsigned c = 1; c < numCpus_; ++c)
        if (state_[c] == TState::Running)
            ++n;
    return n;
}

void
ThreadRuntime::emitThreadEntry(isa::Assembler &as)
{
    // Save the cpu id where the park loop (and spawned entry
    // functions, by convention) will not clobber it, then park
    // everyone but CPU 0.
    as.mv(cpuIdReg, isa::RegA0);
    as.bne(isa::RegA0, isa::RegZero, "g5p_park");
}

void
ThreadRuntime::emitWorkerLoop(isa::Assembler &as)
{
    using namespace isa;
    as.label("g5p_park");
    // t0 = &mailbox[cpu]
    as.li(RegT0, (std::int64_t)mailboxBase);
    as.slli(RegT1, cpuIdReg, 4);
    as.add(RegT0, RegT0, RegT1);
    as.label("g5p_park_spin");
    as.ld(RegT1, RegT0, 0);
    as.beq(RegT1, RegZero, "g5p_park_spin");
    as.addi(RegT2, RegZero, (std::int32_t)shutdownSentinel);
    as.beq(RegT1, RegT2, "g5p_park_halt");
    as.ld(RegA0, RegT0, 8);           // argument
    as.jalr(RegRa, RegT1, 0);         // call entry(arg)
    as.li(RegA7, (std::int64_t)ThreadCall::ExitNotify);
    as.ecall();
    as.j("g5p_park");
    as.label("g5p_park_halt");
    as.halt();
}

void
ThreadRuntime::emitShutdown(isa::Assembler &as, unsigned num_cpus)
{
    using namespace isa;
    if (num_cpus <= 1)
        return;
    // Plain guest stores of the sentinel into each worker mailbox:
    // the wakeup travels through the coherent memory system.
    as.li(RegT0, (std::int64_t)mailboxAddr(1));
    as.addi(RegT1, RegZero, (std::int32_t)shutdownSentinel);
    for (unsigned c = 1; c < num_cpus; ++c)
        as.sd(RegT1, RegT0, (std::int32_t)((c - 1) * 16));
}

void
ThreadRuntime::emitBarrier(isa::Assembler &as, std::uint64_t id,
                           std::uint64_t n,
                           const std::string &label_prefix)
{
    using namespace isa;
    const std::string spin = label_prefix + "_bar";
    as.label(spin);
    as.li(RegA0, (std::int64_t)id);
    as.li(RegA1, (std::int64_t)n);
    as.li(RegA7, (std::int64_t)ThreadCall::Barrier);
    as.ecall();
    as.bne(RegA0, RegZero, spin);
}

void
ThreadRuntime::serialize(sim::CheckpointOut &cp) const
{
    std::vector<std::uint64_t> states(state_.size());
    for (std::size_t i = 0; i < state_.size(); ++i)
        states[i] = (std::uint64_t)state_[i];
    cp.paramVector("threadState", states);
    cp.param("spawns", spawns_);

    std::vector<std::uint64_t> ids;
    for (const auto &[id, b] : barriers_)
        ids.push_back(id);
    cp.paramVector("barrierIds", ids);
    for (const auto &[id, b] : barriers_) {
        const std::string p = "barrier" + std::to_string(id);
        cp.param(p + "Gen", b.gen);
        cp.param(p + "Count", b.count);
        cp.paramVector(p + "CpuGen", b.cpuGen);
        std::vector<std::uint64_t> waiting(b.waiting.begin(),
                                           b.waiting.end());
        cp.paramVector(p + "Waiting", waiting);
    }
}

void
ThreadRuntime::unserialize(const sim::CheckpointIn &cp)
{
    std::vector<std::uint64_t> states;
    cp.paramVector("threadState", states);
    g5p_assert(states.size() == state_.size(),
               "%s: thread checkpoint CPU-count mismatch",
               name().c_str());
    for (std::size_t i = 0; i < states.size(); ++i)
        state_[i] = (TState)states[i];
    cp.param("spawns", spawns_);

    std::vector<std::uint64_t> ids;
    cp.paramVector("barrierIds", ids);
    barriers_.clear();
    for (std::uint64_t id : ids) {
        const std::string p = "barrier" + std::to_string(id);
        Barrier b;
        cp.param(p + "Gen", b.gen);
        cp.param(p + "Count", b.count);
        cp.paramVector(p + "CpuGen", b.cpuGen);
        std::vector<std::uint64_t> waiting;
        cp.paramVector(p + "Waiting", waiting);
        b.waiting.assign(waiting.begin(), waiting.end());
        barriers_[id] = std::move(b);
    }
}

} // namespace g5p::os
