/**
 * @file
 * SE-mode guest process: owns the page table, the memory layout
 * (text/data/heap/per-CPU stacks), the loaded program image, and the
 * syscall emulator, mirroring gem5's Process object.
 */

#ifndef G5P_OS_PROCESS_HH
#define G5P_OS_PROCESS_HH

#include "cpu/base_cpu.hh"
#include "isa/assembler.hh"
#include "mem/page_table.hh"
#include "mem/physical.hh"
#include "os/syscalls.hh"
#include "sim/sim_object.hh"

namespace g5p::os
{

class Process : public sim::SimObject, public cpu::SyscallHandler
{
  public:
    Process(sim::Simulator &sim, const std::string &name,
            mem::PhysicalMemory &physmem, std::uint64_t pid);

    /** Identity-map the whole physical memory (rwx). */
    void mapAll();

    /** Copy the program image into memory (text is read/execute). */
    void loadImage(const isa::Program &program);

    /** Stack top for CPU @p cpu_id (stacks grow down from memtop). */
    Addr stackTop(unsigned cpu_id) const;

    /** Configure the heap break range for the brk syscall. */
    void setHeapRange(Addr base, Addr limit)
    { emulator_.setBrkRange(base, limit); }

    mem::PageTable &pageTable() { return pageTable_; }
    const mem::PageTable &pageTable() const { return pageTable_; }

    SyscallEmulator &emulator() { return emulator_; }

    void handleSyscall(cpu::BaseCpu &cpu) override;

    /** Checkpoint the page table and the syscall-emulator state. */
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    /** Bytes reserved per CPU stack. */
    static constexpr std::uint64_t stackBytes = 64 * 1024;

  private:
    mem::PhysicalMemory &physmem_;
    mem::PageTable pageTable_;
    SyscallEmulator emulator_;
};

} // namespace g5p::os

#endif // G5P_OS_PROCESS_HH
