/**
 * @file
 * System: the top-level factory that assembles a complete simulated
 * machine — CPUs, L1s, coherent xbar, L2, DRAM, TLBs, process or
 * FS-lite kernel — from a SystemConfig, loads a guest workload, and
 * runs it. This is mg5's equivalent of a gem5 Python configuration.
 */

#ifndef G5P_OS_SYSTEM_HH
#define G5P_OS_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/atomic_cpu.hh"
#include "cpu/minor_cpu.hh"
#include "cpu/o3/o3_cpu.hh"
#include "cpu/timing_cpu.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/path_factory.hh"
#include "mem/xbar.hh"
#include "os/fs_kernel.hh"
#include "os/process.hh"
#include "os/threads.hh"
#include "sim/simulator.hh"

namespace g5p::os
{

/** The four gem5 CPU detail levels (paper §III). */
enum class CpuModel : std::uint8_t { Atomic, Timing, Minor, O3 };

/** CPU-model name as the paper spells it. */
const char *cpuModelName(CpuModel model);

/** All four models, in increasing detail order. */
inline constexpr CpuModel allCpuModels[] = {
    CpuModel::Atomic, CpuModel::Timing, CpuModel::Minor, CpuModel::O3,
};

/** Simulation modes (paper §II). */
enum class SimMode : std::uint8_t { SE, FS };

/** Mode name ("SE"/"FS"). */
const char *simModeName(SimMode mode);

/** Full machine configuration. */
struct SystemConfig
{
    CpuModel cpuModel = CpuModel::Atomic;
    SimMode mode = SimMode::SE;
    unsigned numCpus = 1;
    std::uint64_t memBytes = 32ull << 20;
    std::uint64_t cpuMHz = 2000;
    std::uint64_t maxInstsPerCpu = 0;

    mem::CacheParams l1i{.sizeBytes = 32 * 1024, .assoc = 4,
                         .tagLatency = 1, .dataLatency = 1,
                         .responseLatency = 1, .numMshrs = 4,
                         .isL1 = true};
    mem::CacheParams l1d{.sizeBytes = 32 * 1024, .assoc = 4,
                         .tagLatency = 1, .dataLatency = 1,
                         .responseLatency = 1, .numMshrs = 8,
                         .isL1 = true};
    mem::CacheParams l2{.sizeBytes = 1024 * 1024, .assoc = 8,
                        .tagLatency = 4, .dataLatency = 6,
                        .responseLatency = 2, .numMshrs = 16,
                        .isL1 = false};
    mem::TlbParams itlb{.entries = 64, .assoc = 4,
                        .walkLatency = 20};
    mem::TlbParams dtlb{.entries = 64, .assoc = 4,
                        .walkLatency = 20};
    mem::XbarParams xbar;
    mem::DramParams dram;
    cpu::MinorParams minor;
    cpu::O3Params o3;
    FsKernelParams fs;

    /**
     * Factory building the caches and coherent xbar (null = the
     * standard optimized path). Lets bench/abl_timing drop its
     * embedded pre-optimization reference path into an otherwise
     * identical machine. Not owned; must outlive the System.
     */
    mem::MemPathFactory *memPath = nullptr;
};

/**
 * Interface guest workloads implement (see src/workloads). The same
 * workload runs unchanged on every CPU model and mode.
 *
 * Conventions: every CPU starts at the image base with a0 = cpu id
 * and sp = its stack top; the workload's code begins at label
 * "_start"; the workload stores its final checksum to resultAddr
 * before halting; in multi-CPU runs, worker CPUs publish completion
 * at doneFlagAddr(cpu) and CPU 0 collects.
 */
class GuestWorkload
{
  public:
    virtual ~GuestWorkload() = default;

    /** Workload name as the paper spells it. */
    virtual std::string name() const = 0;

    /** Emit the guest code (must define label "_start"). */
    virtual void emit(isa::Assembler &as, unsigned num_cpus,
                      SimMode mode) const = 0;

    /** Initialize guest data memory before the run. */
    virtual void initMemory(mem::PhysicalMemory &physmem) const {}

    /**
     * Expected value at resultAddr after a correct run (0 = skip
     * verification). Must be CPU-model independent.
     */
    virtual std::uint64_t expectedResult(unsigned num_cpus) const
    { return 0; }

    /** Guest address of the workload checksum. */
    static constexpr Addr resultAddr = 0x800;

    /** Guest address of CPU @p cpu_id's completion flag. */
    static constexpr Addr
    doneFlagAddr(unsigned cpu_id)
    {
        return 0x900 + cpu_id * 8;
    }
};

class System
{
  public:
    /**
     * Build the machine inside @p sim and load @p workload. The
     * System must outlive any run; @p workload is only used during
     * construction.
     */
    System(sim::Simulator &sim, const SystemConfig &config,
           const GuestWorkload &workload);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Activate the CPUs (first call) and run to completion. */
    sim::SimResult run(Tick tick_limit = maxTick);

    /** Same, applying @p options (watchdog, auto-checkpoint,
     *  profiler, fault seed) to the simulator first. */
    sim::SimResult run(const sim::RunOptions &options,
                       Tick tick_limit = maxTick);

    /**
     * Drain-and-switch to @p target between run() calls (gem5's
     * switchCpus): service events to the quiescent point, serialize
     * each core's architectural state, stats and the pending event
     * schedule, destroy the cores, construct @p target cores in
     * place (same names, same wiring, same stats slots), transplant
     * the state, and re-schedule all pending events in recorded
     * service order. Memory, caches, TLBs and the page table stay in
     * place untouched.
     *
     * The result is bit-identical to writing a checkpoint at the
     * same boundary and cold-starting a @p target machine from it
     * (SwitchEquivalenceGate in tests/test_sampling.cc): both paths
     * run the same cross-model unserialize and rebuild the event
     * schedule with fresh sequence numbers in the same order.
     *
     * Commit hooks and instruction milestones on the old cores are
     * not carried over — re-arm them on cpu(i) afterwards.
     *
     * @return false if the simulation exited during the drain (the
     *         workload finished; the machine is left as-is); true on
     *         a completed switch (or a no-op same-model request).
     */
    bool switchCpu(CpuModel target);

    /** @{ Component access. */
    sim::Simulator &simulator() { return sim_; }
    cpu::BaseCpu &cpu(unsigned i) { return *cpus_.at(i); }
    unsigned numCpus() const { return (unsigned)cpus_.size(); }
    /** @{ Concrete-type cache/xbar access. Valid on the standard
     *  memory path only (asserted): a custom SystemConfig::memPath
     *  builds its own types, reachable via the SimObject handles. */
    mem::Cache &l1i(unsigned i) { return asCache(l1is_.at(i)); }
    mem::Cache &l1d(unsigned i) { return asCache(l1ds_.at(i)); }
    mem::Cache &l2() { return asCache(l2_); }
    mem::CoherentXbar &xbar();
    /** @} */
    mem::Tlb &itlb(unsigned i) { return *itlbs_.at(i); }
    mem::Tlb &dtlb(unsigned i) { return *dtlbs_.at(i); }
    mem::PhysicalMemory &physmem() { return *physmem_; }
    mem::DramCtrl &dram() { return *dram_; }
    Process &process() { return *process_; }
    ThreadRuntime &threads() { return *threads_; }
    const SystemConfig &config() const { return config_; }
    const isa::Program &program() const { return program_; }
    /** @} */

    /** Guest checksum written by the workload. */
    std::uint64_t result() const;

    /** Committed instructions summed over all CPUs. */
    std::uint64_t totalInsts() const;

    /** True once every CPU has halted. */
    bool allHalted() const { return haltedCount_ == cpus_.size(); }

  private:
    void build(const GuestWorkload &workload);
    std::unique_ptr<cpu::BaseCpu> makeCpu(unsigned i);

    /** Downcast a factory handle to the standard Cache (asserted). */
    static mem::Cache &asCache(const mem::CacheHandles &handles);

    /** Attach TLBs, syscall handler, halt callback and L1 ports to
     *  core @p i (shared between build() and switchCpu()). */
    void wireCpu(cpu::BaseCpu &cpu, unsigned i);

    sim::Simulator &sim_;
    SystemConfig config_;
    sim::ClockDomain clock_;

    std::unique_ptr<mem::PhysicalMemory> physmem_;
    std::unique_ptr<mem::DramCtrl> dram_;
    mem::CacheHandles l2_;
    mem::XbarHandles xbar_;
    std::vector<mem::CacheHandles> l1is_;
    std::vector<mem::CacheHandles> l1ds_;
    std::vector<std::unique_ptr<mem::Tlb>> itlbs_;
    std::vector<std::unique_ptr<mem::Tlb>> dtlbs_;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus_;
    std::unique_ptr<Process> process_;
    std::unique_ptr<ThreadRuntime> threads_;
    std::unique_ptr<FsKernel> fsKernel_;

    isa::Program program_;
    unsigned haltedCount_ = 0;
    bool activated_ = false;
    /** True once the CPUs are really ticking (set after activate(),
     *  or on resume of a restored machine). Gates the deadlock probe
     *  so the init-phase run(0) — queue legitimately empty — is not
     *  reported as a deadlock. */
    bool cpusActivated_ = false;
};

} // namespace g5p::os

#endif // G5P_OS_SYSTEM_HH
