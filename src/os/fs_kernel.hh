/**
 * @file
 * FS-lite: full-system-mode extras on top of the SE substrate.
 *
 * Full-system gem5 boots a real kernel; mg5's FS mode models the three
 * behaviours of FS simulation that matter for the host-side profile:
 *
 *  1. a guest boot sequence executed by CPU 0 before the workload
 *     (BSS clearing, page-table construction, device probing) while
 *     secondary CPUs spin on a boot flag;
 *  2. periodic kernel timer activity (scheduler tick) driven by a
 *     device-timer event, touching kernel data structures;
 *  3. syscalls trapping *into the simulated kernel* (extra simulator
 *     functions per call) instead of being emulated directly.
 *
 * This keeps FS runs distinguishable from SE runs in exactly the ways
 * the paper's Fig. 1/2/9 distinguish them (more code touched, more
 * events, larger footprint), without a full OS port.
 */

#ifndef G5P_OS_FS_KERNEL_HH
#define G5P_OS_FS_KERNEL_HH

#include "isa/assembler.hh"
#include "os/process.hh"
#include "sim/clocked_object.hh"

namespace g5p::os
{

/** FS-mode knobs. */
struct FsKernelParams
{
    Tick timerPeriod = 10'000'000; ///< 10us guest-time scheduler tick
    unsigned bootTableEntries = 256; ///< boot-built page-table slots
};

class FsKernel : public sim::ClockedObject, public cpu::SyscallHandler
{
  public:
    FsKernel(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain, Process &process,
             mem::PhysicalMemory &physmem,
             const FsKernelParams &params);
    ~FsKernel() override;

    /**
     * Emit the guest boot prologue. Must be called before the
     * workload's code; falls through to label "_start" when done.
     * Guest registers: a0 = cpu id (set at reset).
     */
    void emitBoot(isa::Assembler &as) const;

    /** Syscall path: kernel trap, then the shared emulator. */
    void handleSyscall(cpu::BaseCpu &cpu) override;

    void startup() override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

    /** Guest address of the boot-completion flag. */
    static constexpr Addr bootFlagAddr = 0xf00;

    /** Guest address of the kernel's page-table scratch region. */
    static constexpr Addr bootTableAddr = 0x4000;

  private:
    /** Periodic scheduler tick: kernel bookkeeping activity. */
    void timerTick();

    Process &process_;
    mem::PhysicalMemory &physmem_;
    FsKernelParams params_;
    sim::MemberEventWrapper<&FsKernel::timerTick> timerEvent_;
    bool stopped_ = false;

    sim::stats::Scalar timerTicks_;
    sim::stats::Scalar kernelSyscalls_;
};

} // namespace g5p::os

#endif // G5P_OS_FS_KERNEL_HH
