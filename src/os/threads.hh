/**
 * @file
 * Pthread-like guest threading shim for multi-core SE/FS runs.
 *
 * mg5's guest ISA has no atomic read-modify-write instructions, so
 * the thread primitives are syscalls: the event loop services one
 * instruction at a time, which makes every syscall atomic with
 * respect to all guest CPUs. Worker CPUs start parked in a guest
 * spin loop watching a per-CPU mailbox (two 8-byte words: entry
 * address and argument); ThreadSpawn writes a worker's mailbox and
 * the worker calls through it, runs the entry function, notifies
 * exit and re-parks. The mailbox words live in ordinary cacheable
 * guest memory, so parking and waking deliberately exercise the
 * coherence protocol.
 *
 * The shim is intentionally SPLASH-style minimal: spawn binds one
 * thread to one idle CPU (no oversubscription), join spins, and
 * barriers are generation-counted so they can be reused across
 * phases.
 */

#ifndef G5P_OS_THREADS_HH
#define G5P_OS_THREADS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "base/types.hh"
#include "sim/sim_object.hh"

namespace g5p::cpu { class BaseCpu; }
namespace g5p::mem { class PhysicalMemory; }
namespace g5p::isa { class Assembler; }

namespace g5p::os
{

/** Thread-shim syscall numbers (a7), above the m5ops range. */
enum class ThreadCall : std::uint64_t
{
    Spawn = 1010,      ///< a0 = entry vaddr, a1 = arg; ret cpu or -1
    Join = 1011,       ///< a0 = tid; ret 0 once exited (guest spins)
    Barrier = 1012,    ///< a0 = id, a1 = n; ret 0 released / 1 spin
    ExitNotify = 1013, ///< worker's entry function returned
};

class ThreadRuntime : public sim::SimObject
{
  public:
    ThreadRuntime(sim::Simulator &sim, const std::string &name,
                  mem::PhysicalMemory &physmem, unsigned num_cpus);

    /** True if @p nr belongs to the thread shim. */
    static bool handles(std::uint64_t nr)
    {
        return nr >= (std::uint64_t)ThreadCall::Spawn &&
               nr <= (std::uint64_t)ThreadCall::ExitNotify;
    }

    /** Service the thread syscall pending on @p cpu (a0 = result). */
    void emulate(cpu::BaseCpu &cpu);

    /** @{ Guest memory map: one 16-byte mailbox per CPU. */
    static constexpr Addr mailboxBase = 0xb00;
    static constexpr Addr mailboxAddr(unsigned cpu_id)
    { return mailboxBase + cpu_id * 16; }
    /** Mailbox entry value that tells a parked worker to halt. */
    static constexpr std::uint64_t shutdownSentinel = 1;
    /** @} */

    /** Callee-saved register (x18/s2) holding the CPU id inside the
     *  park loop; entry functions must preserve it. */
    static constexpr RegIndex cpuIdReg = 18;

    /**
     * @{ Guest-side code emitters. emitThreadEntry goes first at
     * _start (saves the cpu id, parks workers); the main CPU's code
     * follows, ending with emitShutdown + halt; emitWorkerLoop emits
     * the shared park loop once, anywhere after the main code.
     */
    static void emitThreadEntry(isa::Assembler &as);
    static void emitWorkerLoop(isa::Assembler &as);
    static void emitShutdown(isa::Assembler &as, unsigned num_cpus);
    /** Spin until barrier @p id releases all @p n participants. The
     *  label prefix must be unique within the program. */
    static void emitBarrier(isa::Assembler &as, std::uint64_t id,
                            std::uint64_t n,
                            const std::string &label_prefix);
    /** @} */

    /** @{ Host-side introspection for tests. */
    unsigned runningThreads() const;
    std::uint64_t spawns() const { return spawns_; }
    /** @} */

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

  private:
    enum class TState : std::uint8_t { Idle, Running, Exited };

    struct Barrier
    {
        std::uint64_t gen = 0;
        std::uint64_t count = 0;
        std::vector<std::uint64_t> cpuGen;
        std::vector<std::uint8_t> waiting;
    };

    std::uint64_t spawn(std::uint64_t entry, std::uint64_t arg);
    std::uint64_t join(std::uint64_t tid);
    std::uint64_t barrier(unsigned cpu_id, std::uint64_t id,
                          std::uint64_t n);
    std::uint64_t exitNotify(unsigned cpu_id);

    mem::PhysicalMemory &physmem_;
    unsigned numCpus_;
    std::vector<TState> state_; ///< per CPU; cpu 0 is the main thread
    std::map<std::uint64_t, Barrier> barriers_;
    std::uint64_t spawns_ = 0;
};

} // namespace g5p::os

#endif // G5P_OS_THREADS_HH
