/**
 * @file
 * TimingSimpleCPU equivalent: CPI = 1 plus fully modeled memory
 * timing. Instruction fetch and data accesses travel the timing
 * protocol; the CPU sleeps between request and response, waking on
 * recv*Resp, exactly like gem5's TimingSimpleCPU state machine.
 */

#ifndef G5P_CPU_TIMING_CPU_HH
#define G5P_CPU_TIMING_CPU_HH

#include "cpu/base_cpu.hh"
#include "mem/physical.hh"

namespace g5p::cpu
{

class TimingCpu : public BaseCpu
{
  public:
    TimingCpu(sim::Simulator &sim, const std::string &name,
              const sim::ClockDomain &domain, const CpuParams &params,
              mem::PhysicalMemory &physmem);
    ~TimingCpu() override;

    void activate() override;

    const char *modelTag() const override { return "timing"; }

    void regStats() override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

  protected:
    isa::Fault execReadMem(Addr vaddr, unsigned size) override;
    isa::Fault execWriteMem(Addr vaddr, unsigned size,
                            std::uint64_t data) override;

    G5P_HOT void recvInstResp(mem::PacketPtr pkt) override;
    G5P_HOT void recvDataResp(mem::PacketPtr pkt) override;

  private:
    enum class State
    {
        Idle,          ///< halted or not yet activated
        FetchPending,  ///< ifetch in flight
        DataPending,   ///< data access in flight
    };

    /** Issue the ifetch for the current PC (after I-TLB latency). */
    void startFetch();

    /** Finish the current instruction and start the next fetch. */
    void completeInst();

    mem::PhysicalMemory &physmem_;
    CpuExecContext ctx_;
    State state_ = State::Idle;

    isa::StaticInstPtr curInst_;
    Addr fetchPaddr_ = 0;

    struct PendingMem
    {
        Addr paddr = 0;
        unsigned size = 0;
        bool isLoad = false;
        std::uint64_t storeData = 0;
    } pendingMem_;

    sim::MemberEventWrapper<&TimingCpu::startFetch> fetchEvent_;

    sim::stats::Scalar fetchStallCycles_;
    sim::stats::Scalar dataStallCycles_;
    Tick fetchIssued_ = 0;
    Tick dataIssued_ = 0;
};

} // namespace g5p::cpu

#endif // G5P_CPU_TIMING_CPU_HH
