#include "cpu/minor_cpu.hh"

#include <sstream>

#include "sim/event_dispatch.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

namespace
{

/** Per-fetch bookkeeping carried through the memory system. */
struct FetchReq
{
    Addr vpc;
    Addr paddr;
    unsigned bytes;      ///< fetch-block length
    std::uint64_t epoch;
};

/** Fetch-block size: Minor fetches whole 32B lines (gem5 Fetch1). */
constexpr unsigned minorFetchBytes = 32;

} // namespace

MinorCpu::MinorCpu(sim::Simulator &sim, const std::string &name,
                   const sim::ClockDomain &domain,
                   const CpuParams &params,
                   const MinorParams &minor_params,
                   mem::PhysicalMemory &physmem)
    : BaseCpu(sim, name, domain, params),
      minorParams_(minor_params),
      physmem_(physmem),
      ctx_(*this),
      bpred_(minor_params.bpred),
      fetchPc_(params.resetPc),
      tickEvent_(this, name + ".tick", sim::Event::CpuTickPri)
{
    eventQueue().registerSerial(name + ".tick", &tickEvent_);
}

MinorCpu::~MinorCpu()
{
    if (tickEvent_.scheduled())
        deschedule(tickEvent_);
    eventQueue().unregisterSerial(name() + ".tick");
}

void
MinorCpu::activate()
{
    // Idempotent: a restored CPU's tick event is already re-scheduled
    // from the checkpoint (or the CPU halted before it was taken).
    if (halted_ || stopping_ || tickEvent_.scheduled())
        return;
    schedule(tickEvent_, clockEdge());
}

void
MinorCpu::tick()
{
    if (halted_)
        return;
    // A cycle spent purely waiting for an ifetch response does no
    // pipeline work; gem5 Minor's evaluate() is equally trivial then.
    bool waiting = inputBuffer_.empty() && fetchesInFlight_ > 0;
    if (waiting) {
        fetchBubbles_ += 1;
    } else {
        G5P_TRACE_SCOPE("MinorCpu::tick", CpuDetailed,
                        ::g5p::sim::modeledDispatchVirtual());
        tryExecute();
        tryFetch();
    }
    maybeReschedule();
}

void
MinorCpu::maybeReschedule()
{
    if (!halted_ && !stopping_ && !tickEvent_.scheduled())
        schedule(tickEvent_, clockEdge(1));
}

bool
MinorCpu::sourcesBusy(const isa::StaticInst &inst) const
{
    return scoreboard_[inst.rs1()] || scoreboard_[inst.rs2()] ||
           scoreboard_[inst.rd()];
}

void
MinorCpu::redirect(Addr npc)
{
    G5P_TRACE_SCOPE("MinorCpu::redirect", CpuDetailed, false);
    ++fetchEpoch_;
    inputBuffer_.clear();
    fetchPc_ = npc;
}

void
MinorCpu::tryExecute()
{
    if (inputBuffer_.empty()) {
        fetchBubbles_ += 1;
        return; // idle stage: nothing evaluates
    }

    // Hazard evaluation is cheap; only a real issue runs the full
    // execute machinery (as Minor's evaluate() short-circuits).
    FetchedInst head = inputBuffer_.front();
    const isa::StaticInst &inst = *head.inst;
    if (sourcesBusy(inst)) {
        loadUseStalls_ += 1;
        return;
    }
    if (inst.flags().isLoad &&
        (outstandingLoads_ >= minorParams_.maxOutstandingLoads ||
         (inst.rd() != 0 && scoreboard_[inst.rd()])))
        return; // LQ full or WAW on an in-flight load
    if (inst.flags().isStore &&
        outstandingStores_ >= minorParams_.maxOutstandingStores)
        return;

    G5P_TRACE_SCOPE("MinorCpu::execute", CpuDetailed, true);
    inputBuffer_.pop_front();
    pendingLoadInst_ = head.inst;
    ctx_.beginInst(head.pc);
    isa::Fault fault = inst.execute(ctx_);

    switch (fault) {
      case isa::Fault::None:
        break;
      case isa::Fault::Syscall:
        doSyscall();
        break;
      case isa::Fault::Halt:
        countCommit(inst, head.pc);
        stopping_ = true;
        doHalt();
        return;
      default:
        g5p_panic("%s: %s at pc %#llx", name().c_str(),
                  isa::faultName(fault),
                  (unsigned long long)head.pc);
    }

    if (inst.flags().isLoad) {
        ++outstandingLoads_;
        if (inst.rd() != 0)
            scoreboard_[inst.rd()] = true;
    } else if (inst.flags().isStore) {
        ++outstandingStores_;
    }

    if (inst.flags().isControl) {
        if (ctx_.branched())
            numTakenBranches_ += 1;
        bpred_.update(head.pc, ctx_.branched(), ctx_.nextPc(), inst);
    }

    countCommit(inst, head.pc);
    pc_ = ctx_.nextPc();

    if (instLimitReached()) {
        stopping_ = true;
        doHalt();
        return;
    }

    // Verify the prediction this instruction was fetched with.
    if (ctx_.nextPc() != head.predNpc) {
        branchMispredicts_ += 1;
        redirect(ctx_.nextPc());
    }
}

void
MinorCpu::tryFetch()
{
    if (stopping_ ||
        fetchesInFlight_ >= minorParams_.maxOutstandingFetches)
        return;
    if (inputBuffer_.size() + fetchesInFlight_ >=
        minorParams_.inputBufferSize)
        return;
    G5P_TRACE_SCOPE("MinorCpu::fetch", CpuDetailed, true);

    auto itr = itlb_->translate(fetchPc_);
    g5p_assert(itr.translation.valid && itr.translation.executable,
               "%s: ifetch page fault at %#llx", name().c_str(),
               (unsigned long long)fetchPc_);

    // Fetch to the end of the 32B block (blocks never cross pages).
    Addr block_end = (fetchPc_ & ~(Addr)(minorFetchBytes - 1)) +
                     minorFetchBytes;
    auto bytes = (unsigned)(block_end - fetchPc_);

    auto *req = new FetchReq{fetchPc_, itr.translation.paddr, bytes,
                             fetchEpoch_};
    ++fetchesInFlight_;
    fetchPc_ = block_end; // sequential guess; decode may redirect

    auto issue = [this, req] {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq, req->paddr,
                                    req->bytes);
        pkt->setInstFetch(true);
        pkt->setRequestorId(cpuId());
        pkt->setSenderState(req);
        icachePort_.sendTimingReq(pkt);
    };
    if (itr.latency > 0) {
        scheduleOneShot(clockEdge(itr.latency), issue,
                         name() + ".itlbWalk");
    } else {
        issue();
    }
}

void
MinorCpu::recvInstResp(mem::PacketPtr pkt)
{
    G5P_TRACE_SCOPE("MinorCpu::recvInstResp", CpuDetailed, true);
    auto *req = static_cast<FetchReq *>(pkt->senderState());
    delete pkt;
    g5p_assert(fetchesInFlight_ > 0, "%s: stray fetch response",
               name().c_str());
    --fetchesInFlight_;

    if (halted_ || stopping_ || req->epoch != fetchEpoch_) {
        delete req; // wrong-path or stale fetch
        maybeReschedule();
        return;
    }

    // Decode the whole block in fetch order; stop at the first
    // predicted-taken control instruction ("Fetch2" prediction).
    Addr vpc = req->vpc;
    Addr ppc = req->paddr;
    Addr vend = req->vpc + req->bytes;
    Addr next_fetch = vend;

    while (vpc < vend) {
        std::uint64_t word = physmem_.read(ppc, isa::instBytes);
        isa::StaticInstPtr inst = decoder_.decode(word);

        Addr pred_npc = vpc + isa::instBytes;
        if (inst->flags().isControl) {
            auto pred = bpred_.predict(vpc, inst.get());
            if (pred.taken) {
                pred_npc = pred.npc;
            } else if (!inst->flags().isIndirect &&
                       !inst->flags().isCondCtrl) {
                // Direct jump: the target is computable at decode.
                pred_npc = vpc + (std::int64_t)inst->imm();
            }
        }

        inputBuffer_.push_back(
            FetchedInst{inst, vpc, pred_npc, req->epoch});

        if (pred_npc != vpc + isa::instBytes) {
            next_fetch = pred_npc;
            break;
        }
        vpc += isa::instBytes;
        ppc += isa::instBytes;
    }

    fetchPc_ = next_fetch;
    delete req;
    maybeReschedule();
}

isa::Fault
MinorCpu::execReadMem(Addr vaddr, unsigned size)
{
    G5P_TRACE_SCOPE("MinorCpu::readMem", CpuDetailed, false);
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid)
        return isa::Fault::PageFault;

    // Functional read at issue: all older stores already executed.
    memData_ = physmem_.read(tr.translation.paddr, size);

    // The response is matched to its load via sender state (several
    // loads can be in flight and L1 responses may reorder).
    auto *record = new InflightLoad{pendingLoadInst_, memData_};
    Addr paddr = tr.translation.paddr;
    auto issue = [this, paddr, size, record] {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq, paddr, size);
        pkt->setRequestorId(cpuId());
        pkt->setSenderState(record);
        dcachePort_.sendTimingReq(pkt);
    };
    if (tr.latency > 0) {
        scheduleOneShot(clockEdge(tr.latency), issue,
                         name() + ".dtlbWalk");
    } else {
        issue();
    }
    return isa::Fault::None;
}

isa::Fault
MinorCpu::execWriteMem(Addr vaddr, unsigned size, std::uint64_t data)
{
    G5P_TRACE_SCOPE("MinorCpu::writeMem", CpuDetailed, false);
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid || !tr.translation.writable)
        return isa::Fault::PageFault;

    physmem_.write(tr.translation.paddr, size, data);

    Addr paddr = tr.translation.paddr;
    auto issue = [this, paddr, size] {
        auto *pkt = new mem::Packet(mem::MemCmd::WriteReq, paddr,
                                    size);
        pkt->setRequestorId(cpuId());
        dcachePort_.sendTimingReq(pkt);
    };
    if (tr.latency > 0) {
        scheduleOneShot(clockEdge(tr.latency), issue,
                         name() + ".dtlbWalk");
    } else {
        issue();
    }
    return isa::Fault::None;
}

void
MinorCpu::recvDataResp(mem::PacketPtr pkt)
{
    G5P_TRACE_SCOPE("MinorCpu::recvDataResp", CpuDetailed, true);
    bool is_read = pkt->cmd() == mem::MemCmd::ReadResp;
    auto *record = static_cast<InflightLoad *>(pkt->senderState());
    delete pkt;

    if (is_read) {
        g5p_assert(record && outstandingLoads_ > 0,
                   "%s: stray load response", name().c_str());
        record->inst->completeAcc(ctx_, record->data);
        scoreboard_[record->inst->rd()] = false;
        --outstandingLoads_;
        delete record;
    } else {
        g5p_assert(outstandingStores_ > 0, "%s: stray store response",
                   name().c_str());
        --outstandingStores_;
    }
    maybeReschedule();
}

void
MinorCpu::serialize(sim::CheckpointOut &cp) const
{
    // Quiescence (no pending transient events) implies no in-flight
    // fetches or memory accesses; anything else is a checkpoint bug.
    g5p_assert(fetchesInFlight_ == 0 && outstandingLoads_ == 0 &&
               outstandingStores_ == 0,
               "%s: cannot checkpoint with accesses in flight",
               name().c_str());
    for (bool busy : scoreboard_)
        g5p_assert(!busy, "%s: scoreboard busy at checkpoint",
                   name().c_str());

    BaseCpu::serialize(cp);
    cp.param("fetchPc", fetchPc_);
    cp.param("fetchEpoch", fetchEpoch_);
    cp.param("stopping", (int)stopping_);

    // Decoded-but-unexecuted instructions: store each one's raw word
    // so restore can re-decode without re-reading guest memory.
    cp.param("numInput", inputBuffer_.size());
    std::size_t i = 0;
    for (const auto &fi : inputBuffer_) {
        auto tr = itlb_->pageTable()->translate(fi.pc);
        g5p_assert(tr.valid, "%s: unmapped pc %#llx in input buffer",
                   name().c_str(), (unsigned long long)fi.pc);
        std::uint64_t word = physmem_.peek(tr.paddr, isa::instBytes);
        std::ostringstream os;
        os << fi.pc << " " << fi.predNpc << " " << fi.epoch << " "
           << word;
        cp.param("input" + std::to_string(i++), os.str());
    }

    cp.pushSection("bpred");
    bpred_.serialize(cp);
    cp.popSection();
}

void
MinorCpu::unserialize(const sim::CheckpointIn &cp)
{
    BaseCpu::unserialize(cp);
    bool same_model = ckptModel_.empty() || ckptModel_ == modelTag();
    if (same_model) {
        cp.param("fetchPc", fetchPc_);
        cp.param("fetchEpoch", fetchEpoch_);
        int stopping = 0;
        cp.param("stopping", stopping);
        stopping_ = stopping != 0;

        std::size_t num_input = 0;
        cp.param("numInput", num_input);
        inputBuffer_.clear();
        for (std::size_t i = 0; i < num_input; ++i) {
            std::string record;
            cp.param("input" + std::to_string(i), record);
            std::istringstream is(record);
            FetchedInst fi;
            std::uint64_t word = 0;
            is >> fi.pc >> fi.predNpc >> fi.epoch >> word;
            g5p_assert(!is.fail(), "%s: corrupt input-buffer record",
                       name().c_str());
            fi.inst = decoder_.decodeQuiet(word);
            inputBuffer_.push_back(std::move(fi));
        }
    } else {
        // Cross-model transplant (source already vetted by
        // BaseCpu::unserialize): the source drained to pure
        // architectural state, so start with a cold pipeline fetching
        // at the committed PC; the predictor keeps its freshly built
        // (empty) tables.
        fetchPc_ = pc_;
        fetchEpoch_ = 0;
        stopping_ = halted_;
        inputBuffer_.clear();
    }

    for (bool &busy : scoreboard_)
        busy = false;
    fetchesInFlight_ = 0;
    outstandingLoads_ = 0;
    outstandingStores_ = 0;
    pendingLoadInst_.reset();

    if (same_model) {
        cp.pushSection("bpred");
        bpred_.unserialize(cp);
        cp.popSection();
    }
}

void
MinorCpu::regStats()
{
    BaseCpu::regStats();
    addStat(&branchMispredicts_, "branchMispredicts",
            "execute-stage redirects");
    addStat(&loadUseStalls_, "loadUseStalls",
            "cycles stalled on scoreboard hazards");
    addStat(&fetchBubbles_, "fetchBubbles",
            "execute cycles with an empty input buffer");
}

} // namespace g5p::cpu
