/**
 * @file
 * AtomicSimpleCPU equivalent: CPI = 1, memory accesses complete
 * atomically through the cache hierarchy with no queuing or
 * contention modeling. Used for fast-forwarding and cache warming.
 */

#ifndef G5P_CPU_ATOMIC_CPU_HH
#define G5P_CPU_ATOMIC_CPU_HH

#include "cpu/base_cpu.hh"
#include "mem/physical.hh"

namespace g5p::cpu
{

class AtomicCpu : public BaseCpu
{
  public:
    AtomicCpu(sim::Simulator &sim, const std::string &name,
              const sim::ClockDomain &domain, const CpuParams &params,
              mem::PhysicalMemory &physmem);
    ~AtomicCpu() override;

    void activate() override;

    const char *modelTag() const override { return "atomic"; }

  protected:
    isa::Fault execReadMem(Addr vaddr, unsigned size) override;
    isa::Fault execWriteMem(Addr vaddr, unsigned size,
                            std::uint64_t data) override;

  private:
    /** Fetch + execute one instruction, then reschedule. */
    void tick();

    mem::PhysicalMemory &physmem_;
    CpuExecContext ctx_;
    sim::MemberEventWrapper<&AtomicCpu::tick> tickEvent_;
};

} // namespace g5p::cpu

#endif // G5P_CPU_ATOMIC_CPU_HH
