#include "cpu/atomic_cpu.hh"

#include "sim/event_dispatch.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

AtomicCpu::AtomicCpu(sim::Simulator &sim, const std::string &name,
                     const sim::ClockDomain &domain,
                     const CpuParams &params,
                     mem::PhysicalMemory &physmem)
    : BaseCpu(sim, name, domain, params),
      physmem_(physmem),
      ctx_(*this),
      tickEvent_(this, name + ".tick", sim::Event::CpuTickPri)
{
    eventQueue().registerSerial(name + ".tick", &tickEvent_);
}

AtomicCpu::~AtomicCpu()
{
    if (tickEvent_.scheduled())
        deschedule(tickEvent_);
    eventQueue().unregisterSerial(name() + ".tick");
}

void
AtomicCpu::activate()
{
    // Idempotent: a restored CPU's tick event is already re-scheduled
    // from the checkpoint (or the CPU halted before it was taken).
    if (halted_ || tickEvent_.scheduled())
        return;
    schedule(tickEvent_, clockEdge());
}

isa::Fault
AtomicCpu::execReadMem(Addr vaddr, unsigned size)
{
    G5P_TRACE_SCOPE("AtomicCpu::readMem", MemAtomic, false);
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid)
        return isa::Fault::PageFault;

    mem::Packet pkt(mem::MemCmd::ReadReq, tr.translation.paddr, size);
    pkt.setRequestorId(cpuId());
    dcachePort_.sendAtomic(pkt);
    memData_ = physmem_.read(tr.translation.paddr, size);
    return isa::Fault::None;
}

isa::Fault
AtomicCpu::execWriteMem(Addr vaddr, unsigned size, std::uint64_t data)
{
    G5P_TRACE_SCOPE("AtomicCpu::writeMem", MemAtomic, false);
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid || !tr.translation.writable)
        return isa::Fault::PageFault;

    mem::Packet pkt(mem::MemCmd::WriteReq, tr.translation.paddr, size);
    pkt.setRequestorId(cpuId());
    dcachePort_.sendAtomic(pkt);
    physmem_.write(tr.translation.paddr, size, data);
    return isa::Fault::None;
}

namespace
{

/** Upper bound on instructions executed per tick-event service;
 *  bounds worst-case event latency without measurable cost. */
constexpr unsigned maxBatchInsts = 1024;

} // namespace

void
AtomicCpu::tick()
{
    G5P_TRACE_SCOPE("AtomicCpu::tick", CpuSimple,
                    ::g5p::sim::modeledDispatchVirtual());
    if (halted_)
        return;

    // Instruction batching: atomic execution schedules one tick
    // event per instruction, and on short queues that heap round
    // trip costs as much as the instruction itself. When nothing
    // needs per-event granularity (no watchdog, no profiler, no
    // trace recorder), execute instructions back to back inside this
    // one service, advancing curTick to each clock edge ourselves.
    // Any event becoming due — an exit scheduled by a milestone,
    // another CPU's tick — breaks the batch before it would run, so
    // the observable event interleaving is exactly the classic one.
    sim::EventQueue &eq = eventQueue();
    const bool batch =
        eq.batchingAllowed() && !trace::Recorder::active();
    unsigned executed = 0;

    for (;;) {
        // Fetch: translate and access the I side atomically.
        ctx_.beginInst(pc_);
        auto itr = itlb_->translate(pc_);
        g5p_assert(itr.translation.valid &&
                   itr.translation.executable,
                   "%s: ifetch page fault at %#llx", name().c_str(),
                   (unsigned long long)pc_);
        mem::Packet fetch(mem::MemCmd::ReadReq, itr.translation.paddr,
                          isa::instBytes);
        fetch.setInstFetch(true);
        fetch.setRequestorId(cpuId());
        icachePort_.sendAtomic(fetch);
        std::uint64_t word =
            physmem_.read(itr.translation.paddr, isa::instBytes);

        const isa::StaticInstPtr &inst = decoder_.decode(word);
        isa::Fault fault = inst->execute(ctx_);

        switch (fault) {
          case isa::Fault::None:
            if (inst->flags().isLoad)
                inst->completeAcc(ctx_, memData_);
            break;
          case isa::Fault::Syscall:
            doSyscall();
            break;
          case isa::Fault::Halt:
            countCommit(*inst, pc_);
            doHalt();
            return;
          default:
            g5p_panic("%s: %s at pc %#llx", name().c_str(),
                      isa::faultName(fault), (unsigned long long)pc_);
        }

        countCommit(*inst, pc_);
        if (ctx_.branched())
            numTakenBranches_ += 1;
        pc_ = ctx_.nextPc();

        if (halted_ || instLimitReached()) {
            doHalt();
            return;
        }
        // CPI = 1: one instruction per clock edge regardless of
        // memory.
        Tick next = clockEdge(1);
        if (!batch || ++executed >= maxBatchInsts ||
            next > eq.serviceHorizon() || eq.nextTick() <= next) {
            schedule(tickEvent_, next);
            return;
        }
        eq.setCurTick(next);
    }
}

} // namespace g5p::cpu
