#include "cpu/base_cpu.hh"

#include "base/sim_error.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

BaseCpu::BaseCpu(sim::Simulator &sim, const std::string &name,
                 const sim::ClockDomain &domain,
                 const CpuParams &params)
    : sim::ClockedObject(sim, name, domain, nullptr,
                         // Register file, PC, pipeline bookkeeping.
                         isa::numArchRegs * 8 + 512),
      params_(params),
      pc_(params.resetPc),
      icachePort_(*this, name + ".icache_port"),
      dcachePort_(*this, name + ".dcache_port")
{
}

BaseCpu::~BaseCpu() = default;

void
BaseCpu::setTlbs(mem::Tlb *itlb, mem::Tlb *dtlb)
{
    itlb_ = itlb;
    dtlb_ = dtlb;
}

void
BaseCpu::recvInstResp(mem::PacketPtr pkt)
{
    g5p_panic("%s: unexpected timing instruction response",
              name().c_str());
}

void
BaseCpu::recvDataResp(mem::PacketPtr pkt)
{
    g5p_panic("%s: unexpected timing data response", name().c_str());
}

void
BaseCpu::doHalt()
{
    if (halted_)
        return;
    halted_ = true;
    if (onHalt_)
        onHalt_(*this);
}

void
BaseCpu::doSyscall()
{
    G5P_TRACE_SCOPE("BaseCpu::doSyscall", Syscall, false);
    g5p_assert(syscallHandler_, "%s: ECALL with no syscall handler",
               name().c_str());
    numSyscalls_ += 1;
    syscallHandler_->handleSyscall(*this);
}

void
BaseCpu::requireDrainedSource(const sim::CheckpointIn &cp) const
{
    if (ckptModel_ != "o3")
        return;
    std::size_t rob = 0, fetch = 0;
    cp.param("numRob", rob);
    cp.param("numFetch", fetch);
    if (rob || fetch)
        g5p_throw(CheckpointError, name(), curTick(),
                  "cannot restore an o3 checkpoint with %zu in-window "
                  "instruction(s) into a %s core: o3 applies effects "
                  "at dispatch, so the window cannot be dropped",
                  rob + fetch, modelTag());
}

void
BaseCpu::regStats()
{
    addStat(&numInsts_, "committedInsts", "instructions committed");
    addStat(&numLoads_, "loads", "loads committed");
    addStat(&numStores_, "stores", "stores committed");
    addStat(&numBranches_, "branches", "control insts committed");
    addStat(&numTakenBranches_, "takenBranches",
            "taken control insts");
    addStat(&numSyscalls_, "syscalls", "syscalls serviced");
    addStat(&ipc_, "ipc", "committed instructions per cycle");
    ipc_.functor([this] {
        double cycles = (double)curCycle();
        return cycles > 0 ? numInsts_.value() / cycles : 0.0;
    });
}

void
BaseCpu::serialize(sim::CheckpointOut &cp) const
{
    cp.param("model", std::string(modelTag()));
    cp.param("pc", pc_);
    cp.param("halted", (int)halted_);
    std::vector<std::uint64_t> regs(regs_, regs_ + isa::numArchRegs);
    cp.paramVector("regs", regs);
    cp.param("memData", memData_);
    // The decode cache is reconstructed word-by-word on restore so
    // cacheSize/hit-rate stats stay bit-identical.
    cp.paramVector("decoderWords", decoder_.cachedWords());
    cp.param("decoderDecodes", decoder_.numDecodes());
    cp.param("decoderHits", decoder_.numCacheHits());
}

void
BaseCpu::unserialize(const sim::CheckpointIn &cp)
{
    // Pre-switch checkpoints have no model tag; they were only ever
    // restored same-model, so an empty tag means "same model".
    ckptModel_.clear();
    if (cp.has("model"))
        cp.param("model", ckptModel_);
    // Cross-model transplant: refuse sources whose in-window effects
    // cannot be dropped, whatever model is restoring them.
    if (!ckptModel_.empty() && ckptModel_ != modelTag())
        requireDrainedSource(cp);
    cp.param("pc", pc_);
    int halted = 0;
    cp.param("halted", halted);
    halted_ = halted != 0;
    std::vector<std::uint64_t> regs;
    cp.paramVector("regs", regs);
    g5p_assert(regs.size() == isa::numArchRegs,
               "corrupt register checkpoint");
    for (unsigned i = 0; i < isa::numArchRegs; ++i)
        regs_[i] = regs[i];
    cp.param("memData", memData_);
    std::vector<std::uint64_t> words;
    cp.paramVector("decoderWords", words);
    for (auto word : words)
        decoder_.decodeQuiet(word);
    std::uint64_t decodes = 0, hits = 0;
    cp.param("decoderDecodes", decodes);
    cp.param("decoderHits", hits);
    decoder_.setCounters(decodes, hits);
}

} // namespace g5p::cpu
