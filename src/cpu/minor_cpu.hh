/**
 * @file
 * MinorCpu: a four-stage in-order pipeline (Fetch1, Fetch2/Decode,
 * Execute, Writeback) after gem5's Minor model. Fetch runs ahead along
 * the predicted path; execute is strictly in program order with a
 * register scoreboard allowing execution to continue past outstanding
 * loads until a use; memory uses the detailed timing model.
 */

#ifndef G5P_CPU_MINOR_CPU_HH
#define G5P_CPU_MINOR_CPU_HH

#include <deque>

#include "cpu/base_cpu.hh"
#include "cpu/o3/bpred.hh"
#include "mem/physical.hh"

namespace g5p::cpu
{

/** Minor pipeline parameters. */
struct MinorParams
{
    unsigned inputBufferSize = 4; ///< decoded-inst queue depth

    /**
     * In-flight ifetches. Must stay 1: L1I responses can return out
     * of order across cache lines, and Minor decodes/executes in
     * fetch order (gem5's Minor serializes Fetch1 the same way).
     */
    unsigned maxOutstandingFetches = 1;
    unsigned maxOutstandingLoads = 4;
    unsigned maxOutstandingStores = 2;
    BpredParams bpred{.tableBits = 10, .btbEntries = 512,
                      .rasEntries = 8};
};

class MinorCpu : public BaseCpu
{
  public:
    MinorCpu(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain, const CpuParams &params,
             const MinorParams &minor_params,
             mem::PhysicalMemory &physmem);
    ~MinorCpu() override;

    void activate() override;

    const char *modelTag() const override { return "minor"; }

    void regStats() override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

  protected:
    isa::Fault execReadMem(Addr vaddr, unsigned size) override;
    isa::Fault execWriteMem(Addr vaddr, unsigned size,
                            std::uint64_t data) override;

    G5P_HOT void recvInstResp(mem::PacketPtr pkt) override;
    G5P_HOT void recvDataResp(mem::PacketPtr pkt) override;

  private:
    struct FetchedInst
    {
        isa::StaticInstPtr inst;
        Addr pc = 0;
        Addr predNpc = 0;
        std::uint64_t epoch = 0;
    };

    /** An outstanding load awaiting its dcache response. */
    struct InflightLoad
    {
        isa::StaticInstPtr inst;
        std::uint64_t data = 0; ///< functionally read at issue
    };

    /** Advance all pipeline stages by one cycle. */
    void tick();

    void tryExecute();
    void tryFetch();

    /** Redirect fetch after a mispredicted/taken branch. */
    void redirect(Addr npc);

    /** True if any source of @p inst is scoreboard-busy. */
    bool sourcesBusy(const isa::StaticInst &inst) const;

    /** Reschedule the tick event if work remains. */
    void maybeReschedule();

    MinorParams minorParams_;
    mem::PhysicalMemory &physmem_;
    CpuExecContext ctx_;
    BranchPredictor bpred_;

    Addr fetchPc_;
    std::uint64_t fetchEpoch_ = 0;
    unsigned fetchesInFlight_ = 0;

    std::deque<FetchedInst> inputBuffer_;

    bool scoreboard_[isa::numArchRegs] = {};
    isa::StaticInstPtr pendingLoadInst_; ///< set before execute()
    unsigned outstandingLoads_ = 0;
    unsigned outstandingStores_ = 0;

    /** Set when execute stops the machine (halt). */
    bool stopping_ = false;

    sim::MemberEventWrapper<&MinorCpu::tick> tickEvent_;

    sim::stats::Scalar branchMispredicts_;
    sim::stats::Scalar loadUseStalls_;
    sim::stats::Scalar fetchBubbles_;
};

} // namespace g5p::cpu

#endif // G5P_CPU_MINOR_CPU_HH
