/**
 * @file
 * Register renaming for the O3 model: an architectural-to-physical
 * map table, a free list, and per-physical-register ready times.
 *
 * Physical registers carry *timing* only (the cycle their value
 * becomes available); values come from the oracle execution at
 * dispatch. Wrong-path instructions are never renamed, so no map
 * checkpointing is required (see dyn_inst.hh).
 */

#ifndef G5P_CPU_O3_RENAME_HH
#define G5P_CPU_O3_RENAME_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"

namespace g5p::sim
{
class CheckpointIn;
class CheckpointOut;
} // namespace g5p::sim

namespace g5p::cpu::o3
{

class RenameMap
{
  public:
    /** @param num_phys total physical registers (>= 32 + window). */
    explicit RenameMap(unsigned num_phys);

    /** Physical register currently mapped to @p arch. */
    int lookup(RegIndex arch) const { return map_[arch]; }

    /** True if a destination register can be allocated. */
    bool canRename() const { return !freeList_.empty(); }

    /**
     * Allocate a new physical register for @p arch.
     * @return {newPhys, prevPhys} — prevPhys is freed at commit.
     */
    std::pair<int, int> rename(RegIndex arch);

    /** Return @p phys to the free list (at commit). */
    void free(int phys);

    /** @{ Ready-time tracking. */
    Cycles readyCycle(int phys) const { return ready_[phys]; }
    void setReadyCycle(int phys, Cycles cycle) { ready_[phys] = cycle; }
    /** @} */

    unsigned freeCount() const { return (unsigned)freeList_.size(); }

    /** @{ Checkpointing: write/read into the current section. */
    void serialize(sim::CheckpointOut &cp) const;
    void unserialize(const sim::CheckpointIn &cp);
    /** @} */

  private:
    std::vector<int> map_;        ///< arch -> phys
    std::vector<int> freeList_;
    std::vector<Cycles> ready_;   ///< phys -> ready cycle
};

} // namespace g5p::cpu::o3

#endif // G5P_CPU_O3_RENAME_HH
