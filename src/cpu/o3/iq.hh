/**
 * @file
 * Issue queue: holds dispatched instructions until their operands are
 * ready and a functional unit is free, then hands them to execute.
 * Oldest-first selection, as gem5's O3 default.
 */

#ifndef G5P_CPU_O3_IQ_HH
#define G5P_CPU_O3_IQ_HH

#include <list>

#include "cpu/o3/dyn_inst.hh"
#include "cpu/o3/rename.hh"

namespace g5p::cpu::o3
{

/** Functional-unit pool configuration. */
struct FuPoolParams
{
    unsigned intAlu = 4;
    unsigned mulDiv = 1;
    unsigned fp = 2;
    unsigned memPorts = 2;

    Cycles intLatency = 1;
    Cycles mulLatency = 3;
    Cycles divLatency = 12;
    Cycles fpLatency = 4;
    Cycles fpDivLatency = 16;
};

class IssueQueue
{
  public:
    IssueQueue(unsigned capacity, const FuPoolParams &fu)
        : capacity_(capacity), fu_(fu)
    {}

    bool full() const { return insts_.size() >= capacity_; }
    std::size_t size() const { return insts_.size(); }

    void insert(const DynInstPtr &inst) { insts_.push_back(inst); }

    /** Queue contents, oldest first (checkpointing). */
    const std::list<DynInstPtr> &contents() const { return insts_; }

    /** Drop everything (checkpoint restore). */
    void clear() { insts_.clear(); }

    /** Remove squashed instructions younger than @p seq. */
    void squashAfter(std::uint64_t seq);

    /**
     * Select up to @p width ready instructions this cycle. Ready:
     * both renamed sources available by @p now (wrong-path insts are
     * always "ready") and an FU slot free. Selected instructions are
     * removed and given an execute latency via @p out.
     */
    template <typename OnIssue>
    unsigned
    issue(Cycles now, unsigned width, const RenameMap &rename,
          OnIssue &&out)
    {
        // Per-cycle FU occupancy.
        unsigned int_used = 0, mul_used = 0, fp_used = 0, mem_used = 0;
        unsigned issued = 0;

        for (auto it = insts_.begin();
             it != insts_.end() && issued < width;) {
            DynInst &di = **it;
            if (!operandsReady(di, now, rename)) {
                ++it;
                continue;
            }

            const auto &flags = di.inst->flags();
            Cycles latency = fu_.intLatency;
            bool ok = false;
            if (flags.isMemRef) {
                if (mem_used < fu_.memPorts) {
                    ++mem_used;
                    ok = true;
                }
            } else if (flags.isFloat) {
                if (fp_used < fu_.fp) {
                    ++fp_used;
                    latency = flags.isDiv ? fu_.fpDivLatency
                                          : fu_.fpLatency;
                    ok = true;
                }
            } else if (flags.isMul || flags.isDiv) {
                if (mul_used < fu_.mulDiv) {
                    ++mul_used;
                    latency = flags.isDiv ? fu_.divLatency
                                          : fu_.mulLatency;
                    ok = true;
                }
            } else {
                if (int_used < fu_.intAlu) {
                    ++int_used;
                    ok = true;
                }
            }

            if (!ok) {
                ++it;
                continue;
            }
            out(*it, latency);
            it = insts_.erase(it);
            ++issued;
        }
        return issued;
    }

  private:
    static bool operandsReady(const DynInst &di, Cycles now,
                              const RenameMap &rename);

    unsigned capacity_;
    FuPoolParams fu_;
    std::list<DynInstPtr> insts_;
};

} // namespace g5p::cpu::o3

#endif // G5P_CPU_O3_IQ_HH
