#include "cpu/o3/iq.hh"

namespace g5p::cpu::o3
{

void
IssueQueue::squashAfter(std::uint64_t seq)
{
    insts_.remove_if([seq](const DynInstPtr &di) {
        return di->seq > seq;
    });
}

bool
IssueQueue::operandsReady(const DynInst &di, Cycles now,
                          const RenameMap &rename)
{
    if (di.wrongPath)
        return true; // no renamed sources; timing filler
    if (di.srcPhys1 >= 0 && rename.readyCycle(di.srcPhys1) > now)
        return false;
    if (di.srcPhys2 >= 0 && rename.readyCycle(di.srcPhys2) > now)
        return false;
    return true;
}

} // namespace g5p::cpu::o3
