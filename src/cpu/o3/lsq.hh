/**
 * @file
 * Load/store queue for the O3 model: tracks in-flight memory
 * instructions, provides store-to-load forwarding, and bounds the
 * number of loads and stores in flight (LQ/SQ entries, Table I).
 */

#ifndef G5P_CPU_O3_LSQ_HH
#define G5P_CPU_O3_LSQ_HH

#include <deque>

#include "cpu/o3/dyn_inst.hh"

namespace g5p::cpu::o3
{

class Lsq
{
  public:
    Lsq(unsigned lq_entries, unsigned sq_entries)
        : lqCapacity_(lq_entries), sqCapacity_(sq_entries)
    {}

    bool lqFull() const { return loads_.size() >= lqCapacity_; }
    bool sqFull() const { return stores_.size() >= sqCapacity_; }

    std::size_t numLoads() const { return loads_.size(); }
    std::size_t numStores() const { return stores_.size(); }

    /** Insert at dispatch (program order). */
    void insertLoad(const DynInstPtr &inst) { loads_.push_back(inst); }
    void insertStore(const DynInstPtr &inst)
    { stores_.push_back(inst); }

    /**
     * Can an older in-flight store forward to this load? Exact
     * address+size match, as gem5's simple forwarding check.
     */
    bool canForward(const DynInst &load) const;

    /** Remove a committed load/store. */
    void commit(const DynInst &inst);

    /** Drop squashed (wrong-path) entries younger than @p seq. */
    void squashAfter(std::uint64_t seq);

    /** @{ Queue contents, program order (checkpointing). */
    const std::deque<DynInstPtr> &loads() const { return loads_; }
    const std::deque<DynInstPtr> &stores() const { return stores_; }
    /** @} */

    /** Drop everything (checkpoint restore). */
    void
    clear()
    {
        loads_.clear();
        stores_.clear();
    }

  private:
    unsigned lqCapacity_;
    unsigned sqCapacity_;
    std::deque<DynInstPtr> loads_;
    std::deque<DynInstPtr> stores_;
};

} // namespace g5p::cpu::o3

#endif // G5P_CPU_O3_LSQ_HH
