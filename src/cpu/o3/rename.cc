#include "cpu/o3/rename.hh"

#include "base/logging.hh"
#include "sim/serialize.hh"
#include "trace/recorder.hh"

namespace g5p::cpu::o3
{

RenameMap::RenameMap(unsigned num_phys)
    : map_(isa::numArchRegs), ready_(num_phys, 0)
{
    g5p_assert(num_phys > isa::numArchRegs,
               "need more physical than architectural registers");
    // Identity-map the architectural registers; the rest are free.
    for (unsigned i = 0; i < isa::numArchRegs; ++i)
        map_[i] = (int)i;
    for (unsigned p = isa::numArchRegs; p < num_phys; ++p)
        freeList_.push_back((int)p);
}

std::pair<int, int>
RenameMap::rename(RegIndex arch)
{
    G5P_TRACE_SCOPE("RenameMap::rename", CpuDetailed, false);
    g5p_assert(!freeList_.empty(), "rename with empty free list");
    int prev = map_[arch];
    int next = freeList_.back();
    freeList_.pop_back();
    map_[arch] = next;
    return {next, prev};
}

void
RenameMap::free(int phys)
{
    g5p_assert(phys >= 0 && phys < (int)ready_.size(),
               "freeing bad physical register %d", phys);
    freeList_.push_back(phys);
}

void
RenameMap::serialize(sim::CheckpointOut &cp) const
{
    cp.paramVector("map", map_);
    cp.paramVector("freeList", freeList_);
    cp.paramVector("ready", ready_);
}

void
RenameMap::unserialize(const sim::CheckpointIn &cp)
{
    std::vector<int> map, free_list;
    std::vector<Cycles> ready;
    cp.paramVector("map", map);
    cp.paramVector("freeList", free_list);
    cp.paramVector("ready", ready);
    g5p_assert(map.size() == map_.size() &&
               ready.size() == ready_.size(),
               "rename-map geometry changed since checkpoint");
    map_ = std::move(map);
    freeList_ = std::move(free_list);
    ready_ = std::move(ready);
}

} // namespace g5p::cpu::o3
