/**
 * @file
 * Guest-level branch predictor shared by the Minor and O3 CPU models:
 * a gshare-indexed 2-bit counter table plus a direct-mapped BTB and a
 * return-address stack, loosely after gem5's TournamentBP defaults.
 */

#ifndef G5P_CPU_O3_BPRED_HH
#define G5P_CPU_O3_BPRED_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"

namespace g5p::sim
{
class CheckpointIn;
class CheckpointOut;
} // namespace g5p::sim

namespace g5p::cpu
{

/** Predictor geometry. */
struct BpredParams
{
    unsigned tableBits = 12;  ///< 2-bit counters: 2^tableBits entries
    unsigned btbEntries = 1024;
    unsigned rasEntries = 16;
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(const BpredParams &params);

    /** Outcome of a fetch-time lookup. */
    struct Prediction
    {
        Addr npc = 0;        ///< predicted next fetch address
        bool taken = false;  ///< predicted direction (cond branches)
        bool btbHit = false; ///< target known at prediction time
    };

    /**
     * Predict the next fetch address for the (possibly control)
     * instruction at @p pc. @p inst may be null when the fetch engine
     * predicts pre-decode (pure BTB lookup).
     */
    Prediction predict(Addr pc, const isa::StaticInst *inst);

    /** Train with the resolved outcome. */
    void update(Addr pc, bool taken, Addr target,
                const isa::StaticInst &inst);

    /** @{ Counters. */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t btbMisses() const { return btbMisses_; }
    /** @} */

    /** @{ Checkpointing: write/read into the current section. */
    void serialize(sim::CheckpointOut &cp) const;
    void unserialize(const sim::CheckpointIn &cp);
    /** @} */

  private:
    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };

    std::size_t tableIndex(Addr pc) const;
    std::size_t btbIndex(Addr pc) const;

    BpredParams params_;
    std::vector<std::uint8_t> counters_; ///< 2-bit saturating
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    std::size_t rasTop_ = 0;
    std::uint64_t history_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t btbMisses_ = 0;
};

} // namespace g5p::cpu

#endif // G5P_CPU_O3_BPRED_HH
