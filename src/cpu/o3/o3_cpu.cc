#include "cpu/o3/o3_cpu.hh"

#include <sstream>
#include <unordered_map>

#include "base/addr_utils.hh"
#include "sim/event_dispatch.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

using o3::DynInst;
using o3::DynInstPtr;
using o3::InstStage;

namespace
{

/** Fetch-block size: 32 bytes = four 8-byte instructions. */
constexpr unsigned fetchBlockBytes = 32;

/** An idle stage still evaluates its (empty) activity list. */
void
stageIdleWork()
{
    G5P_TRACE_SCOPE("O3Cpu::stageIdle", Util, false);
}

} // namespace

O3Cpu::O3Cpu(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain, const CpuParams &params,
             const O3Params &o3_params, mem::PhysicalMemory &physmem)
    : BaseCpu(sim, name, domain, params),
      o3Params_(o3_params),
      physmem_(physmem),
      ctx_(*this),
      bpred_(o3_params.bpred),
      rob_(o3_params.robEntries),
      iq_(o3_params.iqEntries, o3_params.fu),
      lsq_(o3_params.lqEntries, o3_params.sqEntries),
      rename_(o3_params.numPhysRegs),
      fetchPc_(params.resetPc),
      tickEvent_(this, name + ".tick", sim::Event::CpuTickPri)
{
    eventQueue().registerSerial(name + ".tick", &tickEvent_);
}

O3Cpu::~O3Cpu()
{
    if (tickEvent_.scheduled())
        deschedule(tickEvent_);
    eventQueue().unregisterSerial(name() + ".tick");
}

void
O3Cpu::activate()
{
    // Idempotent: a restored CPU's tick event is already re-scheduled
    // from the checkpoint (or the CPU halted before it was taken).
    if (halted_ || tickEvent_.scheduled())
        return;
    schedule(tickEvent_, clockEdge());
}

void
O3Cpu::maybeReschedule()
{
    if (!halted_ && !tickEvent_.scheduled())
        schedule(tickEvent_, clockEdge(1));
}

void
O3Cpu::tick()
{
    G5P_TRACE_SCOPE("O3Cpu::tick", CpuDetailed,
                    ::g5p::sim::modeledDispatchVirtual());
    if (halted_)
        return;
    commitStage();
    if (halted_)
        return;
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();
    maybeReschedule();
}

void
O3Cpu::commitStage()
{
    if (rob_.empty()) {
        stageIdleWork();
        return;
    }
    G5P_TRACE_SCOPE("O3Cpu::commit", CpuDetailed, true);
    Cycles now = curCycle();
    for (unsigned n = 0; n < o3Params_.commitWidth && !rob_.empty();
         ++n) {
        const DynInstPtr &head = rob_.head();
        g5p_assert(!head->wrongPath,
                   "wrong-path instruction at ROB head");
        if (head->stage != InstStage::Completed ||
            head->completeCycle > now)
            break;

        if (head->isStore()) {
            if (outstandingStores_ >= o3Params_.maxOutstandingStores)
                break; // store buffer full; stall commit
            issueStore(*head);
        }

        if (head->destPhys >= 0 && head->prevDestPhys >= 0)
            rename_.free(head->prevDestPhys);

        lsq_.commit(*head);
        countCommit(*head->inst, head->pc);
        if (head->isControl() && head->actualNpc !=
            head->pc + isa::instBytes)
            numTakenBranches_ += 1;
        pc_ = head->actualNpc;

        bool is_halt = head->inst->flags().isHalt;
        rob_.popHead();

        if (is_halt || instLimitReached()) {
            stopping_ = true;
            doHalt();
            return;
        }
    }
}

void
O3Cpu::writebackStage()
{
    if (rob_.empty()) {
        stageIdleWork();
        return;
    }
    G5P_TRACE_SCOPE("O3Cpu::writeback", CpuDetailed, true);
    Cycles now = curCycle();
    DynInstPtr resolve;
    for (auto &di : rob_) {
        if (di->stage != InstStage::Issued)
            continue;
        if (di->isLoad() && !di->wrongPath && !di->forwarded &&
            !di->memDone)
            continue; // dcache response pending
        if (di->completeCycle > now)
            continue;
        di->stage = InstStage::Completed;
        if (di->mispredicted && !resolve)
            resolve = di;
    }
    if (resolve)
        resolveMispredict(*resolve);
}

void
O3Cpu::resolveMispredict(DynInst &branch)
{
    G5P_TRACE_SCOPE("O3Cpu::squash", CpuDetailed, false);
    branchMispredicts_ += 1;
    std::size_t squashed = rob_.squashAfter(branch.seq);
    squashedInsts_ += (double)squashed;
    iq_.squashAfter(branch.seq);
    lsq_.squashAfter(branch.seq);
    fetchQueue_.clear();
    fetchReadyCycle_.clear();
    ++fetchEpoch_;
    fetchPc_ = branch.actualNpc;
    branch.mispredicted = false; // resolved
    wrongPathMode_ = false;
}

void
O3Cpu::issueStage()
{
    if (iq_.size() == 0) {
        stageIdleWork();
        return;
    }
    G5P_TRACE_SCOPE("O3Cpu::issue", CpuDetailed, true);
    Cycles now = curCycle();
    iq_.issue(now, o3Params_.issueWidth, rename_,
              [&](const DynInstPtr &di, Cycles fu_latency) {
        di->stage = InstStage::Issued;

        if (di->wrongPath) {
            di->completeCycle = now + fu_latency;
            return;
        }

        if (di->isLoad()) {
            if (lsq_.canForward(*di)) {
                di->forwarded = true;
                storeForwards_ += 1;
                di->completeCycle = now + 1 + di->dtlbLatency;
            } else {
                di->memIssued = true;
                di->completeCycle = maxTick; // set at response
                issueLoad(di);
            }
        } else if (di->isStore()) {
            // Address generation; data goes to memory at commit.
            di->completeCycle = now + 1 + di->dtlbLatency;
        } else {
            di->completeCycle = now + fu_latency;
        }

        if (di->destPhys >= 0 && di->completeCycle != maxTick)
            rename_.setReadyCycle(di->destPhys, di->completeCycle);
    });
}

void
O3Cpu::issueLoad(const DynInstPtr &di)
{
    auto *holder = new DynInstPtr(di);
    Addr paddr = di->paddr;
    unsigned size = di->memSize;
    Cycles delay = di->dtlbLatency;
    auto issue = [this, holder, paddr, size] {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq, paddr, size);
        pkt->setRequestorId(cpuId());
        pkt->setSenderState(holder);
        dcachePort_.sendTimingReq(pkt);
    };
    if (delay > 0) {
        scheduleOneShot(clockEdge(delay), issue,
                         name() + ".dtlbWalk");
    } else {
        issue();
    }
}

void
O3Cpu::issueStore(const DynInst &di)
{
    ++outstandingStores_;
    auto *pkt = new mem::Packet(mem::MemCmd::WriteReq, di.paddr,
                                di.memSize);
    pkt->setRequestorId(cpuId());
    dcachePort_.sendTimingReq(pkt);
}

void
O3Cpu::oracleExecute(DynInst &di)
{
    G5P_TRACE_SCOPE("O3Cpu::oracleExecute", CpuDetailed, false);
    ctx_.beginInst(di.pc);
    dispatchMem_.valid = false;
    isa::Fault fault = di.inst->execute(ctx_);

    switch (fault) {
      case isa::Fault::None:
        break;
      case isa::Fault::Syscall:
        doSyscall();
        break;
      case isa::Fault::Halt:
        fetchStopped_ = true;
        break;
      default:
        g5p_panic("%s: %s at pc %#llx", name().c_str(),
                  isa::faultName(fault), (unsigned long long)di.pc);
    }

    di.actualNpc = ctx_.nextPc();
    if (di.inst->flags().isMemRef) {
        g5p_assert(dispatchMem_.valid, "memory inst without access");
        di.paddr = dispatchMem_.paddr;
        di.memSize = dispatchMem_.size;
        di.dtlbLatency = dispatchMem_.tlbLatency;
        if (di.isLoad()) {
            di.loadData = dispatchMem_.data;
            di.inst->completeAcc(ctx_, di.loadData);
        }
    }
}

void
O3Cpu::dispatchStage()
{
    if (fetchQueue_.empty()) {
        stageIdleWork();
        return;
    }
    G5P_TRACE_SCOPE("O3Cpu::dispatch", CpuDetailed, true);
    Cycles now = curCycle();
    for (unsigned n = 0;
         n < o3Params_.dispatchWidth && !fetchQueue_.empty(); ++n) {
        if (fetchReadyCycle_.front() > now)
            break; // still in the front-end pipeline
        if (rob_.full()) {
            robFullStalls_ += 1;
            break;
        }
        if (iq_.full()) {
            iqFullStalls_ += 1;
            break;
        }

        DynInstPtr di = fetchQueue_.front();
        const auto &flags = di->inst->flags();

        if (!wrongPathMode_) {
            if ((flags.isLoad && lsq_.lqFull()) ||
                (flags.isStore && lsq_.sqFull()))
                break;
            if (flags.isNop) {
                // NOPs retire in the frontend in real O3 cores; keep
                // them out of the window but commit-count them.
                fetchQueue_.pop_front();
                fetchReadyCycle_.pop_front();
                countCommit(*di->inst, di->pc);
                pc_ = di->pc + isa::instBytes;
                continue;
            }
            if (di->inst->rd() != 0 && !rename_.canRename())
                break; // no physical register; retry next cycle

            oracleExecute(*di);

            // Rename after oracle execution: sources first.
            di->srcPhys1 = di->inst->rs1()
                ? rename_.lookup(di->inst->rs1()) : -1;
            di->srcPhys2 = di->inst->rs2()
                ? rename_.lookup(di->inst->rs2()) : -1;
            if (di->inst->rd() != 0) {
                if (!rename_.canRename())
                    break;
                auto [next, prev] = rename_.rename(di->inst->rd());
                di->destPhys = next;
                di->prevDestPhys = prev;
                rename_.setReadyCycle(next, maxTick);
            }

            if (flags.isControl) {
                bool taken = di->actualNpc != di->pc + isa::instBytes;
                bpred_.update(di->pc, taken, di->actualNpc,
                              *di->inst);
            }
            if (di->actualNpc != di->predNpc) {
                di->mispredicted = true;
                wrongPathMode_ = true;
            }

            if (flags.isLoad)
                lsq_.insertLoad(di);
            if (flags.isStore)
                lsq_.insertStore(di);
            if (flags.isHalt) {
                di->stage = InstStage::Completed;
                di->completeCycle = now;
                rob_.push(di);
                fetchQueue_.pop_front();
                fetchReadyCycle_.pop_front();
                wrongPathMode_ = true; // nothing younger is real
                continue;
            }
        } else {
            di->wrongPath = true;
        }

        rob_.push(di);
        iq_.insert(di);
        fetchQueue_.pop_front();
        fetchReadyCycle_.pop_front();
    }
}

isa::Fault
O3Cpu::execReadMem(Addr vaddr, unsigned size)
{
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid)
        return isa::Fault::PageFault;
    dispatchMem_ = PendingMem{tr.translation.paddr, size, tr.latency,
                              physmem_.read(tr.translation.paddr,
                                            size),
                              true};
    return isa::Fault::None;
}

isa::Fault
O3Cpu::execWriteMem(Addr vaddr, unsigned size, std::uint64_t data)
{
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid || !tr.translation.writable)
        return isa::Fault::PageFault;
    physmem_.write(tr.translation.paddr, size, data);
    dispatchMem_ = PendingMem{tr.translation.paddr, size, tr.latency,
                              data, true};
    return isa::Fault::None;
}

void
O3Cpu::fetchStage()
{
    if (fetchStopped_ || fetchInFlight_)
        return;
    if (fetchQueue_.size() >= o3Params_.fetchQueueSize)
        return;
    G5P_TRACE_SCOPE("O3Cpu::fetch", CpuDetailed, true);

    auto itr = itlb_->translate(fetchPc_);
    g5p_assert(itr.translation.valid && itr.translation.executable,
               "%s: ifetch page fault at %#llx", name().c_str(),
               (unsigned long long)fetchPc_);

    Addr block_end = alignDown(fetchPc_, fetchBlockBytes) +
                     fetchBlockBytes;
    unsigned bytes = (unsigned)(block_end - fetchPc_);
    bytes = std::min(bytes, o3Params_.fetchWidth * isa::instBytes);

    auto *block = new FetchBlock{fetchPc_, itr.translation.paddr,
                                 bytes, fetchEpoch_};
    fetchInFlight_ = true;
    if (wrongPathMode_)
        wrongPathFetches_ += 1;

    auto issue = [this, block] {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq,
                                    block->paddr, block->bytes);
        pkt->setInstFetch(true);
        pkt->setRequestorId(cpuId());
        pkt->setSenderState(block);
        icachePort_.sendTimingReq(pkt);
    };
    if (itr.latency > 0) {
        scheduleOneShot(clockEdge(itr.latency), issue,
                         name() + ".itlbWalk");
    } else {
        issue();
    }
}

void
O3Cpu::recvInstResp(mem::PacketPtr pkt)
{
    G5P_TRACE_SCOPE("O3Cpu::recvInstResp", CpuDetailed, true);
    auto *block = static_cast<FetchBlock *>(pkt->senderState());
    delete pkt;
    fetchInFlight_ = false;

    if (halted_ || fetchStopped_ || block->epoch != fetchEpoch_) {
        delete block;
        maybeReschedule();
        return;
    }

    Cycles ready = curCycle() + o3Params_.frontendDepth;
    Addr vpc = block->vaddr;
    Addr ppc = block->paddr;
    Addr vend = block->vaddr + block->bytes;
    Addr next_fetch = vend;

    while (vpc < vend) {
        std::uint64_t word = physmem_.read(ppc, isa::instBytes);
        isa::StaticInstPtr inst = decoder_.decode(word);

        Addr pred_npc = vpc + isa::instBytes;
        if (inst->flags().isControl) {
            auto pred = bpred_.predict(vpc, inst.get());
            if (pred.taken) {
                pred_npc = pred.npc;
            } else if (!inst->flags().isIndirect &&
                       !inst->flags().isCondCtrl) {
                pred_npc = vpc + (std::int64_t)inst->imm();
            }
        }

        trace::recordHeapAlloc(sizeof(DynInst) + 32);
        auto di = std::make_shared<DynInst>();
        di->inst = inst;
        di->pc = vpc;
        di->predNpc = pred_npc;
        di->seq = nextSeq_++;
        fetchQueue_.push_back(di);
        fetchReadyCycle_.push_back(ready);

        if (pred_npc != vpc + isa::instBytes) {
            next_fetch = pred_npc; // redirect within the block
            break;
        }
        vpc += isa::instBytes;
        ppc += isa::instBytes;
    }

    fetchPc_ = next_fetch;
    delete block;
    maybeReschedule();
}

void
O3Cpu::recvDataResp(mem::PacketPtr pkt)
{
    G5P_TRACE_SCOPE("O3Cpu::recvDataResp", CpuDetailed, true);
    if (pkt->cmd() == mem::MemCmd::WriteResp) {
        delete pkt;
        g5p_assert(outstandingStores_ > 0, "%s: stray store response",
                   name().c_str());
        --outstandingStores_;
        maybeReschedule();
        return;
    }

    auto *holder = static_cast<DynInstPtr *>(pkt->senderState());
    delete pkt;
    DynInstPtr di = *holder;
    delete holder;

    if (halted_) {
        maybeReschedule();
        return;
    }

    di->memDone = true;
    di->completeCycle = curCycle() + 1;
    if (di->destPhys >= 0)
        rename_.setReadyCycle(di->destPhys, di->completeCycle);
    maybeReschedule();
}

std::string
O3Cpu::encodeDynInst(const DynInst &di) const
{
    // The raw word travels with the record so restore can rebuild
    // the StaticInst without touching (or depending on the restore
    // order of) guest memory.
    auto tr = itlb_->pageTable()->translate(di.pc);
    g5p_assert(tr.valid, "%s: unmapped pc %#llx in pipeline",
               name().c_str(), (unsigned long long)di.pc);
    std::uint64_t word = physmem_.peek(tr.paddr, isa::instBytes);

    std::ostringstream os;
    os << di.seq << ' ' << di.pc << ' ' << di.predNpc << ' '
       << di.actualNpc << ' ' << word << ' ' << (int)di.stage << ' '
       << (int)di.wrongPath << ' ' << (int)di.mispredicted << ' '
       << di.destPhys << ' ' << di.prevDestPhys << ' '
       << di.srcPhys1 << ' ' << di.srcPhys2 << ' ' << di.paddr << ' '
       << di.memSize << ' ' << di.loadData << ' '
       << (int)di.memIssued << ' ' << (int)di.memDone << ' '
       << (int)di.forwarded << ' ' << di.dtlbLatency << ' '
       << di.completeCycle;
    return os.str();
}

DynInstPtr
O3Cpu::decodeDynInst(const std::string &record)
{
    std::istringstream is(record);
    std::uint64_t word = 0;
    int stage = 0, wrong_path = 0, mispredicted = 0;
    int mem_issued = 0, mem_done = 0, forwarded = 0;
    auto di = std::make_shared<DynInst>();
    is >> di->seq >> di->pc >> di->predNpc >> di->actualNpc >> word
       >> stage >> wrong_path >> mispredicted >> di->destPhys
       >> di->prevDestPhys >> di->srcPhys1 >> di->srcPhys2
       >> di->paddr >> di->memSize >> di->loadData >> mem_issued
       >> mem_done >> forwarded >> di->dtlbLatency
       >> di->completeCycle;
    g5p_assert(!is.fail(), "%s: corrupt DynInst record",
               name().c_str());
    di->stage = (InstStage)stage;
    di->wrongPath = wrong_path != 0;
    di->mispredicted = mispredicted != 0;
    di->memIssued = mem_issued != 0;
    di->memDone = mem_done != 0;
    di->forwarded = forwarded != 0;
    di->inst = decoder_.decodeQuiet(word);
    return di;
}

void
O3Cpu::serialize(sim::CheckpointOut &cp) const
{
    // Quiescence (no pending transient events) means no in-flight
    // fetch, loads, or stores; the in-window pipeline state below is
    // everything the machine needs to resume exactly.
    g5p_assert(!fetchInFlight_ && outstandingStores_ == 0,
               "%s: cannot checkpoint with accesses in flight",
               name().c_str());
    for (const auto &di : rob_)
        g5p_assert(di->wrongPath || !di->memIssued || di->memDone,
                   "%s: load in flight at checkpoint",
                   name().c_str());

    BaseCpu::serialize(cp);
    cp.param("fetchPc", fetchPc_);
    cp.param("fetchEpoch", fetchEpoch_);
    cp.param("fetchStopped", (int)fetchStopped_);
    cp.param("nextSeq", nextSeq_);
    cp.param("wrongPathMode", (int)wrongPathMode_);
    cp.param("stopping", (int)stopping_);

    cp.param("numRob", rob_.size());
    std::size_t i = 0;
    for (const auto &di : rob_)
        cp.param("rob" + std::to_string(i++), encodeDynInst(*di));

    cp.param("numFetch", fetchQueue_.size());
    i = 0;
    for (const auto &di : fetchQueue_)
        cp.param("fetch" + std::to_string(i++), encodeDynInst(*di));
    std::vector<Cycles> ready(fetchReadyCycle_.begin(),
                              fetchReadyCycle_.end());
    cp.paramVector("fetchReady", ready);

    // IQ and LSQ hold the same DynInsts; reference them by sequence
    // number rather than duplicating the records.
    std::vector<std::uint64_t> seqs;
    for (const auto &di : iq_.contents())
        seqs.push_back(di->seq);
    cp.paramVector("iqSeqs", seqs);
    seqs.clear();
    for (const auto &di : lsq_.loads())
        seqs.push_back(di->seq);
    cp.paramVector("lqSeqs", seqs);
    seqs.clear();
    for (const auto &di : lsq_.stores())
        seqs.push_back(di->seq);
    cp.paramVector("sqSeqs", seqs);

    cp.pushSection("rename");
    rename_.serialize(cp);
    cp.popSection();
    cp.pushSection("bpred");
    bpred_.serialize(cp);
    cp.popSection();
}

void
O3Cpu::unserialize(const sim::CheckpointIn &cp)
{
    BaseCpu::unserialize(cp);
    if (!ckptModel_.empty() && ckptModel_ != modelTag()) {
        // Cross-model transplant (source already vetted by
        // BaseCpu::unserialize): the source drained to pure
        // architectural state, so start with an empty window fetching
        // at the committed PC. The rename map and predictor keep
        // their freshly built state (identity mapping, cold tables).
        fetchPc_ = pc_;
        fetchEpoch_ = 0;
        fetchStopped_ = false;
        wrongPathMode_ = false;
        stopping_ = halted_;
        rob_.clear();
        fetchQueue_.clear();
        fetchReadyCycle_.clear();
        iq_.clear();
        lsq_.clear();
        fetchInFlight_ = false;
        outstandingStores_ = 0;
        dispatchMem_.valid = false;
        return;
    }
    cp.param("fetchPc", fetchPc_);
    cp.param("fetchEpoch", fetchEpoch_);
    int fetch_stopped = 0, wrong_path = 0, stopping = 0;
    cp.param("fetchStopped", fetch_stopped);
    fetchStopped_ = fetch_stopped != 0;
    cp.param("nextSeq", nextSeq_);
    cp.param("wrongPathMode", wrong_path);
    wrongPathMode_ = wrong_path != 0;
    cp.param("stopping", stopping);
    stopping_ = stopping != 0;

    std::unordered_map<std::uint64_t, DynInstPtr> by_seq;
    auto read_record = [&](const std::string &key) {
        std::string record;
        cp.param(key, record);
        DynInstPtr di = decodeDynInst(record);
        by_seq.emplace(di->seq, di);
        return di;
    };

    std::size_t num_rob = 0;
    cp.param("numRob", num_rob);
    rob_.clear();
    for (std::size_t i = 0; i < num_rob; ++i)
        rob_.push(read_record("rob" + std::to_string(i)));

    std::size_t num_fetch = 0;
    cp.param("numFetch", num_fetch);
    fetchQueue_.clear();
    for (std::size_t i = 0; i < num_fetch; ++i)
        fetchQueue_.push_back(
            read_record("fetch" + std::to_string(i)));
    std::vector<Cycles> ready;
    cp.paramVector("fetchReady", ready);
    g5p_assert(ready.size() == fetchQueue_.size(),
               "%s: fetch-queue checkpoint mismatch", name().c_str());
    fetchReadyCycle_.assign(ready.begin(), ready.end());

    std::vector<std::uint64_t> seqs;
    cp.paramVector("iqSeqs", seqs);
    iq_.clear();
    for (auto seq : seqs)
        iq_.insert(by_seq.at(seq));
    cp.paramVector("lqSeqs", seqs);
    lsq_.clear();
    for (auto seq : seqs)
        lsq_.insertLoad(by_seq.at(seq));
    cp.paramVector("sqSeqs", seqs);
    for (auto seq : seqs)
        lsq_.insertStore(by_seq.at(seq));

    fetchInFlight_ = false;
    outstandingStores_ = 0;
    dispatchMem_.valid = false;

    cp.pushSection("rename");
    rename_.unserialize(cp);
    cp.popSection();
    cp.pushSection("bpred");
    bpred_.unserialize(cp);
    cp.popSection();
}

void
O3Cpu::regStats()
{
    BaseCpu::regStats();
    addStat(&branchMispredicts_, "branchMispredicts",
            "resolved mispredicted control insts");
    addStat(&squashedInsts_, "squashedInsts",
            "wrong-path instructions squashed");
    addStat(&wrongPathFetches_, "wrongPathFetches",
            "fetch blocks issued while on the wrong path");
    addStat(&robFullStalls_, "robFullStalls",
            "dispatch stalls due to a full ROB");
    addStat(&iqFullStalls_, "iqFullStalls",
            "dispatch stalls due to a full IQ");
    addStat(&storeForwards_, "storeForwards",
            "loads satisfied by store-to-load forwarding");
}

} // namespace g5p::cpu
