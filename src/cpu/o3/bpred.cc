#include "cpu/o3/bpred.hh"

#include "base/addr_utils.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

BranchPredictor::BranchPredictor(const BpredParams &params)
    : params_(params),
      counters_(1u << params.tableBits, 1), // weakly not-taken
      btb_(params.btbEntries),
      ras_(params.rasEntries, 0)
{
}

std::size_t
BranchPredictor::tableIndex(Addr pc) const
{
    std::uint64_t idx = (pc >> 3) ^ history_;
    return idx & ((1u << params_.tableBits) - 1);
}

std::size_t
BranchPredictor::btbIndex(Addr pc) const
{
    return (pc >> 3) % params_.btbEntries;
}

BranchPredictor::Prediction
BranchPredictor::predict(Addr pc, const isa::StaticInst *inst)
{
    G5P_TRACE_SCOPE("BranchPredictor::predict", CpuDetailed, true);
    ++lookups_;
    Prediction pred;
    pred.npc = pc + isa::instBytes;

    const BtbEntry &btb = btb_[btbIndex(pc)];
    pred.btbHit = btb.valid && btb.pc == pc;

    if (inst && inst->flags().isIndirect) {
        // JALR: returns pop the RAS; other indirects use the BTB.
        if (inst->rs1() == isa::RegRa && rasTop_ > 0) {
            pred.taken = true;
            pred.npc = ras_[--rasTop_];
            return pred;
        }
        if (pred.btbHit) {
            pred.taken = true;
            pred.npc = btb.target;
        }
        return pred;
    }

    if (inst && inst->flags().isControl && !inst->flags().isCondCtrl) {
        // Direct jumps: taken if the target is known.
        if (inst->flags().isCall && rasTop_ < params_.rasEntries)
            ras_[rasTop_++] = pc + isa::instBytes;
        if (pred.btbHit) {
            pred.taken = true;
            pred.npc = btb.target;
        } else {
            ++btbMisses_;
        }
        return pred;
    }

    // Conditional branches: gshare direction + BTB target.
    bool taken = counters_[tableIndex(pc)] >= 2;
    if (taken && pred.btbHit) {
        pred.taken = true;
        pred.npc = btb.target;
    } else if (taken) {
        ++btbMisses_;
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, bool taken, Addr target,
                        const isa::StaticInst &inst)
{
    G5P_TRACE_SCOPE("BranchPredictor::update", CpuDetailed, true);
    if (inst.flags().isCondCtrl) {
        std::uint8_t &ctr = counters_[tableIndex(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & 0xffff;
    }
    if (taken) {
        BtbEntry &btb = btb_[btbIndex(pc)];
        btb.valid = true;
        btb.pc = pc;
        btb.target = target;
    }
}

} // namespace g5p::cpu
