#include "cpu/o3/bpred.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"
#include "sim/serialize.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

BranchPredictor::BranchPredictor(const BpredParams &params)
    : params_(params),
      counters_(1u << params.tableBits, 1), // weakly not-taken
      btb_(params.btbEntries),
      ras_(params.rasEntries, 0)
{
}

std::size_t
BranchPredictor::tableIndex(Addr pc) const
{
    std::uint64_t idx = (pc >> 3) ^ history_;
    return idx & ((1u << params_.tableBits) - 1);
}

std::size_t
BranchPredictor::btbIndex(Addr pc) const
{
    return (pc >> 3) % params_.btbEntries;
}

BranchPredictor::Prediction
BranchPredictor::predict(Addr pc, const isa::StaticInst *inst)
{
    G5P_TRACE_SCOPE("BranchPredictor::predict", CpuDetailed, true);
    ++lookups_;
    Prediction pred;
    pred.npc = pc + isa::instBytes;

    const BtbEntry &btb = btb_[btbIndex(pc)];
    pred.btbHit = btb.valid && btb.pc == pc;

    if (inst && inst->flags().isIndirect) {
        // JALR: returns pop the RAS; other indirects use the BTB.
        if (inst->rs1() == isa::RegRa && rasTop_ > 0) {
            pred.taken = true;
            pred.npc = ras_[--rasTop_];
            return pred;
        }
        if (pred.btbHit) {
            pred.taken = true;
            pred.npc = btb.target;
        }
        return pred;
    }

    if (inst && inst->flags().isControl && !inst->flags().isCondCtrl) {
        // Direct jumps: taken if the target is known.
        if (inst->flags().isCall && rasTop_ < params_.rasEntries)
            ras_[rasTop_++] = pc + isa::instBytes;
        if (pred.btbHit) {
            pred.taken = true;
            pred.npc = btb.target;
        } else {
            ++btbMisses_;
        }
        return pred;
    }

    // Conditional branches: gshare direction + BTB target.
    bool taken = counters_[tableIndex(pc)] >= 2;
    if (taken && pred.btbHit) {
        pred.taken = true;
        pred.npc = btb.target;
    } else if (taken) {
        ++btbMisses_;
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, bool taken, Addr target,
                        const isa::StaticInst &inst)
{
    G5P_TRACE_SCOPE("BranchPredictor::update", CpuDetailed, true);
    if (inst.flags().isCondCtrl) {
        std::uint8_t &ctr = counters_[tableIndex(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & 0xffff;
    }
    if (taken) {
        BtbEntry &btb = btb_[btbIndex(pc)];
        btb.valid = true;
        btb.pc = pc;
        btb.target = target;
    }
}

void
BranchPredictor::serialize(sim::CheckpointOut &cp) const
{
    // uint8_t would stream as a character; widen the counters.
    std::vector<unsigned> counters(counters_.begin(), counters_.end());
    cp.paramVector("counters", counters);
    std::vector<Addr> btb_pc, btb_target;
    std::vector<int> btb_valid;
    for (const auto &e : btb_) {
        btb_pc.push_back(e.pc);
        btb_target.push_back(e.target);
        btb_valid.push_back(e.valid ? 1 : 0);
    }
    cp.paramVector("btbPc", btb_pc);
    cp.paramVector("btbTarget", btb_target);
    cp.paramVector("btbValid", btb_valid);
    cp.paramVector("ras", ras_);
    cp.param("rasTop", rasTop_);
    cp.param("history", history_);
    cp.param("lookups", lookups_);
    cp.param("btbMisses", btbMisses_);
}

void
BranchPredictor::unserialize(const sim::CheckpointIn &cp)
{
    std::vector<unsigned> counters;
    cp.paramVector("counters", counters);
    g5p_assert(counters.size() == counters_.size(),
               "branch-predictor geometry changed since checkpoint");
    for (std::size_t i = 0; i < counters.size(); ++i)
        counters_[i] = (std::uint8_t)counters[i];
    std::vector<Addr> btb_pc, btb_target;
    std::vector<int> btb_valid;
    cp.paramVector("btbPc", btb_pc);
    cp.paramVector("btbTarget", btb_target);
    cp.paramVector("btbValid", btb_valid);
    g5p_assert(btb_pc.size() == btb_.size() &&
               btb_target.size() == btb_.size() &&
               btb_valid.size() == btb_.size(),
               "BTB geometry changed since checkpoint");
    for (std::size_t i = 0; i < btb_.size(); ++i)
        btb_[i] = BtbEntry{btb_pc[i], btb_target[i],
                           btb_valid[i] != 0};
    cp.paramVector("ras", ras_);
    g5p_assert(ras_.size() == params_.rasEntries,
               "RAS geometry changed since checkpoint");
    cp.param("rasTop", rasTop_);
    cp.param("history", history_);
    cp.param("lookups", lookups_);
    cp.param("btbMisses", btbMisses_);
}

} // namespace g5p::cpu
