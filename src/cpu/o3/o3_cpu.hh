/**
 * @file
 * O3Cpu: out-of-order superscalar model loosely based on the Alpha
 * 21264 (as gem5's O3), with fetch along the predicted path, rename,
 * an issue queue with a functional-unit pool, a load/store queue with
 * forwarding, a reorder buffer with in-order commit, and
 * mispredict-driven squash. See cpu/o3/dyn_inst.hh for the
 * oracle-execute-at-dispatch design.
 */

#ifndef G5P_CPU_O3_O3_CPU_HH
#define G5P_CPU_O3_O3_CPU_HH

#include <deque>

#include "cpu/base_cpu.hh"
#include "cpu/o3/bpred.hh"
#include "cpu/o3/iq.hh"
#include "cpu/o3/lsq.hh"
#include "cpu/o3/rename.hh"
#include "cpu/o3/rob.hh"
#include "mem/physical.hh"

namespace g5p::cpu
{

/** O3 machine configuration (defaults follow gem5's O3CPU). */
struct O3Params
{
    unsigned fetchWidth = 4;     ///< insts per fetch block (32B)
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robEntries = 128;
    unsigned iqEntries = 64;
    unsigned lqEntries = 32;
    unsigned sqEntries = 32;
    unsigned numPhysRegs = 160;
    unsigned fetchQueueSize = 16;
    unsigned maxOutstandingStores = 8;
    Cycles frontendDepth = 4;    ///< fetch-to-dispatch stages
    o3::FuPoolParams fu;
    BpredParams bpred{.tableBits = 12, .btbEntries = 4096,
                      .rasEntries = 16};
};

class O3Cpu : public BaseCpu
{
  public:
    O3Cpu(sim::Simulator &sim, const std::string &name,
          const sim::ClockDomain &domain, const CpuParams &params,
          const O3Params &o3_params, mem::PhysicalMemory &physmem);
    ~O3Cpu() override;

    void activate() override;

    const char *modelTag() const override { return "o3"; }

    void regStats() override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

  protected:
    isa::Fault execReadMem(Addr vaddr, unsigned size) override;
    isa::Fault execWriteMem(Addr vaddr, unsigned size,
                            std::uint64_t data) override;

    G5P_HOT void recvInstResp(mem::PacketPtr pkt) override;
    G5P_HOT void recvDataResp(mem::PacketPtr pkt) override;

  private:
    /** In-flight instruction-fetch bookkeeping. */
    struct FetchBlock
    {
        Addr vaddr;
        Addr paddr;
        unsigned bytes;
        std::uint64_t epoch;
    };

    void tick();
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /** Dispatch-time oracle execution of one right-path inst. */
    void oracleExecute(o3::DynInst &di);

    /** Resolve a mispredicted branch: squash + redirect. */
    void resolveMispredict(o3::DynInst &branch);

    /** Issue the dcache read for a right-path load. */
    void issueLoad(const o3::DynInstPtr &di);

    /** Issue the dcache write for a committing store. */
    void issueStore(const o3::DynInst &di);

    void maybeReschedule();

    /** One-line textual record of a DynInst (checkpointing). */
    std::string encodeDynInst(const o3::DynInst &di) const;

    /** Inverse of encodeDynInst; re-decodes via the decode cache. */
    o3::DynInstPtr decodeDynInst(const std::string &record);

    O3Params o3Params_;
    mem::PhysicalMemory &physmem_;
    CpuExecContext ctx_;
    BranchPredictor bpred_;

    o3::Rob rob_;
    o3::IssueQueue iq_;
    o3::Lsq lsq_;
    o3::RenameMap rename_;

    std::deque<o3::DynInstPtr> fetchQueue_;
    std::deque<Cycles> fetchReadyCycle_; ///< parallel: earliest dispatch

    Addr fetchPc_;
    std::uint64_t fetchEpoch_ = 0;
    bool fetchInFlight_ = false;
    bool fetchStopped_ = false;
    std::uint64_t nextSeq_ = 1;

    bool wrongPathMode_ = false;
    bool stopping_ = false;
    unsigned outstandingStores_ = 0;

    /** Dispatch-time memory capture (filled by execRead/WriteMem). */
    struct PendingMem
    {
        Addr paddr = 0;
        unsigned size = 0;
        Cycles tlbLatency = 0;
        std::uint64_t data = 0;
        bool valid = false;
    } dispatchMem_;

    sim::MemberEventWrapper<&O3Cpu::tick> tickEvent_;

    sim::stats::Scalar branchMispredicts_;
    sim::stats::Scalar squashedInsts_;
    sim::stats::Scalar wrongPathFetches_;
    sim::stats::Scalar robFullStalls_;
    sim::stats::Scalar iqFullStalls_;
    sim::stats::Scalar storeForwards_;
};

} // namespace g5p::cpu

#endif // G5P_CPU_O3_O3_CPU_HH
