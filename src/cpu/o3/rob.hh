/**
 * @file
 * Reorder buffer: in-order FIFO of in-flight dynamic instructions.
 */

#ifndef G5P_CPU_O3_ROB_HH
#define G5P_CPU_O3_ROB_HH

#include <deque>

#include "cpu/o3/dyn_inst.hh"

namespace g5p::cpu::o3
{

class Rob
{
  public:
    explicit Rob(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return insts_.size() >= capacity_; }
    bool empty() const { return insts_.empty(); }
    std::size_t size() const { return insts_.size(); }
    unsigned capacity() const { return capacity_; }

    void push(const DynInstPtr &inst) { insts_.push_back(inst); }

    const DynInstPtr &head() const { return insts_.front(); }
    void popHead() { insts_.pop_front(); }

    /**
     * Squash every instruction younger than @p seq; all of them must
     * be wrong-path by construction. @return number squashed.
     */
    std::size_t squashAfter(std::uint64_t seq);

    /** Iteration (oldest first) for the writeback scan. */
    auto begin() { return insts_.begin(); }
    auto end() { return insts_.end(); }
    auto begin() const { return insts_.begin(); }
    auto end() const { return insts_.end(); }

    /** Drop everything (checkpoint restore). */
    void clear() { insts_.clear(); }

  private:
    unsigned capacity_;
    std::deque<DynInstPtr> insts_;
};

} // namespace g5p::cpu::o3

#endif // G5P_CPU_O3_ROB_HH
