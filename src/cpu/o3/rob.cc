#include "cpu/o3/rob.hh"

#include "base/logging.hh"

namespace g5p::cpu::o3
{

std::size_t
Rob::squashAfter(std::uint64_t seq)
{
    std::size_t squashed = 0;
    while (!insts_.empty() && insts_.back()->seq > seq) {
        g5p_assert(insts_.back()->wrongPath,
                   "squashing a right-path instruction (seq %llu)",
                   (unsigned long long)insts_.back()->seq);
        insts_.pop_back();
        ++squashed;
    }
    return squashed;
}

} // namespace g5p::cpu::o3
