/**
 * @file
 * Dynamic-instruction record for the O3 CPU model.
 *
 * The O3 model is "oracle-execute at dispatch, out-of-order timing":
 * right-path instructions execute functionally in program order when
 * dispatched (so architectural state is always exact), while the
 * pipeline models fetch/rename/issue/commit timing out of order.
 * Wrong-path instructions (younger than a mispredicted branch) are
 * fetched and occupy resources but never execute functionally; they
 * are squashed when the branch resolves.
 */

#ifndef G5P_CPU_O3_DYN_INST_HH
#define G5P_CPU_O3_DYN_INST_HH

#include <memory>

#include "isa/inst.hh"

namespace g5p::cpu::o3
{

/** Pipeline position of a dynamic instruction. */
enum class InstStage : std::uint8_t
{
    Dispatched, ///< in ROB/IQ, waiting for operands
    Issued,     ///< executing on a functional unit / memory
    Completed,  ///< result ready, waiting to commit
};

struct DynInst
{
    isa::StaticInstPtr inst;
    Addr pc = 0;
    Addr predNpc = 0;       ///< next PC fetch followed
    Addr actualNpc = 0;     ///< oracle next PC (right path only)
    std::uint64_t seq = 0;

    InstStage stage = InstStage::Dispatched;
    bool wrongPath = false;
    bool mispredicted = false;

    /** @{ Renaming (right path only; -1 = none). */
    int destPhys = -1;
    int prevDestPhys = -1;
    int srcPhys1 = -1;
    int srcPhys2 = -1;
    /** @} */

    /** @{ Memory state. */
    Addr paddr = 0;
    unsigned memSize = 0;
    std::uint64_t loadData = 0; ///< oracle data (read at dispatch)
    bool memIssued = false;
    bool memDone = false;
    bool forwarded = false;     ///< satisfied by store forwarding
    Cycles dtlbLatency = 0;
    /** @} */

    Cycles completeCycle = 0;   ///< valid once Issued

    bool isLoad() const { return inst->flags().isLoad; }
    bool isStore() const { return inst->flags().isStore; }
    bool isControl() const { return inst->flags().isControl; }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace g5p::cpu::o3

#endif // G5P_CPU_O3_DYN_INST_HH
