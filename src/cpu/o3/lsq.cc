#include "cpu/o3/lsq.hh"

#include "trace/recorder.hh"

namespace g5p::cpu::o3
{

bool
Lsq::canForward(const DynInst &load) const
{
    G5P_TRACE_SCOPE("Lsq::canForward", CpuDetailed, false);
    for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
        const DynInst &store = **it;
        if (store.seq > load.seq || store.wrongPath)
            continue;
        if (store.paddr == load.paddr && store.memSize >= load.memSize)
            return true;
    }
    return false;
}

void
Lsq::commit(const DynInst &inst)
{
    auto drop = [&](std::deque<DynInstPtr> &q) {
        for (auto it = q.begin(); it != q.end(); ++it) {
            if ((*it)->seq == inst.seq) {
                q.erase(it);
                return;
            }
        }
    };
    if (inst.isLoad())
        drop(loads_);
    else if (inst.isStore())
        drop(stores_);
}

void
Lsq::squashAfter(std::uint64_t seq)
{
    while (!loads_.empty() && loads_.back()->seq > seq)
        loads_.pop_back();
    while (!stores_.empty() && stores_.back()->seq > seq)
        stores_.pop_back();
}

} // namespace g5p::cpu::o3
