#include "cpu/timing_cpu.hh"

#include "sim/event_dispatch.hh"
#include "trace/recorder.hh"

namespace g5p::cpu
{

TimingCpu::TimingCpu(sim::Simulator &sim, const std::string &name,
                     const sim::ClockDomain &domain,
                     const CpuParams &params,
                     mem::PhysicalMemory &physmem)
    : BaseCpu(sim, name, domain, params),
      physmem_(physmem),
      ctx_(*this),
      fetchEvent_(this, name + ".tick", sim::Event::CpuTickPri)
{
    eventQueue().registerSerial(name + ".tick", &fetchEvent_);
}

TimingCpu::~TimingCpu()
{
    if (fetchEvent_.scheduled())
        deschedule(fetchEvent_);
    eventQueue().unregisterSerial(name() + ".tick");
}

void
TimingCpu::activate()
{
    // Idempotent: a restored CPU's fetch event is already
    // re-scheduled from the checkpoint (or the CPU halted).
    if (halted_ || fetchEvent_.scheduled())
        return;
    g5p_assert(state_ == State::Idle, "%s already active",
               name().c_str());
    schedule(fetchEvent_, clockEdge());
}

void
TimingCpu::startFetch()
{
    G5P_TRACE_SCOPE("TimingCpu::startFetch", CpuSimple,
                    ::g5p::sim::modeledDispatchVirtual());
    if (halted_)
        return;

    ctx_.beginInst(pc_);
    auto itr = itlb_->translate(pc_);
    g5p_assert(itr.translation.valid && itr.translation.executable,
               "%s: ifetch page fault at %#llx", name().c_str(),
               (unsigned long long)pc_);
    fetchPaddr_ = itr.translation.paddr;

    auto issue = [this] {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq, fetchPaddr_,
                                    isa::instBytes);
        pkt->setInstFetch(true);
        pkt->setRequestorId(cpuId());
        state_ = State::FetchPending;
        fetchIssued_ = curTick();
        icachePort_.sendTimingReq(pkt);
    };

    if (itr.latency > 0) {
        // I-TLB walk delays the fetch issue.
        scheduleOneShot(clockEdge(itr.latency), issue,
                         name() + ".itlbWalk");
    } else {
        issue();
    }
}

void
TimingCpu::recvInstResp(mem::PacketPtr pkt)
{
    G5P_TRACE_SCOPE("TimingCpu::recvInstResp", CpuSimple, true);
    g5p_assert(state_ == State::FetchPending,
               "%s: stray instruction response", name().c_str());
    fetchStallCycles_ += (double)ticksToCycles(curTick() -
                                               fetchIssued_);
    delete pkt;

    std::uint64_t word = physmem_.read(fetchPaddr_, isa::instBytes);
    curInst_ = decoder_.decode(word);
    isa::Fault fault = curInst_->execute(ctx_);

    switch (fault) {
      case isa::Fault::None:
        if (curInst_->flags().isMemRef) {
            // Waiting for the data response; completeInst runs there.
            return;
        }
        completeInst();
        return;
      case isa::Fault::Syscall:
        doSyscall();
        completeInst();
        return;
      case isa::Fault::Halt:
        countCommit(*curInst_, pc_);
        state_ = State::Idle;
        doHalt();
        return;
      default:
        g5p_panic("%s: %s at pc %#llx", name().c_str(),
                  isa::faultName(fault), (unsigned long long)pc_);
    }
}

isa::Fault
TimingCpu::execReadMem(Addr vaddr, unsigned size)
{
    G5P_TRACE_SCOPE("TimingCpu::readMem", CpuSimple, false);
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid)
        return isa::Fault::PageFault;

    pendingMem_ = PendingMem{tr.translation.paddr, size, true, 0};
    auto issue = [this] {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq,
                                    pendingMem_.paddr,
                                    pendingMem_.size);
        pkt->setRequestorId(cpuId());
        state_ = State::DataPending;
        dataIssued_ = curTick();
        dcachePort_.sendTimingReq(pkt);
    };
    if (tr.latency > 0) {
        scheduleOneShot(clockEdge(tr.latency), issue,
                         name() + ".dtlbWalk");
    } else {
        issue();
    }
    return isa::Fault::None;
}

isa::Fault
TimingCpu::execWriteMem(Addr vaddr, unsigned size, std::uint64_t data)
{
    G5P_TRACE_SCOPE("TimingCpu::writeMem", CpuSimple, false);
    auto tr = dtlb_->translate(vaddr);
    if (!tr.translation.valid || !tr.translation.writable)
        return isa::Fault::PageFault;

    pendingMem_ = PendingMem{tr.translation.paddr, size, false, data};
    auto issue = [this] {
        auto *pkt = new mem::Packet(mem::MemCmd::WriteReq,
                                    pendingMem_.paddr,
                                    pendingMem_.size);
        pkt->setRequestorId(cpuId());
        state_ = State::DataPending;
        dataIssued_ = curTick();
        dcachePort_.sendTimingReq(pkt);
    };
    if (tr.latency > 0) {
        scheduleOneShot(clockEdge(tr.latency), issue,
                         name() + ".dtlbWalk");
    } else {
        issue();
    }
    return isa::Fault::None;
}

void
TimingCpu::recvDataResp(mem::PacketPtr pkt)
{
    G5P_TRACE_SCOPE("TimingCpu::recvDataResp", CpuSimple, true);
    g5p_assert(state_ == State::DataPending,
               "%s: stray data response", name().c_str());
    dataStallCycles_ += (double)ticksToCycles(curTick() - dataIssued_);
    delete pkt;

    if (pendingMem_.isLoad) {
        memData_ = physmem_.read(pendingMem_.paddr, pendingMem_.size);
        curInst_->completeAcc(ctx_, memData_);
    } else {
        physmem_.write(pendingMem_.paddr, pendingMem_.size,
                       pendingMem_.storeData);
    }
    completeInst();
}

void
TimingCpu::completeInst()
{
    G5P_TRACE_SCOPE("TimingCpu::completeInst", CpuSimple, false);
    countCommit(*curInst_, pc_);
    if (ctx_.branched())
        numTakenBranches_ += 1;
    pc_ = ctx_.nextPc();
    state_ = State::Idle;

    if (halted_ || instLimitReached()) {
        doHalt();
        return;
    }
    schedule(fetchEvent_, clockEdge(1));
}

void
TimingCpu::serialize(sim::CheckpointOut &cp) const
{
    // A timing CPU is only checkpointable between instructions: any
    // in-flight fetch or data access holds a transient event, so the
    // queue-quiescence check in the Simulator guarantees Idle here.
    g5p_assert(state_ == State::Idle,
               "%s: cannot checkpoint with an access in flight",
               name().c_str());
    BaseCpu::serialize(cp);
}

void
TimingCpu::unserialize(const sim::CheckpointIn &cp)
{
    BaseCpu::unserialize(cp);
    state_ = State::Idle;
}

void
TimingCpu::regStats()
{
    BaseCpu::regStats();
    addStat(&fetchStallCycles_, "fetchStallCycles",
            "cycles spent waiting for ifetch responses");
    addStat(&dataStallCycles_, "dataStallCycles",
            "cycles spent waiting for data responses");
}

} // namespace g5p::cpu
