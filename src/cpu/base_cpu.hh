/**
 * @file
 * BaseCpu: shared state and plumbing for mg5's four CPU models
 * (Atomic, Timing, Minor, O3), mirroring gem5's BaseCPU.
 *
 * A CPU owns the architectural register file, the PC, a decoder with
 * decode cache, I/D cache ports, and I/D TLB references. Subclasses
 * implement the fetch/execute machinery at their level of detail; the
 * paper's central observation — that detail level drives the
 * simulator's own instruction footprint — emerges from how much of
 * this machinery each model touches per simulated instruction.
 */

#ifndef G5P_CPU_BASE_CPU_HH
#define G5P_CPU_BASE_CPU_HH

#include <functional>

#include "isa/decoder.hh"
#include "isa/inst.hh"
#include "mem/port.hh"
#include "mem/tlb.hh"
#include "sim/clocked_object.hh"

namespace g5p::cpu
{

class BaseCpu;

/** OS-side syscall service interface (implemented by os::Process). */
class SyscallHandler
{
  public:
    virtual ~SyscallHandler() = default;

    /** Service the ECALL current on @p cpu (regs hold nr/args). */
    virtual void handleSyscall(BaseCpu &cpu) = 0;
};

/** Construction parameters common to all CPU models. */
struct CpuParams
{
    int cpuId = 0;
    Addr resetPc = 0x1000;
    std::uint64_t maxInsts = 0; ///< stop after N insts (0 = no limit)
};

class BaseCpu : public sim::ClockedObject
{
  public:
    BaseCpu(sim::Simulator &sim, const std::string &name,
            const sim::ClockDomain &domain, const CpuParams &params);
    ~BaseCpu() override;

    /** @{ Memory-side ports (bind to the L1s). */
    mem::RequestPort &icachePort() { return icachePort_; }
    mem::RequestPort &dcachePort() { return dcachePort_; }
    /** @} */

    /** Bind the TLBs (owned by the System). */
    void setTlbs(mem::Tlb *itlb, mem::Tlb *dtlb);

    /** Bind the syscall handler (SE Process or FS kernel). */
    void setSyscallHandler(SyscallHandler *handler)
    { syscallHandler_ = handler; }

    /** Callback fired once when this CPU halts. */
    void setHaltCallback(std::function<void(BaseCpu &)> cb)
    { onHalt_ = std::move(cb); }

    /**
     * Hook fired at every architectural commit with the commit tick,
     * the instruction's PC, and the decoded instruction. Used by the
     * checkpoint tests to compare commit traces across a
     * checkpoint/restore boundary.
     */
    using CommitHook =
        std::function<void(Tick, Addr, const isa::StaticInst &)>;
    void setCommitHook(CommitHook hook)
    { commitHook_ = std::move(hook); }

    /** Begin execution at the reset PC (schedules the first event). */
    virtual void activate() = 0;

    /**
     * Short model tag ("atomic"/"timing"/"minor"/"o3"), written into
     * checkpoints so unserialize can tell a same-model checkpoint
     * (full pipeline restore) from a cross-model one (architectural
     * state only; the pipeline starts drained).
     */
    virtual const char *modelTag() const = 0;

    /**
     * One-shot region boundary: fire @p cb from the commit path once
     * the committed-instruction count reaches @p at_insts (0 disarms).
     * Unlike the maxInsts limit this does not halt the CPU — the
     * callback typically calls Simulator::exitSimLoop so run()
     * returns at the boundary and the caller can checkpoint or
     * switch models, then resume. Not serialized: drivers re-arm
     * after a restore.
     */
    void
    setInstMilestone(std::uint64_t at_insts, std::function<void()> cb)
    {
        milestoneAt_ = at_insts;
        milestoneCb_ = std::move(cb);
    }

    /** @{ Architectural state access (debug / syscalls / tests). */
    std::uint64_t
    readArchReg(RegIndex reg) const
    {
        return reg == 0 ? 0 : regs_[reg];
    }

    void
    setArchReg(RegIndex reg, std::uint64_t value)
    {
        if (reg != 0)
            regs_[reg] = value;
    }

    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    /** @} */

    int cpuId() const { return params_.cpuId; }
    bool halted() const { return halted_; }

    /** External halt request (e.g. the exit syscall). */
    void requestHalt() { doHalt(); }

    /** Committed instruction count. */
    std::uint64_t
    numInsts() const
    {
        return (std::uint64_t)numInsts_.value();
    }

    void regStats() override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

  protected:
    friend class CpuExecContext;

    /** @{ Memory hooks used by CpuExecContext (model-specific). */
    virtual isa::Fault execReadMem(Addr vaddr, unsigned size) = 0;
    virtual isa::Fault execWriteMem(Addr vaddr, unsigned size,
                                    std::uint64_t data) = 0;
    /** @} */

    /** Timing-response hooks; detailed models override. */
    virtual void recvInstResp(mem::PacketPtr pkt);
    virtual void recvDataResp(mem::PacketPtr pkt);

    /** Mark the CPU halted and fire the callback. */
    void doHalt();

    /** Dispatch an ECALL to the bound handler. */
    void doSyscall();

    /**
     * Post-commit bookkeeping shared by all models. Inline: runs once
     * per committed instruction in every model, and the common case
     * is four stat increments plus two null-check branches.
     */
    void
    countCommit(const isa::StaticInst &inst, Addr pc)
    {
        numInsts_ += 1;
        const auto &flags = inst.flags();
        if (flags.isLoad)
            numLoads_ += 1;
        if (flags.isStore)
            numStores_ += 1;
        if (flags.isControl)
            numBranches_ += 1;
        if (commitHook_)
            commitHook_(curTick(), pc, inst);
        if (milestoneAt_ && numInsts() >= milestoneAt_) {
            // Move-out first: the callback may re-arm a later
            // milestone.
            milestoneAt_ = 0;
            auto cb = std::move(milestoneCb_);
            milestoneCb_ = nullptr;
            if (cb)
                cb();
        }
    }

    /**
     * Guard for cross-model unserialize: throws CheckpointError when
     * the source checkpoint (ckptModel_) could hold instructions
     * whose architectural effects are already applied but not yet
     * committed — dropping those would lose state. Atomic, Timing
     * and Minor drain to pure architectural state at quiescence; O3
     * applies effects at dispatch, so an O3 checkpoint transplants
     * only when its window is empty.
     */
    void requireDrainedSource(const sim::CheckpointIn &cp) const;

    /** True once the per-CPU instruction limit is hit. */
    bool
    instLimitReached() const
    {
        return params_.maxInsts &&
               numInsts() >= params_.maxInsts;
    }

    class IcachePort : public mem::RequestPort
    {
      public:
        IcachePort(BaseCpu &cpu, const std::string &name)
            : mem::RequestPort(name), cpu_(cpu)
        {}
        void recvTimingResp(mem::PacketPtr pkt) override
        { cpu_.recvInstResp(pkt); }

      private:
        BaseCpu &cpu_;
    };

    class DcachePort : public mem::RequestPort
    {
      public:
        DcachePort(BaseCpu &cpu, const std::string &name)
            : mem::RequestPort(name), cpu_(cpu)
        {}
        void recvTimingResp(mem::PacketPtr pkt) override
        { cpu_.recvDataResp(pkt); }

      private:
        BaseCpu &cpu_;
    };

    CpuParams params_;
    std::uint64_t regs_[isa::numArchRegs] = {};
    Addr pc_;
    isa::Decoder decoder_;

    mem::Tlb *itlb_ = nullptr;
    mem::Tlb *dtlb_ = nullptr;
    SyscallHandler *syscallHandler_ = nullptr;
    std::function<void(BaseCpu &)> onHalt_;
    CommitHook commitHook_;
    bool halted_ = false;

    /** Model name found in the checkpoint section being restored
     *  (empty when absent: pre-switch checkpoints, assumed
     *  same-model). Valid during unserialize(). */
    std::string ckptModel_;

    std::uint64_t milestoneAt_ = 0;
    std::function<void()> milestoneCb_;

    IcachePort icachePort_;
    DcachePort dcachePort_;

    /** Most recent load result (consumed via ExecContext::memData). */
    std::uint64_t memData_ = 0;

    sim::stats::Scalar numInsts_;
    sim::stats::Scalar numLoads_;
    sim::stats::Scalar numStores_;
    sim::stats::Scalar numBranches_;
    sim::stats::Scalar numTakenBranches_;
    sim::stats::Scalar numSyscalls_;
    sim::stats::Formula ipc_;
};

/**
 * Shared ExecContext adapter: exposes BaseCpu state through the ISA's
 * abstract interface, with per-instruction next-PC tracking.
 */
class CpuExecContext : public isa::ExecContext
{
  public:
    explicit CpuExecContext(BaseCpu &cpu) : cpu_(cpu) {}

    /** Prepare for one instruction at @p pc. */
    void
    beginInst(Addr pc)
    {
        instPc_ = pc;
        nextPc_ = pc + isa::instBytes;
        branched_ = false;
    }

    Addr nextPc() const { return nextPc_; }
    bool branched() const { return branched_; }

    std::uint64_t
    readReg(RegIndex reg) const override
    {
        cpu_.touchState(reg * 8, 8, false);
        return cpu_.readArchReg(reg);
    }

    void
    setReg(RegIndex reg, std::uint64_t value) override
    {
        cpu_.touchState(reg * 8, 8, true);
        cpu_.setArchReg(reg, value);
    }

    Addr pc() const override { return instPc_; }

    void
    setNextPc(Addr npc) override
    {
        nextPc_ = npc;
        branched_ = true;
    }

    isa::Fault
    readMem(Addr addr, unsigned size) override
    {
        return cpu_.execReadMem(addr, size);
    }

    isa::Fault
    writeMem(Addr addr, unsigned size, std::uint64_t data) override
    {
        return cpu_.execWriteMem(addr, size, data);
    }

    std::uint64_t memData() const override { return cpu_.memData_; }

  private:
    BaseCpu &cpu_;
    Addr instPc_ = 0;
    Addr nextPc_ = 0;
    bool branched_ = false;
};

} // namespace g5p::cpu

#endif // G5P_CPU_BASE_CPU_HH
