#include "cpu/base_cpu.hh"

// CpuExecContext is header-only (it is on the per-instruction hot
// path); this translation unit anchors the vtable-free adapter in the
// build graph alongside the CPU models.
