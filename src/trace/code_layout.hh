/**
 * @file
 * Binary-layout model of mg5: every registered simulation function is
 * placed at a synthetic host code address with a synthetic size.
 *
 * The host front-end sees instruction fetches walking these regions,
 * so the *instruction footprint* of a simulation — the paper's central
 * quantity — is the set of functions the run actually touches times
 * their sizes. Per-kind codegen constants live in CodegenParams; their
 * provenance is documented inline.
 */

#ifndef G5P_TRACE_CODE_LAYOUT_HH
#define G5P_TRACE_CODE_LAYOUT_HH

#include <unordered_map>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "trace/func_registry.hh"

namespace g5p::trace
{

/**
 * Code-generation parameters per FuncKind.
 *
 * Values are calibrated to optimized (-O2) x86-64 builds of large
 * C++ simulators: mean machine-code function sizes of a few hundred
 * bytes, one branch per ~5 instructions, and heavy virtual dispatch
 * in the detailed models. These are *inputs* to the model, not
 * outputs tabulated from the paper.
 */
struct CodegenParams
{
    double meanCodeBytes;    ///< average function size
    double executedFraction; ///< fraction of the body run per call
    double instsPerBranch;   ///< branch density
    double condTakenProb;    ///< forward-branch taken probability
    double stackRefsPerBurst;///< spill/local refs between events
    double uopsPerInst;      ///< x86 micro-op expansion

    /**
     * @{ Sub-function expansion. One instrumented mg5 scope stands
     * for a whole gem5 call path; the synthesizer expands it into a
     * deterministic tree of callee functions so the *instruction
     * footprint* and the *function population* (Fig. 15) match a
     * multi-million-line simulator rather than mg5's source size.
     */
    unsigned subFuncs;        ///< distinct callees of this scope
    double childCallPer100;   ///< call sites per 100 body insts
    double virtualChildFrac;  ///< fraction of call sites via vtable
    /** @} */
};

/** The per-kind constants. */
const CodegenParams &codegenParams(FuncKind kind);

/** Layout knobs (build-configuration dependent). */
struct LayoutOptions
{
    /** Multiplier on code sizes: "-O3" shrinks this (tuning/optflag). */
    double sizeScale = 1.0;

    /** Seed controlling per-function size jitter and link order. */
    std::uint64_t seed = 0x67656d35;

    /** Base of the synthetic text segment. */
    HostAddr codeBase = 0x40'0000;

    /** Mean x86 instruction length in bytes. */
    double instBytes = 4.0;

    /**
     * Text-layout expansion: cold paths (error handling, asserts,
     * rarely-taken template instantiations) and alignment dilute the
     * executed bytes across the text segment, so the page-level code
     * footprint (what the iTLB sees) is a multiple of the line-level
     * one (what the iCache sees).
     */
    double paddingFactor = 3.5;
};

/** Placement of one function. */
struct FuncCode
{
    HostAddr addr = 0;
    std::uint32_t sizeBytes = 0;
    std::uint32_t executedBytes = 0; ///< bytes walked per invocation

    /**
     * Seed for the function's *code structure* (which offsets are
     * branches, calls, loads). Derived from the name only: relinking
     * or resizing the binary moves code but does not rewrite it.
     */
    std::uint64_t structSeed = 0;
};

/**
 * Assigns addresses/sizes for all functions in a registry.
 * Functions registered after construction are placed lazily, in
 * first-use order (deterministic for a deterministic simulation).
 */
class CodeLayout
{
  public:
    CodeLayout(const FuncRegistry &registry,
               const LayoutOptions &options = {});

    /** Placement of @p id (lazily extends the layout). */
    const FuncCode &code(FuncId id);

    /**
     * FuncId of the @p idx'th synthetic callee of @p parent
     * (registered lazily as "<parent>::part#<idx>", same kind).
     */
    FuncId childFunc(FuncId parent, unsigned idx);

    /** Total text bytes laid out so far. */
    std::uint64_t totalCodeBytes() const { return nextAddr_ - base_; }

    const LayoutOptions &options() const { return options_; }

  private:
    void place(FuncId id);

    const FuncRegistry &registry_;
    LayoutOptions options_;
    HostAddr base_;
    HostAddr nextAddr_;
    std::vector<FuncCode> codes_;

    /**
     * (parent, idx) -> child FuncId cache. childFunc() is on the
     * synthesizer's per-call-site path; without the cache every
     * child call builds a name string and takes the registry mutex.
     */
    std::unordered_map<std::uint64_t, FuncId> childIds_;
};

} // namespace g5p::trace

#endif // G5P_TRACE_CODE_LAYOUT_HH
