#include "trace/synthesizer.hh"

#include "base/logging.hh"

namespace g5p::trace
{

namespace
{

/** Deepest synthetic-callee nesting below an instrumented scope. */
constexpr unsigned maxChildDepth = 3;

/** Child-call density decays by this factor per nesting level. */
constexpr double childDensityDecay = 0.45;

} // namespace

Synthesizer::Synthesizer(CodeLayout &layout, HostInstSink &sink,
                         std::uint64_t seed, double work_scale)
    : layout_(layout), sink_(sink), rng_(seed),
      workScale_(work_scale)
{
    stack_.reserve(96);
    batch_.reserve(defaultBatchOps);
}

Synthesizer::~Synthesizer()
{
    flush();
}

void
Synthesizer::setBatchOps(std::size_t n)
{
    flush();
    batchCap_ = n < 1 ? 1 : n;
    if (batchCap_ > 1)
        batch_.reserve(batchCap_);
}

void
Synthesizer::flush()
{
    if (batch_.empty())
        return;
    sink_.ops(batch_.data(), batch_.size());
    batch_.clear();
}

HostAddr
Synthesizer::stackSlot(std::uint32_t offset) const
{
    // Frames grow down from stackBase; deep call chains touch more
    // stack lines, shallow ones reuse the same hot lines.
    return stackBase - (HostAddr)(stack_.size() + 1) * frameBytes +
           offset % frameBytes;
}

std::uint64_t
Synthesizer::siteHash(const Frame &frame, HostAddr pc)
{
    std::uint64_t z = (pc - frame.entry) ^ frame.structSeed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
Synthesizer::countSelf(FuncId id, std::uint64_t n)
{
    if (selfOps_.size() <= id)
        selfOps_.resize(id + 1, 0);
    selfOps_[id] += n;
}

void
Synthesizer::pushFrame(FuncId id, unsigned depth)
{
    const FuncCode &code = layout_.code(id);
    const FuncInfo &info = FuncRegistry::instance().info(id);

    // The callee's prologue pushes saved registers.
    HostOp push;
    push.pc = code.addr;
    push.kind = HostOp::Kind::Store;
    push.dataAddr = stackSlot(0);
    push.dataSize = 8;
    emit(push);
    countSelf(id, 1);

    HostAddr cursor = code.addr;
    if (id < resumeCursor_.size() && resumeCursor_[id] != 0)
        cursor = resumeCursor_[id];
    stack_.push_back(Frame{id, cursor, code.addr,
                           code.addr + code.executedBytes,
                           code.structSeed,
                           &codegenParams(info.kind), depth});
}

void
Synthesizer::popFrame()
{
    Frame &frame = stack_.back();
    FuncId id = frame.id;
    if (resumeCursor_.size() <= id)
        resumeCursor_.resize(id + 1, 0);
    resumeCursor_[id] = frame.cursor;
    HostOp ret;
    ret.pc = frame.cursor;
    ret.lenBytes = 1;
    ret.kind = HostOp::Kind::Branch;
    ret.taken = true;
    ret.indirect = true;
    ret.isReturn = true;
    stack_.pop_back();
    ret.target = stack_.empty() ? 0 : stack_.back().cursor;
    emit(ret);
    countSelf(id, 1);
}

void
Synthesizer::emitChildCall(unsigned child_idx, bool is_virtual)
{
    Frame &caller = stack_.back();
    FuncId child = layout_.childFunc(caller.id, child_idx);
    const FuncCode &code = layout_.code(child);

    HostOp call;
    call.pc = caller.cursor;
    call.lenBytes = 5;
    call.uops = is_virtual ? 2 : 1;
    call.kind = HostOp::Kind::Branch;
    call.taken = true;
    call.isCall = true;
    call.indirect = is_virtual;
    call.target = code.addr;
    caller.cursor += call.lenBytes;
    if (caller.cursor >= caller.end)
        caller.cursor = caller.entry;
    emit(call);
    countSelf(caller.id, 1);

    unsigned depth = caller.depth + 1;
    pushFrame(child, depth);
    unsigned body = (unsigned)(code.executedBytes /
                               layout_.options().instBytes);
    emitBurst(body);
    popFrame();
}

void
Synthesizer::emitBodyInst()
{
    Frame &frame = stack_.back();
    const CodegenParams &params = *frame.params;
    std::uint64_t site = siteHash(frame, frame.cursor);

    HostOp op;
    op.pc = frame.cursor;
    op.lenBytes = (std::uint8_t)layout_.options().instBytes;
    op.uops = (site >> 7) % 16 < (std::uint64_t)(
                  (params.uopsPerInst - 1.0) * 16) ? 2 : 1;

    HostAddr next = frame.cursor + op.lenBytes;
    if (next >= frame.end) {
        // Loop back-edge: taken backward jump to the entry, so
        // repeated calls re-walk the same bytes (fetch reuse).
        op.kind = HostOp::Kind::Branch;
        op.conditional = true;
        op.taken = true;
        op.target = frame.entry;
        frame.cursor = frame.entry;
        emit(op);
        countSelf(frame.id, 1);
        return;
    }

    // Per-site instruction typing: what this *address* is, fixed for
    // the whole run, as in real machine code.
    double sel = (double)((site >> 16) % 10000) / 100.0; // [0,100)
    double branch_pct = 100.0 / params.instsPerBranch;
    double child_pct = params.childCallPer100;
    for (unsigned d = 0; d < frame.depth; ++d)
        child_pct *= childDensityDecay;
    if (frame.depth >= maxChildDepth)
        child_pct = 0.0;
    double stack_pct = params.stackRefsPerBurst * 100.0 / 8.0;

    if (sel < branch_pct) {
        op.kind = HostOp::Kind::Branch;
        op.conditional = true;
        // Per-site direction bias: most real branch sites are nearly
        // deterministic (error checks, loop guards); a few flip.
        std::uint64_t bias_sel = (site >> 33) % 1000;
        double taken_prob;
        if (bias_sel < 550)
            taken_prob = 0.002;          // never-taken checks
        else if (bias_sel < 870)
            taken_prob = 0.998;          // loop guards, common paths
        else if (bias_sel < 990)
            taken_prob = 0.96;           // mostly taken
        else
            taken_prob = 0.5;            // data-dependent
        bool taken = rng_.chance(taken_prob);
        // The taken target is a property of the site.
        HostAddr target = frame.cursor + op.lenBytes + 8 +
                          ((site >> 40) % 40);
        if (target >= frame.end)
            target = frame.entry;
        op.taken = taken;
        op.target = taken ? target : next;
        frame.cursor = op.target;
        emit(op);
        countSelf(frame.id, 1);
        return;
    }

    if (sel < branch_pct + child_pct) {
        // A call site. Direct sites bind one callee (fixed per
        // site, quadratically skewed so early children run hot and
        // late children stay cold — the Fig. 15 CDF shape). Virtual
        // sites dispatch over a small receiver set that rotates with
        // successive visits, exactly how gem5's per-object virtual
        // calls defeat the indirect predictor.
        double u = (double)((site >> 24) % 1024) / 1024.0;
        unsigned child = (unsigned)(params.subFuncs * u * u);
        bool is_virtual = (site >> 52) % 100 <
                          (std::uint64_t)(params.virtualChildFrac *
                                          100);
        if (is_virtual) {
            // Receivers arrive in batches (the same SimObject is
            // serviced repeatedly before the next takes over), so
            // this site's dispatched target changes every dozen of
            // *its own* calls, not every call.
            unsigned targets = 2 + (unsigned)((site >> 44) % 4);
            std::uint32_t visits = virtualVisits_[frame.cursor]++;
            child += (unsigned)((visits / 12) % targets);
        }
        if (child >= params.subFuncs)
            child %= params.subFuncs;
        frame.cursor = next; // call consumes this slot's address
        emitChildCall(child, is_virtual);
        return;
    }

    if (sel < branch_pct + child_pct + stack_pct) {
        // Spill/local traffic against the current stack frame.
        op.kind = (site >> 47) & 1 ? HostOp::Kind::Load
                                   : HostOp::Kind::Store;
        op.dataAddr = stackSlot((std::uint32_t)(site >> 13));
        op.dataSize = 8;
    }

    frame.cursor = next;
    emit(op);
    countSelf(frame.id, 1);
}

void
Synthesizer::emitBurst(unsigned insts)
{
    if (stack_.empty())
        return;
    if (workScale_ != 1.0) {
        double scaled = insts * workScale_;
        insts = (unsigned)scaled;
        if (rng_.chance(scaled - insts))
            ++insts;
    }
    for (unsigned i = 0; i < insts; ++i)
        emitBodyInst();
}

void
Synthesizer::funcEnter(FuncId id)
{
    if (!stack_.empty()) {
        // A few caller instructions (argument setup), then the call.
        emitBurst(2 + (unsigned)rng_.below(5));

        Frame &caller = stack_.back();
        const FuncInfo &info = FuncRegistry::instance().info(id);
        const FuncCode &code = layout_.code(id);
        const FuncCode &ccode = layout_.code(caller.id);

        // Each (caller, callee) pair has one canonical call site in
        // the caller's body, as compiled code does; without this,
        // every dynamic call would look like a brand-new indirect
        // branch to the host predictor.
        std::uint64_t pair = ccode.structSeed * 0x9e3779b97f4a7c15ULL
                             ^ code.structSeed;
        HostAddr call_pc = caller.entry +
            (pair % (ccode.executedBytes > 8
                         ? ccode.executedBytes - 8 : 8));
        HostAddr target = code.addr;
        bool event_dispatch =
            info.isVirtual &&
            FuncRegistry::instance().info(caller.id).kind ==
                FuncKind::EventLoop;
        if (event_dispatch) {
            // A virtual event entry is reached through the loop's ONE
            // `event->process()` site, not a per-callee site: every
            // event kind the queue services funnels through that pc.
            // The loop also dispatches kinds hostsim does not scope
            // (port responses, writebacks, wrapped lambdas), so the
            // target observed at the site rotates over a small
            // receiver set and re-trains the indirect entry between
            // consecutive scoped entries — the megamorphic-site cost
            // the paper pins on gem5's event loop, and exactly what
            // the kind-table dispatch (isVirtual false) removes. The
            // rotated targets are predictor-visible only; fetch
            // follows op pcs, so the instruction stream is unchanged.
            call_pc = caller.entry +
                (ccode.structSeed %
                 (ccode.executedBytes > 8 ? ccode.executedBytes - 8
                                          : 8));
            unsigned targets =
                3 + (unsigned)(ccode.structSeed % 3);
            std::uint32_t visits = virtualVisits_[call_pc]++;
            unsigned slot =
                (unsigned)((visits * 2654435761u) >> 8) % targets;
            target = code.addr + 64ull * slot;
        }

        HostOp call;
        call.pc = call_pc;
        call.lenBytes = 5; // call rel32 / call [vtable]
        call.uops = info.isVirtual ? 2 : 1;
        call.kind = HostOp::Kind::Branch;
        call.taken = true;
        call.isCall = true;
        call.indirect = info.isVirtual;
        call.target = target;
        caller.cursor = call_pc + call.lenBytes;
        if (caller.cursor >= caller.end)
            caller.cursor = caller.entry;
        emit(call);
        countSelf(caller.id, 1);
    }

    pushFrame(id, 0);
}

void
Synthesizer::funcExit(FuncId id)
{
    if (stack_.empty())
        return;
    g5p_assert(stack_.back().id == id,
               "unbalanced trace scopes (%s exits while %s is open)",
               FuncRegistry::instance().info(id).name.c_str(),
               FuncRegistry::instance()
                   .info(stack_.back().id).name.c_str());

    // Tail of the function body, then the return.
    emitBurst(2 + (unsigned)rng_.below(4));
    popFrame();
}

void
Synthesizer::dataRef(HostAddr addr, std::uint32_t size,
                     bool is_write)
{
    if (stack_.empty())
        return;
    // A couple of address-computation instructions, then the access.
    emitBurst(1 + (unsigned)rng_.below(3));

    Frame &frame = stack_.back();
    HostOp op;
    op.pc = frame.cursor;
    op.lenBytes = 4;
    op.kind = is_write ? HostOp::Kind::Store : HostOp::Kind::Load;
    op.dataAddr = addr;
    op.dataSize = (std::uint8_t)(size > 64 ? 64 : size);
    frame.cursor += op.lenBytes;
    if (frame.cursor >= frame.end)
        frame.cursor = frame.entry;
    emit(op);
    countSelf(frame.id, 1);
}

} // namespace g5p::trace
