/**
 * @file
 * Lowers mg5's dynamic function-call/data-touch stream into a host
 * instruction stream (HostOp), the input to the host-microarchitecture
 * model.
 *
 * The synthesizer maintains the call stack implied by the
 * funcEnter/funcExit nesting. Inside a scope, it advances a cursor
 * through the function's code region, emitting ALU ops, conditional
 * branches (short forward skips and loop back-edges), and stack-frame
 * spill references at the densities in CodegenParams. Scope entry
 * emits a call (an *indirect* call at virtual sites — the paper's
 * "abundance of virtual functions"), scope exit a return, and every
 * recorded simulator data access becomes a load/store at its real
 * host address.
 */

#ifndef G5P_TRACE_SYNTHESIZER_HH
#define G5P_TRACE_SYNTHESIZER_HH

#include <unordered_map>
#include <vector>

#include "base/random.hh"
#include "trace/code_layout.hh"
#include "trace/recorder.hh"

namespace g5p::trace
{

/** One synthesized host instruction. */
struct HostOp
{
    enum class Kind : std::uint8_t { Alu, Load, Store, Branch };

    HostAddr pc = 0;
    std::uint8_t lenBytes = 4;
    std::uint8_t uops = 1;
    Kind kind = Kind::Alu;

    /** @{ Branch fields (kind == Branch). */
    bool taken = false;
    bool conditional = false;
    bool indirect = false;
    bool isCall = false;
    bool isReturn = false;
    HostAddr target = 0;
    /** @} */

    /** @{ Memory fields (kind == Load/Store). */
    HostAddr dataAddr = 0;
    std::uint8_t dataSize = 0;
    /** @} */
};

/** Receiver of the synthesized stream (the host core model). */
class HostInstSink
{
  public:
    virtual ~HostInstSink() = default;

    /** Deliver one host instruction, in program order. */
    virtual void op(const HostOp &op) = 0;

    /**
     * Deliver a contiguous batch of host instructions, in program
     * order. The synthesizer buffers its stream and delivers through
     * this entry point (one virtual call per ~4096 instructions
     * instead of one per instruction). The default implementation is
     * a shim looping over op(), so existing single-op sinks keep
     * working unchanged and produce identical results.
     */
    virtual void
    ops(const HostOp *batch, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            op(batch[i]);
    }
};

/**
 * TraceConsumer that performs the lowering. Deterministic given the
 * seed and the input stream.
 */
class Synthesizer : public TraceConsumer
{
  public:
    /**
     * @param work_scale multiplier on body-instruction counts:
     *        "-O3" builds execute slightly fewer instructions per
     *        simulation event (tuning/optflag).
     */
    Synthesizer(CodeLayout &layout, HostInstSink &sink,
                std::uint64_t seed = 0x5f3759df,
                double work_scale = 1.0);

    /** Flushes any buffered tail to the sink. */
    ~Synthesizer() override;

    /** @{ TraceConsumer interface. */
    void funcEnter(FuncId id) override;
    void funcExit(FuncId id) override;
    void dataRef(HostAddr addr, std::uint32_t size,
                 bool is_write) override;
    /** @} */

    /** Default instructions buffered per ops() delivery. */
    static constexpr std::size_t defaultBatchOps = 4096;

    /**
     * Set the delivery granularity. @p n <= 1 selects the unbatched
     * path (one virtual op() call per instruction — the pre-batching
     * behavior, kept for the ablation); larger values buffer @p n
     * instructions per ops() call. Flushes any buffered tail first.
     */
    void setBatchOps(std::size_t n);

    /**
     * Deliver any buffered instructions to the sink now. Call before
     * reading sink-side state (counters) mid-run; the destructor
     * flushes the final tail automatically.
     */
    void flush();

    /** Total host instructions emitted. */
    std::uint64_t opsEmitted() const { return opsEmitted_; }

    /** Per-function self instruction counts (Fig. 15 profile). */
    const std::vector<std::uint64_t> &selfOps() const
    { return selfOps_; }

    /** Current call-stack depth. */
    std::size_t depth() const { return stack_.size(); }

    /** Host address region used for synthetic stack frames. */
    static constexpr HostAddr stackBase = 0x7ff0'0000ULL;
    static constexpr std::uint32_t frameBytes = 192;

  private:
    struct Frame
    {
        FuncId id;
        HostAddr cursor;     ///< next fetch address
        HostAddr entry;      ///< function entry
        HostAddr end;        ///< entry + executedBytes
        std::uint64_t structSeed; ///< code-structure seed
        const CodegenParams *params;
        unsigned depth;      ///< synthetic-callee nesting level
    };

    /** Emit @p insts instructions of the current frame's body. */
    void emitBurst(unsigned insts);

    /** Emit one instruction (possibly a synthetic callee call). */
    void emitBodyInst();

    /** Call a synthetic callee and emit its whole body inline. */
    void emitChildCall(unsigned child_idx, bool is_virtual);

    /** Push @p id as the active frame (call bookkeeping emitted). */
    void pushFrame(FuncId id, unsigned depth);

    /** Pop the active frame, emitting the return instruction. */
    void popFrame();

    /**
     * Deterministic hash of a code site, keyed by the function and
     * the offset within it — so what an instruction *is* survives
     * relinking; only where it *lives* changes.
     */
    static std::uint64_t siteHash(const Frame &frame, HostAddr pc);

    void countSelf(FuncId id, std::uint64_t n);

    HostAddr stackSlot(std::uint32_t offset) const;

    /**
     * Hand one instruction to the delivery path: buffered (batched
     * ops() calls) or straight through op() when batching is off.
     */
    void
    emit(const HostOp &op)
    {
        ++opsEmitted_;
        if (batchCap_ <= 1) {
            sink_.op(op);
            return;
        }
        batch_.push_back(op);
        if (batch_.size() >= batchCap_)
            flush();
    }

    CodeLayout &layout_;
    HostInstSink &sink_;
    Rng rng_;
    double workScale_;
    std::vector<Frame> stack_;

    /** @{ Delivery buffer (emit/flush). */
    std::vector<HostOp> batch_;
    std::size_t batchCap_ = defaultBatchOps;
    /** @} */

    /**
     * Per-function resume point: successive invocations continue
     * exploring the body where the last one stopped (different
     * dynamic calls take different paths through a function), so
     * short-lived scopes still eventually exercise all their call
     * sites and code bytes.
     */
    std::vector<HostAddr> resumeCursor_;
    std::uint64_t opsEmitted_ = 0;
    std::vector<std::uint64_t> selfOps_;

    /** Per-virtual-site visit counters (receiver batching). */
    std::unordered_map<HostAddr, std::uint32_t> virtualVisits_;
};

} // namespace g5p::trace

#endif // G5P_TRACE_SYNTHESIZER_HH
