#include "trace/func_registry.hh"

#include "base/logging.hh"

namespace g5p::trace
{

const char *
funcKindName(FuncKind kind)
{
    switch (kind) {
      case FuncKind::EventLoop:    return "EventLoop";
      case FuncKind::EventHandler: return "EventHandler";
      case FuncKind::CpuSimple:    return "CpuSimple";
      case FuncKind::CpuDetailed:  return "CpuDetailed";
      case FuncKind::InstExecute:  return "InstExecute";
      case FuncKind::Decode:       return "Decode";
      case FuncKind::MemAccess:    return "MemAccess";
      case FuncKind::MemAtomic:    return "MemAtomic";
      case FuncKind::TlbWalk:      return "TlbWalk";
      case FuncKind::Syscall:      return "Syscall";
      case FuncKind::KernelSim:    return "KernelSim";
      case FuncKind::Stats:        return "Stats";
      case FuncKind::Util:         return "Util";
      default:                     return "Unknown";
    }
}

FuncRegistry &
FuncRegistry::instance()
{
    static FuncRegistry reg;
    return reg;
}

FuncId
FuncRegistry::lookup(const std::string &name, FuncKind kind,
                     bool is_virtual)
{
    return lookupKeyed(name, kind, 0, is_virtual);
}

FuncId
FuncRegistry::lookupKeyed(const std::string &name, FuncKind kind,
                          std::uint32_t key, bool is_virtual)
{
    std::string full = key ? name + "#" + std::to_string(key) : name;
    auto it = byName_.find(full);
    if (it != byName_.end())
        return it->second;
    FuncId id = (FuncId)funcs_.size();
    funcs_.push_back(FuncInfo{std::move(full), kind, is_virtual, key});
    byName_.emplace(funcs_.back().name, id);
    return id;
}

const FuncInfo &
FuncRegistry::info(FuncId id) const
{
    g5p_assert(id < funcs_.size(), "bad FuncId %u", id);
    return funcs_[id];
}

void
FuncRegistry::resetForTest()
{
    funcs_.clear();
    byName_.clear();
    ++generation_;
}

} // namespace g5p::trace
