#include "trace/func_registry.hh"

#include "base/logging.hh"

namespace g5p::trace
{

const char *
funcKindName(FuncKind kind)
{
    switch (kind) {
      case FuncKind::EventLoop:    return "EventLoop";
      case FuncKind::EventHandler: return "EventHandler";
      case FuncKind::CpuSimple:    return "CpuSimple";
      case FuncKind::CpuDetailed:  return "CpuDetailed";
      case FuncKind::InstExecute:  return "InstExecute";
      case FuncKind::Decode:       return "Decode";
      case FuncKind::MemAccess:    return "MemAccess";
      case FuncKind::MemAtomic:    return "MemAtomic";
      case FuncKind::TlbWalk:      return "TlbWalk";
      case FuncKind::Syscall:      return "Syscall";
      case FuncKind::KernelSim:    return "KernelSim";
      case FuncKind::Stats:        return "Stats";
      case FuncKind::Util:         return "Util";
      default:                     return "Unknown";
    }
}

FuncRegistry &
FuncRegistry::instance()
{
    static FuncRegistry reg;
    return reg;
}

FuncId
FuncRegistry::lookup(const std::string &name, FuncKind kind,
                     bool is_virtual)
{
    return lookupKeyed(name, kind, 0, is_virtual);
}

FuncId
FuncRegistry::lookupKeyed(const std::string &name, FuncKind kind,
                          std::uint32_t key, bool is_virtual)
{
    std::string full = key ? name + "#" + std::to_string(key) : name;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byName_.find(full);
    if (it != byName_.end())
        return it->second;

    FuncId id = count_.load(std::memory_order_relaxed);
    g5p_assert(id < maxChunks * chunkEntries,
               "function registry full (%u entries)", id);
    std::size_t chunk = id >> chunkShift;
    FuncInfo *entries = chunks_[chunk].load(std::memory_order_relaxed);
    if (!entries) {
        entries = new FuncInfo[chunkEntries];
        chunks_[chunk].store(entries, std::memory_order_relaxed);
    }
    entries[id & (chunkEntries - 1)] =
        FuncInfo{std::move(full), kind, is_virtual, key};
    byName_.emplace(entries[id & (chunkEntries - 1)].name, id);
    // Publish: readers acquire on count_, which orders the chunk
    // pointer store and the entry construction above.
    count_.store(id + 1, std::memory_order_release);
    return id;
}

void
FuncRegistry::g5p_registry_check(FuncId id) const
{
    g5p_assert(id < count_.load(std::memory_order_acquire),
               "bad FuncId %u", id);
}

void
FuncRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint32_t count = count_.load(std::memory_order_relaxed);
    count_.store(0, std::memory_order_release);
    for (std::uint32_t id = 0; id < count; ++id)
        chunks_[id >> chunkShift]
            .load(std::memory_order_relaxed)[id & (chunkEntries - 1)] =
            FuncInfo{};
    byName_.clear();
    generation_.fetch_add(1, std::memory_order_acq_rel);
}

} // namespace g5p::trace
