/**
 * @file
 * Registry of "simulation functions" — the unit of the code-layout and
 * profiling models.
 *
 * Every function in mg5 that represents a distinct piece of simulator
 * code (an event handler, a cache access path, a decoder case, one
 * specialization of a virtual method, ...) registers itself here and is
 * assigned a FuncId. The registry is the ground truth that:
 *
 *  - the code-layout model uses to place each function at a synthetic
 *    host code address with a synthetic size (trace/code_layout.hh);
 *  - the run-time Recorder uses to capture the dynamic call stream
 *    (trace/recorder.hh);
 *  - the Fig-15 function profiler uses to count distinct functions and
 *    build the hot-function CDF (core/func_profile.hh).
 *
 * Distinct *dynamic specializations* matter: gem5 reaches thousands of
 * distinct functions at run time largely through templates and virtual
 * dispatch (e.g. one execute() body per static-instruction class).
 * `lookupKeyed()` models this: the same source-level call site yields a
 * different FuncId per runtime key (opcode, event type, ...), exactly
 * as the linker would emit distinct symbols per instantiation.
 */

#ifndef G5P_TRACE_FUNC_REGISTRY_HH
#define G5P_TRACE_FUNC_REGISTRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace g5p::trace
{

/** Index of a registered simulation function. */
using FuncId = std::uint32_t;

/** Sentinel for "no function". */
constexpr FuncId invalidFuncId = ~FuncId(0);

/**
 * Coarse classification of simulator code. The kind selects the
 * code-generation parameters (typical machine-code size, branch
 * density, virtual-call density) used when the function is lowered to
 * a synthetic host instruction stream. See trace/codegen_params.hh for
 * the per-kind constants and their provenance.
 */
enum class FuncKind : std::uint8_t
{
    EventLoop,      ///< main simulation loop / event queue service
    EventHandler,   ///< scheduled event process() bodies
    CpuSimple,      ///< Atomic/Timing CPU tick paths
    CpuDetailed,    ///< Minor/O3 pipeline stage bodies
    InstExecute,    ///< per-opcode execute() specializations
    Decode,         ///< guest instruction decode
    MemAccess,      ///< cache/xbar/DRAM timing access paths
    MemAtomic,      ///< the lean atomic-mode access fast path
    TlbWalk,        ///< guest TLB / page-table code
    Syscall,        ///< SE-mode syscall emulation
    KernelSim,      ///< FS-mode kernel/boot device models
    Stats,          ///< statistics bookkeeping
    Util,           ///< small helpers (packet ctors, arbitration)
    NumKinds
};

/** Human-readable name of a FuncKind. */
const char *funcKindName(FuncKind kind);

/** Static metadata for one registered function. */
struct FuncInfo
{
    std::string name;       ///< fully qualified symbol-ish name
    FuncKind kind;          ///< codegen class
    bool isVirtual;         ///< reached via virtual dispatch
    std::uint32_t key;      ///< specialization key (0 if none)
};

/**
 * Process-wide function registry, shared by every concurrent run.
 *
 * Registration is idempotent per (name, key): repeated lookups return
 * the same FuncId, so static call-site caches are safe. Entries are
 * append-only and immutable once published — a FuncId handed out to
 * any thread stays valid, and the FuncInfo behind it never changes —
 * which is what makes the hot read path (info(), called once per
 * synthesized call frame) lock-free: storage is chunked so published
 * entries never move, and an acquire load of the entry count is the
 * only synchronization a reader needs. New registrations (rare after
 * the first run warms the call-site caches) take a mutex.
 */
class FuncRegistry
{
  public:
    /** The singleton registry. */
    static FuncRegistry &instance();

    /**
     * Register (or find) a plain function.
     * @param name fully qualified name, e.g. "AtomicCpu::tick"
     * @param kind codegen class
     * @param is_virtual reached through virtual dispatch
     */
    FuncId lookup(const std::string &name, FuncKind kind,
                  bool is_virtual = false);

    /**
     * Register (or find) a keyed specialization, e.g. one execute()
     * body per opcode: lookupKeyed("StaticInst::execute", k, op).
     */
    FuncId lookupKeyed(const std::string &name, FuncKind kind,
                       std::uint32_t key, bool is_virtual = false);

    /** Metadata for @p id. Lock-free; safe from any thread. */
    const FuncInfo &
    info(FuncId id) const
    {
        g5p_registry_check(id);
        return chunks_[id >> chunkShift]
            .load(std::memory_order_relaxed)[id & (chunkEntries - 1)];
    }

    /** Number of registered functions (lock-free snapshot). */
    std::size_t
    size() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /**
     * Reset the registry (tests only; never while another thread is
     * running). Invalidates all FuncIds and call-site caches, so
     * never call it from library code.
     */
    void resetForTest();

    /** Generation counter bumped by resetForTest(). */
    std::uint64_t
    generation() const
    {
        return generation_.load(std::memory_order_acquire);
    }

    /** @{ Chunked storage geometry (entries never move). */
    static constexpr std::size_t chunkShift = 10;
    static constexpr std::size_t chunkEntries = 1u << chunkShift;
    static constexpr std::size_t maxChunks = 4096;
    /** @} */

  private:
    FuncRegistry() = default;

    /** Out-of-line assert so the header needn't pull in logging. */
    void g5p_registry_check(FuncId id) const;

    /**
     * Chunk pointers are published with the count's release store;
     * readers order on count_ (acquire) so the pointer load itself
     * can be relaxed.
     */
    std::array<std::atomic<FuncInfo *>, maxChunks> chunks_{};
    std::atomic<std::uint32_t> count_{0};
    std::atomic<std::uint64_t> generation_{1};

    /** Serializes registration and byName_ access. */
    mutable std::mutex mutex_;
    std::unordered_map<std::string, FuncId> byName_;
};

} // namespace g5p::trace

#endif // G5P_TRACE_FUNC_REGISTRY_HH
