#include "trace/code_layout.hh"

#include "base/logging.hh"

namespace g5p::trace
{

const CodegenParams &
codegenParams(FuncKind kind)
{
    // meanCodeBytes / executedFraction / instsPerBranch /
    // condTakenProb / stackRefsPerBurst / uopsPerInst
    //
    // Sizes follow the footprint hierarchy of gem5's subsystems: the
    // detailed CPU stage bodies and the cache access paths are the
    // big, branchy functions; stats and helpers are small. Virtual
    // dispatch density is carried per call site (FuncInfo::isVirtual).
    // size / executed / insts-per-branch / taken / stack / uops /
    // subFuncs / childCallsPer100 / virtualChildFrac
    static const CodegenParams table[] = {
        /* EventLoop    */ {448, 0.55, 5.0, 0.35, 1.0, 1.10,
                            72, 6.0, 0.30},
        /* EventHandler */ {544, 0.55, 5.0, 0.35, 1.5, 1.10,
                            96, 6.5, 0.40},
        /* CpuSimple    */ {576, 0.50, 5.5, 0.35, 2.0, 1.10,
                            28, 5.0, 0.40},
        /* CpuDetailed  */ {896, 0.48, 4.5, 0.38, 2.5, 1.12,
                            64, 5.0, 0.50},
        /* InstExecute  */ {288, 0.50, 5.5, 0.30, 1.5, 1.10,
                            6, 2.0, 0.35},
        /* Decode       */ {480, 0.45, 4.0, 0.40, 1.0, 1.08,
                            18, 3.5, 0.30},
        /* MemAccess    */ {704, 0.48, 4.5, 0.38, 2.0, 1.10,
                            72, 5.5, 0.45},
        /* MemAtomic    */ {448, 0.48, 4.5, 0.38, 2.0, 1.10,
                            12, 4.0, 0.40},
        /* TlbWalk      */ {416, 0.48, 5.0, 0.35, 1.5, 1.10,
                            16, 3.5, 0.35},
        /* Syscall      */ {640, 0.50, 5.0, 0.35, 2.0, 1.10,
                            36, 4.5, 0.35},
        /* KernelSim    */ {576, 0.50, 4.5, 0.38, 2.0, 1.10,
                            44, 4.5, 0.40},
        /* Stats        */ {208, 0.70, 6.0, 0.30, 1.0, 1.05,
                            14, 2.5, 0.20},
        /* Util         */ {160, 0.70, 6.5, 0.25, 0.5, 1.05,
                            8, 1.5, 0.20},
    };
    static_assert(sizeof(table) / sizeof(table[0]) ==
                  (std::size_t)FuncKind::NumKinds);
    auto idx = (std::size_t)kind;
    g5p_assert(idx < (std::size_t)FuncKind::NumKinds,
               "bad FuncKind %zu", idx);
    return table[idx];
}

CodeLayout::CodeLayout(const FuncRegistry &registry,
                       const LayoutOptions &options)
    : registry_(registry),
      options_(options),
      base_(options.codeBase),
      nextAddr_(options.codeBase)
{
}

void
CodeLayout::place(FuncId id)
{
    const FuncInfo &info = registry_.info(id);
    const CodegenParams &params = codegenParams(info.kind);

    // Deterministic per-function size jitter: the same function gets
    // the same size in every layout (keyed by name only, so build
    // flags change placement, not machine-code sizes).
    Rng rng(Rng::hashString(info.name.c_str()));
    double jitter = 0.5 + rng.uniform(); // [0.5, 1.5)
    double bytes = params.meanCodeBytes * jitter * options_.sizeScale;
    auto size = (std::uint32_t)bytes;
    if (size < 32)
        size = 32;
    // Functions are 16-byte aligned, as the compiler emits them.
    size = (size + 15u) & ~15u;

    auto executed =
        (std::uint32_t)(size * params.executedFraction);
    if (executed < 16)
        executed = 16;

    if (codes_.size() <= id)
        codes_.resize(id + 1);
    codes_[id] = FuncCode{nextAddr_, size, executed,
                          Rng::hashString(info.name.c_str())};
    auto padded = (std::uint64_t)(size * options_.paddingFactor);
    // Link-order gap: the seed (i.e. the build) decides how functions
    // pack, which is what reshuffles i-cache conflicts across builds.
    std::uint64_t gap =
        (Rng::hashString(info.name.c_str()) ^
         (options_.seed * 0x9e3779b97f4a7c15ULL)) % 192;
    nextAddr_ += ((padded + gap) + 15u) & ~15ull;
}

const FuncCode &
CodeLayout::code(FuncId id)
{
    if (id >= codes_.size() || codes_[id].sizeBytes == 0)
        place(id);
    return codes_[id];
}

FuncId
CodeLayout::childFunc(FuncId parent, unsigned idx)
{
    std::uint64_t key = ((std::uint64_t)parent << 16) | idx;
    auto cached = childIds_.find(key);
    if (cached != childIds_.end())
        return cached->second;

    auto &registry = FuncRegistry::instance();
    const FuncInfo &info = registry.info(parent);
    // "#<n>" keys collide with opcode-keyed specializations of the
    // same base name, so embed the child index in the name itself.
    FuncId id =
        registry.lookup(info.name + "::part" + std::to_string(idx),
                        info.kind, false);
    childIds_.emplace(key, id);
    return id;
}

} // namespace g5p::trace
