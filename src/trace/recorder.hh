/**
 * @file
 * Run-time capture of mg5's dynamic behaviour.
 *
 * The Recorder is the bridge between the guest-level simulator (mg5)
 * and the host-microarchitecture model. While a profiled simulation
 * runs, every instrumented simulator function reports entry/exit and
 * every simulator data-structure access reports a host data address.
 * Consumers (the host pipeline model, the Fig-15 function profiler)
 * subscribe to this stream.
 *
 * When no Recorder is active the instrumentation reduces to one
 * predictable branch per scope, so un-profiled simulations run at full
 * speed — the same property perf-style sampling has on real gem5.
 */

#ifndef G5P_TRACE_RECORDER_HH
#define G5P_TRACE_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "trace/func_registry.hh"

namespace g5p::trace
{

/**
 * Sink interface for the dynamic trace stream. Callbacks arrive in
 * program order: funcEnter/funcExit properly nested, dataRef inside
 * the scope that performed the access.
 */
class TraceConsumer
{
  public:
    virtual ~TraceConsumer() = default;

    /** A simulation function was entered. */
    virtual void funcEnter(FuncId id) = 0;

    /** The matching scope exited. */
    virtual void funcExit(FuncId id) = 0;

    /** The current scope touched simulator state at @p addr. */
    virtual void dataRef(HostAddr addr, std::uint32_t size,
                         bool is_write) = 0;
};

/**
 * Dispatches the instrumentation stream to registered consumers.
 * Exactly one Recorder may be active *per thread* (each mg5
 * simulation is single threaded, like gem5; the parallel harness
 * runs one whole simulation per worker thread, and activation is
 * thread-local so concurrent runs never observe each other's
 * streams).
 */
class Recorder
{
  public:
    Recorder() = default;
    ~Recorder();

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /** Add a consumer; not owned. */
    void addConsumer(TraceConsumer *consumer);

    /** Remove a consumer. */
    void removeConsumer(TraceConsumer *consumer);

    /** Make this recorder the active one (replaces any other). */
    void activate();

    /** Stop recording (no-op if this recorder is not active). */
    void deactivate();

    /** The calling thread's active recorder, or nullptr. */
    static Recorder *active() { return active_; }

    /** @{ Stream entry points used by the instrumentation macros. */
    void
    funcEnter(FuncId id)
    {
        for (auto *c : consumers_)
            c->funcEnter(id);
        ++enterCount_;
    }

    void
    funcExit(FuncId id)
    {
        for (auto *c : consumers_)
            c->funcExit(id);
    }

    void
    dataRef(HostAddr addr, std::uint32_t size, bool is_write)
    {
        for (auto *c : consumers_)
            c->dataRef(addr, size, is_write);
        ++dataCount_;
    }
    /** @} */

    /**
     * Record a heap allocation: mg5 (like gem5) allocates packets,
     * events, and dynamic instructions at high rate, and that churn
     * is a significant part of the simulator's d-side working set.
     * Allocations cycle through a bounded arena, as a real allocator
     * reusing freed chunks does.
     */
    void
    heapAlloc(std::uint32_t size)
    {
        dataRef(heapBase + heapCursor_, size > 64 ? 64 : size, true);
        heapCursor_ = (heapCursor_ + ((size + 63u) & ~63u)) %
                      heapSpan;
    }

    /** Total scopes entered while active (sanity statistics). */
    std::uint64_t enterCount() const { return enterCount_; }

    /** Total data references recorded. */
    std::uint64_t dataCount() const { return dataCount_; }

    /** Synthetic heap arena (between the data and stack segments). */
    static constexpr HostAddr heapBase = 0x6000'0000ULL;
    static constexpr std::uint64_t heapSpan = 1ull << 20;

  private:
    // constinit: guarantees constant initialization so every access
    // compiles to a direct TLS load instead of going through the
    // init-on-first-use wrapper (which is both slower on this hot
    // path and misdiagnosed as a null load by GCC 12's UBSan).
    static constinit thread_local Recorder *active_;

    std::vector<TraceConsumer *> consumers_;
    std::uint64_t enterCount_ = 0;
    std::uint64_t dataCount_ = 0;
    std::uint64_t heapCursor_ = 0;
};

class SiteCache;
class KeyedSiteCache;

/**
 * RAII guard emitting funcEnter/funcExit around an instrumented scope.
 *
 * The site-cache constructors test Recorder::active() *before*
 * resolving the FuncId, so a scope in an un-profiled simulation costs
 * one thread-local load and a predictable branch — no registry
 * generation check, no atomic id load. (The flat profile of an
 * Atomic run showed the registry singleton call, at ~9 scopes per
 * instruction, as a top-ten entry all by itself.)
 */
class ScopeGuard
{
  public:
    explicit ScopeGuard(FuncId id)
        : id_(id), rec_(Recorder::active())
    {
        if (rec_)
            rec_->funcEnter(id_);
    }

    inline ScopeGuard(SiteCache &cache, const char *name,
                      FuncKind kind, bool is_virtual);

    inline ScopeGuard(KeyedSiteCache &cache, const char *name,
                      FuncKind kind, bool is_virtual,
                      std::uint32_t key);

    ~ScopeGuard()
    {
        if (rec_)
            rec_->funcExit(id_);
    }

    ScopeGuard(const ScopeGuard &) = delete;
    ScopeGuard &operator=(const ScopeGuard &) = delete;

  private:
    FuncId id_ = invalidFuncId;
    Recorder *rec_;
};

/**
 * Per-call-site cache of a FuncRegistry lookup, generation-checked so
 * FuncRegistry::resetForTest() invalidates it.
 *
 * The cache is a process-wide static shared by every thread running
 * through the site, so it is built from atomics: concurrent first
 * uses race benignly (registration is idempotent, both threads store
 * the same id), and the release store of gen_ publishes id_ to
 * readers that acquire-load it. Constant-initialized, so the macro
 * expansion carries no static-init guard on the hot path.
 */
class SiteCache
{
  public:
    FuncId
    id(const char *name, FuncKind kind, bool is_virtual)
    {
        std::uint64_t gen = FuncRegistry::instance().generation();
        if (gen_.load(std::memory_order_acquire) != gen) {
            FuncId fresh =
                FuncRegistry::instance().lookup(name, kind,
                                                is_virtual);
            id_.store(fresh, std::memory_order_relaxed);
            gen_.store(gen, std::memory_order_release);
            return fresh;
        }
        return id_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<FuncId> id_{invalidFuncId};
    std::atomic<std::uint64_t> gen_{0};
};

/**
 * Per-call-site cache for keyed specializations (one FuncId per small
 * integer key, e.g. per opcode). Holds a growable vector, so the
 * macro declares it `static thread_local`: each thread keeps its own
 * copy and no locking is needed (ids are identical across threads —
 * registration is idempotent).
 */
class KeyedSiteCache
{
  public:
    FuncId
    id(const char *name, FuncKind kind, bool is_virtual,
       std::uint32_t key)
    {
        auto &reg = FuncRegistry::instance();
        if (gen_ != reg.generation()) {
            ids_.clear();
            gen_ = reg.generation();
        }
        if (key >= ids_.size())
            ids_.resize(key + 1, invalidFuncId);
        if (ids_[key] == invalidFuncId)
            ids_[key] = reg.lookupKeyed(name, kind, key + 1, is_virtual);
        return ids_[key];
    }

  private:
    std::vector<FuncId> ids_;
    std::uint64_t gen_ = 0;
};

inline ScopeGuard::ScopeGuard(SiteCache &cache, const char *name,
                              FuncKind kind, bool is_virtual)
    : rec_(Recorder::active())
{
    if (rec_) {
        id_ = cache.id(name, kind, is_virtual);
        rec_->funcEnter(id_);
    }
}

inline ScopeGuard::ScopeGuard(KeyedSiteCache &cache,
                              const char *name, FuncKind kind,
                              bool is_virtual, std::uint32_t key)
    : rec_(Recorder::active())
{
    if (rec_) {
        id_ = cache.id(name, kind, is_virtual, key);
        rec_->funcEnter(id_);
    }
}

/** Record a data reference from the current scope (if recording). */
inline void
recordData(HostAddr addr, std::uint32_t size, bool is_write)
{
    if (auto *rec = Recorder::active())
        rec->dataRef(addr, size, is_write);
}

/** Record a heap allocation (if recording). @see Recorder::heapAlloc */
inline void
recordHeapAlloc(std::uint32_t size)
{
    if (auto *rec = Recorder::active())
        rec->heapAlloc(size);
}

/**
 * Bump allocator assigning host data addresses to simulator state
 * (SimObject fields, the guest physical-memory backing array, ...).
 * The resulting address map is what the host d-side cache model sees.
 */
class DataSpace
{
  public:
    DataSpace() = default;
    ~DataSpace();

    /**
     * The calling thread's active data space. Each sim::Simulator
     * owns one and makes it current for its lifetime, so repeated
     * runs in one process assign identical (deterministic) addresses
     * and concurrent runs on different threads never share an
     * allocation cursor; a thread-local fallback serves code running
     * outside any simulator.
     */
    static DataSpace &instance();

    /** Make @p space current on this thread (nullptr restores the
     *  fallback). */
    static void setCurrent(DataSpace *space);

    /** Allocate @p size bytes, 64-byte aligned. */
    HostAddr alloc(std::size_t size);

    /** Bytes allocated so far. */
    std::uint64_t used() const { return next_ - base_; }

    /** Reset (tests only). */
    void resetForTest();

    /** Base of the synthetic data segment. */
    static constexpr HostAddr dataBase = 0x2000'0000ULL;

  private:
    static constinit thread_local DataSpace *current_;

    HostAddr base_ = dataBase;
    HostAddr next_ = dataBase;
};

} // namespace g5p::trace

/** Instrument a scope as one simulation function. */
#define G5P_TRACE_SCOPE(name, kind, is_virtual) \
    static ::g5p::trace::SiteCache g5p_site_cache_; \
    ::g5p::trace::ScopeGuard g5p_scope_guard_( \
        g5p_site_cache_, name, ::g5p::trace::FuncKind::kind, \
        is_virtual)

/** Instrument a scope specialised by a small runtime key. */
#define G5P_TRACE_SCOPE_KEYED(name, kind, is_virtual, key) \
    static thread_local ::g5p::trace::KeyedSiteCache \
        g5p_keyed_site_cache_; \
    ::g5p::trace::ScopeGuard g5p_scope_guard_( \
        g5p_keyed_site_cache_, name, ::g5p::trace::FuncKind::kind, \
        is_virtual, key)

#endif // G5P_TRACE_RECORDER_HH
