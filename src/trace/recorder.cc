#include "trace/recorder.hh"

#include <algorithm>

#include "base/logging.hh"

namespace g5p::trace
{

constinit thread_local Recorder *Recorder::active_ = nullptr;

Recorder::~Recorder()
{
    deactivate();
}

void
Recorder::addConsumer(TraceConsumer *consumer)
{
    g5p_assert(consumer, "null trace consumer");
    consumers_.push_back(consumer);
}

void
Recorder::removeConsumer(TraceConsumer *consumer)
{
    consumers_.erase(
        std::remove(consumers_.begin(), consumers_.end(), consumer),
        consumers_.end());
}

void
Recorder::activate()
{
    active_ = this;
}

void
Recorder::deactivate()
{
    if (active_ == this)
        active_ = nullptr;
}

constinit thread_local DataSpace *DataSpace::current_ = nullptr;

DataSpace &
DataSpace::instance()
{
    // Per-thread fallback: allocations made outside any simulator on
    // one thread must not perturb the address stream of a run on
    // another (the byte-identical-results contract).
    static thread_local DataSpace fallback;
    return current_ ? *current_ : fallback;
}

DataSpace::~DataSpace()
{
    if (current_ == this)
        current_ = nullptr;
}

void
DataSpace::setCurrent(DataSpace *space)
{
    current_ = space;
}

HostAddr
DataSpace::alloc(std::size_t size)
{
    HostAddr addr = next_;
    next_ += (size + 63) & ~std::size_t(63);
    return addr;
}

void
DataSpace::resetForTest()
{
    next_ = base_;
}

} // namespace g5p::trace
