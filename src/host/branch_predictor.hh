/**
 * @file
 * Host branch predictor: gshare direction table, BTB, return-address
 * stack, and a tagged indirect-target predictor. Classifies each
 * resolved branch into the paper's front-end latency categories:
 * mispredict resteers, unknown branches (taken branches the BTB could
 * not target at fetch), and correct predictions.
 */

#ifndef G5P_HOST_BRANCH_PREDICTOR_HH
#define G5P_HOST_BRANCH_PREDICTOR_HH

#include <vector>

#include "base/types.hh"
#include "trace/synthesizer.hh"

namespace g5p::host
{

/** Predictor geometry. */
struct HostBpredGeometry
{
    unsigned tableBits = 14;     ///< gshare 2-bit counters
    unsigned btbEntries = 4096;
    unsigned rasEntries = 16;
    unsigned indirectEntries = 512;
};

/** Classification of one resolved branch. */
struct BranchResolution
{
    bool mispredicted = false;   ///< direction or target wrong
    bool unknownBranch = false;  ///< taken, target unknown at fetch
};

class HostBranchPredictor
{
  public:
    explicit HostBranchPredictor(const HostBpredGeometry &geometry);

    /**
     * Predict + train on one branch op; classify the outcome.
     * Deliberately out-of-line: only ~a quarter of ops are branches,
     * and inlining this large body into the batched sink loop bloats
     * the loop past the host's own µop cache (measured slower).
     */
    BranchResolution resolve(const trace::HostOp &op);

    /** @{ Counters. */
    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t unknownBranches() const { return unknown_; }
    std::uint64_t condMispredicts() const { return mispCond_; }
    std::uint64_t indirectMispredicts() const { return mispInd_; }
    std::uint64_t returnMispredicts() const { return mispRet_; }
    double
    mispredictRate() const
    {
        return branches_ ? (double)mispredicts_ / (double)branches_
                         : 0.0;
    }
    /** @} */

    void reset();

  private:
    struct BtbEntry
    {
        HostAddr pc = 0;
        HostAddr target = 0;
        bool valid = false;
    };

    std::size_t gshareIndex(HostAddr pc) const;

    HostBpredGeometry geometry_;
    /** @{ Entry counts are asserted powers of two at construction so
     *  the per-branch table indexing is a mask, not a division. */
    std::size_t btbMask_;
    std::size_t indirectMask_;
    std::size_t rasMask_;
    /** @} */
    std::vector<std::uint8_t> counters_;
    std::vector<BtbEntry> btb_;
    std::vector<BtbEntry> indirect_;
    std::vector<HostAddr> ras_;
    std::size_t rasTop_ = 0;
    std::uint64_t history_ = 0;

    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t unknown_ = 0;
    std::uint64_t mispCond_ = 0;
    std::uint64_t mispInd_ = 0;
    std::uint64_t mispRet_ = 0;
};

inline std::size_t
HostBranchPredictor::gshareIndex(HostAddr pc) const
{
    // Hashed-PC (bimodal) indexing. Synthetic streams carry per-site
    // bias but no cross-branch correlation, so history bits would
    // only alias well-biased sites apart; a large per-site table is
    // the right stand-in for a modern TAGE-class predictor.
    return ((pc >> 1) ^ ((pc >> 15) << 5)) &
           ((1u << geometry_.tableBits) - 1);
}

} // namespace g5p::host

#endif // G5P_HOST_BRANCH_PREDICTOR_HH
