/**
 * @file
 * DSB (Decoded Stream Buffer / µop cache) model.
 *
 * Real DSBs cache decoded µops for 32-byte code windows; fetch windows
 * that hit skip the legacy decoders (MITE). The paper's Fig. 5/6 show
 * gem5's DSB coverage is very low — its instruction working set is far
 * larger than the DSB — which is reproduced here structurally: windows
 * compete for a small set-associative array. On machines without a
 * µop cache (Apple M1), construct with zero windows; every window then
 * reports a miss and decode-bandwidth modeling falls entirely to the
 * (wide) MITE path.
 */

#ifndef G5P_HOST_DSB_HH
#define G5P_HOST_DSB_HH

#include <vector>

#include "base/types.hh"

namespace g5p::host
{

/** DSB geometry (Cascade Lake-ish defaults). */
struct DsbGeometry
{
    unsigned windows = 512; ///< total 32B-window entries (0 = none)
    unsigned assoc = 8;

    /**
     * Fraction (percent) of code windows that can never live in the
     * DSB: real µop caches reject windows exceeding their per-window
     * µop/branch limits, which branchy simulator code hits often.
     */
    unsigned ineligiblePct = 25;
};

class DsbModel
{
  public:
    explicit DsbModel(const DsbGeometry &geometry);

    /** Window size covered by one entry. */
    static constexpr unsigned windowBytes = 32;

    /**
     * Look up the window containing @p pc. A miss fills the entry
     * (the window gets decoded by MITE and inserted). @return hit.
     */
    bool access(HostAddr pc);

    bool enabled() const { return geometry_.windows > 0; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void reset();

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lastUsed = 0;
    };

    DsbGeometry geometry_;
    unsigned numSets_ = 0;
    unsigned tagShift_ = 0;
    std::vector<Entry> entries_;
    std::uint64_t lruCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace g5p::host

#endif // G5P_HOST_DSB_HH
