/**
 * @file
 * DSB (Decoded Stream Buffer / µop cache) model.
 *
 * Real DSBs cache decoded µops for 32-byte code windows; fetch windows
 * that hit skip the legacy decoders (MITE). The paper's Fig. 5/6 show
 * gem5's DSB coverage is very low — its instruction working set is far
 * larger than the DSB — which is reproduced here structurally: windows
 * compete for a small set-associative array. On machines without a
 * µop cache (Apple M1), construct with zero windows; every window then
 * reports a miss and decode-bandwidth modeling falls entirely to the
 * (wide) MITE path.
 */

#ifndef G5P_HOST_DSB_HH
#define G5P_HOST_DSB_HH

#include <vector>

#include "base/types.hh"

namespace g5p::host
{

/** DSB geometry (Cascade Lake-ish defaults). */
struct DsbGeometry
{
    unsigned windows = 512; ///< total 32B-window entries (0 = none)
    unsigned assoc = 8;

    /**
     * Fraction (percent) of code windows that can never live in the
     * DSB: real µop caches reject windows exceeding their per-window
     * µop/branch limits, which branchy simulator code hits often.
     */
    unsigned ineligiblePct = 25;
};

class DsbModel
{
  public:
    explicit DsbModel(const DsbGeometry &geometry);

    /** Window size covered by one entry. */
    static constexpr unsigned windowBytes = 32;

    /**
     * Look up the window containing @p pc. A miss fills the entry
     * (the window gets decoded by MITE and inserted). @return hit.
     * Inline below so the batched sink loop can fuse it.
     */
    bool access(HostAddr pc);

    bool enabled() const { return geometry_.windows > 0; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void reset();

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lastUsed = 0;
    };

    DsbGeometry geometry_;
    unsigned numSets_ = 0;
    unsigned tagShift_ = 0;
    std::vector<Entry> entries_;
    std::uint64_t lruCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

inline bool
DsbModel::access(HostAddr pc)
{
    if (!enabled()) {
        ++misses_;
        return false;
    }

    std::uint64_t window = pc / windowBytes;

    // Per-window eligibility is a fixed property of the code.
    std::uint64_t h = window * 0x9e3779b97f4a7c15ULL;
    if ((h >> 33) % 100 < geometry_.ineligiblePct) {
        ++misses_;
        return false;
    }

    std::uint64_t set = window & (numSets_ - 1);
    std::uint64_t tag = window >> tagShift_;

    Entry *base = &entries_[set * geometry_.assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < geometry_.assoc; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.lastUsed = ++lruCounter_;
            ++hits_;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid &&
                   entry.lastUsed < victim->lastUsed) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUsed = ++lruCounter_;
    return false;
}

} // namespace g5p::host

#endif // G5P_HOST_DSB_HH
