#include "host/dsb.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

DsbModel::DsbModel(const DsbGeometry &geometry)
    : geometry_(geometry)
{
    if (!enabled())
        return;
    numSets_ = geometry.windows / geometry.assoc;
    g5p_assert(numSets_ > 0 && isPowerOf2(numSets_),
               "DSB sets must be a power of two");
    tagShift_ = floorLog2(numSets_);
    entries_.resize(geometry.windows);
}

bool
DsbModel::access(HostAddr pc)
{
    if (!enabled()) {
        ++misses_;
        return false;
    }

    std::uint64_t window = pc / windowBytes;

    // Per-window eligibility is a fixed property of the code.
    std::uint64_t h = window * 0x9e3779b97f4a7c15ULL;
    if ((h >> 33) % 100 < geometry_.ineligiblePct) {
        ++misses_;
        return false;
    }

    std::uint64_t set = window & (numSets_ - 1);
    std::uint64_t tag = window >> tagShift_;

    Entry *base = &entries_[set * geometry_.assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < geometry_.assoc; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.lastUsed = ++lruCounter_;
            ++hits_;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid &&
                   entry.lastUsed < victim->lastUsed) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUsed = ++lruCounter_;
    return false;
}

void
DsbModel::reset()
{
    for (auto &entry : entries_)
        entry.valid = false;
    hits_ = misses_ = 0;
    lruCounter_ = 0;
}

} // namespace g5p::host
