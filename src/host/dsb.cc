#include "host/dsb.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

DsbModel::DsbModel(const DsbGeometry &geometry)
    : geometry_(geometry)
{
    if (!enabled())
        return;
    numSets_ = geometry.windows / geometry.assoc;
    g5p_assert(numSets_ > 0 && isPowerOf2(numSets_),
               "DSB sets must be a power of two");
    tagShift_ = floorLog2(numSets_);
    entries_.resize(geometry.windows);
}

void
DsbModel::reset()
{
    for (auto &entry : entries_)
        entry.valid = false;
    hits_ = misses_ = 0;
    lruCounter_ = 0;
}

} // namespace g5p::host
