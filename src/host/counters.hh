/**
 * @file
 * Host performance counters and Top-Down slot accounting.
 *
 * The accounting follows Yasin's Top-Down method exactly: every
 * pipeline slot (dispatchWidth per cycle) is either retiring, wasted
 * by bad speculation, starved by the front-end (latency or
 * bandwidth), or stalled by the back-end. The model accumulates
 * *cycles* per stall category; slots are cycles × width, so the
 * categories sum to the total slots by construction (a property the
 * test suite checks).
 */

#ifndef G5P_HOST_COUNTERS_HH
#define G5P_HOST_COUNTERS_HH

#include <cstdint>

namespace g5p::host
{

/** Raw event counts and cycle accumulators for one profiled run. */
struct HostCounters
{
    /** @{ Instruction stream. */
    std::uint64_t insts = 0;
    std::uint64_t uops = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    /** @} */

    /** @{ Cycle accumulators (see file header). */
    double baseCycles = 0;        ///< uops / width (ideal issue)
    double feLatIcacheCycles = 0;
    double feLatItlbCycles = 0;
    double feLatMispredictCycles = 0; ///< mispredict resteers
    double feLatUnknownCycles = 0;    ///< unknown branches
    double feLatClearCycles = 0;      ///< clear resteers
    double feBwMiteCycles = 0;
    double feBwDsbCycles = 0;
    double badSpecCycles = 0;
    double beMemCycles = 0;
    double beCoreCycles = 0;
    /** @} */

    /** @{ Cache/TLB/BP events. */
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheAccesses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t itlbAccesses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t dtlbAccesses = 0;
    std::uint64_t dtlbMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t unknownBranches = 0;
    std::uint64_t uopsFromDsb = 0;
    std::uint64_t uopsFromMite = 0;
    /** @} */

    /** @{ Uncore. */
    std::uint64_t dramBytes = 0;
    std::uint64_t llcOccupancyBytes = 0; ///< peak resident footprint
    /** @} */

    /** @{ Derived totals. */
    double
    feLatCycles() const
    {
        return feLatIcacheCycles + feLatItlbCycles +
               feLatMispredictCycles + feLatUnknownCycles +
               feLatClearCycles;
    }

    double feBwCycles() const
    { return feBwMiteCycles + feBwDsbCycles; }

    double beCycles() const { return beMemCycles + beCoreCycles; }

    double
    totalCycles() const
    {
        return baseCycles + feLatCycles() + feBwCycles() +
               badSpecCycles + beCycles();
    }

    double
    ipc() const
    {
        double c = totalCycles();
        return c > 0 ? (double)insts / c : 0.0;
    }

    double
    dsbCoverage() const
    {
        std::uint64_t total = uopsFromDsb + uopsFromMite;
        return total ? (double)uopsFromDsb / (double)total : 0.0;
    }
    /** @} */

    /** Merge another run's counters (co-run aggregation). */
    void add(const HostCounters &other);
};

/** Top-Down level-1/level-2 fractions (of total slots). */
struct TopdownBreakdown
{
    double retiring = 0;
    double badSpeculation = 0;
    double frontendLatency = 0;
    double frontendBandwidth = 0;
    double backendBound = 0;

    /** @{ Front-end latency sub-events (fractions of total slots). */
    double feIcache = 0;
    double feItlb = 0;
    double feMispredictResteers = 0;
    double feUnknownBranches = 0;
    double feClearResteers = 0;
    /** @} */

    /** @{ Front-end bandwidth sub-events. */
    double feMite = 0;
    double feDsb = 0;
    /** @} */

    /** @{ Back-end split. */
    double beMemory = 0;
    double beCore = 0;
    /** @} */

    double frontendBound() const
    { return frontendLatency + frontendBandwidth; }

    /** Sums retiring+badSpec+FE+BE (should be ~1.0). */
    double
    total() const
    {
        return retiring + badSpeculation + frontendBound() +
               backendBound;
    }
};

/** Compute the breakdown for a machine of @p width slots/cycle. */
TopdownBreakdown computeTopdown(const HostCounters &counters,
                                unsigned width);

} // namespace g5p::host

#endif // G5P_HOST_COUNTERS_HH
