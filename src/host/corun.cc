#include "host/corun.hh"

#include <algorithm>

#include "base/addr_utils.hh"

namespace g5p::host
{

CorunScenario
singleProcess()
{
    return CorunScenario{1, false};
}

CorunScenario
perPhysicalCore(const HostPlatformConfig &config)
{
    return CorunScenario{config.physicalCores, false};
}

CorunScenario
perHardwareThread(const HostPlatformConfig &config)
{
    return CorunScenario{config.hwThreads,
                         config.hwThreads > config.physicalCores};
}

namespace
{

/** Halve/divide a cache's capacity via its associativity, keeping at
 *  least one way (way partitioning). */
HostCacheGeometry
partitionCache(const HostCacheGeometry &geometry, unsigned share)
{
    if (share <= 1 || geometry.sizeBytes == 0)
        return geometry;
    HostCacheGeometry out = geometry;
    unsigned ways = std::max(1u, geometry.assoc / share);
    out.assoc = ways;
    out.sizeBytes = geometry.sizeBytes / geometry.assoc * ways;
    return out;
}

} // namespace

HostPlatformConfig
applyCorun(const HostPlatformConfig &config,
           const CorunScenario &scenario)
{
    HostPlatformConfig out = config;
    if (scenario.processes <= 1)
        return out;

    out.name = config.name + " x" +
               std::to_string(scenario.processes) +
               (scenario.smt ? " (SMT)" : "");

    // Processes sharing each L2 / the LLC.
    unsigned threads_per_core = scenario.smt ? 2 : 1;
    unsigned cores_used = (scenario.processes + threads_per_core - 1)
                          / threads_per_core;
    cores_used = std::min(cores_used, config.physicalCores);

    unsigned sharing_l2 =
        std::max(1u, std::min(cores_used, config.coresPerL2) *
                     threads_per_core);
    unsigned sharing_llc =
        std::max(1u, std::min(cores_used, config.coresPerLlc) *
                     threads_per_core);

    out.l2 = partitionCache(config.l2, sharing_l2);
    out.llc = partitionCache(config.llc, sharing_llc);

    if (scenario.smt) {
        // Two threads split the core-private resources.
        out.icache = partitionCache(config.icache, 2);
        out.dcache = partitionCache(config.dcache, 2);
        out.itlb.entries = std::max(out.itlb.assoc,
                                    config.itlb.entries / 2);
        out.dtlb.entries = std::max(out.dtlb.assoc,
                                    config.dtlb.entries / 2);
        out.dsb.windows = config.dsb.windows / 2;
        // Fetch/decode bandwidth alternates between threads.
        out.miteUopsPerCycle = config.miteUopsPerCycle / 2.0;
        out.dsbUopsPerCycle = config.dsbUopsPerCycle / 2.0;
    }

    // Memory bandwidth per process (negligible for gem5, but modeled).
    out.memBwGBs = config.memBwGBs / scenario.processes;
    return out;
}

} // namespace g5p::host
