/**
 * @file
 * HostCore: the complete host-CPU model. Consumes the synthesized
 * instruction stream (it is a HostInstSink), integrates the front-end
 * and back-end models over a shared uncore, and produces the
 * HostCounters / Top-Down breakdown the paper's figures are built
 * from. One HostCore models one hardware context running one gem5
 * process, exactly the paper's measurement unit.
 */

#ifndef G5P_HOST_HOST_CORE_HH
#define G5P_HOST_HOST_CORE_HH

#include <array>
#include <memory>

#include "host/backend.hh"
#include "host/frontend.hh"

namespace g5p::host
{

class HostCore : public trace::HostInstSink
{
  public:
    /**
     * @param config the platform (possibly co-run adjusted)
     * @param policy page-size policy; the caller configures huge-page
     *        regions before the run
     */
    HostCore(const HostPlatformConfig &config,
             const PageSizePolicy &policy);
    ~HostCore() override;

    /** HostInstSink: account one instruction. */
    void op(const trace::HostOp &op) override;

    /**
     * HostInstSink: account a batch. Same per-op arithmetic in the
     * same order as op() — results are bit-identical — but one
     * virtual call amortized over the whole batch with the model
     * pointers hoisted out of the loop.
     */
    void ops(const trace::HostOp *batch, std::size_t count) override;

    /** Finalized counters (uncore fields folded in). */
    HostCounters counters() const;

    /** Top-Down breakdown at this platform's width. */
    TopdownBreakdown topdown() const;

    /** Cycles so far. */
    double cycles() const { return counters_.totalCycles(); }

    /** Wall-clock seconds at the platform frequency. */
    double
    seconds(bool turbo = false) const
    {
        return cycles() / config_.effectiveHz(turbo);
    }

    /** DRAM bandwidth in GB/s over the modeled run. */
    double
    dramBandwidthGBs(bool turbo = false) const
    {
        double s = seconds(turbo);
        return s > 0 ? (double)uncore_->dramBytes() / 1e9 / s : 0.0;
    }

    const HostPlatformConfig &config() const { return config_; }
    const FrontendModel &frontend() const { return *frontend_; }
    const BackendModel &backend() const { return *backend_; }
    const Uncore &uncore() const { return *uncore_; }

  private:
    HostPlatformConfig config_;
    std::unique_ptr<Uncore> uncore_;
    std::unique_ptr<FrontendModel> frontend_;
    std::unique_ptr<BackendModel> backend_;
    HostCounters counters_;

    /**
     * baseCycles charged per op, indexed by its µop count. Each entry
     * is exactly `(double)uops / (double)dispatchWidth` — the value
     * the per-op code used to divide out on every instruction — so
     * the accumulated cycles are bit-identical with one FP division
     * per core instead of one per op.
     */
    std::array<double, 256> uopCycles_;
};

} // namespace g5p::host

#endif // G5P_HOST_HOST_CORE_HH
