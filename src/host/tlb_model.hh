/**
 * @file
 * Host TLB model with mixed page sizes.
 *
 * A PageSizePolicy assigns each host virtual address a page size
 * (base pages by default; 16KB on Apple M1; 2MB where huge pages back
 * the mg5 binary — the paper's §V-A THP/EHP experiments). The TLB
 * indexes by (page number, size class), so huge pages increase reach
 * exactly as on real hardware.
 */

#ifndef G5P_HOST_TLB_MODEL_HH
#define G5P_HOST_TLB_MODEL_HH

#include <functional>
#include <vector>

#include "base/types.hh"

namespace g5p::host
{

/** Page-size classes the model distinguishes. */
enum class PageClass : std::uint8_t
{
    Base,   ///< platform base page (4KB Xeon / 16KB M1)
    Huge,   ///< 2MB huge page
};

/**
 * Maps addresses to page sizes. `hugeCoverage` backs that fraction of
 * the [start, end) region with huge pages, deterministically by page
 * number — modeling THP's partial, chunk-granular remapping.
 */
class PageSizePolicy
{
  public:
    /** @param base_page_bits log2 of the platform base page. */
    explicit PageSizePolicy(unsigned base_page_bits = 12)
        : basePageBits_(base_page_bits)
    {}

    /** Back [start,end) with huge pages at @p coverage in [0,1]. */
    void addHugeRegion(HostAddr start, HostAddr end, double coverage);

    /** Page bits for @p addr (base or hugePageBits for 2MB).
     *  Inline below: runs on every TLB lookup. */
    unsigned pageBits(HostAddr addr) const;

    unsigned basePageBits() const { return basePageBits_; }

    /** log2 of a 2MB huge page. */
    static constexpr unsigned hugePageBits = 21;

  private:
    struct Region
    {
        HostAddr start;
        HostAddr end;
        std::uint32_t coveragePct; ///< 0..100
    };

    unsigned basePageBits_;
    std::vector<Region> regions_;
};

/** TLB geometry. */
struct HostTlbGeometry
{
    unsigned entries = 128;
    unsigned assoc = 8;
};

class HostTlb
{
  public:
    HostTlb(const HostTlbGeometry &geometry,
            const PageSizePolicy *policy);

    /** Look up the page of @p addr; allocates on miss. @return hit.
     *  Inline below so the batched sink loop can fuse it. */
    bool access(HostAddr addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? (double)misses_ / (double)total : 0.0;
    }

    void reset();

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        bool valid = false;
        std::uint64_t lastUsed = 0;
    };

    HostTlbGeometry geometry_;
    const PageSizePolicy *policy_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    std::uint64_t lruCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

inline unsigned
PageSizePolicy::pageBits(HostAddr addr) const
{
    for (const Region &region : regions_) {
        if (addr < region.start || addr >= region.end)
            continue;
        if (region.coveragePct >= 100)
            return hugePageBits;
        // Which text got promoted is decided at iodlr-region
        // granularity (finer than 2MB: our modeled binaries are
        // orders of magnitude smaller than gem5's ~100MB text, so
        // per-2MB-chunk coverage would round to all-or-nothing).
        std::uint64_t chunk = addr >> 17; // 128KB decision regions
        std::uint64_t h = chunk * 0x9e3779b97f4a7c15ULL;
        if ((h >> 32) % 100 < region.coveragePct)
            return hugePageBits;
        return basePageBits_;
    }
    return basePageBits_;
}

inline bool
HostTlb::access(HostAddr addr)
{
    unsigned bits = policy_->pageBits(addr);
    // Key: page number tagged with its size class so a 2MB entry is
    // distinct from 4KB entries over the same range.
    std::uint64_t key = ((addr >> bits) << 6) | bits;
    std::uint64_t set = (key >> 6) & (numSets_ - 1);

    Entry *base = &entries_[set * geometry_.assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < geometry_.assoc; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.key == key) {
            entry.lastUsed = ++lruCounter_;
            ++hits_;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid &&
                   entry.lastUsed < victim->lastUsed) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->key = key;
    victim->lastUsed = ++lruCounter_;
    return false;
}

} // namespace g5p::host

#endif // G5P_HOST_TLB_MODEL_HH
