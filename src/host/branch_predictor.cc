#include "host/branch_predictor.hh"

namespace g5p::host
{

using trace::HostOp;

HostBranchPredictor::HostBranchPredictor(
    const HostBpredGeometry &geometry)
    : geometry_(geometry),
      counters_(1u << geometry.tableBits, 1),
      btb_(geometry.btbEntries),
      indirect_(geometry.indirectEntries),
      ras_(geometry.rasEntries, 0)
{
}

std::size_t
HostBranchPredictor::gshareIndex(HostAddr pc) const
{
    // Hashed-PC (bimodal) indexing. Synthetic streams carry per-site
    // bias but no cross-branch correlation, so history bits would
    // only alias well-biased sites apart; a large per-site table is
    // the right stand-in for a modern TAGE-class predictor.
    return ((pc >> 1) ^ ((pc >> 15) << 5)) &
           ((1u << geometry_.tableBits) - 1);
}

BranchResolution
HostBranchPredictor::resolve(const HostOp &op)
{
    ++branches_;
    BranchResolution res;

    // The RAS is circular: overflow overwrites the oldest entry, as
    // real return stacks do, so deep call chains degrade gracefully
    // instead of desynchronizing push/pop.
    auto ras_push = [this](HostAddr addr) {
        ras_[rasTop_ % geometry_.rasEntries] = addr;
        ++rasTop_;
    };
    auto ras_pop = [this]() -> HostAddr {
        if (rasTop_ == 0)
            return 0;
        --rasTop_;
        return ras_[rasTop_ % geometry_.rasEntries];
    };

    if (op.isReturn) {
        if (ras_pop() != op.target) {
            res.mispredicted = true;
            ++mispredicts_;
            ++mispRet_;
        }
        return res;
    }

    if (op.indirect) {
        // Per-PC tagged indirect-target table. Virtual call sites
        // that dispatch to several receivers thrash their entry —
        // the paper's "abundance of virtual functions" cost.
        std::size_t idx = (op.pc >> 1) % geometry_.indirectEntries;
        BtbEntry &entry = indirect_[idx];
        bool correct = entry.valid && entry.pc == op.pc &&
                       entry.target == op.target;
        if (!correct) {
            res.mispredicted = true;
            ++mispredicts_;
            ++mispInd_;
        }
        entry.valid = true;
        entry.pc = op.pc;
        entry.target = op.target;
        if (op.isCall)
            ras_push(op.pc + op.lenBytes);
        return res;
    }

    if (op.isCall) {
        // Direct call: always taken; needs a BTB target at fetch.
        std::size_t idx = (op.pc >> 1) % geometry_.btbEntries;
        BtbEntry &entry = btb_[idx];
        if (!(entry.valid && entry.pc == op.pc)) {
            res.unknownBranch = true;
            ++unknown_;
        }
        entry.valid = true;
        entry.pc = op.pc;
        entry.target = op.target;
        ras_push(op.pc + op.lenBytes);
        return res;
    }

    // Conditional branch: gshare direction, BTB target when taken.
    std::uint8_t &ctr = counters_[gshareIndex(op.pc)];
    bool pred_taken = ctr >= 2;
    if (pred_taken != op.taken) {
        res.mispredicted = true;
        ++mispredicts_;
        ++mispCond_;
    } else if (op.taken) {
        std::size_t idx = (op.pc >> 1) % geometry_.btbEntries;
        BtbEntry &entry = btb_[idx];
        if (!(entry.valid && entry.pc == op.pc &&
              entry.target == op.target)) {
            res.unknownBranch = true;
            ++unknown_;
        }
    }

    // Train.
    if (op.taken && ctr < 3)
        ++ctr;
    else if (!op.taken && ctr > 0)
        --ctr;
    if (op.taken) {
        std::size_t idx = (op.pc >> 1) % geometry_.btbEntries;
        btb_[idx] = BtbEntry{op.pc, op.target, true};
    }
    history_ = ((history_ << 1) | (op.taken ? 1 : 0)) & 0xffffff;

    return res;
}

void
HostBranchPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
    for (auto &entry : btb_)
        entry.valid = false;
    for (auto &entry : indirect_)
        entry.valid = false;
    rasTop_ = 0;
    history_ = 0;
    branches_ = mispredicts_ = unknown_ = 0;
}

} // namespace g5p::host
