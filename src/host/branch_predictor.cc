#include "host/branch_predictor.hh"

#include <algorithm>

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

HostBranchPredictor::HostBranchPredictor(
    const HostBpredGeometry &geometry)
    : geometry_(geometry),
      btbMask_(geometry.btbEntries - 1),
      indirectMask_(geometry.indirectEntries - 1),
      rasMask_(geometry.rasEntries - 1),
      counters_(1u << geometry.tableBits, 1),
      btb_(geometry.btbEntries),
      indirect_(geometry.indirectEntries),
      ras_(geometry.rasEntries, 0)
{
    g5p_assert(isPowerOf2(geometry.btbEntries) &&
                   isPowerOf2(geometry.indirectEntries) &&
                   isPowerOf2(geometry.rasEntries),
               "predictor table sizes must be powers of two "
               "(btb %u, indirect %u, ras %u)",
               geometry.btbEntries, geometry.indirectEntries,
               geometry.rasEntries);
}

BranchResolution
HostBranchPredictor::resolve(const trace::HostOp &op)
{
    ++branches_;
    BranchResolution res;

    // The RAS is circular: overflow overwrites the oldest entry, as
    // real return stacks do, so deep call chains degrade gracefully
    // instead of desynchronizing push/pop.
    auto ras_push = [this](HostAddr addr) {
        ras_[rasTop_ & rasMask_] = addr;
        ++rasTop_;
    };
    auto ras_pop = [this]() -> HostAddr {
        if (rasTop_ == 0)
            return 0;
        --rasTop_;
        return ras_[rasTop_ & rasMask_];
    };

    if (op.isReturn) {
        if (ras_pop() != op.target) {
            res.mispredicted = true;
            ++mispredicts_;
            ++mispRet_;
        }
        return res;
    }

    if (op.indirect) {
        // Per-PC tagged indirect-target table. Virtual call sites
        // that dispatch to several receivers thrash their entry —
        // the paper's "abundance of virtual functions" cost.
        std::size_t idx = (op.pc >> 1) & indirectMask_;
        BtbEntry &entry = indirect_[idx];
        bool correct = entry.valid && entry.pc == op.pc &&
                       entry.target == op.target;
        if (!correct) {
            res.mispredicted = true;
            ++mispredicts_;
            ++mispInd_;
        }
        entry.valid = true;
        entry.pc = op.pc;
        entry.target = op.target;
        if (op.isCall)
            ras_push(op.pc + op.lenBytes);
        return res;
    }

    if (op.isCall) {
        // Direct call: always taken; needs a BTB target at fetch.
        std::size_t idx = (op.pc >> 1) & btbMask_;
        BtbEntry &entry = btb_[idx];
        if (!(entry.valid && entry.pc == op.pc)) {
            res.unknownBranch = true;
            ++unknown_;
        }
        entry.valid = true;
        entry.pc = op.pc;
        entry.target = op.target;
        ras_push(op.pc + op.lenBytes);
        return res;
    }

    // Conditional branch: gshare direction, BTB target when taken.
    std::uint8_t &ctr = counters_[gshareIndex(op.pc)];
    bool pred_taken = ctr >= 2;
    if (pred_taken != op.taken) {
        res.mispredicted = true;
        ++mispredicts_;
        ++mispCond_;
    } else if (op.taken) {
        std::size_t idx = (op.pc >> 1) & btbMask_;
        BtbEntry &entry = btb_[idx];
        if (!(entry.valid && entry.pc == op.pc &&
              entry.target == op.target)) {
            res.unknownBranch = true;
            ++unknown_;
        }
    }

    // Train.
    if (op.taken && ctr < 3)
        ++ctr;
    else if (!op.taken && ctr > 0)
        --ctr;
    if (op.taken) {
        std::size_t idx = (op.pc >> 1) & btbMask_;
        btb_[idx] = BtbEntry{op.pc, op.target, true};
    }
    history_ = ((history_ << 1) | (op.taken ? 1 : 0)) & 0xffffff;

    return res;
}

void
HostBranchPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
    for (auto &entry : btb_)
        entry.valid = false;
    for (auto &entry : indirect_)
        entry.valid = false;
    rasTop_ = 0;
    history_ = 0;
    branches_ = mispredicts_ = unknown_ = 0;
}

} // namespace g5p::host
