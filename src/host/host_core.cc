#include "host/host_core.hh"

namespace g5p::host
{

HostCore::HostCore(const HostPlatformConfig &config,
                   const PageSizePolicy &policy)
    : config_(config),
      uncore_(std::make_unique<Uncore>(config_)),
      frontend_(std::make_unique<FrontendModel>(config_, policy,
                                                *uncore_)),
      backend_(std::make_unique<BackendModel>(config_, policy,
                                              *uncore_))
{
    for (std::size_t u = 0; u < uopCycles_.size(); ++u)
        uopCycles_[u] = (double)u / (double)config_.dispatchWidth;
}

HostCore::~HostCore() = default;

void
HostCore::op(const trace::HostOp &op)
{
    ++counters_.insts;
    counters_.uops += op.uops;
    counters_.baseCycles += uopCycles_[op.uops];

    frontend_->onOp(op, counters_);
    backend_->onOp(op, counters_);
}

void
HostCore::ops(const trace::HostOp *batch, std::size_t count)
{
    // The batched win: onOpInline is visible here, so the whole model
    // chain (front-end, back-end, caches, TLBs, DSB, predictor,
    // uncore) fuses into this one loop — no per-op calls at all,
    // versus op()'s virtual dispatch plus two cross-TU calls per
    // instruction. Same statements in the same order, so the counters
    // come out bit-identical to the per-op path.
    HostCounters &counters = counters_;
    FrontendModel &frontend = *frontend_;
    BackendModel &backend = *backend_;
    const double *uop_cycles = uopCycles_.data();
    for (std::size_t i = 0; i < count; ++i) {
        const trace::HostOp &op = batch[i];
        ++counters.insts;
        counters.uops += op.uops;
        counters.baseCycles += uop_cycles[op.uops];
        frontend.onOpInline(op, counters);
        backend.onOpInline(op, counters);
    }
}

HostCounters
HostCore::counters() const
{
    HostCounters out = counters_;
    out.l2Misses = uncore_->l2Misses();
    out.llcMisses = uncore_->llcMisses();
    out.dramBytes = uncore_->dramBytes();
    out.llcOccupancyBytes = uncore_->llcOccupancyPeakBytes();
    return out;
}

TopdownBreakdown
HostCore::topdown() const
{
    return computeTopdown(counters(), config_.dispatchWidth);
}

void
HostCounters::add(const HostCounters &other)
{
    insts += other.insts;
    uops += other.uops;
    loads += other.loads;
    stores += other.stores;
    branches += other.branches;
    baseCycles += other.baseCycles;
    feLatIcacheCycles += other.feLatIcacheCycles;
    feLatItlbCycles += other.feLatItlbCycles;
    feLatMispredictCycles += other.feLatMispredictCycles;
    feLatUnknownCycles += other.feLatUnknownCycles;
    feLatClearCycles += other.feLatClearCycles;
    feBwMiteCycles += other.feBwMiteCycles;
    feBwDsbCycles += other.feBwDsbCycles;
    badSpecCycles += other.badSpecCycles;
    beMemCycles += other.beMemCycles;
    beCoreCycles += other.beCoreCycles;
    icacheAccesses += other.icacheAccesses;
    icacheMisses += other.icacheMisses;
    dcacheAccesses += other.dcacheAccesses;
    dcacheMisses += other.dcacheMisses;
    itlbAccesses += other.itlbAccesses;
    itlbMisses += other.itlbMisses;
    dtlbAccesses += other.dtlbAccesses;
    dtlbMisses += other.dtlbMisses;
    l2Misses += other.l2Misses;
    llcMisses += other.llcMisses;
    mispredicts += other.mispredicts;
    unknownBranches += other.unknownBranches;
    uopsFromDsb += other.uopsFromDsb;
    uopsFromMite += other.uopsFromMite;
    dramBytes += other.dramBytes;
    if (other.llcOccupancyBytes > llcOccupancyBytes)
        llcOccupancyBytes = other.llcOccupancyBytes;
}

TopdownBreakdown
computeTopdown(const HostCounters &counters, unsigned width)
{
    TopdownBreakdown td;
    double cycles = counters.totalCycles();
    if (cycles <= 0)
        return td;
    double slots = cycles * (double)width;

    td.retiring = (double)counters.uops / slots;
    td.badSpeculation = counters.badSpecCycles * width / slots;

    td.feIcache = counters.feLatIcacheCycles * width / slots;
    td.feItlb = counters.feLatItlbCycles * width / slots;
    td.feMispredictResteers =
        counters.feLatMispredictCycles * width / slots;
    td.feUnknownBranches = counters.feLatUnknownCycles * width / slots;
    td.feClearResteers = counters.feLatClearCycles * width / slots;
    td.frontendLatency = td.feIcache + td.feItlb +
                         td.feMispredictResteers +
                         td.feUnknownBranches + td.feClearResteers;

    td.feMite = counters.feBwMiteCycles * width / slots;
    td.feDsb = counters.feBwDsbCycles * width / slots;
    td.frontendBandwidth = td.feMite + td.feDsb;

    td.beMemory = counters.beMemCycles * width / slots;
    td.beCore = counters.beCoreCycles * width / slots;
    td.backendBound = td.beMemory + td.beCore;
    return td;
}

} // namespace g5p::host
