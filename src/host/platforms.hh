/**
 * @file
 * Host platform configurations: the paper's Table II machines
 * (Intel_Xeon, M1_Pro, M1_Ultra), the Table I FireSim SoC, and the
 * parameterized FireSim variants swept in Fig. 14.
 */

#ifndef G5P_HOST_PLATFORMS_HH
#define G5P_HOST_PLATFORMS_HH

#include <string>

#include "host/branch_predictor.hh"
#include "host/cache_model.hh"
#include "host/dsb.hh"
#include "host/tlb_model.hh"

namespace g5p::host
{

/** Complete description of one host machine (for one running core). */
struct HostPlatformConfig
{
    std::string name = "host";

    /** @{ Clock and width. */
    double freqGHz = 3.1;
    double turboGHz = 0.0;     ///< 0 = no turbo
    unsigned dispatchWidth = 4;///< pipeline slots per cycle
    /** @} */

    /** @{ Memory-system geometry. */
    unsigned lineBytes = 64;
    unsigned pageBits = 12;    ///< base page (12 = 4KB, 14 = 16KB)
    HostCacheGeometry icache{32 * 1024, 8, 64};
    HostCacheGeometry dcache{32 * 1024, 8, 64};
    HostCacheGeometry l2{1024 * 1024, 16, 64};
    HostCacheGeometry llc{36 * 1024 * 1024, 11, 64};
    bool hasLlc = true;        ///< FireSim SoC has no L3
    /** @} */

    /** @{ TLBs. */
    HostTlbGeometry itlb{128, 8};
    HostTlbGeometry dtlb{64, 4};
    double itlbWalkCycles = 28;
    double dtlbWalkCycles = 28;
    /** @} */

    /** @{ Branch machinery. */
    HostBpredGeometry bpred;
    double mispredictPenalty = 14; ///< recovery (bad-spec) cycles
    double resteerCycles = 6;      ///< front-end refill bubble
    double unknownBranchCycles = 2;///< BTB-miss fetch bubble
    /** @} */

    /** @{ Decode paths. */
    DsbGeometry dsb{512, 8};       ///< windows=0 on M1 (no µop cache)
    double dsbUopsPerCycle = 6.0;
    double miteUopsPerCycle = 2.6; ///< effective legacy-decode supply
    /** @} */

    /** @{ Hierarchy latencies (cycles) and exposure factors. */
    double l2LatencyCycles = 14;
    double llcLatencyCycles = 44;
    double memLatencyNs = 96;
    double icacheMissExposed = 0.36; ///< fetch-ahead hides the rest
    double l2Exposed = 0.40;   ///< fraction of load latency stalling
    double llcExposed = 0.55;
    double memExposed = 0.70;
    double storeExposed = 0.06;
    double beCorePerUop = 0.020; ///< dependency/FU stalls per µop
    /** @} */

    /** @{ Chip topology (for co-run modeling). */
    unsigned physicalCores = 20;
    unsigned hwThreads = 40;
    unsigned coresPerL2 = 1;   ///< cores sharing one L2
    unsigned coresPerLlc = 20; ///< cores sharing the LLC
    bool smtCapable = true;
    double memBwGBs = 141.0;
    /** @} */

    /** Effective frequency in Hz (turbo if enabled). */
    double
    effectiveHz(bool turbo = false) const
    {
        double ghz = (turbo && turboGHz > 0) ? turboGHz : freqGHz;
        return ghz * 1e9;
    }

    /** Memory latency in cycles at the effective frequency. */
    double
    memLatencyCycles(bool turbo = false) const
    {
        return memLatencyNs * effectiveHz(turbo) / 1e9;
    }
};

/** Dell Precision 7920, Xeon Gold 6242R (Cascade Lake) — Table II. */
HostPlatformConfig xeonConfig();

/** Apple MacBook Pro, M1 Pro (Firestorm P-core) — Table II. */
HostPlatformConfig m1ProConfig();

/** Apple Mac Studio, M1 Ultra (Firestorm P-core) — Table II. */
HostPlatformConfig m1UltraConfig();

/**
 * FireSim-hosted SoC per Table I: 4GHz 8-wide OoO, 48KB L1I + 32KB
 * L1D, 512KB L2, DDR3, no L3, RISC-V (no µop cache).
 */
HostPlatformConfig firesimConfig();

/**
 * FireSim variant with explicit L1/L2 geometry, as swept in Fig. 14
 * ("i$KB/way : d$KB/way : L2KB/way"). The L1s keep 64 sets (VIPT
 * constraint) so capacity scales via associativity, as in the paper.
 */
HostPlatformConfig firesimCacheConfig(unsigned l1i_kb,
                                      unsigned l1i_assoc,
                                      unsigned l1d_kb,
                                      unsigned l1d_assoc,
                                      unsigned l2_kb,
                                      unsigned l2_assoc);

/** The three Table II platforms, in the paper's order. */
std::vector<HostPlatformConfig> tableIIPlatforms();

} // namespace g5p::host

#endif // G5P_HOST_PLATFORMS_HH
