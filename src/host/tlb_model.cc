#include "host/tlb_model.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

void
PageSizePolicy::addHugeRegion(HostAddr start, HostAddr end,
                              double coverage)
{
    if (coverage < 0)
        coverage = 0;
    if (coverage > 1)
        coverage = 1;
    regions_.push_back(
        Region{start, end, (std::uint32_t)(coverage * 100.0 + 0.5)});
}

HostTlb::HostTlb(const HostTlbGeometry &geometry,
                 const PageSizePolicy *policy)
    : geometry_(geometry),
      policy_(policy),
      numSets_(geometry.entries / geometry.assoc)
{
    g5p_assert(policy_, "HostTlb needs a page-size policy");
    g5p_assert(numSets_ > 0 && isPowerOf2(numSets_),
               "TLB sets must be a power of two (%u entries / %u "
               "ways)", geometry.entries, geometry.assoc);
    entries_.resize(geometry.entries);
}

void
HostTlb::reset()
{
    for (auto &entry : entries_)
        entry.valid = false;
    hits_ = misses_ = 0;
    lruCounter_ = 0;
}

} // namespace g5p::host
