#include "host/tlb_model.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

namespace
{
constexpr unsigned hugePageBits = 21; // 2MB
} // namespace

void
PageSizePolicy::addHugeRegion(HostAddr start, HostAddr end,
                              double coverage)
{
    if (coverage < 0)
        coverage = 0;
    if (coverage > 1)
        coverage = 1;
    regions_.push_back(
        Region{start, end, (std::uint32_t)(coverage * 100.0 + 0.5)});
}

unsigned
PageSizePolicy::pageBits(HostAddr addr) const
{
    for (const Region &region : regions_) {
        if (addr < region.start || addr >= region.end)
            continue;
        if (region.coveragePct >= 100)
            return hugePageBits;
        // Which text got promoted is decided at iodlr-region
        // granularity (finer than 2MB: our modeled binaries are
        // orders of magnitude smaller than gem5's ~100MB text, so
        // per-2MB-chunk coverage would round to all-or-nothing).
        std::uint64_t chunk = addr >> 17; // 128KB decision regions
        std::uint64_t h = chunk * 0x9e3779b97f4a7c15ULL;
        if ((h >> 32) % 100 < region.coveragePct)
            return hugePageBits;
        return basePageBits_;
    }
    return basePageBits_;
}

HostTlb::HostTlb(const HostTlbGeometry &geometry,
                 const PageSizePolicy *policy)
    : geometry_(geometry),
      policy_(policy),
      numSets_(geometry.entries / geometry.assoc)
{
    g5p_assert(policy_, "HostTlb needs a page-size policy");
    g5p_assert(numSets_ > 0 && isPowerOf2(numSets_),
               "TLB sets must be a power of two (%u entries / %u "
               "ways)", geometry.entries, geometry.assoc);
    entries_.resize(geometry.entries);
}

bool
HostTlb::access(HostAddr addr)
{
    unsigned bits = policy_->pageBits(addr);
    // Key: page number tagged with its size class so a 2MB entry is
    // distinct from 4KB entries over the same range.
    std::uint64_t key = ((addr >> bits) << 6) | bits;
    std::uint64_t set = (key >> 6) & (numSets_ - 1);

    Entry *base = &entries_[set * geometry_.assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < geometry_.assoc; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.key == key) {
            entry.lastUsed = ++lruCounter_;
            ++hits_;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid &&
                   entry.lastUsed < victim->lastUsed) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->key = key;
    victim->lastUsed = ++lruCounter_;
    return false;
}

void
HostTlb::reset()
{
    for (auto &entry : entries_)
        entry.valid = false;
    hits_ = misses_ = 0;
    lruCounter_ = 0;
}

} // namespace g5p::host
