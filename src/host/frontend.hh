/**
 * @file
 * Host front-end model: instruction fetch (iCache/iTLB), decode
 * sourcing (DSB vs MITE), and branch-resteer accounting. Produces the
 * front-end rows of the Top-Down tree (paper Figs. 3–6).
 */

#ifndef G5P_HOST_FRONTEND_HH
#define G5P_HOST_FRONTEND_HH

#include "host/branch_predictor.hh"
#include "host/cache_model.hh"
#include "host/counters.hh"
#include "host/dsb.hh"
#include "host/tlb_model.hh"
#include "host/uncore.hh"
#include "trace/synthesizer.hh"

namespace g5p::host
{

class FrontendModel
{
  public:
    /**
     * @param config platform parameters
     * @param policy page-size policy (owned by the caller; encodes
     *        THP/EHP code-backing decisions)
     * @param uncore shared L2/LLC/DRAM for i-side misses
     */
    FrontendModel(const HostPlatformConfig &config,
                  const PageSizePolicy &policy, Uncore &uncore);

    /**
     * Account the fetch/decode/branch costs of one op. Out-of-line
     * wrapper around onOpInline(): the per-op sink path (HostCore::op)
     * calls this across the TU boundary, which is exactly the
     * pre-batching delivery cost the ablation measures.
     */
    void onOp(const trace::HostOp &op, HostCounters &counters);

    /**
     * The same accounting, defined inline below. The batched sink
     * loop (HostCore::ops) calls this so the compiler can fuse the
     * whole model chain — front-end, back-end, caches, TLBs, DSB,
     * predictor, uncore — into one loop body and keep the hot state
     * in registers across ops. Identical statements in identical
     * order as onOp(), so results are bit-identical.
     */
    void onOpInline(const trace::HostOp &op, HostCounters &counters);

    const HostCache &icache() const { return icache_; }
    const HostTlb &itlb() const { return itlb_; }
    const HostBranchPredictor &bpred() const { return bpred_; }
    const DsbModel &dsb() const { return dsb_; }

  private:
    const HostPlatformConfig &config_;
    Uncore &uncore_;
    HostCache icache_;
    HostTlb itlb_;
    HostBranchPredictor bpred_;
    DsbModel dsb_;

    /** log2(config.lineBytes): fetch-line numbering by shift, not a
     *  per-op 64-bit division. */
    unsigned lineShift_;

    /**
     * @{ Decode-bandwidth penalty per µop for each supply path,
     * precomputed once as exactly the per-op expression
     * `1.0 / supply - 1.0 / dispatchWidth` (0 when the path supplies
     * at least the dispatch width, where the original never charged).
     * Multiplying by the same factor the per-op code recomputed every
     * instruction keeps the charged cycles bit-identical while
     * removing two FP divisions per instruction.
     */
    double dsbPenaltyPerUop_ = 0.0;
    double mitePenaltyPerUop_ = 0.0;
    /** @} */

    HostAddr lastLine_ = ~HostAddr(0);
    HostAddr lastPage_ = ~HostAddr(0);
    HostAddr lastWindow_ = ~HostAddr(0);
    bool windowFromDsb_ = false;
};

inline void
FrontendModel::onOpInline(const trace::HostOp &op,
                          HostCounters &counters)
{
    using trace::HostOp;

    // --- Fetch: new cache line => iCache (and maybe iTLB) lookup.
    HostAddr line = op.pc >> lineShift_;
    if (line != lastLine_) {
        lastLine_ = line;
        ++counters.icacheAccesses;
        if (!icache_.access(op.pc, false)) {
            ++counters.icacheMisses;
            auto mem = uncore_.access(op.pc, false);
            // The fetch queue and next-line prefetch hide part of an
            // ifetch miss; the exposed fraction starves the decoder.
            counters.feLatIcacheCycles +=
                mem.latencyCycles * config_.icacheMissExposed;
        }

        HostAddr page = op.pc >> 12; // page transitions, checked at
                                     // the finest granularity
        if (page != lastPage_) {
            lastPage_ = page;
            ++counters.itlbAccesses;
            if (!itlb_.access(op.pc)) {
                ++counters.itlbMisses;
                counters.feLatItlbCycles += config_.itlbWalkCycles;
            }
        }
    }

    // --- Decode source: DSB window hit or legacy MITE path.
    HostAddr window = op.pc / DsbModel::windowBytes;
    if (window != lastWindow_) {
        lastWindow_ = window;
        windowFromDsb_ = dsb_.access(op.pc);
    }
    if (windowFromDsb_) {
        counters.uopsFromDsb += op.uops;
        if (dsbPenaltyPerUop_ > 0)
            counters.feBwDsbCycles += op.uops * dsbPenaltyPerUop_;
    } else {
        counters.uopsFromMite += op.uops;
        if (mitePenaltyPerUop_ > 0)
            counters.feBwMiteCycles += op.uops * mitePenaltyPerUop_;
    }

    // --- Branch resolution and resteers.
    if (op.kind == HostOp::Kind::Branch) {
        ++counters.branches;
        BranchResolution res = bpred_.resolve(op);
        if (res.mispredicted) {
            ++counters.mispredicts;
            counters.badSpecCycles += config_.mispredictPenalty;
            counters.feLatMispredictCycles += config_.resteerCycles;
        } else if (res.unknownBranch) {
            ++counters.unknownBranches;
            counters.feLatUnknownCycles +=
                config_.unknownBranchCycles;
        }
        if (op.taken) {
            // Redirected fetch: next op starts a new line/window.
            lastLine_ = ~HostAddr(0);
            lastWindow_ = ~HostAddr(0);
        }
    }
}

} // namespace g5p::host

#endif // G5P_HOST_FRONTEND_HH
