/**
 * @file
 * Host front-end model: instruction fetch (iCache/iTLB), decode
 * sourcing (DSB vs MITE), and branch-resteer accounting. Produces the
 * front-end rows of the Top-Down tree (paper Figs. 3–6).
 */

#ifndef G5P_HOST_FRONTEND_HH
#define G5P_HOST_FRONTEND_HH

#include "host/branch_predictor.hh"
#include "host/cache_model.hh"
#include "host/counters.hh"
#include "host/dsb.hh"
#include "host/tlb_model.hh"
#include "host/uncore.hh"
#include "trace/synthesizer.hh"

namespace g5p::host
{

class FrontendModel
{
  public:
    /**
     * @param config platform parameters
     * @param policy page-size policy (owned by the caller; encodes
     *        THP/EHP code-backing decisions)
     * @param uncore shared L2/LLC/DRAM for i-side misses
     */
    FrontendModel(const HostPlatformConfig &config,
                  const PageSizePolicy &policy, Uncore &uncore);

    /** Account the fetch/decode/branch costs of one op. */
    void onOp(const trace::HostOp &op, HostCounters &counters);

    const HostCache &icache() const { return icache_; }
    const HostTlb &itlb() const { return itlb_; }
    const HostBranchPredictor &bpred() const { return bpred_; }
    const DsbModel &dsb() const { return dsb_; }

  private:
    const HostPlatformConfig &config_;
    Uncore &uncore_;
    HostCache icache_;
    HostTlb itlb_;
    HostBranchPredictor bpred_;
    DsbModel dsb_;

    HostAddr lastLine_ = ~HostAddr(0);
    HostAddr lastPage_ = ~HostAddr(0);
    HostAddr lastWindow_ = ~HostAddr(0);
    bool windowFromDsb_ = false;
};

} // namespace g5p::host

#endif // G5P_HOST_FRONTEND_HH
