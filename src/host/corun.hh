/**
 * @file
 * Co-run and SMT contention modeling (paper Fig. 1).
 *
 * When K gem5 processes co-run, shared cache levels are effectively
 * partitioned; with SMT, two hardware threads split one core's
 * private L1s, TLBs, µop cache, and fetch bandwidth. The model
 * transforms the single-process platform config into the
 * per-process effective machine, which is how way-partitioned shared
 * resources behave to first order.
 */

#ifndef G5P_HOST_CORUN_HH
#define G5P_HOST_CORUN_HH

#include "host/platforms.hh"

namespace g5p::host
{

/** Co-run scenario. */
struct CorunScenario
{
    unsigned processes = 1;  ///< concurrent gem5 processes
    bool smt = false;        ///< two processes per physical core
};

/** The three Fig. 1 scenarios for a platform. */
CorunScenario singleProcess();
CorunScenario perPhysicalCore(const HostPlatformConfig &config);
CorunScenario perHardwareThread(const HostPlatformConfig &config);

/**
 * Effective per-process machine for @p scenario on @p config.
 * Shared L2/LLC capacity is divided among the processes sharing it;
 * SMT additionally halves the core-private front-end resources.
 */
HostPlatformConfig applyCorun(const HostPlatformConfig &config,
                              const CorunScenario &scenario);

} // namespace g5p::host

#endif // G5P_HOST_CORUN_HH
