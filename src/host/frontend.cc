#include "host/frontend.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

using trace::HostOp;

namespace
{

/** The per-op decode penalty factor, computed once per supply path. */
double
bwPenaltyPerUop(double supply, unsigned dispatch_width)
{
    if (supply > 0 && supply < dispatch_width)
        return 1.0 / supply - 1.0 / dispatch_width;
    return 0.0;
}

} // namespace

FrontendModel::FrontendModel(const HostPlatformConfig &config,
                             const PageSizePolicy &policy,
                             Uncore &uncore)
    : config_(config),
      uncore_(uncore),
      icache_(config.icache),
      itlb_(config.itlb, &policy),
      bpred_(config.bpred),
      dsb_(config.dsb),
      lineShift_(floorLog2(config.lineBytes)),
      dsbPenaltyPerUop_(bwPenaltyPerUop(config.dsbUopsPerCycle,
                                        config.dispatchWidth)),
      mitePenaltyPerUop_(bwPenaltyPerUop(config.miteUopsPerCycle,
                                         config.dispatchWidth))
{
    g5p_assert(isPowerOf2(config.lineBytes),
               "fetch line size must be a power of two (%u)",
               config.lineBytes);
}

void
FrontendModel::onOp(const HostOp &op, HostCounters &counters)
{
    onOpInline(op, counters);
}

} // namespace g5p::host
