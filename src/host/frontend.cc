#include "host/frontend.hh"

namespace g5p::host
{

using trace::HostOp;

FrontendModel::FrontendModel(const HostPlatformConfig &config,
                             const PageSizePolicy &policy,
                             Uncore &uncore)
    : config_(config),
      uncore_(uncore),
      icache_(config.icache),
      itlb_(config.itlb, &policy),
      bpred_(config.bpred),
      dsb_(config.dsb)
{
}

void
FrontendModel::onOp(const HostOp &op, HostCounters &counters)
{
    // --- Fetch: new cache line => iCache (and maybe iTLB) lookup.
    HostAddr line = op.pc / config_.lineBytes;
    if (line != lastLine_) {
        lastLine_ = line;
        ++counters.icacheAccesses;
        if (!icache_.access(op.pc, false)) {
            ++counters.icacheMisses;
            auto mem = uncore_.access(op.pc, false);
            // The fetch queue and next-line prefetch hide part of an
            // ifetch miss; the exposed fraction starves the decoder.
            counters.feLatIcacheCycles +=
                mem.latencyCycles * config_.icacheMissExposed;
        }

        HostAddr page = op.pc >> 12; // page transitions, checked at
                                     // the finest granularity
        if (page != lastPage_) {
            lastPage_ = page;
            ++counters.itlbAccesses;
            if (!itlb_.access(op.pc)) {
                ++counters.itlbMisses;
                counters.feLatItlbCycles += config_.itlbWalkCycles;
            }
        }
    }

    // --- Decode source: DSB window hit or legacy MITE path.
    HostAddr window = op.pc / DsbModel::windowBytes;
    if (window != lastWindow_) {
        lastWindow_ = window;
        windowFromDsb_ = dsb_.access(op.pc);
    }
    double supply;
    if (windowFromDsb_) {
        counters.uopsFromDsb += op.uops;
        supply = config_.dsbUopsPerCycle;
    } else {
        counters.uopsFromMite += op.uops;
        supply = config_.miteUopsPerCycle;
    }
    if (supply > 0 && supply < config_.dispatchWidth) {
        double penalty =
            op.uops * (1.0 / supply - 1.0 / config_.dispatchWidth);
        if (windowFromDsb_)
            counters.feBwDsbCycles += penalty;
        else
            counters.feBwMiteCycles += penalty;
    }

    // --- Branch resolution and resteers.
    if (op.kind == HostOp::Kind::Branch) {
        ++counters.branches;
        BranchResolution res = bpred_.resolve(op);
        if (res.mispredicted) {
            ++counters.mispredicts;
            counters.badSpecCycles += config_.mispredictPenalty;
            counters.feLatMispredictCycles += config_.resteerCycles;
        } else if (res.unknownBranch) {
            ++counters.unknownBranches;
            counters.feLatUnknownCycles +=
                config_.unknownBranchCycles;
        }
        if (op.taken) {
            // Redirected fetch: next op starts a new line/window.
            lastLine_ = ~HostAddr(0);
            lastWindow_ = ~HostAddr(0);
        }
    }
}

} // namespace g5p::host
