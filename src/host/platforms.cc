#include "host/platforms.hh"

#include "base/logging.hh"

namespace g5p::host
{

HostPlatformConfig
xeonConfig()
{
    HostPlatformConfig cfg;
    cfg.name = "Intel_Xeon";
    cfg.freqGHz = 3.1;
    cfg.turboGHz = 4.1;
    cfg.dispatchWidth = 4;
    cfg.lineBytes = 64;
    cfg.pageBits = 12;
    cfg.icache = {32 * 1024, 8, 64};
    cfg.dcache = {32 * 1024, 8, 64};
    cfg.l2 = {1024 * 1024, 16, 64};            // 1MB private MLC
    cfg.llc = {32 * 1024 * 1024, 16, 64};      // ~35.75MB shared
    cfg.itlb = {128, 8};
    cfg.dtlb = {64, 4};
    cfg.itlbWalkCycles = 30;
    cfg.dtlbWalkCycles = 30;
    cfg.bpred = {16, 4096, 16, 4096};
    cfg.mispredictPenalty = 15;
    cfg.resteerCycles = 6;
    cfg.unknownBranchCycles = 2;
    cfg.dsb = {256, 8, 12};   // ~1.5K µops of decoded cache
    cfg.dsbUopsPerCycle = 6.0;
    cfg.miteUopsPerCycle = 2.6; // x86 legacy decode is the choke
    cfg.l2LatencyCycles = 14;
    cfg.llcLatencyCycles = 50;
    cfg.memLatencyNs = 96;
    cfg.physicalCores = 20;
    cfg.hwThreads = 40;
    cfg.coresPerL2 = 1;
    cfg.coresPerLlc = 20;
    cfg.smtCapable = true;
    cfg.memBwGBs = 141.0;
    return cfg;
}

namespace
{

/** Shared Firestorm P-core front/back-end, minus chip-level fields. */
HostPlatformConfig
firestormCore()
{
    HostPlatformConfig cfg;
    cfg.freqGHz = 3.2;
    cfg.turboGHz = 0.0;
    cfg.dispatchWidth = 8;
    cfg.lineBytes = 128;
    cfg.pageBits = 14;                          // 16KB pages
    cfg.icache = {192 * 1024, 12, 128};         // 128 sets
    cfg.dcache = {128 * 1024, 8, 128};
    cfg.itlb = {192, 8};                        // 24 sets... (below)
    cfg.dtlb = {160, 5};
    cfg.itlbWalkCycles = 18;
    cfg.dtlbWalkCycles = 18;
    cfg.bpred = {17, 8192, 32, 8192};
    cfg.mispredictPenalty = 13;
    cfg.resteerCycles = 5;
    cfg.unknownBranchCycles = 2;
    cfg.dsb = {0, 1};           // no µop cache
    cfg.dsbUopsPerCycle = 0.0;
    cfg.miteUopsPerCycle = 8.0; // 8 fixed-length decoders
    cfg.l2LatencyCycles = 16;
    cfg.llcLatencyCycles = 90;  // SLC is far but big
    cfg.memLatencyNs = 97;
    cfg.smtCapable = false;
    return cfg;
}

} // namespace

HostPlatformConfig
m1ProConfig()
{
    HostPlatformConfig cfg = firestormCore();
    cfg.name = "M1_Pro";
    // TLB geometries must divide into power-of-two sets.
    cfg.itlb = {256, 8};
    cfg.dtlb = {256, 8};
    cfg.l2 = {12 * 1024 * 1024, 12, 128};  // per P-cluster
    cfg.llc = {8 * 1024 * 1024, 16, 128};  // SLC
    cfg.physicalCores = 4;                 // performance cores
    cfg.hwThreads = 4;
    cfg.coresPerL2 = 4;
    cfg.coresPerLlc = 4;
    cfg.memBwGBs = 68.0;
    return cfg;
}

HostPlatformConfig
m1UltraConfig()
{
    HostPlatformConfig cfg = firestormCore();
    cfg.name = "M1_Ultra";
    cfg.itlb = {256, 8};
    cfg.dtlb = {256, 8};
    cfg.l2 = {48 * 1024 * 1024, 12, 128};
    cfg.llc = {96 * 1024 * 1024, 12, 128};
    cfg.physicalCores = 16;
    cfg.hwThreads = 16;
    cfg.coresPerL2 = 4;
    cfg.coresPerLlc = 16;
    cfg.memBwGBs = 819.2;
    return cfg;
}

HostPlatformConfig
firesimConfig()
{
    HostPlatformConfig cfg;
    cfg.name = "FireSim";
    cfg.freqGHz = 4.0;
    cfg.turboGHz = 0.0;
    cfg.dispatchWidth = 8;       // Table I: 8-wide superscalar
    cfg.lineBytes = 64;
    cfg.pageBits = 12;
    cfg.icache = {48 * 1024, 12, 64}; // 64 sets (VIPT)
    cfg.dcache = {32 * 1024, 8, 64};
    cfg.l2 = {512 * 1024, 8, 64};
    cfg.llc = {0, 1, 64};
    cfg.hasLlc = false;
    cfg.itlb = {32, 4};
    cfg.dtlb = {32, 4};
    cfg.itlbWalkCycles = 40;
    cfg.dtlbWalkCycles = 40;
    cfg.bpred = {14, 4096, 16, 1024}; // TournamentBP / 4096 BTB
    cfg.mispredictPenalty = 12;
    cfg.resteerCycles = 5;
    cfg.unknownBranchCycles = 2;
    cfg.dsb = {0, 1};            // RISC-V: no µop cache
    cfg.dsbUopsPerCycle = 0.0;
    cfg.miteUopsPerCycle = 8.0;
    cfg.l2LatencyCycles = 20;
    cfg.memLatencyNs = 80;       // DDR3-1600
    cfg.physicalCores = 4;
    cfg.hwThreads = 4;
    cfg.coresPerL2 = 4;
    cfg.coresPerLlc = 4;
    cfg.smtCapable = false;
    cfg.memBwGBs = 12.8;
    return cfg;
}

HostPlatformConfig
firesimCacheConfig(unsigned l1i_kb, unsigned l1i_assoc,
                   unsigned l1d_kb, unsigned l1d_assoc,
                   unsigned l2_kb, unsigned l2_assoc)
{
    HostPlatformConfig cfg = firesimConfig();
    cfg.name = "FireSim(" + std::to_string(l1i_kb) + "KB/" +
               std::to_string(l1i_assoc) + ":" +
               std::to_string(l1d_kb) + "KB/" +
               std::to_string(l1d_assoc) + ":" +
               std::to_string(l2_kb) + "KB/" +
               std::to_string(l2_assoc) + ")";
    cfg.icache = {l1i_kb * 1024ull, l1i_assoc, 64};
    cfg.dcache = {l1d_kb * 1024ull, l1d_assoc, 64};
    cfg.l2 = {l2_kb * 1024ull, l2_assoc, 64};
    // The paper keeps 64 sets so the VIPT constraint holds.
    g5p_assert(cfg.icache.numSets() == 64 &&
               cfg.dcache.numSets() == 64,
               "Fig. 14 L1 configs must keep 64 sets "
               "(%uKB/%u-way gives %llu)", l1i_kb, l1i_assoc,
               (unsigned long long)cfg.icache.numSets());
    return cfg;
}

std::vector<HostPlatformConfig>
tableIIPlatforms()
{
    return {xeonConfig(), m1ProConfig(), m1UltraConfig()};
}

} // namespace g5p::host
