#include "host/uncore.hh"

namespace g5p::host
{

Uncore::Uncore(const HostPlatformConfig &config)
    : config_(config), l2_(config.l2)
{
    if (config.hasLlc && config.llc.sizeBytes > 0)
        llc_ = std::make_unique<HostCache>(config.llc);
}

Uncore::MemResult
Uncore::access(HostAddr addr, bool is_write)
{
    if (l2_.access(addr, is_write))
        return {Level::L2, config_.l2LatencyCycles};

    if (llc_) {
        bool hit = llc_->access(addr, is_write);
        if (llc_->occupancyBytes() > llcOccupancyPeak_)
            llcOccupancyPeak_ = llc_->occupancyBytes();
        if (hit)
            return {Level::Llc, config_.llcLatencyCycles};
    }

    dramBytes_ += config_.lineBytes;
    return {Level::Memory, config_.memLatencyCycles()};
}

void
Uncore::reset()
{
    l2_.reset();
    if (llc_)
        llc_->reset();
    dramBytes_ = 0;
    llcOccupancyPeak_ = 0;
}

} // namespace g5p::host
