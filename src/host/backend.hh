/**
 * @file
 * Host back-end model: d-side TLB and L1, with L1 misses serviced by
 * the shared Uncore. Load-miss latencies are partially hidden by the
 * out-of-order engine; exposure factors per level come from the
 * platform config.
 */

#ifndef G5P_HOST_BACKEND_HH
#define G5P_HOST_BACKEND_HH

#include "host/cache_model.hh"
#include "host/counters.hh"
#include "host/tlb_model.hh"
#include "host/uncore.hh"
#include "trace/synthesizer.hh"

namespace g5p::host
{

class BackendModel
{
  public:
    BackendModel(const HostPlatformConfig &config,
                 const PageSizePolicy &policy, Uncore &uncore);

    /** Account the memory/core costs of one op. */
    void onOp(const trace::HostOp &op, HostCounters &counters);

    const HostCache &dcache() const { return dcache_; }
    const HostTlb &dtlb() const { return dtlb_; }

  private:
    const HostPlatformConfig &config_;
    Uncore &uncore_;
    HostCache dcache_;
    HostTlb dtlb_;
};

} // namespace g5p::host

#endif // G5P_HOST_BACKEND_HH
