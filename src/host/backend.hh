/**
 * @file
 * Host back-end model: d-side TLB and L1, with L1 misses serviced by
 * the shared Uncore. Load-miss latencies are partially hidden by the
 * out-of-order engine; exposure factors per level come from the
 * platform config.
 */

#ifndef G5P_HOST_BACKEND_HH
#define G5P_HOST_BACKEND_HH

#include "host/cache_model.hh"
#include "host/counters.hh"
#include "host/tlb_model.hh"
#include "host/uncore.hh"
#include "trace/synthesizer.hh"

namespace g5p::host
{

class BackendModel
{
  public:
    BackendModel(const HostPlatformConfig &config,
                 const PageSizePolicy &policy, Uncore &uncore);

    /**
     * Account the memory/core costs of one op. Out-of-line wrapper
     * around onOpInline() for the per-op sink path (HostCore::op) —
     * the pre-batching cross-TU call the ablation measures.
     */
    void onOp(const trace::HostOp &op, HostCounters &counters);

    /** The same accounting, inline below for the batched sink loop.
     *  Bit-identical to onOp(). */
    void onOpInline(const trace::HostOp &op, HostCounters &counters);

    const HostCache &dcache() const { return dcache_; }
    const HostTlb &dtlb() const { return dtlb_; }

  private:
    const HostPlatformConfig &config_;
    Uncore &uncore_;
    HostCache dcache_;
    HostTlb dtlb_;
};

inline void
BackendModel::onOpInline(const trace::HostOp &op,
                         HostCounters &counters)
{
    using trace::HostOp;

    // Dependency/functional-unit pressure: small per-µop cost.
    counters.beCoreCycles += op.uops * config_.beCorePerUop;

    bool is_load = op.kind == HostOp::Kind::Load;
    bool is_store = op.kind == HostOp::Kind::Store;
    if (!is_load && !is_store)
        return;

    if (is_load)
        ++counters.loads;
    else
        ++counters.stores;

    ++counters.dtlbAccesses;
    if (!dtlb_.access(op.dataAddr)) {
        ++counters.dtlbMisses;
        // Walks overlap with execution about half the time.
        counters.beMemCycles += config_.dtlbWalkCycles * 0.5;
    }

    ++counters.dcacheAccesses;
    if (dcache_.access(op.dataAddr, is_store))
        return;
    ++counters.dcacheMisses;

    auto mem = uncore_.access(op.dataAddr, is_store);
    double exposed;
    switch (mem.level) {
      case Uncore::Level::L2:
        exposed = config_.l2Exposed;
        break;
      case Uncore::Level::Llc:
        exposed = config_.llcExposed;
        break;
      default:
        exposed = config_.memExposed;
        break;
    }
    if (is_store)
        exposed = config_.storeExposed; // hidden by the store buffer
    counters.beMemCycles += mem.latencyCycles * exposed;
}

} // namespace g5p::host

#endif // G5P_HOST_BACKEND_HH
