/**
 * @file
 * Shared uncore: L2, LLC, and the DRAM channel. One Uncore may be
 * shared by several HostCores' L1-miss streams (co-run modeling), or
 * dedicated to a single profiled process.
 */

#ifndef G5P_HOST_UNCORE_HH
#define G5P_HOST_UNCORE_HH

#include <memory>

#include "host/cache_model.hh"
#include "host/platforms.hh"

namespace g5p::host
{

class Uncore
{
  public:
    explicit Uncore(const HostPlatformConfig &config);

    /** Where an L1 miss was satisfied. */
    enum class Level : std::uint8_t { L2, Llc, Memory };

    struct MemResult
    {
        Level level;
        double latencyCycles;
    };

    /** Service one L1 miss. Out-of-line on purpose: L1 misses are
     *  the cold path, and keeping this out of the batched sink loop
     *  keeps that loop compact. */
    MemResult access(HostAddr addr, bool is_write);

    /** @{ Counters. */
    std::uint64_t l2Misses() const { return l2_.misses(); }
    std::uint64_t
    llcMisses() const
    {
        return llc_ ? llc_->misses() : l2_.misses();
    }
    std::uint64_t dramBytes() const { return dramBytes_; }

    /** Peak LLC-resident footprint of this process (Fig. 9). */
    std::uint64_t llcOccupancyPeakBytes() const
    { return llcOccupancyPeak_; }
    /** @} */

    const HostCache &l2() const { return l2_; }
    const HostCache *llc() const { return llc_.get(); }

    void reset();

  private:
    const HostPlatformConfig config_;
    HostCache l2_;
    std::unique_ptr<HostCache> llc_;
    std::uint64_t dramBytes_ = 0;
    std::uint64_t llcOccupancyPeak_ = 0;
};

} // namespace g5p::host

#endif // G5P_HOST_UNCORE_HH
