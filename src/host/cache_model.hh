/**
 * @file
 * Counting cache model for the host side (the "real" machine that
 * runs mg5). Unlike the guest's event-driven mem::Cache, this model
 * tracks tags and hit/miss counts only; latency is charged by the
 * HostCore's cycle accounting. Line size is configurable (64B Xeon,
 * 128B Apple M1 — one of the paper's Fig. 8 explanations).
 */

#ifndef G5P_HOST_CACHE_MODEL_HH
#define G5P_HOST_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace g5p::host
{

/** Geometry of one host cache level. */
struct HostCacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }
};

class HostCache
{
  public:
    explicit HostCache(const HostCacheGeometry &geometry);

    /**
     * Look up @p addr; allocates on miss. @return hit.
     *
     * Defined inline below: this is the innermost step of the
     * per-instruction model chain, and the batched sink loop
     * (HostCore::ops) relies on the whole chain being visible for
     * inlining.
     */
    bool access(HostAddr addr, bool is_write);

    /** Look up without allocating (probes). */
    bool contains(HostAddr addr) const;

    /** @{ Counters. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    missRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? (double)misses_ / (double)total : 0.0;
    }
    /** @} */

    /** Currently valid lines (occupancy, Fig. 9). */
    std::uint64_t validLines() const { return validLines_; }

    /** Occupied bytes. */
    std::uint64_t
    occupancyBytes() const
    {
        return validLines_ * geometry_.lineBytes;
    }

    const HostCacheGeometry &geometry() const { return geometry_; }

    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lastUsed = 0;
    };

    HostCacheGeometry geometry_;
    unsigned setShift_;
    unsigned tagShift_ = 0;
    std::uint64_t setMask_;
    std::vector<Line> lines_;
    std::uint64_t lruCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t validLines_ = 0;
};

inline bool
HostCache::access(HostAddr addr, bool is_write)
{
    std::uint64_t line_no = addr >> setShift_;
    std::uint64_t set = line_no & setMask_;
    std::uint64_t tag = line_no >> tagShift_;

    Line *base = &lines_[set * geometry_.assoc];
    Line *victim = base;
    for (unsigned w = 0; w < geometry_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUsed = ++lruCounter_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid &&
                   line.lastUsed < victim->lastUsed) {
            victim = &line;
        }
    }

    ++misses_;
    if (!victim->valid)
        ++validLines_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUsed = ++lruCounter_;
    return false;
}

} // namespace g5p::host

#endif // G5P_HOST_CACHE_MODEL_HH
