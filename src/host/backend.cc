#include "host/backend.hh"

namespace g5p::host
{

using trace::HostOp;

BackendModel::BackendModel(const HostPlatformConfig &config,
                           const PageSizePolicy &policy,
                           Uncore &uncore)
    : config_(config),
      uncore_(uncore),
      dcache_(config.dcache),
      dtlb_(config.dtlb, &policy)
{
}

void
BackendModel::onOp(const HostOp &op, HostCounters &counters)
{
    // Dependency/functional-unit pressure: small per-µop cost.
    counters.beCoreCycles += op.uops * config_.beCorePerUop;

    bool is_load = op.kind == HostOp::Kind::Load;
    bool is_store = op.kind == HostOp::Kind::Store;
    if (!is_load && !is_store)
        return;

    if (is_load)
        ++counters.loads;
    else
        ++counters.stores;

    ++counters.dtlbAccesses;
    if (!dtlb_.access(op.dataAddr)) {
        ++counters.dtlbMisses;
        // Walks overlap with execution about half the time.
        counters.beMemCycles += config_.dtlbWalkCycles * 0.5;
    }

    ++counters.dcacheAccesses;
    if (dcache_.access(op.dataAddr, is_store))
        return;
    ++counters.dcacheMisses;

    auto mem = uncore_.access(op.dataAddr, is_store);
    double exposed;
    switch (mem.level) {
      case Uncore::Level::L2:
        exposed = config_.l2Exposed;
        break;
      case Uncore::Level::Llc:
        exposed = config_.llcExposed;
        break;
      default:
        exposed = config_.memExposed;
        break;
    }
    if (is_store)
        exposed = config_.storeExposed; // hidden by the store buffer
    counters.beMemCycles += mem.latencyCycles * exposed;
}

} // namespace g5p::host
