#include "host/backend.hh"

namespace g5p::host
{

using trace::HostOp;

BackendModel::BackendModel(const HostPlatformConfig &config,
                           const PageSizePolicy &policy,
                           Uncore &uncore)
    : config_(config),
      uncore_(uncore),
      dcache_(config.dcache),
      dtlb_(config.dtlb, &policy)
{
}

void
BackendModel::onOp(const HostOp &op, HostCounters &counters)
{
    onOpInline(op, counters);
}

} // namespace g5p::host
