#include "host/cache_model.hh"

#include "base/addr_utils.hh"
#include "base/logging.hh"

namespace g5p::host
{

HostCache::HostCache(const HostCacheGeometry &geometry)
    : geometry_(geometry)
{
    g5p_assert(isPowerOf2(geometry.lineBytes),
               "line size must be a power of two");
    std::uint64_t sets = geometry.numSets();
    g5p_assert(sets > 0 && isPowerOf2(sets),
               "host cache sets (%llu) must be a power of two "
               "(size %llu, assoc %u, line %u)",
               (unsigned long long)sets,
               (unsigned long long)geometry.sizeBytes, geometry.assoc,
               geometry.lineBytes);
    setShift_ = floorLog2(geometry.lineBytes);
    setMask_ = sets - 1;
    tagShift_ = floorLog2(sets);
    lines_.resize(sets * geometry.assoc);
}

bool
HostCache::contains(HostAddr addr) const
{
    std::uint64_t line_no = addr >> setShift_;
    std::uint64_t set = line_no & setMask_;
    std::uint64_t tag = line_no >> tagShift_;
    const Line *base = &lines_[set * geometry_.assoc];
    for (unsigned w = 0; w < geometry_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
HostCache::reset()
{
    for (auto &line : lines_)
        line.valid = false;
    hits_ = misses_ = validLines_ = 0;
    lruCounter_ = 0;
}

} // namespace g5p::host
