/**
 * @file
 * PARSEC 3.0 stand-in kernels: canneal, blackscholes, dedup,
 * streamcluster. Each reproduces its namesake's dominant pattern and
 * carries a C++ golden model so every CPU model can be checked for
 * architectural correctness against the same expected checksum.
 */

#include "workloads/workload.hh"

#include <bit>
#include <cstring>

#include "base/logging.hh"

namespace g5p::workloads
{

using namespace isa;

namespace
{

/** Integer bits of a double (the guest sees registers as raw bits). */
std::uint64_t
bitsOf(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

// ---------------------------------------------------------------
// blackscholes: streaming FP on an option array. High IPC, very
// regular (the PARSEC paper's compute-bound extreme).
// ---------------------------------------------------------------

class Blackscholes : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "blackscholes"; }

    std::uint64_t numOptions() const { return scaled(1536); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        std::uint64_t n = numOptions();
        emitPartition(as, n, num_cpus);

        as.mv(RegS0, RegT2);               // i = start
        as.beq(RegS0, RegT3, "epilogue");  // empty partition
        as.label("bs_loop");
        as.slli(RegT0, RegS0, 5);          // 32B per option
        as.li(RegT1, (std::int64_t)dataBase);
        as.add(RegT0, RegT0, RegT1);
        as.ld(18, RegT0, 0);               // S
        as.ld(19, RegT0, 8);               // K
        as.ld(20, RegT0, 16);              // r
        as.fmul(21, 18, 19);               // v = S*K
        as.fadd(21, 21, 20);               // v += r
        as.fdiv(21, 21, 18);               // v /= S
        as.fmul(21, 21, 21);               // v *= v
        as.sd(21, RegT0, 24);              // store the price
        as.add(RegS1, RegS1, 21);          // checksum += bits(v)
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "bs_loop");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("blackscholes"));
        for (std::uint64_t i = 0; i < numOptions(); ++i) {
            Addr a = dataBase + i * 32;
            physmem.write(a, 8, bitsOf(1.0 + rng.uniform()));
            physmem.write(a + 8, 8, bitsOf(1.0 + rng.uniform()));
            physmem.write(a + 16, 8, bitsOf(0.01 * rng.uniform()));
            physmem.write(a + 24, 8, 0);
        }
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        Rng rng(Rng::hashString("blackscholes"));
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < numOptions(); ++i) {
            double s = 1.0 + rng.uniform();
            double k = 1.0 + rng.uniform();
            double r = 0.01 * rng.uniform();
            double v = s * k;
            v += r;
            v /= s;
            v *= v;
            sum += bitsOf(v);
        }
        return sum;
    }
};

RegisterWorkload regBlackscholes("blackscholes", [](double s) {
    return std::make_unique<Blackscholes>(s);
});

// ---------------------------------------------------------------
// canneal: pointer-chasing random swaps over a large element array
// (cache-hostile, the PARSEC paper's memory-bound extreme). Each CPU
// walks a private segment so the checksum is schedule-independent.
// ---------------------------------------------------------------

class Canneal : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "canneal"; }

    static constexpr std::uint64_t lcgA = 25214903917ULL;
    static constexpr std::uint64_t lcgC = 11;
    static constexpr std::uint64_t seedMul = 2654435761ULL;

    /** Element count; kept a power of two for the index mask. */
    std::uint64_t
    numElements() const
    {
        std::uint64_t n = 8192;
        while (n < scaled(32768))
            n <<= 1;
        return n;
    }

    std::uint64_t numIterations() const { return scaled(6144); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        g5p_assert((num_cpus & (num_cpus - 1)) == 0,
                   "canneal needs a power-of-two CPU count");
        std::uint64_t n = numElements();
        std::uint64_t seg = n / num_cpus;
        emitPartition(as, numIterations(), num_cpus);

        // x22 = LCG state, x23 = segment base address.
        as.addi(18, RegT2, 1);
        as.li(RegT0, (std::int64_t)seedMul);
        as.mul(22, 18, RegT0);             // x = (start+1)*seedMul
        as.li(RegT0, (std::int64_t)(seg * 8));
        as.mul(23, RegA0, RegT0);
        as.li(RegT0, (std::int64_t)dataBase);
        as.add(23, 23, RegT0);             // segment base

        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("ca_loop");
        as.li(RegT0, (std::int64_t)lcgA);
        as.mul(22, 22, RegT0);
        as.addi(22, 22, (std::int32_t)lcgC);
        as.srli(RegT0, 22, 16);
        as.andi(RegT0, RegT0, (std::int32_t)(seg - 1));
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, 23);          // element address
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);       // checksum += element
        as.xor_(RegT1, RegT1, 22);
        as.sd(RegT1, RegT0, 0);            // swap-like update
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "ca_loop");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("canneal"));
        for (std::uint64_t i = 0; i < numElements(); ++i)
            physmem.write(dataBase + i * 8, 8, rng.next());
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        std::uint64_t n = numElements();
        std::uint64_t seg = n / num_cpus;
        std::vector<std::uint64_t> elems(n);
        Rng rng(Rng::hashString("canneal"));
        for (auto &e : elems)
            e = rng.next();

        std::uint64_t sum = 0;
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto [start, end] =
                partitionOf(numIterations(), num_cpus, cpu);
            std::uint64_t x = (start + 1) * seedMul;
            std::uint64_t base = (std::uint64_t)cpu * seg;
            for (std::uint64_t i = start; i < end; ++i) {
                x = x * lcgA + lcgC;
                std::uint64_t idx = base + ((x >> 16) & (seg - 1));
                sum += elems[idx];
                elems[idx] ^= x;
            }
        }
        return sum;
    }
};

RegisterWorkload regCanneal("canneal", [](double s) {
    return std::make_unique<Canneal>(s);
});

// ---------------------------------------------------------------
// dedup: rolling FNV-style hashing over a byte stream with scattered
// hash-table bucket writes (the PARSEC pipeline kernel's hot loop).
// ---------------------------------------------------------------

class Dedup : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "dedup"; }

    static constexpr std::uint64_t fnvPrime = 1099511628211ULL;
    static constexpr std::uint64_t hashInit = 1469598103ULL;
    static constexpr std::uint64_t numBuckets = 1024;

    std::uint64_t streamBytes() const { return scaled(24576); }

    Addr tableBase() const { return dataBase + (1u << 20); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        emitPartition(as, streamBytes(), num_cpus);

        as.li(22, (std::int64_t)hashInit); // h
        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("dd_loop");
        as.li(RegT0, (std::int64_t)dataBase);
        as.add(RegT0, RegT0, RegS0);
        as.opImm(Opcode::Lbu, RegT1, RegT0, 0); // byte
        as.xor_(22, 22, RegT1);
        as.li(RegT0, (std::int64_t)fnvPrime);
        as.mul(22, 22, RegT0);
        as.add(RegS1, RegS1, 22);          // checksum += h

        // Every 64 bytes, publish the chunk hash to its bucket.
        as.andi(RegT0, RegS0, 63);
        as.bne(RegT0, RegZero, "dd_nobucket");
        as.srli(RegT0, 22, 20);
        as.andi(RegT0, RegT0, (std::int32_t)(numBuckets - 1));
        as.slli(RegT0, RegT0, 3);
        as.li(RegT1, (std::int64_t)tableBase());
        as.add(RegT0, RegT0, RegT1);
        as.sd(22, RegT0, 0);
        as.label("dd_nobucket");

        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "dd_loop");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("dedup"));
        for (std::uint64_t i = 0; i < streamBytes(); ++i)
            physmem.write(dataBase + i, 1, rng.below(256));
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        std::vector<std::uint8_t> stream(streamBytes());
        Rng rng(Rng::hashString("dedup"));
        for (auto &b : stream)
            b = (std::uint8_t)rng.below(256);

        std::uint64_t sum = 0;
        for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
            auto [start, end] =
                partitionOf(streamBytes(), num_cpus, cpu);
            std::uint64_t h = hashInit;
            for (std::uint64_t i = start; i < end; ++i) {
                h = (h ^ stream[i]) * fnvPrime;
                sum += h;
            }
        }
        return sum;
    }
};

RegisterWorkload regDedup("dedup", [](double s) {
    return std::make_unique<Dedup>(s);
});

// ---------------------------------------------------------------
// streamcluster: nearest-center search — a branchy FP reduction with
// a data-dependent min update (mispredict-heavy inner loop).
// ---------------------------------------------------------------

class Streamcluster : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "streamcluster"; }

    static constexpr unsigned dims = 8;
    static constexpr unsigned numCenters = 8;

    std::uint64_t numPoints() const { return scaled(384); }

    Addr centersBase() const { return dataBase + (2u << 20); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        emitPartition(as, numPoints(), num_cpus);

        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("sc_point");
        // x18 = point base address
        as.li(RegT0, (std::int64_t)(dims * 8));
        as.mul(18, RegS0, RegT0);
        as.li(RegT0, (std::int64_t)dataBase);
        as.add(18, 18, RegT0);

        as.li(19, (std::int64_t)bitsOf(1e30)); // best (positive)
        as.li(20, 0);                          // k
        as.label("sc_center");
        // x21 = center base address
        as.li(RegT0, (std::int64_t)(dims * 8));
        as.mul(21, 20, RegT0);
        as.li(RegT0, (std::int64_t)centersBase());
        as.add(21, 21, RegT0);

        as.li(22, 0);                          // dist bits (0.0)
        as.li(23, 0);                          // d
        as.label("sc_dim");
        as.slli(RegT0, 23, 3);
        as.add(RegT1, 18, RegT0);
        as.ld(24, RegT1, 0);                   // p[d]
        as.add(RegT1, 21, RegT0);
        as.ld(25, RegT1, 0);                   // c[d]
        as.fsub(24, 24, 25);
        as.fmul(24, 24, 24);
        as.fadd(22, 22, 24);
        as.addi(23, 23, 1);
        as.slti(RegT0, 23, dims);
        as.bne(RegT0, RegZero, "sc_dim");

        // min update: positive doubles compare correctly as ints.
        as.slt(RegT0, 22, 19);
        as.beq(RegT0, RegZero, "sc_nomin");
        as.mv(19, 22);
        as.label("sc_nomin");
        as.addi(20, 20, 1);
        as.slti(RegT0, 20, numCenters);
        as.bne(RegT0, RegZero, "sc_center");

        as.add(RegS1, RegS1, 19);              // checksum += best
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "sc_point");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("streamcluster"));
        for (std::uint64_t i = 0; i < numPoints() * dims; ++i)
            physmem.write(dataBase + i * 8, 8,
                          bitsOf(rng.uniform() * 10.0));
        for (std::uint64_t i = 0; i < numCenters * dims; ++i)
            physmem.write(centersBase() + i * 8, 8,
                          bitsOf(rng.uniform() * 10.0));
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        Rng rng(Rng::hashString("streamcluster"));
        std::vector<double> pts(numPoints() * dims);
        std::vector<double> ctr(numCenters * dims);
        for (auto &v : pts)
            v = rng.uniform() * 10.0;
        for (auto &v : ctr)
            v = rng.uniform() * 10.0;

        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < numPoints(); ++i) {
            std::uint64_t best = bitsOf(1e30);
            for (unsigned k = 0; k < numCenters; ++k) {
                double dist = 0.0;
                for (unsigned d = 0; d < dims; ++d) {
                    double t = pts[i * dims + d] - ctr[k * dims + d];
                    t *= t;
                    dist += t;
                }
                std::uint64_t db = bitsOf(dist);
                if ((std::int64_t)db < (std::int64_t)best)
                    best = db;
            }
            sum += best;
        }
        return sum;
    }
};

RegisterWorkload regStreamcluster("streamcluster", [](double s) {
    return std::make_unique<Streamcluster>(s);
});

} // namespace

/** Anchor so the linker keeps this TU's static registrations. */
void
linkParsecWorkloads()
{
}

} // namespace g5p::workloads
