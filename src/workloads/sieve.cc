/**
 * @file
 * Sieve of Eratosthenes — the "simple C++ program" the paper runs on
 * gem5-on-FireSim for the Fig. 14 cache-sensitivity sweep (FireSim is
 * too slow for PARSEC). Single-threaded: secondary CPUs go straight
 * to the epilogue.
 */

#include "workloads/workload.hh"

namespace g5p::workloads
{

using namespace isa;

namespace
{

class Sieve : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "sieve"; }

    std::uint64_t limit() const { return scaled(16384); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        std::uint64_t n = limit();
        emitPartition(as, 1, num_cpus); // sets up s1 = 0
        as.bne(RegA0, RegZero, "epilogue"); // workers contribute 0

        as.li(18, (std::int64_t)dataBase);  // arr base
        as.li(19, (std::int64_t)n);         // N
        as.li(20, 2);                       // p

        as.label("sv_outer");
        as.mul(RegT0, 20, 20);              // p*p
        as.bge(RegT0, 19, "sv_count");
        as.add(RegT1, 18, 20);
        as.lb(RegT1, RegT1, 0);             // arr[p]
        as.bne(RegT1, RegZero, "sv_next");

        as.mul(21, 20, 20);                 // m = p*p
        as.li(RegT2, 1);
        as.label("sv_mark");
        as.add(RegT0, 18, 21);
        as.sb(RegT2, RegT0, 0);             // arr[m] = 1
        as.add(21, 21, 20);                 // m += p
        as.blt(21, 19, "sv_mark");

        as.label("sv_next");
        as.addi(20, 20, 1);
        as.j("sv_outer");

        // Count the primes (zero entries from index 2).
        as.label("sv_count");
        as.li(20, 2);
        as.label("sv_cloop");
        as.add(RegT0, 18, 20);
        as.lb(RegT1, RegT0, 0);
        as.bne(RegT1, RegZero, "sv_nc");
        as.addi(RegS1, RegS1, 1);
        as.label("sv_nc");
        as.addi(20, 20, 1);
        as.blt(20, 19, "sv_cloop");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        for (std::uint64_t i = 0; i < limit(); ++i)
            physmem.write(dataBase + i, 1, 0);
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        std::uint64_t n = limit();
        std::vector<bool> composite(n, false);
        std::uint64_t count = 0;
        for (std::uint64_t p = 2; p * p < n; ++p) {
            if (composite[p])
                continue;
            for (std::uint64_t m = p * p; m < n; m += p)
                composite[m] = true;
        }
        for (std::uint64_t i = 2; i < n; ++i)
            if (!composite[i])
                ++count;
        return count;
    }
};

RegisterWorkload regSieve("sieve", [](double s) {
    return std::make_unique<Sieve>(s);
});

} // namespace

/** Anchor so the linker keeps this TU's static registrations. */
void
linkSieveWorkload()
{
}

} // namespace g5p::workloads
