/**
 * @file
 * Multi-threaded SPLASH-2x stand-in kernels built on the guest
 * threading shim (os/threads.hh): radix_threads (per-thread
 * histogram + barrier + reduction, after SPLASH radix's local-count
 * phase) and lu_threads (row-cyclic blocked elimination with a
 * barrier per pivot, after SPLASH lu_ncb).
 *
 * Unlike the partition/done-flag kernels in splash.cc, these spawn
 * real guest threads: CPU 0 spawns one worker per remaining CPU,
 * everyone meets at generation-counted barriers, and the wakeup/
 * shutdown mailboxes plus the false-shared histogram rows drive the
 * MESI protocol through genuine S->M upgrades and invalidations.
 * Both checksums are interleaving-independent by construction, so
 * expectedResult verifies every CPU model and core count.
 */

#include "workloads/workload.hh"

#include <bit>

#include "base/logging.hh"
#include "os/threads.hh"

namespace g5p::workloads
{

using namespace isa;
using os::ThreadRuntime;

namespace
{

std::uint64_t
bitsOf(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

/** Spawn workers 1..T-1 running @p worker, run it inline as thread
 *  0, then join all workers. */
void
emitForkJoin(isa::Assembler &as, unsigned num_cpus,
             const std::string &worker)
{
    for (unsigned t = 1; t < num_cpus; ++t) {
        as.la(RegA0, worker);
        as.li(RegA1, (std::int64_t)t);
        as.li(RegA7, (std::int64_t)os::ThreadCall::Spawn);
        as.ecall();
    }
    as.li(RegA0, 0);
    as.call(worker);
    for (unsigned t = 1; t < num_cpus; ++t) {
        const std::string spin = "join" + std::to_string(t);
        as.label(spin);
        as.li(RegA0, (std::int64_t)t);
        as.li(RegA7, (std::int64_t)os::ThreadCall::Join);
        as.ecall();
        as.bne(RegA0, RegZero, spin);
    }
}

// ---------------------------------------------------------------
// radix_threads: SPLASH radix's local-count phase. Each thread
// histograms its slice of the key array into a private 16-bucket
// table; the tables are packed 128 bytes apart so neighbouring
// threads false-share tag lines. One barrier, then thread 0 reduces.
// ---------------------------------------------------------------

class RadixThreads : public WorkloadBase
{
  public:
    explicit RadixThreads(double scale) : WorkloadBase(scale) {}

    std::string name() const override { return "radix_threads"; }

    std::uint64_t numKeys() const { return scaled(4096); }

    static constexpr Addr histBase = dataBase + 0x100000;
    static constexpr unsigned buckets = 16;

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        const std::int64_t n = (std::int64_t)numKeys();
        const std::int64_t chunk = n / num_cpus;

        as.label("_start");
        ThreadRuntime::emitThreadEntry(as);
        emitForkJoin(as, num_cpus, "rt_worker");

        // Reduce: checksum = sum_b (sum_t lhist[t][b]) * (b + 1).
        as.li(RegS1, 0);
        as.li(19, 0);                       // b
        as.label("rt_red_b");
        as.li(20, 0);                       // bucket total
        as.li(21, 0);                       // t
        as.label("rt_red_t");
        as.slli(RegT0, 21, 7);
        as.slli(RegT1, 19, 3);
        as.add(RegT0, RegT0, RegT1);
        as.li(RegT1, (std::int64_t)histBase);
        as.add(RegT0, RegT0, RegT1);
        as.ld(RegT1, RegT0, 0);
        as.add(20, 20, RegT1);
        as.addi(21, 21, 1);
        as.li(RegT0, (std::int64_t)num_cpus);
        as.blt(21, RegT0, "rt_red_t");
        as.addi(RegT0, 19, 1);
        as.mul(RegT1, 20, RegT0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(19, 19, 1);
        as.li(RegT0, (std::int64_t)buckets);
        as.blt(19, RegT0, "rt_red_b");

        as.li(RegT0, (std::int64_t)resultAddr);
        as.sd(RegS1, RegT0, 0);
        ThreadRuntime::emitShutdown(as, num_cpus);
        as.halt();

        // Worker (a0 = thread index): count one slice.
        as.label("rt_worker");
        as.mv(19, RegA0);                   // t
        as.li(RegT0, chunk);
        as.mul(20, 19, RegT0);              // start
        as.add(21, 20, RegT0);              // end
        as.li(RegT1, (std::int64_t)num_cpus - 1);
        as.bne(19, RegT1, "rt_w_endok");
        as.li(21, n);                       // last takes the tail
        as.label("rt_w_endok");
        as.li(RegT0, (std::int64_t)dataBase);
        as.slli(RegT1, 20, 3);
        as.add(22, RegT0, RegT1);           // key pointer
        as.li(RegT0, (std::int64_t)histBase);
        as.slli(RegT1, 19, 7);
        as.add(23, RegT0, RegT1);           // private histogram
        as.bge(20, 21, "rt_w_done");
        as.label("rt_w_loop");
        as.ld(RegT0, 22, 0);
        as.andi(RegT0, RegT0, buckets - 1);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, 23);
        as.ld(RegT1, RegT0, 0);
        as.addi(RegT1, RegT1, 1);
        as.sd(RegT1, RegT0, 0);
        as.addi(22, 22, 8);
        as.addi(20, 20, 1);
        as.blt(20, 21, "rt_w_loop");
        as.label("rt_w_done");
        ThreadRuntime::emitBarrier(as, 0, num_cpus, "rt_w");
        as.ret();

        ThreadRuntime::emitWorkerLoop(as);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("radix_threads"));
        for (std::uint64_t i = 0; i < numKeys(); ++i)
            physmem.write(dataBase + i * 8, 8, rng.next());
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        Rng rng(Rng::hashString("radix_threads"));
        std::uint64_t hist[buckets] = {};
        for (std::uint64_t i = 0; i < numKeys(); ++i)
            hist[rng.next() & (buckets - 1)] += 1;
        std::uint64_t sum = 0;
        for (unsigned b = 0; b < buckets; ++b)
            sum += hist[b] * (b + 1);
        return sum;
    }
};

RegisterWorkload regRadixThreads("radix_threads", [](double s) {
    return std::make_unique<RadixThreads>(s);
});

// ---------------------------------------------------------------
// lu_threads: dense LU elimination without pivoting on a diagonally
// dominant matrix; rows are dealt to threads cyclically (i % T) and
// every pivot step ends at a barrier, so the pivot row's lines
// migrate M -> S -> invalidated each iteration. The per-element
// update order is fixed regardless of interleaving, so the diagonal
// checksum is exact.
// ---------------------------------------------------------------

class LuThreads : public WorkloadBase
{
  public:
    explicit LuThreads(double scale) : WorkloadBase(scale) {}

    std::string name() const override { return "lu_threads"; }

    std::uint64_t dim() const
    {
        std::uint64_t n = scaled(16);
        return n < 2 ? 2 : n;
    }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        const std::int64_t n = (std::int64_t)dim();

        as.label("_start");
        ThreadRuntime::emitThreadEntry(as);
        emitForkJoin(as, num_cpus, "lt_worker");

        // checksum = integer sum of the diagonal's raw FP bits.
        as.li(RegS1, 0);
        as.li(19, 0);                       // i
        as.label("lt_sum");
        as.li(RegT0, n * 8);
        as.mul(RegT1, 19, RegT0);
        as.slli(RegT2, 19, 3);
        as.add(RegT1, RegT1, RegT2);
        as.li(RegT2, (std::int64_t)dataBase);
        as.add(RegT1, RegT1, RegT2);
        as.ld(RegT2, RegT1, 0);
        as.add(RegS1, RegS1, RegT2);
        as.addi(19, 19, 1);
        as.li(RegT0, n);
        as.blt(19, RegT0, "lt_sum");

        as.li(RegT0, (std::int64_t)resultAddr);
        as.sd(RegS1, RegT0, 0);
        ThreadRuntime::emitShutdown(as, num_cpus);
        as.halt();

        // Worker (a0 = thread index): eliminate rows i % T == t.
        as.label("lt_worker");
        as.mv(21, RegA0);                   // t
        as.li(19, 0);                       // k
        as.label("lt_k");
        as.addi(20, 19, 1);                 // i
        as.label("lt_i");
        as.li(RegT0, n);
        as.bge(20, RegT0, "lt_i_done");
        as.li(RegT0, (std::int64_t)num_cpus);
        as.rem(RegT1, 20, RegT0);
        as.bne(RegT1, 21, "lt_i_next");
        as.li(RegT0, n * 8);                // row stride (live in j loop)
        as.mul(RegT1, 20, RegT0);
        as.li(RegT2, (std::int64_t)dataBase);
        as.add(RegT1, RegT1, RegT2);        // &a[i][0]
        as.mul(RegT3, 19, RegT0);
        as.add(RegT3, RegT3, RegT2);        // &a[k][0]
        as.slli(RegT4, 19, 3);              // k * 8
        as.add(RegT5, RegT1, RegT4);
        as.ld(RegT5, RegT5, 0);             // a[i][k]
        as.add(RegT6, RegT3, RegT4);
        as.ld(RegT6, RegT6, 0);             // a[k][k]
        as.fdiv(RegT5, RegT5, RegT6);       // f
        as.mv(RegT6, RegT4);                // j * 8
        as.label("lt_j");
        as.add(RegA1, RegT3, RegT6);
        as.ld(RegA2, RegA1, 0);             // a[k][j]
        as.fmul(RegA2, RegT5, RegA2);
        as.add(RegA1, RegT1, RegT6);
        as.ld(RegA3, RegA1, 0);
        as.fsub(RegA3, RegA3, RegA2);
        as.sd(RegA3, RegA1, 0);             // a[i][j] -= f * a[k][j]
        as.addi(RegT6, RegT6, 8);
        as.blt(RegT6, RegT0, "lt_j");
        as.label("lt_i_next");
        as.addi(20, 20, 1);
        as.j("lt_i");
        as.label("lt_i_done");
        ThreadRuntime::emitBarrier(as, 1, num_cpus, "lt_w");
        as.addi(19, 19, 1);
        as.li(RegT0, n - 1);
        as.blt(19, RegT0, "lt_k");
        as.ret();

        ThreadRuntime::emitWorkerLoop(as);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        const std::uint64_t n = dim();
        Rng rng(Rng::hashString("lu_threads"));
        for (std::uint64_t i = 0; i < n; ++i) {
            for (std::uint64_t j = 0; j < n; ++j) {
                double v = rng.uniform() + 0.1;
                if (i == j)
                    v += (double)n;
                physmem.write(dataBase + (i * n + j) * 8, 8,
                              bitsOf(v));
            }
        }
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        const std::uint64_t n = dim();
        Rng rng(Rng::hashString("lu_threads"));
        std::vector<double> a(n * n);
        for (std::uint64_t i = 0; i < n; ++i) {
            for (std::uint64_t j = 0; j < n; ++j) {
                double v = rng.uniform() + 0.1;
                if (i == j)
                    v += (double)n;
                a[i * n + j] = v;
            }
        }
        for (std::uint64_t k = 0; k + 1 < n; ++k) {
            for (std::uint64_t i = k + 1; i < n; ++i) {
                double f = a[i * n + k] / a[k * n + k];
                for (std::uint64_t j = k; j < n; ++j)
                    a[i * n + j] -= f * a[k * n + j];
            }
        }
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            sum += bitsOf(a[i * n + i]);
        return sum;
    }
};

RegisterWorkload regLuThreads("lu_threads", [](double s) {
    return std::make_unique<LuThreads>(s);
});

} // namespace

/** Anchor so the linker keeps this TU's static registrations. */
void
linkThreadWorkloads()
{
}

} // namespace g5p::workloads
