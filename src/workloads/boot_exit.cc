/**
 * @file
 * Boot-Exit: boot "Linux" in FS mode and immediately exit (paper
 * §III). The interesting work is the FS boot prologue emitted by
 * FsKernel; the workload body just publishes a magic checksum.
 */

#include "workloads/workload.hh"

namespace g5p::workloads
{

using namespace isa;

namespace
{

class BootExit : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "boot-exit"; }

    static constexpr std::uint64_t magic = 0xb007e817;

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        emitPartition(as, 1, num_cpus);
        as.bne(RegA0, RegZero, "epilogue");
        as.li(RegS1, (std::int64_t)magic);
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        return magic;
    }
};

RegisterWorkload regBootExit("boot-exit", [](double s) {
    return std::make_unique<BootExit>(s);
});

} // namespace

/** Anchor so the linker keeps this TU's static registrations. */
void
linkBootExitWorkload()
{
}

} // namespace g5p::workloads
