/**
 * @file
 * Guest-workload framework: the common prologue/epilogue emission
 * (work partitioning across CPUs, the done-flag barrier, checksum
 * collection) and the workload registry.
 *
 * Substitution note (see DESIGN.md §2): these kernels stand in for
 * PARSEC 3.0 / SPLASH-2x with the `simmedium` input class. Each kernel
 * reproduces the dominant access/compute pattern of its namesake
 * (pointer chasing for canneal, FP streaming for blackscholes, N^2
 * pair interactions for water_nsquared, ...). What the profiling study
 * needs from them is the *simulator-side* behaviour they induce, which
 * is driven by instruction mix, memory locality, and branch behaviour.
 */

#ifndef G5P_WORKLOADS_WORKLOAD_HH
#define G5P_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "base/random.hh"
#include "os/system.hh"

namespace g5p::workloads
{

/**
 * Base class factoring the multi-CPU conventions out of the kernels.
 *
 * Emitted guest-code structure (every kernel):
 *   _start:  partition -> t2 = first item, t3 = one-past-last item
 *   <kernel loop, accumulating a checksum in s1>
 *   epilogue: publish partial, barrier on CPU0, store checksum, halt
 */
class WorkloadBase : public os::GuestWorkload
{
  public:
    /** @param scale input-size multiplier (1.0 = simmedium). */
    explicit WorkloadBase(double scale = 1.0) : scale_(scale) {}

    /** Guest address where workload arrays live. */
    static constexpr Addr dataBase = 0x200000;

    /** Guest address of CPU @p cpu's partial checksum. */
    static constexpr Addr
    partialAddr(unsigned cpu)
    {
        return 0xa00 + cpu * 8;
    }

  protected:
    /** Scale an item count by the input class. */
    std::uint64_t
    scaled(std::uint64_t n) const
    {
        auto v = (std::uint64_t)((double)n * scale_);
        return v < 1 ? 1 : v;
    }

    double scale() const { return scale_; }

    /**
     * Emit "_start" and the partition computation:
     * t2 = a0 * (total/num_cpus), t3 = end (last CPU absorbs the
     * remainder). Clobbers t0, t4.
     */
    void emitPartition(isa::Assembler &as, std::uint64_t total,
                       unsigned num_cpus) const;

    /**
     * Emit the epilogue: store s1 to the partial slot; workers set
     * their done flag and halt; CPU 0 spin-waits on every worker,
     * sums the partials into resultAddr, and halts.
     */
    void emitEpilogue(isa::Assembler &as, unsigned num_cpus) const;

  public:
    /** Host-side mirror of the partition for golden models. */
    static std::pair<std::uint64_t, std::uint64_t>
    partitionOf(std::uint64_t total, unsigned num_cpus, unsigned cpu)
    {
        std::uint64_t chunk = total / num_cpus;
        std::uint64_t start = chunk * cpu;
        std::uint64_t end = (cpu == num_cpus - 1) ? total
                                                  : start + chunk;
        return {start, end};
    }

  private:
    double scale_;
};

/** Factory signature for registry entries. */
using WorkloadFactory =
    std::function<std::unique_ptr<os::GuestWorkload>(double scale)>;

/**
 * Name -> factory registry for all guest workloads. Names match the
 * paper: canneal, blackscholes, dedup, streamcluster (PARSEC);
 * water_nsquared, water_spatial, ocean_cp, ocean_ncp, fmm
 * (SPLASH-2x); plus boot-exit and sieve.
 */
class Registry
{
  public:
    static Registry &instance();

    void add(const std::string &name, WorkloadFactory factory);

    /** Instantiate @p name; fatal if unknown. */
    std::unique_ptr<os::GuestWorkload>
    create(const std::string &name, double scale = 1.0) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** The nine PARSEC/SPLASH-2x benchmark names (paper Fig. 1). */
    static const std::vector<std::string> &parsecSplashNames();

  private:
    /**
     * Registration happens at static-init time, but create()/names()
     * are called from parallel-harness workers; the mutex makes the
     * map safe against a late add() (e.g. a test registering a
     * custom workload) racing those readers.
     */
    mutable std::mutex mutex_;
    std::map<std::string, WorkloadFactory> factories_;
};

/** Static registration helper. */
struct RegisterWorkload
{
    RegisterWorkload(const std::string &name, WorkloadFactory factory)
    {
        Registry::instance().add(name, std::move(factory));
    }
};

} // namespace g5p::workloads

#endif // G5P_WORKLOADS_WORKLOAD_HH
