#include "workloads/spec_streams.hh"

namespace g5p::workloads
{

using trace::HostOp;

SpecStreamConfig
specX264()
{
    SpecStreamConfig cfg;
    cfg.name = "525.x264_r";
    cfg.codeFootprintBytes = 7 * 1024;    // tight SIMD-ish kernels
    cfg.instsPerBranch = 9.0;             // long straight runs
    cfg.biasedBranchFraction = 0.985;
    cfg.loadFraction = 0.28;
    cfg.storeFraction = 0.12;
    cfg.hotDataBytes = 24 * 1024;         // L1-resident macroblocks
    cfg.coldDataBytes = 6ull << 20;       // reference frames
    cfg.coldAccessFraction = 0.001;
    cfg.longLatencyOpFraction = 0.0;
    return cfg;
}

SpecStreamConfig
specDeepsjeng()
{
    SpecStreamConfig cfg;
    cfg.name = "531.deepsjeng_r";
    cfg.codeFootprintBytes = 48 * 1024;   // big evaluation functions
    cfg.instsPerBranch = 5.0;
    cfg.biasedBranchFraction = 0.93;
    cfg.loadFraction = 0.27;
    cfg.storeFraction = 0.07;
    cfg.hotDataBytes = 256 * 1024;
    cfg.coldDataBytes = 700ull << 20;     // huge transposition table
    cfg.coldAccessFraction = 0.008;       // highest L3 miss rate
    cfg.longLatencyOpFraction = 0.002;
    return cfg;
}

SpecStreamConfig
specMcf()
{
    SpecStreamConfig cfg;
    cfg.name = "505.mcf_r";
    cfg.codeFootprintBytes = 20 * 1024;
    cfg.instsPerBranch = 4.5;
    cfg.biasedBranchFraction = 0.88;      // data-dependent branches
    cfg.loadFraction = 0.33;              // pointer chasing
    cfg.storeFraction = 0.09;
    cfg.hotDataBytes = 64 * 1024;
    cfg.coldDataBytes = 2048ull << 20;    // network spans DRAM
    cfg.coldAccessFraction = 0.017;       // pointer chases to DRAM
    cfg.longLatencyOpFraction = 0.001;
    return cfg;
}

std::vector<SpecStreamConfig>
specReferenceStreams()
{
    return {specX264(), specDeepsjeng(), specMcf()};
}

SpecStreamGenerator::SpecStreamGenerator(const SpecStreamConfig &config,
                                         std::uint64_t seed)
    : config_(config),
      rng_(seed ^ Rng::hashString(config.name.c_str()))
{
}

void
SpecStreamGenerator::run(trace::HostInstSink &sink)
{
    // Address regions, disjoint from mg5's synthetic segments.
    constexpr HostAddr code_base = 0x1000'0000ULL;
    constexpr HostAddr hot_base = 0x8000'0000ULL;
    constexpr HostAddr cold_base = 0x1'0000'0000ULL;

    // Per-site code typing: what each *address* is — branch, load,
    // store, ALU — plus branch bias and target, are fixed properties
    // of the site, as in real machine code. Only data-dependent
    // outcomes (directions, cold-pointer values) draw randomness.
    auto site_hash = [](HostAddr pc) {
        std::uint64_t z = pc * 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        return z ^ (z >> 31);
    };

    HostAddr code_end = code_base + config_.codeFootprintBytes;
    HostAddr pc = code_base;
    HostAddr hot_cursor = 0;

    double branch_pct = 100.0 / config_.instsPerBranch;
    double load_pct = config_.loadFraction * 100.0;
    double store_pct = config_.storeFraction * 100.0;

    for (std::uint64_t i = 0; i < config_.insts; ++i) {
        std::uint64_t site = site_hash(pc);
        HostOp op;
        op.pc = pc;
        op.lenBytes = 4;
        op.uops = (site >> 5) % 10 == 0 ? 2 : 1;

        HostAddr next = pc + op.lenBytes;
        if (next >= code_end) {
            // Outer-loop back edge.
            op.kind = HostOp::Kind::Branch;
            op.conditional = true;
            op.taken = true;
            op.target = code_base;
            pc = code_base;
            sink.op(op);
            continue;
        }

        double sel = (double)((site >> 16) % 10000) / 100.0;
        if (sel < branch_pct) {
            op.kind = HostOp::Kind::Branch;
            op.conditional = true;
            // Site bias: biasedBranchFraction of sites are nearly
            // deterministic; the rest are data-dependent.
            std::uint64_t bias_sel = (site >> 33) % 1000;
            auto biased =
                (std::uint64_t)(config_.biasedBranchFraction * 1000);
            double taken_prob;
            if (bias_sel < biased / 2)
                taken_prob = 0.002;
            else if (bias_sel < biased)
                taken_prob = 0.998;
            else
                taken_prob = 0.5;
            bool taken = rng_.chance(taken_prob);
            HostAddr target = pc + 8 + ((site >> 40) % 48);
            if (target >= code_end)
                target = code_base;
            op.taken = taken;
            op.target = taken ? target : next;
            pc = op.target;
            sink.op(op);
            continue;
        }

        if (sel < branch_pct + load_pct) {
            op.kind = HostOp::Kind::Load;
            op.dataSize = 8;
            bool cold = config_.coldDataBytes &&
                        rng_.chance(config_.coldAccessFraction);
            if (cold) {
                op.dataAddr = cold_base +
                    (rng_.below(config_.coldDataBytes) & ~7ull);
            } else if (rng_.chance(0.10)) {
                // Occasional scattered touch of the full hot set.
                op.dataAddr = hot_base +
                    (rng_.below(config_.hotDataBytes) & ~7ull);
            } else {
                // High temporal reuse inside a 4KB working block
                // that slides slowly through the hot set.
                ++hot_cursor;
                std::uint64_t block =
                    (hot_cursor / 2048) * 4096 % config_.hotDataBytes;
                op.dataAddr = hot_base + block +
                    (rng_.below(4096) & ~7ull);
            }
        } else if (sel < branch_pct + load_pct + store_pct) {
            op.kind = HostOp::Kind::Store;
            op.dataSize = 8;
            op.dataAddr = hot_base +
                (((site >> 13) * 8) % config_.hotDataBytes);
        } else if (rng_.chance(config_.longLatencyOpFraction)) {
            op.uops = 4; // div-like: extra back-end pressure
        }

        pc = next;
        sink.op(op);
    }
}

} // namespace g5p::workloads
