/**
 * @file
 * SPEC CPU2017 reference streams (paper §III).
 *
 * The paper runs 525.x264_r, 531.deepsjeng_r, and 505.mcf_r on bare
 * metal, purely as reference points for gem5's Top-Down profile. Here
 * each is a parameterized synthetic host-instruction stream with the
 * published characteristics: x264 — the suite's highest IPC, small
 * hot loops; deepsjeng — large footprint, the suite's highest L3 miss
 * rate; mcf — the lowest IPC, heavy back-end stalls from cache misses
 * and branch mispredicts.
 */

#ifndef G5P_WORKLOADS_SPEC_STREAMS_HH
#define G5P_WORKLOADS_SPEC_STREAMS_HH

#include <string>
#include <vector>

#include "base/random.hh"
#include "trace/synthesizer.hh"

namespace g5p::workloads
{

/** Stream parameters (all host-level, no guest simulation). */
struct SpecStreamConfig
{
    std::string name;
    std::uint64_t insts = 2'000'000;

    std::uint64_t codeFootprintBytes = 16 * 1024;
    double instsPerBranch = 6.0;
    double biasedBranchFraction = 0.97; ///< strongly predictable sites
    double loadFraction = 0.25;
    double storeFraction = 0.08;
    std::uint64_t hotDataBytes = 24 * 1024;   ///< L1-resident set
    std::uint64_t coldDataBytes = 0;          ///< big set (0 = none)
    double coldAccessFraction = 0.0;          ///< loads going cold
    double longLatencyOpFraction = 0.0;       ///< div-like FU stalls
};

/** 525.x264_r: highest IPC in SPEC 2017. */
SpecStreamConfig specX264();

/** 531.deepsjeng_r: highest L3 miss rate in SPEC 2017. */
SpecStreamConfig specDeepsjeng();

/** 505.mcf_r: lowest IPC; front+back-end stalls from misses. */
SpecStreamConfig specMcf();

/** The three reference streams, in the paper's order. */
std::vector<SpecStreamConfig> specReferenceStreams();

/** Emits a configured stream into a host model. Deterministic. */
class SpecStreamGenerator
{
  public:
    explicit SpecStreamGenerator(const SpecStreamConfig &config,
                                 std::uint64_t seed = 12345);

    /** Generate config.insts instructions into @p sink. */
    void run(trace::HostInstSink &sink);

  private:
    SpecStreamConfig config_;
    Rng rng_;
};

} // namespace g5p::workloads

#endif // G5P_WORKLOADS_SPEC_STREAMS_HH
