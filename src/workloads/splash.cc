/**
 * @file
 * SPLASH-2x stand-in kernels: water_nsquared (N^2 pair interactions),
 * water_spatial (cell-neighbor interactions), ocean_cp (row-major
 * 5-point stencil), ocean_ncp (column-major stencil — the
 * non-contiguous-partition variant), and fmm (irregular gather).
 */

#include "workloads/workload.hh"

#include <bit>

#include "base/logging.hh"

namespace g5p::workloads
{

using namespace isa;

namespace
{

std::uint64_t
bitsOf(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

// ---------------------------------------------------------------
// water_nsquared: all-pairs molecular interactions. The paper's
// representative workload for its Top-Down deep dives (§IV footnote).
// ---------------------------------------------------------------

class WaterNsquared : public WorkloadBase
{
  public:
    /**
     * @param long_run the `water_nsquared_long` variant: same kernel,
     * 128 base molecules instead of 48. All-pairs is O(n^2), so this
     * runs ~7x longer at equal scale — the long-horizon guest the
     * sampling ablation fast-forwards through.
     */
    explicit WaterNsquared(double scale, bool long_run = false)
        : WorkloadBase(scale), long_(long_run)
    {}

    std::string
    name() const override
    {
        return long_ ? "water_nsquared_long" : "water_nsquared";
    }

    std::uint64_t numMolecules() const
    {
        return scaled(long_ ? 128 : 48);
    }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        std::uint64_t n = numMolecules();
        emitPartition(as, n, num_cpus);

        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("wn_outer");
        as.slli(RegT0, RegS0, 5);          // 32B per molecule
        as.li(RegT1, (std::int64_t)dataBase);
        as.add(RegT0, RegT0, RegT1);
        as.ld(18, RegT0, 0);               // xi
        as.ld(19, RegT0, 8);               // yi
        as.ld(20, RegT0, 16);              // zi
        as.li(26, 0);                      // acc = 0.0
        as.li(27, 0);                      // j

        as.label("wn_inner");
        as.slli(RegT0, 27, 5);
        as.li(RegT1, (std::int64_t)dataBase);
        as.add(RegT0, RegT0, RegT1);
        as.ld(21, RegT0, 0);
        as.ld(22, RegT0, 8);
        as.ld(23, RegT0, 16);
        as.fsub(21, 18, 21);
        as.fmul(21, 21, 21);
        as.fsub(22, 19, 22);
        as.fmul(22, 22, 22);
        as.fsub(23, 20, 23);
        as.fmul(23, 23, 23);
        as.fadd(21, 21, 22);
        as.fadd(21, 21, 23);               // dist^2
        as.fadd(26, 26, 21);               // acc += dist^2
        as.addi(27, 27, 1);
        as.li(RegT0, (std::int64_t)n);
        as.blt(27, RegT0, "wn_inner");

        as.add(RegS1, RegS1, 26);          // checksum += bits(acc)
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "wn_outer");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("water"));
        for (std::uint64_t i = 0; i < numMolecules(); ++i) {
            Addr a = dataBase + i * 32;
            for (unsigned d = 0; d < 3; ++d)
                physmem.write(a + d * 8, 8,
                              bitsOf(rng.uniform() * 4.0));
            physmem.write(a + 24, 8, 0);
        }
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        std::uint64_t n = numMolecules();
        Rng rng(Rng::hashString("water"));
        std::vector<double> pos(n * 3);
        for (auto &v : pos)
            v = rng.uniform() * 4.0;

        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            double acc = 0.0;
            for (std::uint64_t j = 0; j < n; ++j) {
                double dx = pos[i * 3] - pos[j * 3];
                dx *= dx;
                double dy = pos[i * 3 + 1] - pos[j * 3 + 1];
                dy *= dy;
                double dz = pos[i * 3 + 2] - pos[j * 3 + 2];
                dz *= dz;
                double dist = dx + dy;
                dist += dz;
                acc += dist;
            }
            sum += bitsOf(acc);
        }
        return sum;
    }

  private:
    bool long_ = false;
};

RegisterWorkload regWaterN("water_nsquared", [](double s) {
    return std::make_unique<WaterNsquared>(s);
});
RegisterWorkload regWaterNLong("water_nsquared_long", [](double s) {
    return std::make_unique<WaterNsquared>(s, true);
});

// ---------------------------------------------------------------
// water_spatial: cell-list interactions with strided neighbors.
// ---------------------------------------------------------------

class WaterSpatial : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "water_spatial"; }

    /** Cell count, power of two for neighbor wrap-around masks. */
    std::uint64_t
    numCells() const
    {
        std::uint64_t n = 256;
        while (n < scaled(1024))
            n <<= 1;
        return n;
    }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        std::uint64_t n = numCells();
        std::uint64_t row = 16; // cells per "row" of the grid
        emitPartition(as, n, num_cpus);

        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("ws_loop");
        // neighbor indices: (i+1) & (n-1), (i+row) & (n-1)
        as.addi(18, RegS0, 1);
        as.andi(18, 18, (std::int32_t)(n - 1));
        as.addi(19, RegS0, (std::int32_t)row);
        as.andi(19, 19, (std::int32_t)(n - 1));

        as.li(RegT1, (std::int64_t)dataBase);
        as.slli(RegT0, RegS0, 5);
        as.add(RegT0, RegT0, RegT1);       // cell i
        as.ld(20, RegT0, 0);               // m0[i]
        as.ld(21, RegT0, 8);               // m1[i]
        as.mv(25, RegT0);                  // keep for the store

        as.slli(RegT0, 18, 5);
        as.add(RegT0, RegT0, RegT1);
        as.ld(22, RegT0, 0);               // m0[n1]
        as.slli(RegT0, 19, 5);
        as.add(RegT0, RegT0, RegT1);
        as.ld(23, RegT0, 8);               // m1[n2]

        as.fmul(20, 20, 22);
        as.fmul(21, 21, 23);
        as.fadd(20, 20, 21);               // v
        as.sd(20, 25, 24);                 // m3[i] = v
        as.add(RegS1, RegS1, 20);          // checksum += bits(v)

        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "ws_loop");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("water_spatial"));
        for (std::uint64_t i = 0; i < numCells(); ++i) {
            Addr a = dataBase + i * 32;
            physmem.write(a, 8, bitsOf(rng.uniform() + 0.5));
            physmem.write(a + 8, 8, bitsOf(rng.uniform() + 0.5));
            physmem.write(a + 16, 8, 0);
            physmem.write(a + 24, 8, 0);
        }
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        std::uint64_t n = numCells();
        Rng rng(Rng::hashString("water_spatial"));
        std::vector<double> m0(n), m1(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            m0[i] = rng.uniform() + 0.5;
            m1[i] = rng.uniform() + 0.5;
        }
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t n1 = (i + 1) & (n - 1);
            std::uint64_t n2 = (i + 16) & (n - 1);
            double a = m0[i] * m0[n1];
            double b = m1[i] * m1[n2];
            sum += bitsOf(a + b);
        }
        return sum;
    }
};

RegisterWorkload regWaterS("water_spatial", [](double s) {
    return std::make_unique<WaterSpatial>(s);
});

// ---------------------------------------------------------------
// ocean: 5-point Jacobi stencil. _cp partitions contiguous rows;
// _ncp walks column-major (the non-contiguous-partition variant),
// trading cache/TLB locality exactly as the original pair does.
// ---------------------------------------------------------------

class OceanBase : public WorkloadBase
{
  public:
    OceanBase(double scale, bool contiguous)
        : WorkloadBase(scale), contiguous_(contiguous)
    {}

    std::string
    name() const override
    {
        return contiguous_ ? "ocean_cp" : "ocean_ncp";
    }

    static constexpr std::uint64_t cols = 64;

    std::uint64_t rows() const { return scaled(48) + 2; }

    Addr outBase() const { return dataBase + (4u << 20); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        std::uint64_t r = rows();
        std::uint64_t outer_total = contiguous_ ? r : cols;
        std::uint64_t inner_total = contiguous_ ? cols : r;
        // Row-major strides: along a row 8B, along a column cols*8.
        std::int64_t outer_stride = contiguous_ ? (std::int64_t)cols * 8
                                                : 8;
        std::int64_t inner_stride = contiguous_ ? 8
                                                : (std::int64_t)cols * 8;

        emitPartition(as, outer_total, num_cpus);
        as.li(24, (std::int64_t)bitsOf(0.2)); // stencil weight

        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("oc_outer");
        // Skip the boundary lines.
        as.beq(RegS0, RegZero, "oc_next");
        as.li(RegT0, (std::int64_t)(outer_total - 1));
        as.beq(RegS0, RegT0, "oc_next");

        as.li(25, 1); // inner index
        as.label("oc_inner");
        // address = base + outer*outer_stride + inner*inner_stride
        as.li(RegT0, outer_stride);
        as.mul(RegT0, RegS0, RegT0);
        as.li(RegT1, inner_stride);
        as.mul(RegT1, 25, RegT1);
        as.add(RegT0, RegT0, RegT1);
        as.li(RegT1, (std::int64_t)dataBase);
        as.add(26, RegT0, RegT1);          // input cell address

        as.ld(18, 26, 0);                  // center
        as.ld(19, 26, 8);                  // east
        as.ld(20, 26, -8);                 // west
        as.li(RegT1, (std::int64_t)(cols * 8));
        as.add(RegT0, 26, RegT1);
        as.ld(21, RegT0, 0);               // south
        as.sub(RegT0, 26, RegT1);
        as.ld(22, RegT0, 0);               // north

        as.fadd(18, 18, 19);
        as.fadd(18, 18, 20);
        as.fadd(18, 18, 21);
        as.fadd(18, 18, 22);
        as.fmul(18, 18, 24);               // v = 0.2 * sum

        as.li(RegT1,
              (std::int64_t)(outBase() - dataBase));
        as.add(RegT0, 26, RegT1);
        as.sd(18, RegT0, 0);
        as.add(RegS1, RegS1, 18);          // checksum += bits(v)

        as.addi(25, 25, 1);
        as.li(RegT0, (std::int64_t)(inner_total - 1));
        as.blt(25, RegT0, "oc_inner");

        as.label("oc_next");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "oc_outer");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("ocean"));
        for (std::uint64_t i = 0; i < rows() * cols; ++i)
            physmem.write(dataBase + i * 8, 8,
                          bitsOf(rng.uniform()));
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        std::uint64_t r = rows();
        Rng rng(Rng::hashString("ocean"));
        std::vector<double> grid(r * cols);
        for (auto &v : grid)
            v = rng.uniform();

        auto cell = [&](std::uint64_t row, std::uint64_t col) {
            return grid[row * cols + col];
        };

        std::uint64_t sum = 0;
        std::uint64_t outer_total = contiguous_ ? r : cols;
        std::uint64_t inner_total = contiguous_ ? cols : r;
        for (std::uint64_t o = 1; o + 1 < outer_total; ++o) {
            for (std::uint64_t i = 1; i + 1 < inner_total; ++i) {
                std::uint64_t row = contiguous_ ? o : i;
                std::uint64_t col = contiguous_ ? i : o;
                double v = cell(row, col);
                v += cell(row, col + 1);
                v += cell(row, col - 1);
                v += cell(row + 1, col);
                v += cell(row - 1, col);
                v *= 0.2;
                sum += bitsOf(v);
            }
        }
        return sum;
    }

  private:
    bool contiguous_;
};

RegisterWorkload regOceanCp("ocean_cp", [](double s) {
    return std::make_unique<OceanBase>(s, true);
});
RegisterWorkload regOceanNcp("ocean_ncp", [](double s) {
    return std::make_unique<OceanBase>(s, false);
});

// ---------------------------------------------------------------
// fmm: irregular gather through an interaction list (the tree-walk
// phase's memory behaviour). Read-only so multi-CPU interleaving
// cannot perturb the checksum.
// ---------------------------------------------------------------

class Fmm : public WorkloadBase
{
  public:
    using WorkloadBase::WorkloadBase;

    std::string name() const override { return "fmm"; }

    std::uint64_t numBodies() const { return scaled(8192); }
    std::uint64_t listLength() const { return scaled(6144); }

    Addr listBase() const { return dataBase + (8u << 20); }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        emitPartition(as, listLength(), num_cpus);

        as.mv(RegS0, RegT2);
        as.beq(RegS0, RegT3, "epilogue");
        as.label("fm_loop");
        as.slli(RegT0, RegS0, 3);
        as.li(RegT1, (std::int64_t)listBase());
        as.add(RegT0, RegT0, RegT1);
        as.ld(18, RegT0, 0);               // j = list[k]
        as.slli(18, 18, 3);
        as.li(RegT1, (std::int64_t)dataBase);
        as.add(18, 18, RegT1);
        as.ld(19, 18, 0);                  // body[j]
        as.srli(20, 19, 7);
        as.xor_(19, 19, 20);               // mix
        as.add(RegS1, RegS1, 19);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "fm_loop");
        as.j("epilogue");
        emitEpilogue(as, num_cpus);
    }

    void
    initMemory(mem::PhysicalMemory &physmem) const override
    {
        Rng rng(Rng::hashString("fmm"));
        for (std::uint64_t i = 0; i < numBodies(); ++i)
            physmem.write(dataBase + i * 8, 8, rng.next());
        for (std::uint64_t k = 0; k < listLength(); ++k)
            physmem.write(listBase() + k * 8, 8,
                          rng.below(numBodies()));
    }

    std::uint64_t
    expectedResult(unsigned num_cpus) const override
    {
        Rng rng(Rng::hashString("fmm"));
        std::vector<std::uint64_t> bodies(numBodies());
        for (auto &b : bodies)
            b = rng.next();
        std::uint64_t sum = 0;
        for (std::uint64_t k = 0; k < listLength(); ++k) {
            std::uint64_t v = bodies[rng.below(numBodies())];
            sum += v ^ (v >> 7);
        }
        return sum;
    }
};

RegisterWorkload regFmm("fmm", [](double s) {
    return std::make_unique<Fmm>(s);
});

} // namespace

/** Anchor so the linker keeps this TU's static registrations. */
void
linkSplashWorkloads()
{
}

} // namespace g5p::workloads
