#include "workloads/workload.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/sim_error.hh"

namespace g5p::workloads
{

using namespace isa;

void
WorkloadBase::emitPartition(isa::Assembler &as, std::uint64_t total,
                            unsigned num_cpus) const
{
    std::uint64_t chunk = total / num_cpus;
    as.label("_start");
    as.li(RegT0, (std::int64_t)chunk);
    as.mul(RegT2, RegA0, RegT0);      // t2 = start
    as.add(RegT3, RegT2, RegT0);      // t3 = start + chunk
    as.li(RegT4, (std::int64_t)(num_cpus - 1));
    as.bne(RegA0, RegT4, "part_done");
    as.li(RegT3, (std::int64_t)total); // last CPU takes the remainder
    as.label("part_done");
    as.li(RegS1, 0);                  // checksum accumulator
}

void
WorkloadBase::emitEpilogue(isa::Assembler &as,
                           unsigned num_cpus) const
{
    // Publish this CPU's partial checksum.
    as.label("epilogue");
    as.li(RegT0, (std::int64_t)partialAddr(0));
    as.slli(RegT1, RegA0, 3);
    as.add(RegT0, RegT0, RegT1);
    as.sd(RegS1, RegT0, 0);

    as.bne(RegA0, RegZero, "worker_done");

    // CPU 0: wait for every worker's done flag.
    for (unsigned w = 1; w < num_cpus; ++w) {
        std::string lbl = "wait_cpu" + std::to_string(w);
        as.li(RegT0, (std::int64_t)doneFlagAddr(w));
        as.label(lbl);
        as.ld(RegT1, RegT0, 0);
        as.beq(RegT1, RegZero, lbl);
    }

    // Sum the partials into the result slot.
    as.li(RegS1, 0);
    as.li(RegT0, (std::int64_t)partialAddr(0));
    as.li(RegT2, 0);
    as.li(RegT3, (std::int64_t)num_cpus);
    as.label("sum_partials");
    as.ld(RegT1, RegT0, 0);
    as.add(RegS1, RegS1, RegT1);
    as.addi(RegT0, RegT0, 8);
    as.addi(RegT2, RegT2, 1);
    as.blt(RegT2, RegT3, "sum_partials");

    as.li(RegT0, (std::int64_t)resultAddr);
    as.sd(RegS1, RegT0, 0);
    as.halt();

    // Workers: raise the done flag, then halt.
    as.label("worker_done");
    as.li(RegT0, (std::int64_t)doneFlagAddr(0));
    as.slli(RegT1, RegA0, 3);
    as.add(RegT0, RegT0, RegT1);
    as.li(RegT1, 1);
    as.sd(RegT1, RegT0, 0);
    as.halt();
}

// Anchors defined in the kernel translation units; referencing them
// forces the linker to pull those objects (and their static
// workload registrations) out of the archive.
void linkParsecWorkloads();
void linkSplashWorkloads();
void linkSieveWorkload();
void linkBootExitWorkload();
void linkThreadWorkloads();

Registry &
Registry::instance()
{
    static Registry registry;
    linkParsecWorkloads();
    linkSplashWorkloads();
    linkSieveWorkload();
    linkBootExitWorkload();
    linkThreadWorkloads();
    return registry;
}

void
Registry::add(const std::string &name, WorkloadFactory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    g5p_assert(!factories_.count(name), "duplicate workload '%s'",
               name.c_str());
    factories_[name] = std::move(factory);
}

std::unique_ptr<os::GuestWorkload>
Registry::create(const std::string &name, double scale) const
{
    WorkloadFactory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = factories_.find(name);
        if (it == factories_.end()) {
            std::string known;
            for (const auto &[n, _] : factories_)
                known += (known.empty() ? "" : ", ") + n;
            g5p_throw(WorkloadError, "workloads", 0,
                      "unknown workload '%s' (known: %s)",
                      name.c_str(), known.c_str());
        }
        factory = it->second;
    }
    // Build outside the lock: workload construction assembles guest
    // code and is the expensive part.
    return factory(scale);
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (const auto &[name, _] : factories_)
        out.push_back(name);
    return out;
}

const std::vector<std::string> &
Registry::parsecSplashNames()
{
    static const std::vector<std::string> names = {
        "canneal", "blackscholes", "dedup", "streamcluster",
        "water_nsquared", "water_spatial", "ocean_cp", "ocean_ncp",
        "fmm",
    };
    return names;
}

} // namespace g5p::workloads
