#include "isa/decoder.hh"

#include <algorithm>

#include "base/logging.hh"
#include "trace/recorder.hh"

namespace g5p::isa
{

namespace
{

struct Fields
{
    Opcode op;
    RegIndex rd, rs1, rs2;
    std::int32_t imm;
};

Fields
unpack(std::uint64_t word)
{
    return Fields{
        (Opcode)(word >> 56),
        (RegIndex)((word >> 48) & 0xff),
        (RegIndex)((word >> 40) & 0xff),
        (RegIndex)((word >> 32) & 0xff),
        (std::int32_t)(std::uint32_t)(word & 0xffffffffULL),
    };
}

} // namespace

StaticInstPtr
Decoder::decodeOne(std::uint64_t word)
{
    auto [op, rd, rs1, rs2, imm] = unpack(word);
    g5p_assert(op < Opcode::NumOpcodes,
               "undecodable instruction word %#llx",
               (unsigned long long)word);
    g5p_assert(rd < numArchRegs && rs1 < numArchRegs &&
               rs2 < numArchRegs,
               "register index out of range in word %#llx",
               (unsigned long long)word);

    InstFlags flags;

    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sltu: case Opcode::Addi: case Opcode::Andi:
      case Opcode::Ori: case Opcode::Xori: case Opcode::Slli:
      case Opcode::Srli: case Opcode::Srai: case Opcode::Slti:
      case Opcode::Lui:
        return std::make_shared<IntAluInst>(op, rd, rs1, rs2, imm, flags);

      case Opcode::Mul: case Opcode::Mulh:
        flags.isMul = true;
        return std::make_shared<MulDivInst>(op, rd, rs1, rs2, imm, flags);
      case Opcode::Div: case Opcode::Rem:
        flags.isDiv = true;
        return std::make_shared<MulDivInst>(op, rd, rs1, rs2, imm, flags);

      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmul:
        flags.isFloat = true;
        return std::make_shared<FloatInst>(op, rd, rs1, rs2, imm, flags);
      case Opcode::Fdiv:
        flags.isFloat = true;
        flags.isDiv = true;
        return std::make_shared<FloatInst>(op, rd, rs1, rs2, imm, flags);

      case Opcode::Lb: case Opcode::Lh: case Opcode::Lw:
      case Opcode::Ld: case Opcode::Lbu: case Opcode::Lhu:
      case Opcode::Lwu:
        flags.isMemRef = true;
        flags.isLoad = true;
        return std::make_shared<MemInst>(op, rd, rs1, rs2, imm, flags);
      case Opcode::Sb: case Opcode::Sh: case Opcode::Sw:
      case Opcode::Sd:
        flags.isMemRef = true;
        flags.isStore = true;
        return std::make_shared<MemInst>(op, rd, rs1, rs2, imm, flags);

      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
        flags.isControl = true;
        flags.isCondCtrl = true;
        return std::make_shared<BranchInst>(op, rd, rs1, rs2, imm, flags);

      case Opcode::Jal:
        flags.isControl = true;
        flags.isCall = (rd == RegRa);
        return std::make_shared<JumpInst>(op, rd, rs1, rs2, imm, flags);
      case Opcode::Jalr:
        flags.isControl = true;
        flags.isIndirect = true;
        flags.isCall = (rd == RegRa);
        return std::make_shared<JumpInst>(op, rd, rs1, rs2, imm, flags);

      case Opcode::Ecall:
        flags.isSyscall = true;
        return std::make_shared<SysInst>(op, rd, rs1, rs2, imm, flags);
      case Opcode::Halt:
        flags.isHalt = true;
        return std::make_shared<SysInst>(op, rd, rs1, rs2, imm, flags);
      case Opcode::Nop:
        flags.isNop = true;
        return std::make_shared<SysInst>(op, rd, rs1, rs2, imm, flags);

      default:
        g5p_panic("unhandled opcode %u", (unsigned)op);
    }
}

const StaticInstPtr &
Decoder::decode(std::uint64_t word)
{
    // Each opcode's decode path is a distinct generated function in
    // gem5; key the instrumentation the same way.
    G5P_TRACE_SCOPE_KEYED("Decoder::decode", Decode, false,
                          (std::uint32_t)(word >> 56));
    ++numDecodes_;
    // Single hash per miss: try_emplace reserves the slot up front
    // and only a genuinely new word pays for decodeOne().
    auto [it, inserted] = cache_.try_emplace(word);
    if (!inserted) {
        ++numCacheHits_;
        return it->second;
    }
    it->second = decodeOne(word);
    return it->second;
}

StaticInstPtr
Decoder::decodeQuiet(std::uint64_t word)
{
    auto [it, inserted] = cache_.try_emplace(word);
    if (inserted)
        it->second = decodeOne(word);
    return it->second;
}

std::vector<std::uint64_t>
Decoder::cachedWords() const
{
    std::vector<std::uint64_t> words;
    words.reserve(cache_.size());
    for (const auto &[word, inst] : cache_)
        words.push_back(word);
    std::sort(words.begin(), words.end());
    return words;
}

} // namespace g5p::isa
