/**
 * @file
 * The mg5 guest ISA ("MRV"): a 64-bit RISC with fixed 8-byte
 * instruction words.
 *
 * The ISA follows gem5's decomposition: raw machine words are decoded
 * into StaticInst objects; CPU models execute them through an abstract
 * ExecContext so one instruction definition serves the Atomic, Timing,
 * Minor, and O3 CPUs. Per-opcode execute() specializations are
 * instrumented individually (FuncKind::InstExecute), modeling the way
 * gem5's generated per-instruction classes blow up the code footprint.
 *
 * Encoding (64-bit word):
 *   [63:56] opcode   [55:48] rd   [47:40] rs1   [39:32] rs2
 *   [31:0]  imm (signed 32-bit)
 */

#ifndef G5P_ISA_INST_HH
#define G5P_ISA_INST_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"

namespace g5p::isa
{

/** Size of one encoded instruction in guest memory. */
constexpr unsigned instBytes = 8;

/** Number of architectural integer registers (x0 hardwired to 0). */
constexpr unsigned numArchRegs = 32;

/** Guest ABI register assignments (RISC-V-like). */
enum AbiReg : RegIndex
{
    RegZero = 0,  ///< always zero
    RegRa   = 1,  ///< return address
    RegSp   = 2,  ///< stack pointer
    RegA0   = 10, ///< arg0 / return value
    RegA1   = 11,
    RegA2   = 12,
    RegA3   = 13,
    RegA7   = 17, ///< syscall number
    RegT0   = 5,
    RegT1   = 6,
    RegT2   = 7,
    RegS0   = 8,
    RegS1   = 9,
    RegT3   = 28,
    RegT4   = 29,
    RegT5   = 30,
    RegT6   = 31,
};

/** All guest opcodes. */
enum class Opcode : std::uint8_t
{
    // Integer ALU, register-register.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    // Integer ALU, register-immediate.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Lui,
    // Multiply / divide.
    Mul, Mulh, Div, Rem,
    // Floating point (operates on the integer file, double bits).
    Fadd, Fsub, Fmul, Fdiv,
    // Loads.
    Lb, Lh, Lw, Ld, Lbu, Lhu, Lwu,
    // Stores.
    Sb, Sh, Sw, Sd,
    // Control.
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr,
    // System.
    Ecall, Halt, Nop,
    NumOpcodes
};

/** Mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** Instruction classification flags. */
struct InstFlags
{
    bool isMemRef : 1 = false;
    bool isLoad : 1 = false;
    bool isStore : 1 = false;
    bool isControl : 1 = false;
    bool isCall : 1 = false;
    bool isIndirect : 1 = false;
    bool isCondCtrl : 1 = false;
    bool isFloat : 1 = false;
    bool isMul : 1 = false;
    bool isDiv : 1 = false;
    bool isSyscall : 1 = false;
    bool isHalt : 1 = false;
    bool isNop : 1 = false;
};

/** Execution outcome of one instruction. */
enum class Fault : std::uint8_t
{
    None,        ///< completed (or memory access initiated)
    PageFault,   ///< translation failed
    AccessFault, ///< address outside mapped memory
    Syscall,     ///< ECALL: CPU must invoke the syscall layer
    Halt,        ///< HALT: workload finished
};

/** Fault name for diagnostics. */
const char *faultName(Fault fault);

/**
 * Abstract view of CPU state given to StaticInst::execute. Each CPU
 * model provides its own implementation (gem5's ExecContext).
 */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** @{ Register file access; x0 reads as zero, writes ignored. */
    virtual std::uint64_t readReg(RegIndex reg) const = 0;
    virtual void setReg(RegIndex reg, std::uint64_t value) = 0;
    /** @} */

    /** PC of the executing instruction. */
    virtual Addr pc() const = 0;

    /** Set the next PC (taken branches/jumps). */
    virtual void setNextPc(Addr npc) = 0;

    /**
     * Initiate a data read of @p size bytes at virtual @p addr.
     * Atomic contexts complete immediately and the loaded value is
     * available via memData() on return; timing contexts return
     * Fault::None and deliver data later via completeAcc.
     */
    virtual Fault readMem(Addr addr, unsigned size) = 0;

    /** Initiate a data write. */
    virtual Fault writeMem(Addr addr, unsigned size,
                           std::uint64_t data) = 0;

    /** Data returned by the most recent completed read. */
    virtual std::uint64_t memData() const = 0;
};

/**
 * Decoded, immutable instruction. One StaticInst is shared by every
 * dynamic instance of the same machine word (gem5 decode cache).
 */
class StaticInst
{
  public:
    StaticInst(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
               std::int32_t imm, InstFlags flags)
        : op_(op), rd_(rd), rs1_(rs1), rs2_(rs2), imm_(imm),
          flags_(flags)
    {}

    virtual ~StaticInst() = default;

    /**
     * Execute the non-memory semantics (or, for memory instructions,
     * compute the effective address and initiate the access).
     */
    virtual Fault execute(ExecContext &ctx) const = 0;

    /**
     * Complete a load: write @p data (already loaded) to the
     * destination. No-op for non-loads.
     */
    virtual void completeAcc(ExecContext &ctx,
                             std::uint64_t data) const;

    /** Effective address for memory instructions. */
    Addr
    effAddr(const ExecContext &ctx) const
    {
        return ctx.readReg(rs1_) + (std::int64_t)imm_;
    }

    /** Disassembly like "addi x5, x5, 1". */
    std::string disassemble() const;

    Opcode opcode() const { return op_; }
    RegIndex rd() const { return rd_; }
    RegIndex rs1() const { return rs1_; }
    RegIndex rs2() const { return rs2_; }
    std::int32_t imm() const { return imm_; }
    const InstFlags &flags() const { return flags_; }

    /** Access size in bytes for memory instructions (else 0). */
    unsigned memSize() const;

  protected:
    Opcode op_;
    RegIndex rd_, rs1_, rs2_;
    std::int32_t imm_;
    InstFlags flags_;
};

using StaticInstPtr = std::shared_ptr<const StaticInst>;

/** Integer ALU operations (reg-reg and reg-imm, LUI). */
class IntAluInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;
};

/** Multiply / divide. */
class MulDivInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;
};

/** Floating point (double bits in integer registers). */
class FloatInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;
};

/** Loads and stores. */
class MemInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;
    void completeAcc(ExecContext &ctx,
                     std::uint64_t data) const override;
};

/** Conditional branches. */
class BranchInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;

    /** Branch condition without side effects (for BP studies). */
    bool taken(const ExecContext &ctx) const;
};

/** JAL / JALR. */
class JumpInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;
};

/** ECALL / HALT / NOP. */
class SysInst : public StaticInst
{
  public:
    using StaticInst::StaticInst;
    Fault execute(ExecContext &ctx) const override;
};

/** Encode fields into a machine word. */
std::uint64_t encode(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
                     std::int32_t imm);

/** Extract the opcode field of a machine word. */
Opcode rawOpcode(std::uint64_t word);

} // namespace g5p::isa

#endif // G5P_ISA_INST_HH
