#include "isa/inst.hh"

#include <bit>
#include <cstring>
#include <limits>

#include "base/logging.hh"
#include "trace/recorder.hh"

namespace g5p::isa
{

const char *
opcodeName(Opcode op)
{
    static const char *names[] = {
        "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
        "sltu",
        "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti",
        "lui",
        "mul", "mulh", "div", "rem",
        "fadd", "fsub", "fmul", "fdiv",
        "lb", "lh", "lw", "ld", "lbu", "lhu", "lwu",
        "sb", "sh", "sw", "sd",
        "beq", "bne", "blt", "bge", "bltu", "bgeu", "jal", "jalr",
        "ecall", "halt", "nop",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                  (std::size_t)Opcode::NumOpcodes);
    auto idx = (std::size_t)op;
    return idx < (std::size_t)Opcode::NumOpcodes ? names[idx] : "?";
}

const char *
faultName(Fault fault)
{
    switch (fault) {
      case Fault::None:        return "none";
      case Fault::PageFault:   return "page fault";
      case Fault::AccessFault: return "access fault";
      case Fault::Syscall:     return "syscall";
      case Fault::Halt:        return "halt";
    }
    return "?";
}

std::uint64_t
encode(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
       std::int32_t imm)
{
    return ((std::uint64_t)op << 56) |
           ((std::uint64_t)rd << 48) |
           ((std::uint64_t)rs1 << 40) |
           ((std::uint64_t)rs2 << 32) |
           (std::uint64_t)(std::uint32_t)imm;
}

Opcode
rawOpcode(std::uint64_t word)
{
    return (Opcode)(word >> 56);
}

void
StaticInst::completeAcc(ExecContext &ctx, std::uint64_t data) const
{
}

unsigned
StaticInst::memSize() const
{
    switch (op_) {
      case Opcode::Lb: case Opcode::Lbu: case Opcode::Sb: return 1;
      case Opcode::Lh: case Opcode::Lhu: case Opcode::Sh: return 2;
      case Opcode::Lw: case Opcode::Lwu: case Opcode::Sw: return 4;
      case Opcode::Ld: case Opcode::Sd: return 8;
      default: return 0;
    }
}

std::string
StaticInst::disassemble() const
{
    std::string out = opcodeName(op_);
    auto reg = [](RegIndex r) { return "x" + std::to_string(r); };
    if (flags_.isNop || flags_.isHalt || flags_.isSyscall)
        return out;
    if (flags_.isLoad) {
        return out + " " + reg(rd_) + ", " + std::to_string(imm_) +
            "(" + reg(rs1_) + ")";
    }
    if (flags_.isStore) {
        return out + " " + reg(rs2_) + ", " + std::to_string(imm_) +
            "(" + reg(rs1_) + ")";
    }
    if (flags_.isCondCtrl) {
        return out + " " + reg(rs1_) + ", " + reg(rs2_) + ", " +
            std::to_string(imm_);
    }
    if (op_ == Opcode::Jal)
        return out + " " + reg(rd_) + ", " + std::to_string(imm_);
    if (op_ == Opcode::Jalr) {
        return out + " " + reg(rd_) + ", " + std::to_string(imm_) +
            "(" + reg(rs1_) + ")";
    }
    if (op_ == Opcode::Lui)
        return out + " " + reg(rd_) + ", " + std::to_string(imm_);
    return out + " " + reg(rd_) + ", " + reg(rs1_) + ", " +
        (op_ >= Opcode::Addi && op_ <= Opcode::Slti
             ? std::to_string(imm_) : "x" + std::to_string(rs2_));
}

namespace
{

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

Fault
IntAluInst::execute(ExecContext &ctx) const
{
    // Keyed instrumentation: each opcode is a distinct simulator
    // "function", as gem5's generated per-instruction classes are.
    G5P_TRACE_SCOPE_KEYED("IntAluInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    std::uint64_t a = ctx.readReg(rs1_);
    std::uint64_t b = ctx.readReg(rs2_);
    std::uint64_t i = (std::uint64_t)(std::int64_t)imm_;
    std::uint64_t r = 0;
    switch (op_) {
      case Opcode::Add:  r = a + b; break;
      case Opcode::Sub:  r = a - b; break;
      case Opcode::And:  r = a & b; break;
      case Opcode::Or:   r = a | b; break;
      case Opcode::Xor:  r = a ^ b; break;
      case Opcode::Sll:  r = a << (b & 63); break;
      case Opcode::Srl:  r = a >> (b & 63); break;
      case Opcode::Sra:  r = (std::uint64_t)((std::int64_t)a >>
                                             (b & 63)); break;
      case Opcode::Slt:  r = (std::int64_t)a < (std::int64_t)b; break;
      case Opcode::Sltu: r = a < b; break;
      case Opcode::Addi: r = a + i; break;
      case Opcode::Andi: r = a & i; break;
      case Opcode::Ori:  r = a | i; break;
      case Opcode::Xori: r = a ^ i; break;
      case Opcode::Slli: r = a << (imm_ & 63); break;
      case Opcode::Srli: r = a >> (imm_ & 63); break;
      case Opcode::Srai: r = (std::uint64_t)((std::int64_t)a >>
                                             (imm_ & 63)); break;
      case Opcode::Slti: r = (std::int64_t)a < (std::int64_t)imm_;
                         break;
      case Opcode::Lui:  r = (std::uint64_t)(std::int64_t)imm_ << 14;
                         break;
      default:
        g5p_panic("bad IntAlu opcode %s", opcodeName(op_));
    }
    ctx.setReg(rd_, r);
    return Fault::None;
}

Fault
MulDivInst::execute(ExecContext &ctx) const
{
    G5P_TRACE_SCOPE_KEYED("MulDivInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    std::int64_t a = (std::int64_t)ctx.readReg(rs1_);
    std::int64_t b = (std::int64_t)ctx.readReg(rs2_);
    std::uint64_t r = 0;
    switch (op_) {
      case Opcode::Mul:
        // Unsigned multiply for defined wraparound; same low 64 bits.
        r = (std::uint64_t)a * (std::uint64_t)b;
        break;
      case Opcode::Mulh:
        r = (std::uint64_t)(((__int128)a * b) >> 64);
        break;
      case Opcode::Div:
        if (!b)
            r = ~0ULL; // RISC-V div-by-zero
        else if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
            r = (std::uint64_t)a; // RISC-V signed-overflow case
        else
            r = (std::uint64_t)(a / b);
        break;
      case Opcode::Rem:
        if (!b)
            r = (std::uint64_t)a;
        else if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
            r = 0; // RISC-V signed-overflow case
        else
            r = (std::uint64_t)(a % b);
        break;
      default:
        g5p_panic("bad MulDiv opcode %s", opcodeName(op_));
    }
    ctx.setReg(rd_, r);
    return Fault::None;
}

Fault
FloatInst::execute(ExecContext &ctx) const
{
    G5P_TRACE_SCOPE_KEYED("FloatInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    double a = asDouble(ctx.readReg(rs1_));
    double b = asDouble(ctx.readReg(rs2_));
    double r = 0;
    switch (op_) {
      case Opcode::Fadd: r = a + b; break;
      case Opcode::Fsub: r = a - b; break;
      case Opcode::Fmul: r = a * b; break;
      case Opcode::Fdiv: r = a / b; break;
      default:
        g5p_panic("bad Float opcode %s", opcodeName(op_));
    }
    ctx.setReg(rd_, asBits(r));
    return Fault::None;
}

Fault
MemInst::execute(ExecContext &ctx) const
{
    G5P_TRACE_SCOPE_KEYED("MemInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    Addr addr = effAddr(ctx);
    unsigned size = memSize();
    if (flags_.isLoad)
        return ctx.readMem(addr, size);

    std::uint64_t data = ctx.readReg(rs2_);
    if (size < 8)
        data &= (1ULL << (size * 8)) - 1;
    return ctx.writeMem(addr, size, data);
}

void
MemInst::completeAcc(ExecContext &ctx, std::uint64_t data) const
{
    if (!flags_.isLoad)
        return;
    // Sign extension for the signed narrow loads.
    switch (op_) {
      case Opcode::Lb:
        data = (std::uint64_t)(std::int64_t)(std::int8_t)data;
        break;
      case Opcode::Lh:
        data = (std::uint64_t)(std::int64_t)(std::int16_t)data;
        break;
      case Opcode::Lw:
        data = (std::uint64_t)(std::int64_t)(std::int32_t)data;
        break;
      default:
        break;
    }
    ctx.setReg(rd_, data);
}

bool
BranchInst::taken(const ExecContext &ctx) const
{
    std::uint64_t a = ctx.readReg(rs1_);
    std::uint64_t b = ctx.readReg(rs2_);
    switch (op_) {
      case Opcode::Beq:  return a == b;
      case Opcode::Bne:  return a != b;
      case Opcode::Blt:  return (std::int64_t)a < (std::int64_t)b;
      case Opcode::Bge:  return (std::int64_t)a >= (std::int64_t)b;
      case Opcode::Bltu: return a < b;
      case Opcode::Bgeu: return a >= b;
      default:
        g5p_panic("bad Branch opcode %s", opcodeName(op_));
    }
}

Fault
BranchInst::execute(ExecContext &ctx) const
{
    G5P_TRACE_SCOPE_KEYED("BranchInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    if (taken(ctx))
        ctx.setNextPc(ctx.pc() + (std::int64_t)imm_);
    return Fault::None;
}

Fault
JumpInst::execute(ExecContext &ctx) const
{
    G5P_TRACE_SCOPE_KEYED("JumpInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    Addr ret = ctx.pc() + instBytes;
    if (op_ == Opcode::Jal) {
        ctx.setNextPc(ctx.pc() + (std::int64_t)imm_);
    } else {
        Addr target = ctx.readReg(rs1_) + (std::int64_t)imm_;
        ctx.setNextPc(target & ~(Addr)7);
    }
    ctx.setReg(rd_, ret);
    return Fault::None;
}

Fault
SysInst::execute(ExecContext &ctx) const
{
    G5P_TRACE_SCOPE_KEYED("SysInst::execute", InstExecute, true,
                          (std::uint32_t)op_);
    switch (op_) {
      case Opcode::Ecall: return Fault::Syscall;
      case Opcode::Halt:  return Fault::Halt;
      case Opcode::Nop:   return Fault::None;
      default:
        g5p_panic("bad Sys opcode %s", opcodeName(op_));
    }
}

} // namespace g5p::isa
