/**
 * @file
 * In-process assembler for the MRV guest ISA.
 *
 * Workloads (src/workloads) are written against this builder API:
 * instructions append in order, labels resolve forward and backward
 * references, and assemble() produces the final image plus a symbol
 * table. Pseudo-instructions (li, mv, j, call, ret) expand like a real
 * assembler would.
 */

#ifndef G5P_ISA_ASSEMBLER_HH
#define G5P_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace g5p::isa
{

/** An assembled program image. */
struct Program
{
    Addr base = 0;                      ///< load address of word 0
    std::vector<std::uint64_t> words;   ///< encoded instructions
    std::map<std::string, Addr> symbols;///< label -> address

    /** Size in bytes. */
    std::size_t size() const { return words.size() * instBytes; }

    /** Address just past the image. */
    Addr end() const { return base + size(); }

    /** Address of @p label; fatal if undefined. */
    Addr symbol(const std::string &label) const;
};

/**
 * Two-pass label-resolving assembler. All emit methods append one
 * instruction; label operands may be defined later.
 */
class Assembler
{
  public:
    explicit Assembler(Addr base = 0x1000) : base_(base) {}

    /** Define @p name at the current position. */
    Assembler &label(const std::string &name);

    /** @{ Raw emits (register/immediate forms). */
    Assembler &op3(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &opImm(Opcode op, RegIndex rd, RegIndex rs1,
                     std::int32_t imm);
    /** @} */

    /** @{ ALU convenience wrappers. */
    Assembler &add(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Add, rd, rs1, rs2); }
    Assembler &sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Sub, rd, rs1, rs2); }
    Assembler &and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::And, rd, rs1, rs2); }
    Assembler &or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Or, rd, rs1, rs2); }
    Assembler &xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Xor, rd, rs1, rs2); }
    Assembler &sll(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Sll, rd, rs1, rs2); }
    Assembler &srl(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Srl, rd, rs1, rs2); }
    Assembler &slt(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Slt, rd, rs1, rs2); }
    Assembler &mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Mul, rd, rs1, rs2); }
    Assembler &div(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Div, rd, rs1, rs2); }
    Assembler &rem(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Rem, rd, rs1, rs2); }
    Assembler &fadd(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Fadd, rd, rs1, rs2); }
    Assembler &fsub(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Fsub, rd, rs1, rs2); }
    Assembler &fmul(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Fmul, rd, rs1, rs2); }
    Assembler &fdiv(RegIndex rd, RegIndex rs1, RegIndex rs2)
    { return op3(Opcode::Fdiv, rd, rs1, rs2); }
    Assembler &addi(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Addi, rd, rs1, imm); }
    Assembler &andi(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Andi, rd, rs1, imm); }
    Assembler &slli(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Slli, rd, rs1, imm); }
    Assembler &srli(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Srli, rd, rs1, imm); }
    Assembler &slti(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Slti, rd, rs1, imm); }
    /** @} */

    /** @{ Memory. imm is the byte offset from rs1. */
    Assembler &ld(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Ld, rd, rs1, imm); }
    Assembler &lw(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Lw, rd, rs1, imm); }
    Assembler &lb(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Lb, rd, rs1, imm); }
    Assembler &sd(RegIndex rs2, RegIndex rs1, std::int32_t imm);
    Assembler &sw(RegIndex rs2, RegIndex rs1, std::int32_t imm);
    Assembler &sb(RegIndex rs2, RegIndex rs1, std::int32_t imm);
    /** @} */

    /** @{ Control flow to labels. */
    Assembler &beq(RegIndex rs1, RegIndex rs2, const std::string &l);
    Assembler &bne(RegIndex rs1, RegIndex rs2, const std::string &l);
    Assembler &blt(RegIndex rs1, RegIndex rs2, const std::string &l);
    Assembler &bge(RegIndex rs1, RegIndex rs2, const std::string &l);
    Assembler &jal(RegIndex rd, const std::string &l);
    Assembler &j(const std::string &l) { return jal(RegZero, l); }
    Assembler &call(const std::string &l) { return jal(RegRa, l); }
    Assembler &jalr(RegIndex rd, RegIndex rs1, std::int32_t imm)
    { return opImm(Opcode::Jalr, rd, rs1, imm); }
    Assembler &ret() { return jalr(RegZero, RegRa, 0); }
    /** @} */

    /** @{ Pseudo-instructions. */
    Assembler &li(RegIndex rd, std::int64_t value);
    /** Load the absolute address of @p label (patched at assemble). */
    Assembler &la(RegIndex rd, const std::string &label);
    Assembler &mv(RegIndex rd, RegIndex rs1)
    { return addi(rd, rs1, 0); }
    Assembler &nop() { return opImm(Opcode::Nop, 0, 0, 0); }
    Assembler &ecall() { return opImm(Opcode::Ecall, 0, 0, 0); }
    Assembler &halt() { return opImm(Opcode::Halt, 0, 0, 0); }
    /** @} */

    /** Current position (address of the next instruction). */
    Addr here() const { return base_ + words_.size() * instBytes; }

    /** Resolve labels and return the image; fatal on undefined. */
    Program assemble();

  private:
    struct Fixup
    {
        std::size_t index;   ///< instruction word to patch
        std::string label;
        bool isBranch;       ///< pc-relative patch
    };

    Assembler &branch(Opcode op, RegIndex rs1, RegIndex rs2,
                      const std::string &l);

    Addr base_;
    std::vector<std::uint64_t> words_;
    std::map<std::string, Addr> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace g5p::isa

#endif // G5P_ISA_ASSEMBLER_HH
