#include "isa/assembler.hh"

#include "base/logging.hh"

namespace g5p::isa
{

Addr
Program::symbol(const std::string &label) const
{
    auto it = symbols.find(label);
    if (it == symbols.end())
        g5p_fatal("undefined symbol '%s'", label.c_str());
    return it->second;
}

Assembler &
Assembler::label(const std::string &name)
{
    g5p_assert(!labels_.count(name), "duplicate label '%s'",
               name.c_str());
    labels_[name] = here();
    return *this;
}

Assembler &
Assembler::op3(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    words_.push_back(encode(op, rd, rs1, rs2, 0));
    return *this;
}

Assembler &
Assembler::opImm(Opcode op, RegIndex rd, RegIndex rs1,
                 std::int32_t imm)
{
    words_.push_back(encode(op, rd, rs1, 0, imm));
    return *this;
}

Assembler &
Assembler::sd(RegIndex rs2, RegIndex rs1, std::int32_t imm)
{
    words_.push_back(encode(Opcode::Sd, 0, rs1, rs2, imm));
    return *this;
}

Assembler &
Assembler::sw(RegIndex rs2, RegIndex rs1, std::int32_t imm)
{
    words_.push_back(encode(Opcode::Sw, 0, rs1, rs2, imm));
    return *this;
}

Assembler &
Assembler::sb(RegIndex rs2, RegIndex rs1, std::int32_t imm)
{
    words_.push_back(encode(Opcode::Sb, 0, rs1, rs2, imm));
    return *this;
}

Assembler &
Assembler::branch(Opcode op, RegIndex rs1, RegIndex rs2,
                  const std::string &l)
{
    fixups_.push_back(Fixup{words_.size(), l, true});
    words_.push_back(encode(op, 0, rs1, rs2, 0));
    return *this;
}

Assembler &
Assembler::beq(RegIndex rs1, RegIndex rs2, const std::string &l)
{
    return branch(Opcode::Beq, rs1, rs2, l);
}

Assembler &
Assembler::bne(RegIndex rs1, RegIndex rs2, const std::string &l)
{
    return branch(Opcode::Bne, rs1, rs2, l);
}

Assembler &
Assembler::blt(RegIndex rs1, RegIndex rs2, const std::string &l)
{
    return branch(Opcode::Blt, rs1, rs2, l);
}

Assembler &
Assembler::bge(RegIndex rs1, RegIndex rs2, const std::string &l)
{
    return branch(Opcode::Bge, rs1, rs2, l);
}

Assembler &
Assembler::jal(RegIndex rd, const std::string &l)
{
    fixups_.push_back(Fixup{words_.size(), l, true});
    words_.push_back(encode(Opcode::Jal, rd, 0, 0, 0));
    return *this;
}

Assembler &
Assembler::la(RegIndex rd, const std::string &l)
{
    // One addi whose immediate is patched with the label's absolute
    // address at assemble time (guest images live below 2 GiB).
    fixups_.push_back(Fixup{words_.size(), l, false});
    words_.push_back(encode(Opcode::Addi, rd, RegZero, 0, 0));
    return *this;
}

Assembler &
Assembler::li(RegIndex rd, std::int64_t value)
{
    if (value >= INT32_MIN && value <= INT32_MAX)
        return addi(rd, RegZero, (std::int32_t)value);

    std::int64_t hi = value >> 14;
    if (hi >= INT32_MIN && hi <= INT32_MAX) {
        // lui loads imm << 14; patch the low 14 bits with addi.
        std::int32_t lo = (std::int32_t)(value & 0x3fff);
        opImm(Opcode::Lui, rd, 0, (std::int32_t)hi);
        if (lo)
            addi(rd, rd, lo);
        return *this;
    }

    // Full 64-bit constant: top 8 bits, then four 14-bit chunks
    // merged with shift+or — no scratch register needed.
    std::uint64_t v = (std::uint64_t)value;
    addi(rd, RegZero, (std::int32_t)(v >> 56));
    for (int shift = 42; shift >= 0; shift -= 14) {
        slli(rd, rd, 14);
        std::int32_t chunk = (std::int32_t)((v >> shift) & 0x3fff);
        if (chunk)
            opImm(Opcode::Ori, rd, rd, chunk);
    }
    return *this;
}

Program
Assembler::assemble()
{
    for (const Fixup &fix : fixups_) {
        auto it = labels_.find(fix.label);
        if (it == labels_.end())
            g5p_fatal("undefined label '%s'", fix.label.c_str());
        Addr inst_addr = base_ + fix.index * instBytes;
        std::int64_t value = fix.isBranch
            ? (std::int64_t)it->second - (std::int64_t)inst_addr
            : (std::int64_t)it->second;
        g5p_assert(value >= INT32_MIN && value <= INT32_MAX,
                   "reference to '%s' out of range",
                   fix.label.c_str());
        words_[fix.index] =
            (words_[fix.index] & ~0xffffffffULL) |
            (std::uint64_t)(std::uint32_t)(std::int32_t)value;
    }
    Program prog;
    prog.base = base_;
    prog.words = words_;
    prog.symbols = labels_;
    return prog;
}

} // namespace g5p::isa
