/**
 * @file
 * Machine-word decoder with a gem5-style decode cache: every distinct
 * raw instruction word is decoded once into a shared StaticInst.
 */

#ifndef G5P_ISA_DECODER_HH
#define G5P_ISA_DECODER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/huge_alloc.hh"
#include "isa/inst.hh"

namespace g5p::isa
{

/**
 * Decodes raw 64-bit words into StaticInst objects. Each CPU owns a
 * Decoder; the cache makes repeated decode of hot code cheap, exactly
 * as gem5's decode cache does.
 */
class Decoder
{
  public:
    Decoder() : cache_(initialCacheBuckets, Hash{}, Eq{},
                       Alloc{&arena_})
    {
    }

    /** Decode @p word, reusing the cached StaticInst if present.
     *  Returns a reference into the decode cache (stable until the
     *  cache is cleared), so hot fetch loops skip the shared_ptr
     *  refcount round-trip; copy into a StaticInstPtr to keep the
     *  instruction past the decoder's lifetime. */
    const StaticInstPtr &decode(std::uint64_t word);

    /** Number of distinct words decoded. */
    std::size_t cacheSize() const { return cache_.size(); }

    /** Total decode() calls. */
    std::uint64_t numDecodes() const { return numDecodes_; }

    /** Decode-cache hits. */
    std::uint64_t numCacheHits() const { return numCacheHits_; }

    /** Fraction of decode() calls served from the cache. */
    double
    cacheHitRate() const
    {
        return numDecodes_ ? (double)numCacheHits_ /
                             (double)numDecodes_ : 0.0;
    }

    /** Build a StaticInst without caching (tests, disassembly). */
    static StaticInstPtr decodeOne(std::uint64_t word);

    /**
     * Cache-filling decode that leaves the hit/decode counters
     * untouched. Checkpoint restore re-decodes pipeline contents
     * through this path, then restores the counters exactly.
     */
    StaticInstPtr decodeQuiet(std::uint64_t word);

    /** All cached words, sorted (checkpointing). */
    std::vector<std::uint64_t> cachedWords() const;

    /** Force the counters (checkpoint restore). */
    void
    setCounters(std::uint64_t decodes, std::uint64_t hits)
    {
        numDecodes_ = decodes;
        numCacheHits_ = hits;
    }

  private:
    /** Pre-sized for a typical hot working set of distinct words,
     *  avoiding rehash storms while the cache warms up. */
    static constexpr std::size_t initialCacheBuckets = 1024;

    using Hash = std::hash<std::uint64_t>;
    using Eq = std::equal_to<std::uint64_t>;
    using Alloc = base::ArenaAllocator<
        std::pair<const std::uint64_t, StaticInstPtr>>;

    /**
     * Backing for the decode cache's nodes and bucket arrays. The
     * cache is the paper's poster-child hot structure (gem5's decode
     * cache is what the §V-A THP experiment mostly helps), and it
     * only ever grows — a huge-page bump arena fits exactly.
     * Declared before cache_ so it outlives the map.
     */
    base::ThpArena arena_;

    std::unordered_map<std::uint64_t, StaticInstPtr, Hash, Eq,
                       Alloc> cache_;
    std::uint64_t numDecodes_ = 0;
    std::uint64_t numCacheHits_ = 0;
};

} // namespace g5p::isa

#endif // G5P_ISA_DECODER_HH
