/**
 * @file
 * Shared command-line parsing for the mg5 examples. Every example
 * accepts the same positionals ([workload] ([cpu-model]) [scale])
 * and the same observability / run-control flags, assembled straight
 * into a sim::RunOptions:
 *
 *   --profile=<trace.json>     self-profile the run, write a Chrome
 *                              trace (open in Perfetto)
 *   --profile-batch=<n>        clock read granularity in batch mode
 *   --metrics=<out.jsonl>      live JSONL metrics stream (tail -f)
 *   --cpu=<model>              atomic|timing|minor|o3
 *   --watchdog-events=<n>      supervise: livelock threshold
 *   --max-wall-seconds=<s>     supervise: wall-clock budget
 *   --auto-checkpoint=<ticks>  periodic crash-safe checkpoints
 *   --auto-checkpoint-prefix=<p>
 *   --fault-seed=<n>           seed injected memory faults
 *   --jobs=<n>                 worker threads for multi-run sweeps
 *                              (0 = all hardware threads); results
 *                              are byte-identical to --jobs=1
 *   --cores=<n>                guest CPU cores behind the coherent
 *                              xbar (1..16); multi-threaded
 *                              workloads fan out over them
 *   --fast-forward=<insts>     run the first N guest instructions on
 *                              Atomic, then drain-and-switch to the
 *                              detailed model
 *   --switch-cpu=<model>       the model to switch into at the
 *                              fast-forward boundary (defaults to
 *                              --cpu / the positional model)
 *   --sample=<K,W[,seed]>      SimPoint-style sampling: estimate the
 *                              whole run from K detailed intervals of
 *                              W instructions (checkpoint farm +
 *                              parallel detail via --jobs)
 *   --sample-warmup=<insts>    detailed instructions run before each
 *                              measured window to re-warm the branch
 *                              predictor and pipeline state the
 *                              Atomic fast-forward does not model
 *   --help
 *
 * Example-specific value flags (e.g. profile_simulation's
 * --checkpoint) are declared in CliSpec::extraFlags and surfaced in
 * CliOptions::extra. Flags accept both --flag=value and --flag value.
 */

#ifndef G5P_EXAMPLES_COMMON_CLI_HH
#define G5P_EXAMPLES_COMMON_CLI_HH

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/sim_error.hh"
#include "os/system.hh"
#include "sim/run_options.hh"

namespace g5p::examples
{

/** What an example accepts beyond the shared surface. */
struct CliSpec
{
    /** Positional synopsis for --help, e.g. "[workload] [scale]". */
    std::string usage = "[workload] [scale]";

    /** Second positional is a CPU model (profile_simulation). */
    bool cpuModelPositional = false;

    std::string defaultWorkload = "water_nsquared";
    os::CpuModel defaultCpuModel = os::CpuModel::O3;
    double defaultScale = 0.25;

    /** Example-specific flags that take a value (with leading --). */
    std::vector<std::string> extraFlags;
};

/** Parsed command line. */
struct CliOptions
{
    std::string workload;
    os::CpuModel cpuModel = os::CpuModel::O3;
    double scale = 0.25;

    /** Run-control knobs assembled from the shared flags; hand it to
     *  Simulator::configure / System::run / RunConfig. */
    sim::RunOptions run;

    /** Worker threads for examples that sweep over several runs
     *  (core::runExperiments); 1 = serial, 0 = hardware threads. */
    unsigned jobs = 1;

    /** Guest CPU cores (SystemConfig::numCpus / RunConfig::guestCpus);
     *  multi-threaded workloads spread across them via the guest
     *  threading shim. */
    unsigned cores = 1;

    /** Atomic fast-forward length before the drain-and-switch
     *  (RunConfig::fastForwardInsts); 0 = no fast-forward. */
    std::uint64_t fastForwardInsts = 0;

    /** Post-boundary model from --switch-cpu; when given it becomes
     *  the detailed model (cpuModel) and implies fast-forwarding. */
    bool switchCpuGiven = false;
    os::CpuModel switchCpu = os::CpuModel::O3;

    /** @{ Interval sampling from --sample=K,W[,seed]; K == 0 means
     *  a plain (unsampled) run. */
    unsigned sampleK = 0;
    std::uint64_t sampleW = 0;
    std::uint64_t sampleSeed = 1;
    std::uint64_t sampleWarmup = 0;
    /** @} */

    bool sampling() const { return sampleK > 0; }

    /** Shorthand for run.profiler.tracePath. */
    std::string profilePath;

    /** Values of CliSpec::extraFlags, keyed by flag name. */
    std::map<std::string, std::string> extra;

    bool profiling() const { return run.profiler.enabled; }
};

inline os::CpuModel
parseCpuModel(const std::string &name)
{
    if (name == "atomic")
        return os::CpuModel::Atomic;
    if (name == "timing")
        return os::CpuModel::Timing;
    if (name == "minor")
        return os::CpuModel::Minor;
    if (name == "o3")
        return os::CpuModel::O3;
    g5p_throw(ConfigError, "cli", 0,
              "unknown CPU model '%s' (use atomic|timing|minor|o3)",
              name.c_str());
}

inline void
printCliUsage(std::ostream &os, const char *argv0,
              const CliSpec &spec)
{
    os << "usage: " << argv0 << " " << spec.usage << " [flags]\n"
       << "flags:\n"
          "  --profile=<trace.json>       self-profile, write a "
          "Chrome trace\n"
          "  --profile-batch=<n>          events per clock read "
          "(batch mode)\n"
          "  --metrics=<out.jsonl>        live JSONL metrics stream\n"
          "  --cpu=<atomic|timing|minor|o3>\n"
          "  --watchdog-events=<n>        livelock watchdog "
          "threshold\n"
          "  --max-wall-seconds=<s>       wall-clock budget "
          "(supervised)\n"
          "  --auto-checkpoint=<ticks>    periodic checkpoint "
          "period\n"
          "  --auto-checkpoint-prefix=<p> checkpoint path prefix\n"
          "  --fault-seed=<n>             seed injected memory "
          "faults\n"
          "  --jobs=<n>                   worker threads for sweep "
          "examples (0 = all)\n"
          "  --cores=<n>                  guest CPU cores (coherent "
          "multi-core, 1..16)\n"
          "  --fast-forward=<insts>       Atomic to the boundary, "
          "then switch to the detailed model\n"
          "  --switch-cpu=<model>         model to switch into at "
          "the boundary\n"
          "  --sample=<K,W[,seed]>        estimate the run from K "
          "detailed W-inst intervals\n"
          "  --sample-warmup=<insts>      detailed warmup before "
          "each measured window\n"
          "  --help\n";
    for (const auto &flag : spec.extraFlags)
        os << "  " << flag << " <value>\n";
}

/**
 * Parse @p argv against @p spec. Exits 0 on --help; throws
 * ConfigError (mapped to exit 1 by runGuarded) on bad input.
 */
inline CliOptions
parseCli(int argc, char **argv, const CliSpec &spec = {})
{
    CliOptions opts;
    std::vector<std::string> pos;
    bool cpu_flag_given = false;

    auto is_extra = [&](const std::string &flag) {
        return std::find(spec.extraFlags.begin(),
                         spec.extraFlags.end(),
                         flag) != spec.extraFlags.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos.push_back(arg);
            continue;
        }

        std::string flag = arg, value;
        bool has_value = false;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flag = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }

        if (flag == "--help") {
            printCliUsage(std::cout, argv[0], spec);
            std::exit(0);
        }

        // Every remaining flag takes a value.
        if (!has_value) {
            if (i + 1 >= argc)
                g5p_throw(ConfigError, "cli", 0,
                          "flag '%s' needs a value", flag.c_str());
            value = argv[++i];
        }

        if (flag == "--profile") {
            opts.run.profiler.enabled = true;
            opts.run.profiler.tracePath = value;
            opts.run.profiler.traceSlices = true;
            opts.profilePath = value;
        } else if (flag == "--profile-batch") {
            opts.run.profiler.batchEvents =
                (std::uint32_t)std::strtoul(value.c_str(), nullptr,
                                            0);
        } else if (flag == "--metrics") {
            opts.run.profiler.enabled = true;
            opts.run.profiler.metricsPath = value;
        } else if (flag == "--cpu") {
            opts.cpuModel = parseCpuModel(value);
            cpu_flag_given = true;
        } else if (flag == "--watchdog-events") {
            opts.run.supervise = true;
            opts.run.watchdog.livelockEvents =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (flag == "--max-wall-seconds") {
            opts.run.supervise = true;
            opts.run.watchdog.maxWallSeconds =
                std::atof(value.c_str());
        } else if (flag == "--auto-checkpoint") {
            opts.run.autoCheckpointPeriod =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (flag == "--auto-checkpoint-prefix") {
            opts.run.autoCheckpointPrefix = value;
        } else if (flag == "--fault-seed") {
            opts.run.faultSeed =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (flag == "--jobs") {
            opts.jobs =
                (unsigned)std::strtoul(value.c_str(), nullptr, 0);
        } else if (flag == "--cores") {
            opts.cores =
                (unsigned)std::strtoul(value.c_str(), nullptr, 0);
            if (opts.cores < 1 || opts.cores > 16)
                g5p_throw(ConfigError, "cli", 0,
                          "--cores must be in 1..16, got '%s'",
                          value.c_str());
        } else if (flag == "--fast-forward") {
            opts.fastForwardInsts =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (flag == "--switch-cpu") {
            opts.switchCpu = parseCpuModel(value);
            opts.switchCpuGiven = true;
        } else if (flag == "--sample") {
            // K,W[,seed]
            char *end = nullptr;
            opts.sampleK =
                (unsigned)std::strtoul(value.c_str(), &end, 0);
            if (!end || *end != ',')
                g5p_throw(ConfigError, "cli", 0,
                          "--sample needs K,W[,seed], got '%s'",
                          value.c_str());
            opts.sampleW = std::strtoull(end + 1, &end, 0);
            if (end && *end == ',')
                opts.sampleSeed = std::strtoull(end + 1, nullptr, 0);
            if (opts.sampleK == 0 || opts.sampleW == 0)
                g5p_throw(ConfigError, "cli", 0,
                          "--sample needs K >= 1 and W >= 1");
        } else if (flag == "--sample-warmup") {
            opts.sampleWarmup =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (is_extra(flag)) {
            opts.extra[flag] = value;
        } else {
            g5p_throw(ConfigError, "cli", 0,
                      "unknown flag '%s' (try --help)", flag.c_str());
        }
    }

    opts.workload = !pos.empty() ? pos[0] : spec.defaultWorkload;
    std::size_t scale_at = 1;
    if (!cpu_flag_given)
        opts.cpuModel = spec.defaultCpuModel;
    if (spec.cpuModelPositional) {
        if (pos.size() > 1 && !cpu_flag_given)
            opts.cpuModel = parseCpuModel(pos[1]);
        scale_at = 2;
    }
    opts.scale = pos.size() > scale_at
                     ? std::atof(pos[scale_at].c_str())
                     : spec.defaultScale;
    if (pos.size() > scale_at + 1)
        g5p_throw(ConfigError, "cli", 0,
                  "unexpected argument '%s' (usage: %s)",
                  pos[scale_at + 1].c_str(), spec.usage.c_str());
    if (opts.switchCpuGiven) {
        if (opts.fastForwardInsts == 0)
            g5p_throw(ConfigError, "cli", 0,
                      "--switch-cpu needs --fast-forward=<insts> "
                      "to place the boundary");
        // The switch target is the detailed (post-boundary) model.
        opts.cpuModel = opts.switchCpu;
    }
    return opts;
}

} // namespace g5p::examples

#endif // G5P_EXAMPLES_COMMON_CLI_HH
