/**
 * @file
 * Quickstart: build a simulated machine, run a workload on each CPU
 * model, and print gem5-style statistics — the mg5 equivalent of
 * "hello world" in gem5's Learning-gem5 tutorial.
 *
 * Usage: quickstart [workload] [scale]
 */

#include <iostream>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "core/report.hh"
#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

int
runMain(int argc, char **argv)
{
    std::string workload_name = argc > 1 ? argv[1] : "sieve";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    std::cout << "mg5 quickstart: running '" << workload_name
              << "' (scale " << scale << ") on all four CPU models\n";

    core::Table table({"CPU model", "guest insts", "sim ticks",
                       "guest IPC", "checksum", "ok"});

    for (os::CpuModel model : os::allCpuModels) {
        sim::Simulator simulator("system");
        auto workload = workloads::Registry::instance().create(
            workload_name, scale);

        os::SystemConfig cfg;
        cfg.cpuModel = model;
        cfg.mode = os::SimMode::SE;
        cfg.numCpus = 1;
        os::System system(simulator, cfg, *workload);

        sim::SimResult result = system.run();
        if (result.cause != sim::ExitCause::Finished) {
            std::cerr << "unexpected exit: "
                      << sim::exitCauseName(result.cause) << "\n";
            return 1;
        }

        auto &cpu = system.cpu(0);
        double ipc = cpu.numInsts() /
                     (double)(result.tick / 500); // 2GHz, 500 ticks
        std::uint64_t expected = workload->expectedResult(1);
        bool ok = expected == 0 || system.result() == expected;

        table.addRow({os::cpuModelName(model),
                      std::to_string(cpu.numInsts()),
                      std::to_string(result.tick),
                      fmtDouble(ipc, 3),
                      std::to_string(system.result()),
                      ok ? "yes" : "NO"});
    }

    table.print(std::cout);
    std::cout << "\nAll four CPU models computed the same "
              << "architectural result at different timing detail.\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded([&] { return runMain(argc, argv); });
}
