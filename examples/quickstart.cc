/**
 * @file
 * Quickstart: build a simulated machine, run a workload on each CPU
 * model, and print gem5-style statistics — the mg5 equivalent of
 * "hello world" in gem5's Learning-gem5 tutorial.
 *
 * Usage: quickstart [workload] [scale] [flags]  (see --help)
 *
 * With --profile=trace.json the simulator profiles itself: all four
 * runs land in one Chrome trace (one trace process per CPU model),
 * and the hottest event classes print per model.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "common/cli.hh"
#include "core/report.hh"
#include "core/telemetry.hh"
#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

int
runMain(int argc, char **argv)
{
    examples::CliSpec spec;
    spec.usage = "[workload] [scale]";
    spec.defaultWorkload = "sieve";
    examples::CliOptions opts = examples::parseCli(argc, argv, spec);

    std::cout << "mg5 quickstart: running '" << opts.workload
              << "' (scale " << opts.scale << ", " << opts.cores
              << (opts.cores == 1 ? " core" : " cores")
              << ") on all four CPU models\n";

    core::Table table({"CPU model", "guest insts", "sim ticks",
                       "guest IPC", "checksum", "ok"});

    // One profiler per model, kept alive past its Simulator so the
    // four runs become four processes in a single trace file.
    std::vector<std::unique_ptr<sim::Profiler>> profilers;
    std::vector<core::TraceSession> sessions;

    for (os::CpuModel model : os::allCpuModels) {
        sim::Simulator simulator("system");
        auto workload = workloads::Registry::instance().create(
            opts.workload, opts.scale);

        os::SystemConfig cfg;
        cfg.cpuModel = model;
        cfg.mode = os::SimMode::SE;
        cfg.numCpus = opts.cores;
        os::System system(simulator, cfg, *workload);

        // Run-control knobs minus the profiler, which this example
        // manages itself (externally, so data outlives the machine).
        sim::RunOptions run = opts.run;
        run.profiler = {};
        simulator.configure(run);

        if (opts.profiling()) {
            sim::ProfilerConfig pc = opts.run.profiler;
            if (!pc.metricsPath.empty())
                pc.metricsPath += std::string(".") +
                                  os::cpuModelName(model);
            profilers.push_back(
                std::make_unique<sim::Profiler>(pc));
            simulator.attachProfiler(*profilers.back());
            sessions.push_back({os::cpuModelName(model),
                                profilers.back().get()});
        }

        sim::SimResult result = system.run();
        if (result.cause != sim::ExitCause::Finished) {
            std::cerr << "unexpected exit: "
                      << sim::exitCauseName(result.cause) << "\n";
            return 1;
        }
        if (opts.profiling())
            profilers.back()->disarm();

        // Aggregate over every core, not just cpu0 — on multi-core
        // runs the workers commit a large share of the instructions.
        std::uint64_t insts = system.totalInsts();
        double ipc = insts /
                     (double)(result.tick / 500); // 2GHz, 500 ticks
        std::uint64_t expected =
            workload->expectedResult(opts.cores);
        bool ok = expected == 0 || system.result() == expected;

        table.addRow({os::cpuModelName(model),
                      std::to_string(insts),
                      std::to_string(result.tick),
                      fmtDouble(ipc, 3),
                      std::to_string(system.result()),
                      ok ? "yes" : "NO"});
    }

    table.print(std::cout);
    std::cout << "\nAll four CPU models computed the same "
              << "architectural result at different timing detail.\n";

    if (opts.profiling()) {
        for (const auto &session : sessions) {
            core::printHostProfile(
                std::cout,
                std::string("self-profile: ") + session.label +
                    " (wall clock by event class)",
                core::hostProfileFromSelf(*session.profiler), 5);
        }
        if (!opts.profilePath.empty() &&
            core::writeChromeTraceFile(opts.profilePath, sessions)) {
            std::cout << "\nChrome trace (all four models) written "
                      << "to '" << opts.profilePath
                      << "' — open in Perfetto.\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded([&] { return runMain(argc, argv); });
}
