/**
 * @file
 * g5p_sweepd: the crash-resilient sweep daemon.
 *
 * Runs the SweepService over an on-disk spool: heals the spool on
 * start (interrupted jobs are requeued), admits sweep specs clients
 * drop into `<spool>/incoming/` (see g5p_sweep), and executes jobs
 * in supervised batches with retry/backoff, poisoning, and the
 * verified result cache. Kill it — with SIGTERM for a clean drain
 * or kill -9 for the hard way — and restart it: the sweep continues
 * where it stopped, and finished work is served from the cache.
 *
 * Usage:
 *   g5p_sweepd [--spool=DIR] [--jobs=N] [--batch=N]
 *              [--wall-cap=SECONDS] [--max-attempts=N]
 *              [--backoff-ms=MS] [--queue-bound=N]
 *              [--checkpoint-period=TICKS] [--poll-ms=MS] [--once]
 *
 * --once drains the current queue and exits instead of watching
 * incoming/ forever (what the tests and CI use).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "base/sim_error.hh"
#include "service/sweepd.hh"

using namespace g5p;

namespace
{

/** SIGTERM/SIGINT land here; the main loop drains and exits. */
volatile std::sig_atomic_t stopSignal = 0;

void
onStopSignal(int)
{
    stopSignal = 1;
}

bool
flagValue(const std::string &arg, const std::string &name,
          std::string &out)
{
    std::string prefix = "--" + name + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

void
printStats(const service::SweepService &daemon)
{
    const service::ServiceStats &s = daemon.stats();
    const service::ResultCache::Stats &c = daemon.cache().stats();
    std::cout << "sweepd: admitted " << s.admitted << "/"
              << s.submitted << " (rejected " << s.rejected
              << ", shed " << s.shed << "), dispatched "
              << s.dispatched << ", completed " << s.completed
              << " (" << s.cacheServed << " from cache), retries "
              << s.retries << ", poisoned " << s.poisoned
              << ", resumed " << s.resumedFromCheckpoint << "\n"
              << "cache: " << c.hits << " hits, " << c.misses
              << " misses, " << c.stores << " stores, evicted "
              << c.corruptEvicted << " corrupt + " << c.staleEvicted
              << " stale\n";
}

int
runMain(int argc, char **argv)
{
    service::ServiceConfig config;
    unsigned poll_ms = 500;
    bool once = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i], value;
        if (flagValue(arg, "spool", value)) {
            config.spoolDir = value;
        } else if (flagValue(arg, "jobs", value)) {
            config.jobs = (unsigned)std::stoul(value);
        } else if (flagValue(arg, "batch", value)) {
            config.batch = (unsigned)std::stoul(value);
        } else if (flagValue(arg, "wall-cap", value)) {
            config.jobWallCapSeconds = std::stod(value);
        } else if (flagValue(arg, "max-attempts", value)) {
            config.maxAttempts = (unsigned)std::stoul(value);
        } else if (flagValue(arg, "backoff-ms", value)) {
            config.backoffBaseMs = std::stod(value);
        } else if (flagValue(arg, "queue-bound", value)) {
            config.queueBound = (std::size_t)std::stoull(value);
        } else if (flagValue(arg, "checkpoint-period", value)) {
            config.autoCheckpointPeriod = std::stoull(value);
        } else if (flagValue(arg, "poll-ms", value)) {
            poll_ms = (unsigned)std::stoul(value);
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout <<
                "usage: g5p_sweepd [--spool=DIR] [--jobs=N] "
                "[--batch=N]\n"
                "                  [--wall-cap=SECONDS] "
                "[--max-attempts=N]\n"
                "                  [--backoff-ms=MS] "
                "[--queue-bound=N]\n"
                "                  [--checkpoint-period=TICKS] "
                "[--poll-ms=MS] [--once]\n";
            return 0;
        } else {
            g5p_throw(ConfigError, "g5p_sweepd", 0,
                      "unknown flag '%s' (try --help)", arg.c_str());
        }
    }

    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);

    service::SweepService daemon(config);
    const service::RecoveryReport &rec = daemon.recoveryReport();
    std::cout << "sweepd: spool '" << config.spoolDir << "' open";
    if (rec.requeuedRunning + rec.requeuedFailed)
        std::cout << ", requeued "
                  << rec.requeuedRunning + rec.requeuedFailed
                  << " interrupted job(s)";
    if (rec.corruptQuarantined)
        std::cout << ", quarantined " << rec.corruptQuarantined
                  << " corrupt file(s)";
    std::cout << "\n";

    while (true) {
        if (stopSignal) {
            daemon.requestStop();
            std::cout << "sweepd: stop requested, draining\n";
            break;
        }
        daemon.pollIncoming();
        if (!daemon.step()) {
            if (once)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(poll_ms));
        }
    }

    printStats(daemon);
    std::cout << "sweepd: clean exit (spool state is durable; "
              << "restart to continue)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded([&] { return runMain(argc, argv); });
}
