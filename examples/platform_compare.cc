/**
 * @file
 * Example: the paper's motivating experiment — run the *same*
 * simulation on the three Table II hosts and see the Apple M1 parts
 * win, then break the win down into its Fig. 8 mechanisms (L1 size,
 * page size, line size).
 *
 * Usage: platform_compare [workload] [scale]
 */

#include <iostream>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "common/cli.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "core/report.hh"
#include "core/telemetry.hh"

using namespace g5p;

namespace
{

int
runMain(int argc, char **argv)
{
    examples::CliSpec spec;
    spec.usage = "[workload] [scale]";
    examples::CliOptions opts = examples::parseCli(argc, argv, spec);

    core::RunConfig cfg;
    cfg.workload = opts.workload;
    cfg.workloadScale = opts.scale;
    cfg.cpuModel = os::CpuModel::O3;
    cfg.run = opts.run;

    // One profiler across the whole campaign: each platform's run
    // becomes a labelled span in a single trace.
    sim::Profiler campaignProfiler(opts.run.profiler);
    if (opts.profiling()) {
        cfg.run.profiler = {};
        cfg.profiler = &campaignProfiler;
    }

    std::cout << "Same gem5 simulation (" << cfg.workload << ", "
              << "O3 CPU) on the three evaluation platforms:\n\n";

    core::Table table({"Platform", "sim time", "speedup", "IPC",
                       "L1I miss%", "iTLB miss%", "mispredict%"});

    // The three platform runs are independent: fan them out on the
    // worker pool (--jobs). A shared campaign profiler pins the runs
    // to one thread, so profiling forces serial.
    auto platforms = host::tableIIPlatforms();
    std::vector<core::RunConfig> cfgs;
    for (const auto &platform : platforms) {
        cfg.platform = platform;
        cfgs.push_back(cfg);
    }
    unsigned jobs = opts.profiling() ? 1 : opts.jobs;
    std::vector<core::RunResult> results =
        core::runExperiments(cfgs, jobs);

    double xeon_time = 0;
    for (std::size_t i = 0; i < platforms.size(); ++i) {
        const auto &platform = platforms[i];
        const core::RunResult &r = results[i];
        if (platform.name == "Intel_Xeon")
            xeon_time = r.hostSeconds;
        const auto &c = r.counters;
        auto pct = [](std::uint64_t m, std::uint64_t t) {
            return t ? fmtDouble(100.0 * m / t, 3) + "%"
                     : std::string("-");
        };
        table.addRow({platform.name,
                      fmtDouble(r.hostSeconds * 1e3, 2) + "ms",
                      fmtDouble(xeon_time / r.hostSeconds, 2) + "x",
                      fmtDouble(r.ipc, 2),
                      pct(c.icacheMisses, c.icacheAccesses),
                      pct(c.itlbMisses, c.itlbAccesses),
                      pct(c.mispredicts, c.branches)});
    }
    table.print(std::cout);

    std::cout <<
        "\nWhy the M1 parts win (paper §IV-B): 6x the L1I "
        "(192KB vs 32KB), 4x the L1D,\n16KB pages (4x iTLB reach), "
        "128B lines (half the compulsory misses), and an\n8-wide "
        "front-end with no legacy-decode bottleneck.\n";

    if (opts.profiling()) {
        campaignProfiler.disarm();
        core::printHostProfile(
            std::cout,
            "self-profile (all platforms, wall clock by event class)",
            core::hostProfileFromSelf(campaignProfiler), 10);
        if (!opts.profilePath.empty() &&
            core::writeChromeTraceFile(
                opts.profilePath,
                {{"platform_compare", &campaignProfiler}})) {
            std::cout << "\nChrome trace written to '"
                      << opts.profilePath << "'\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded([&] { return runMain(argc, argv); });
}
