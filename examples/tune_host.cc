/**
 * @file
 * Example: host-side tuning (paper §V-A) — how much simulation time
 * the paper's zero-hardware-change knobs buy on a Xeon: transparent
 * or explicit huge pages for the simulator's code, an -O3 rebuild,
 * and TurboBoost, alone and combined.
 *
 * Usage: tune_host [workload] [scale]
 */

#include <iostream>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "common/cli.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/telemetry.hh"
#include "tuning/dvfs.hh"
#include "tuning/hugepages.hh"
#include "tuning/optflag.hh"

using namespace g5p;

namespace
{

int
runMain(int argc, char **argv)
{
    examples::CliSpec spec;
    spec.usage = "[workload] [scale]";
    examples::CliOptions opts = examples::parseCli(argc, argv, spec);

    core::RunConfig cfg;
    cfg.workload = opts.workload;
    cfg.workloadScale = opts.scale;
    cfg.cpuModel = os::CpuModel::O3;
    cfg.platform = host::xeonConfig();
    cfg.run = opts.run;

    // One profiler shared by the base run and every knob run; each
    // configuration shows up as its own span in the trace.
    sim::Profiler campaignProfiler(opts.run.profiler);
    if (opts.profiling()) {
        cfg.run.profiler = {};
        cfg.profiler = &campaignProfiler;
    }

    std::cout << "Host tuning for gem5 (" << cfg.workload
              << ", O3 CPU, Intel_Xeon):\n\n";

    core::RunResult base = core::runProfiledSimulation(cfg);

    struct Knob
    {
        const char *label;
        void (*apply)(core::TuningConfig &);
    };
    const Knob knobs[] = {
        {"baseline", [](core::TuningConfig &) {}},
        {"+ THP code backing",
         [](core::TuningConfig &t) {
             tuning::applyHugePages(t, tuning::HugePageMode::Thp);
         }},
        {"+ EHP code backing",
         [](core::TuningConfig &t) {
             tuning::applyHugePages(t, tuning::HugePageMode::Ehp);
         }},
        {"+ -O3 rebuild",
         [](core::TuningConfig &t) { tuning::applyO3(t); }},
        {"+ TurboBoost",
         [](core::TuningConfig &t) { tuning::applyTurbo(t); }},
        {"all of the above",
         [](core::TuningConfig &t) {
             tuning::applyHugePages(t, tuning::HugePageMode::Ehp);
             tuning::applyO3(t);
             tuning::applyTurbo(t);
         }},
    };

    core::Table table({"Configuration", "sim time", "speedup",
                       "iTLB slots", "retiring"});
    for (const auto &knob : knobs) {
        core::RunConfig run_cfg = cfg;
        knob.apply(run_cfg.tuning);
        core::RunResult r = core::runProfiledSimulation(run_cfg);
        table.addRow({knob.label,
                      fmtDouble(r.hostSeconds * 1e3, 2) + "ms",
                      fmtDouble(base.hostSeconds / r.hostSeconds,
                                3) + "x",
                      fmtPercent(r.topdown.feItlb, 2),
                      fmtPercent(r.topdown.retiring)});
    }
    table.print(std::cout);

    std::cout <<
        "\nPaper §V-A: huge pages buy up to 5.9%, -O3 about 1.4%, "
        "and frequency scales\nsimulation time almost linearly — "
        "all without touching gem5 itself.\n";

    if (opts.profiling()) {
        campaignProfiler.disarm();
        core::printHostProfile(
            std::cout,
            "self-profile (all knob runs, wall clock by event class)",
            core::hostProfileFromSelf(campaignProfiler), 10);
        if (!opts.profilePath.empty() &&
            core::writeChromeTraceFile(
                opts.profilePath,
                {{"tune_host", &campaignProfiler}})) {
            std::cout << "\nChrome trace written to '"
                      << opts.profilePath << "'\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded([&] { return runMain(argc, argv); });
}
