/**
 * @file
 * Example: profile a gem5-style simulation the way the paper does —
 * run the simulator as the workload-under-study on a modeled Xeon
 * host, then print the Top-Down tree, the key counters, and the
 * hottest simulator functions (VTune's view, reproduced).
 *
 * Usage: profile_simulation [workload] [cpu-model] [scale]
 *   cpu-model: atomic | timing | minor | o3
 */

#include <cstring>
#include <iostream>

#include "base/str.hh"
#include "core/experiment.hh"
#include "core/topdown.hh"

using namespace g5p;

namespace
{

os::CpuModel
parseModel(const std::string &name)
{
    if (name == "atomic")
        return os::CpuModel::Atomic;
    if (name == "timing")
        return os::CpuModel::Timing;
    if (name == "minor")
        return os::CpuModel::Minor;
    if (name == "o3")
        return os::CpuModel::O3;
    g5p_fatal("unknown CPU model '%s' (use atomic|timing|minor|o3)",
              name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    core::RunConfig cfg;
    cfg.workload = argc > 1 ? argv[1] : "water_nsquared";
    cfg.cpuModel = parseModel(argc > 2 ? argv[2] : "o3");
    cfg.workloadScale = argc > 3 ? std::atof(argv[3]) : 0.25;
    cfg.platform = host::xeonConfig();

    std::cout << "Profiling mg5: " << cfg.workload << " on the "
              << os::cpuModelName(cfg.cpuModel)
              << " CPU model, host = " << cfg.platform.name
              << "\n\n";

    core::RunResult r = core::runProfiledSimulation(cfg);

    std::cout << "guest instructions : " << r.guestInsts << "\n"
              << "guest result check : "
              << (r.resultOk ? "ok" : "MISMATCH") << "\n"
              << "host instructions  : " << r.hostInsts << "\n"
              << "host IPC           : " << fmtDouble(r.ipc, 2)
              << "\n"
              << "simulation time    : "
              << fmtDouble(r.hostSeconds * 1e3, 2) << " ms (modeled)"
              << "\n"
              << "text footprint     : " << fmtBytes(r.codeBytes)
              << "\n"
              << "LLC occupancy      : "
              << fmtBytes(r.counters.llcOccupancyBytes) << "\n"
              << "DRAM bandwidth     : "
              << fmtDouble(r.counters.dramBytes / 1e9 /
                               r.hostSeconds, 3)
              << " GB/s\n"
              << "DSB coverage       : "
              << fmtPercent(r.counters.dsbCoverage()) << "\n\n";

    std::cout << "Top-Down breakdown (slots):\n";
    core::printTopdownTree(std::cout, r.topdown);

    std::cout << "\nHottest simulator functions ("
              << r.distinctFunctions << " total):\n";
    const auto &ranked = r.functionCdf.ranked();
    for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
        std::cout << "  " << padLeft(fmtPercent(ranked[i].share), 7)
                  << "  " << ranked[i].name << "\n";
    }
    std::cout << "  cumulative share of top 50: "
              << fmtPercent(r.functionCdf.cumulativeShare(50))
              << " (no killer function)\n";
    return 0;
}
