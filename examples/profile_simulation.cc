/**
 * @file
 * Example: profile a gem5-style simulation the way the paper does —
 * run the simulator as the workload-under-study on a modeled Xeon
 * host, then print the Top-Down tree, the key counters, and the
 * hottest simulator functions (VTune's view, reproduced).
 *
 * Usage: profile_simulation [workload] [cpu-model] [scale]
 *                           [--checkpoint <path> [--at <tick>]]
 *                           [--restore <path>]
 *   cpu-model: atomic | timing | minor | o3
 *
 * With --checkpoint, the guest run is interrupted at the given tick,
 * serialized to <path>, then resumed in-process to completion. With
 * --restore, a fresh machine resumes from <path>. Both print the
 * guest-side summary instead of the host profile; the restored run
 * finishes bit-identical to an uninterrupted one.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "core/experiment.hh"
#include "core/topdown.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

os::CpuModel
parseModel(const std::string &name)
{
    if (name == "atomic")
        return os::CpuModel::Atomic;
    if (name == "timing")
        return os::CpuModel::Timing;
    if (name == "minor")
        return os::CpuModel::Minor;
    if (name == "o3")
        return os::CpuModel::O3;
    g5p_throw(ConfigError, "cli", 0,
              "unknown CPU model '%s' (use atomic|timing|minor|o3)",
              name.c_str());
}

void
printGuestSummary(sim::Simulator &sim, os::System &system,
                  const sim::SimResult &res)
{
    std::cout << "exit               : " << res.message << "\n"
              << "final tick         : " << res.tick << "\n"
              << "guest instructions : " << system.totalInsts() << "\n"
              << "guest result       : " << system.result() << "\n"
              << "memory digest      : " << std::hex
              << system.physmem().contentDigest() << std::dec
              << "\n";
}

/** The --checkpoint / --restore demo: drive mg5 directly. */
int
runCheckpointDemo(const core::RunConfig &cfg,
                  const std::string &ckptPath,
                  const std::string &restorePath, Tick ckptAt)
{
    auto wl = workloads::Registry::instance().create(
        cfg.workload, cfg.workloadScale);
    os::SystemConfig scfg;
    scfg.cpuModel = cfg.cpuModel;
    scfg.mode = cfg.mode;

    sim::Simulator sim("system");
    os::System system(sim, scfg, *wl);

    if (!restorePath.empty()) {
        sim.restore(restorePath);
        std::cout << "restored '" << restorePath << "' at tick "
                  << sim.curTick() << "; resuming...\n\n";
        auto res = system.run();
        printGuestSummary(sim, system, res);
        return 0;
    }

    auto part = system.run(ckptAt);
    if (part.cause != sim::ExitCause::TickLimit) {
        std::cout << "workload finished before tick " << ckptAt
                  << "; nothing to checkpoint\n";
        printGuestSummary(sim, system, part);
        return 0;
    }
    sim.checkpoint(ckptPath);
    std::cout << "checkpoint written to '" << ckptPath
              << "' at tick " << sim.curTick()
              << "; continuing in-process...\n\n";
    auto res = system.run();
    printGuestSummary(sim, system, res);
    std::cout << "\nresume it with: --restore " << ckptPath << "\n";
    return 0;
}

int
runMain(int argc, char **argv)
{
    core::RunConfig cfg;
    std::string ckptPath, restorePath;
    Tick ckptAt = 1'000'000;

    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--checkpoint" && i + 1 < argc) {
            ckptPath = argv[++i];
        } else if (arg == "--restore" && i + 1 < argc) {
            restorePath = argv[++i];
        } else if (arg == "--at" && i + 1 < argc) {
            ckptAt = std::strtoull(argv[++i], nullptr, 0);
        } else {
            pos.push_back(arg);
        }
    }

    cfg.workload = pos.size() > 0 ? pos[0] : "water_nsquared";
    cfg.cpuModel = parseModel(pos.size() > 1 ? pos[1] : "o3");
    cfg.workloadScale = pos.size() > 2 ? std::atof(pos[2].c_str())
                                       : 0.25;
    cfg.platform = host::xeonConfig();

    if (!ckptPath.empty() || !restorePath.empty())
        return runCheckpointDemo(cfg, ckptPath, restorePath, ckptAt);

    std::cout << "Profiling mg5: " << cfg.workload << " on the "
              << os::cpuModelName(cfg.cpuModel)
              << " CPU model, host = " << cfg.platform.name
              << "\n\n";

    core::RunResult r = core::runProfiledSimulation(cfg);

    std::cout << "guest instructions : " << r.guestInsts << "\n"
              << "guest result check : "
              << (r.resultOk ? "ok" : "MISMATCH") << "\n"
              << "host instructions  : " << r.hostInsts << "\n"
              << "host IPC           : " << fmtDouble(r.ipc, 2)
              << "\n"
              << "simulation time    : "
              << fmtDouble(r.hostSeconds * 1e3, 2) << " ms (modeled)"
              << "\n"
              << "text footprint     : " << fmtBytes(r.codeBytes)
              << "\n"
              << "LLC occupancy      : "
              << fmtBytes(r.counters.llcOccupancyBytes) << "\n"
              << "DRAM bandwidth     : "
              << fmtDouble(r.counters.dramBytes / 1e9 /
                               r.hostSeconds, 3)
              << " GB/s\n"
              << "DSB coverage       : "
              << fmtPercent(r.counters.dsbCoverage()) << "\n\n";

    std::cout << "Top-Down breakdown (slots):\n";
    core::printTopdownTree(std::cout, r.topdown);

    std::cout << "\nHottest simulator functions ("
              << r.distinctFunctions << " total):\n";
    const auto &ranked = r.functionCdf.ranked();
    for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
        std::cout << "  " << padLeft(fmtPercent(ranked[i].share), 7)
                  << "  " << ranked[i].name << "\n";
    }
    std::cout << "  cumulative share of top 50: "
              << fmtPercent(r.functionCdf.cumulativeShare(50))
              << " (no killer function)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Typed errors escape library code; the guard maps them onto the
    // historical process contract (fatal -> exit 1, invariant ->
    // abort) so scripts keep seeing the same exit codes.
    return runGuarded([&] { return runMain(argc, argv); });
}
