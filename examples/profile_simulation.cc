/**
 * @file
 * Example: profile a gem5-style simulation the way the paper does —
 * run the simulator as the workload-under-study on a modeled Xeon
 * host, then print the Top-Down tree, the key counters, and the
 * hottest simulator functions (VTune's view, reproduced).
 *
 * Usage: profile_simulation [workload] [cpu-model] [scale]
 *                           [--checkpoint <path> [--at <tick>]]
 *                           [--restore <path>]
 *                           [--fast-forward <insts>
 *                            [--switch-cpu <model>]]
 *                           [--sample <K,W[,seed]>
 *                            [--sample-warmup <insts>] [--jobs <n>]]
 *                           [flags; see --help]
 *   cpu-model: atomic | timing | minor | o3
 *
 * With --fast-forward=N the first N guest instructions run on the
 * Atomic model, then the machine drain-and-switches to the detailed
 * model (--switch-cpu, or the cpu-model argument) in place.
 *
 * With --sample=K,W the whole run is *estimated* from K detailed
 * W-instruction intervals restored from an Atomic checkpoint farm
 * built in a single pass (and reused by later runs with the same
 * workload, scale and W). --sample-warmup runs each interval for a
 * few thousand detailed instructions before measuring, re-warming
 * the branch predictor the fast-forward does not model. --jobs
 * parallelizes the intervals; the report is byte-identical to a
 * serial run.
 *
 * With --profile=trace.json the run is *also* self-profiled for
 * real: the modeled hot-function CDF and the measured wall-clock
 * event attribution print through the same ranked-share pipeline,
 * and a Chrome trace is written.
 *
 * With --checkpoint, the guest run is interrupted at the given tick,
 * serialized to <path>, then resumed in-process to completion. With
 * --restore, a fresh machine resumes from <path>. Both print the
 * guest-side summary instead of the host profile; the restored run
 * finishes bit-identical to an uninterrupted one.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "common/cli.hh"
#include "core/experiment.hh"
#include "core/sampling.hh"
#include "core/telemetry.hh"
#include "core/topdown.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

void
printGuestSummary(sim::Simulator &sim, os::System &system,
                  const sim::SimResult &res)
{
    std::cout << "exit               : " << res.message << "\n"
              << "final tick         : " << res.tick << "\n"
              << "guest instructions : " << system.totalInsts() << "\n"
              << "guest result       : " << system.result() << "\n"
              << "memory digest      : " << std::hex
              << system.physmem().contentDigest() << std::dec
              << "\n";
}

/** Write the demo run's trace if --profile was given. */
void
maybeWriteTrace(sim::Simulator &sim, const core::RunConfig &cfg)
{
    sim::Profiler *prof = sim.profiler();
    if (!prof || cfg.run.profiler.tracePath.empty())
        return;
    prof->disarm();
    if (core::writeChromeTraceFile(
            cfg.run.profiler.tracePath,
            {{os::cpuModelName(cfg.cpuModel), prof}})) {
        std::cout << "\nChrome trace written to '"
                  << cfg.run.profiler.tracePath << "'\n";
    }
}

/** The --checkpoint / --restore demo: drive mg5 directly. */
int
runCheckpointDemo(const core::RunConfig &cfg,
                  const std::string &ckptPath,
                  const std::string &restorePath, Tick ckptAt)
{
    auto wl = workloads::Registry::instance().create(
        cfg.workload, cfg.workloadScale);
    os::SystemConfig scfg;
    scfg.cpuModel = cfg.cpuModel;
    scfg.mode = cfg.mode;
    scfg.numCpus = cfg.guestCpus;

    sim::Simulator sim("system");
    os::System system(sim, scfg, *wl);

    if (!restorePath.empty()) {
        sim.restore(restorePath);
        std::cout << "restored '" << restorePath << "' at tick "
                  << sim.curTick() << "; resuming...\n\n";
        auto res = system.run(cfg.run);
        printGuestSummary(sim, system, res);
        maybeWriteTrace(sim, cfg);
        return 0;
    }

    auto part = system.run(cfg.run, ckptAt);
    if (part.cause != sim::ExitCause::TickLimit) {
        std::cout << "workload finished before tick " << ckptAt
                  << "; nothing to checkpoint\n";
        printGuestSummary(sim, system, part);
        maybeWriteTrace(sim, cfg);
        return 0;
    }
    sim.checkpoint(ckptPath);
    std::cout << "checkpoint written to '" << ckptPath
              << "' at tick " << sim.curTick()
              << "; continuing in-process...\n\n";
    auto res = system.run();
    printGuestSummary(sim, system, res);
    maybeWriteTrace(sim, cfg);
    std::cout << "\nresume it with: --restore " << ckptPath << "\n";
    return 0;
}

int
runMain(int argc, char **argv)
{
    examples::CliSpec spec;
    spec.usage = "[workload] [cpu-model] [scale]";
    spec.cpuModelPositional = true;
    spec.extraFlags = {"--checkpoint", "--restore", "--at"};
    examples::CliOptions opts = examples::parseCli(argc, argv, spec);

    core::RunConfig cfg;
    cfg.workload = opts.workload;
    cfg.cpuModel = opts.cpuModel;
    cfg.workloadScale = opts.scale;
    cfg.guestCpus = opts.cores;
    cfg.fastForwardInsts = opts.fastForwardInsts;
    cfg.platform = host::xeonConfig();
    cfg.run = opts.run;

    if (opts.sampling()) {
        core::SamplingConfig scfg;
        scfg.workload = opts.workload;
        scfg.scale = opts.scale;
        scfg.detailModel = opts.cpuModel;
        scfg.K = opts.sampleK;
        scfg.W = opts.sampleW;
        scfg.warmup = opts.sampleWarmup;
        scfg.seed = opts.sampleSeed;
        scfg.jobs = opts.jobs;
        std::cout << "Sampled simulation: " << scfg.workload
                  << ", K=" << scfg.K << " x W=" << scfg.W
                  << " on the " << os::cpuModelName(scfg.detailModel)
                  << " CPU model\n\n";
        core::SamplingResult sr = core::runSampledSimulation(scfg);
        core::printSamplingReport(std::cout, sr);
        return 0;
    }

    if (opts.extra.count("--checkpoint") ||
        opts.extra.count("--restore")) {
        Tick ckptAt = 1'000'000;
        if (opts.extra.count("--at"))
            ckptAt = std::strtoull(opts.extra["--at"].c_str(),
                                   nullptr, 0);
        return runCheckpointDemo(cfg, opts.extra["--checkpoint"],
                                 opts.extra["--restore"], ckptAt);
    }

    // Self-profile through an external collector so the data
    // outlives the run's Simulator.
    sim::Profiler selfProfiler(opts.run.profiler);
    if (opts.profiling()) {
        cfg.run.profiler = {};
        cfg.profiler = &selfProfiler;
    }

    std::cout << "Profiling mg5: " << cfg.workload << " on the "
              << os::cpuModelName(cfg.cpuModel)
              << " CPU model, host = " << cfg.platform.name
              << "\n";
    if (cfg.fastForwardInsts) {
        std::cout << "fast-forward: first " << cfg.fastForwardInsts
                  << " guest insts on Atomic, then drain-and-switch"
                  << "\n";
    }
    std::cout << "\n";

    core::RunResult r = core::runProfiledSimulation(cfg);

    std::cout << "guest instructions : " << r.guestInsts << "\n"
              << "guest result check : "
              << (r.resultOk ? "ok" : "MISMATCH") << "\n"
              << "host instructions  : " << r.hostInsts << "\n"
              << "host IPC           : " << fmtDouble(r.ipc, 2)
              << "\n"
              << "simulation time    : "
              << fmtDouble(r.hostSeconds * 1e3, 2) << " ms (modeled)"
              << "\n"
              << "text footprint     : " << fmtBytes(r.codeBytes)
              << "\n"
              << "LLC occupancy      : "
              << fmtBytes(r.counters.llcOccupancyBytes) << "\n"
              << "DRAM bandwidth     : "
              << fmtDouble(r.counters.dramBytes / 1e9 /
                               r.hostSeconds, 3)
              << " GB/s\n"
              << "DSB coverage       : "
              << fmtPercent(r.counters.dsbCoverage()) << "\n";
    if (r.packetPoolHighWater) {
        // Timing-path health (PR 10): zero on pure-Atomic runs.
        std::cout << "packet pool peak   : " << r.packetPoolHighWater
                  << " in flight (" << r.packetPoolSlabs
                  << " slab(s))\n"
                  << "snoop filter       : " << r.snoopFilterLines
                  << "/" << r.snoopFilterCapacity
                  << " lines, avg probe "
                  << fmtDouble(r.snoopFilterAvgProbe, 3) << "\n"
                  << "MSHR line index    : " << r.mshrIndexProbes
                  << " probes, avg "
                  << fmtDouble(r.mshrIndexAvgProbe, 3) << "\n";
    }
    std::cout << "\n";

    std::cout << "Top-Down breakdown (slots):\n";
    core::printTopdownTree(std::cout, r.topdown);

    // The paper's modeled view and (optionally) the real measured
    // view report through the same ranked-share pipeline.
    core::HostProfile modeled =
        core::hostProfileFromCdf(r.functionCdf);
    core::printHostProfile(
        std::cout,
        "hottest simulator functions (modeled, " +
            std::to_string(r.distinctFunctions) + " total)",
        modeled, 10);
    std::cout << "cumulative share of top 50: "
              << fmtPercent(r.functionCdf.cumulativeShare(50))
              << " (no killer function)\n";

    if (opts.profiling()) {
        selfProfiler.disarm();
        core::printHostProfile(
            std::cout,
            "self-profile (measured wall clock by event class)",
            core::hostProfileFromSelf(selfProfiler), 10);
        if (!opts.profilePath.empty() &&
            core::writeChromeTraceFile(
                opts.profilePath,
                {{os::cpuModelName(cfg.cpuModel), &selfProfiler}})) {
            std::cout << "\nChrome trace written to '"
                      << opts.profilePath
                      << "' — open in Perfetto.\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Typed errors escape library code; the guard maps them onto the
    // historical process contract (fatal -> exit 1, invariant ->
    // abort) so scripts keep seeing the same exit codes.
    return runGuarded([&] { return runMain(argc, argv); });
}
