/**
 * @file
 * g5p_sweep: client CLI for the sweep daemon.
 *
 * Talks to g5p_sweepd through the spool directory — no socket, no
 * extra dependency, and every hand-off is crash-safe (specs are
 * dropped into `<spool>/incoming/` with the same tmp+rename commit
 * the spool itself uses).
 *
 * Usage:
 *   g5p_sweep [--spool=DIR] submit SPEC.json   drop a sweep spec
 *   g5p_sweep [--spool=DIR] expand SPEC.json   print the jobs a spec
 *                                              expands to (dry run)
 *   g5p_sweep [--spool=DIR] status             queue/state counts
 *   g5p_sweep [--spool=DIR] results            cached results table
 *
 * Spec schema (axes take the cross product):
 *   {
 *     "name": "demo",
 *     "workloads": ["sieve", "dedup"],
 *     "cpu_models": ["Atomic", "Timing"],
 *     "cores": [1, 2],
 *     "platforms": ["Intel_Xeon"],
 *     "l2_kb": [0, 512],          // 0 = platform default
 *     "dram_gb_s": [0],           // 0 = platform default
 *     "workload_scale": 0.1,
 *     "max_guest_insts": 0,
 *     "seed": 1,
 *     "resume": false,            // guest-only resumable jobs
 *     "priority": 0,
 *     "wall_cap_seconds": 0,
 *     "max_attempts": 0           // 0 = daemon default
 *   }
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/sim_error.hh"
#include "core/report.hh"
#include "service/sweepd.hh"

using namespace g5p;

namespace
{

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        g5p_throw(ConfigError, "g5p_sweep", 0,
                  "cannot open spec file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

int
doSubmit(const std::string &spool_dir, const std::string &spec_path)
{
    std::string text = readWholeFile(spec_path);
    // Validate client-side so a typo fails here, not in the daemon's
    // log; the daemon re-validates on pickup anyway.
    service::SweepSpec sweep = service::parseSweepSpec(text);
    std::size_t jobs = service::expandSweep(sweep).size();

    service::Spool spool(spool_dir);
    std::string target = spool.incomingDir() + "/" + sweep.name +
                         "-" + std::to_string(
                                   sim::checkpointDigest(text) &
                                   0xffffff) + ".json";
    // tmp+rename: the daemon never sees a torn spec.
    sim::CheckpointIo::current().writeText(target, text);
    std::cout << "submitted sweep '" << sweep.name << "' (" << jobs
              << " job(s)) to " << target << "\n"
              << "a running g5p_sweepd on --spool=" << spool_dir
              << " will admit it on its next poll\n";
    return 0;
}

int
doExpand(const std::string &spec_path)
{
    service::SweepSpec sweep =
        service::parseSweepSpec(readWholeFile(spec_path));
    core::Table table({"#", "job key"});
    unsigned index = 0;
    for (const service::JobSpec &job : service::expandSweep(sweep))
        table.addRow({std::to_string(++index),
                      service::jobKey(job)});
    table.print(std::cout);
    return 0;
}

int
doStatus(const std::string &spool_dir)
{
    service::Spool spool(spool_dir);
    core::Table table({"state", "jobs"});
    for (service::JobState state :
         {service::JobState::Queued, service::JobState::Running,
          service::JobState::Done, service::JobState::Failed,
          service::JobState::Poisoned})
        table.addRow({service::jobStateName(state),
                      std::to_string(spool.count(state))});
    table.print(std::cout);

    for (const service::SpoolJob &job :
         spool.list(service::JobState::Poisoned))
        std::cout << "poisoned j" << job.id << " after "
                  << job.attempts << " attempt(s): " << job.lastError
                  << "\n";
    return 0;
}

int
doResults(const std::string &spool_dir)
{
    service::Spool spool(spool_dir);
    service::ResultCache cache(spool.resultsDir(), "");
    // Version "" bypasses nothing — we read entries through the
    // job's spec below, so verification still applies; the daemon's
    // version tag is inside each entry and checked there.
    core::Table table({"job", "workload", "cpu", "cores", "platform",
                       "guest insts", "host s", "IPC", "digests"});
    for (const service::SpoolJob &job :
         spool.list(service::JobState::Done)) {
        service::ServiceResult result;
        std::string digests = "-";
        std::string host_s = "-", ipc = "-";
        // Entries carry the daemon's binary version; read them raw
        // via the checkpoint layer for display.
        try {
            sim::CheckpointIn cp = sim::CheckpointIn::readFile(
                cache.entryPath(job.spec));
            cp.pushSection("entry");
            cp.pushSection("result");
            result = service::unserializeResult(cp);
            if (result.countersDigest) {
                std::ostringstream os;
                os.setf(std::ios::fixed);
                os.precision(4);
                os << result.hostSeconds;
                host_s = os.str();
                std::ostringstream os2;
                os2.setf(std::ios::fixed);
                os2.precision(3);
                os2 << result.ipc;
                ipc = os2.str();
                std::ostringstream os3;
                os3 << std::hex << result.countersDigest;
                digests = "counters:" + os3.str();
            } else {
                std::ostringstream os;
                os << std::hex << "stats:" << result.statsDigest
                   << " mem:" << result.memDigest;
                digests = os.str();
            }
            table.addRow({"j" + std::to_string(job.id),
                          result.workload, result.cpuModel,
                          std::to_string(result.cores),
                          result.platform,
                          std::to_string(result.guestInsts), host_s,
                          ipc, digests});
        } catch (const CheckpointError &) {
            table.addRow({"j" + std::to_string(job.id),
                          job.spec.workload, "-", "-", "-",
                          "unreadable entry", "-", "-", "-"});
        }
    }
    table.print(std::cout);
    return 0;
}

int
runMain(int argc, char **argv)
{
    std::string spool_dir = "spool";
    std::string command, operand;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, 8, "--spool=") == 0) {
            spool_dir = arg.substr(8);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: g5p_sweep [--spool=DIR] "
                      << "submit|expand SPEC.json | status | "
                      << "results\n";
            return 0;
        } else if (command.empty()) {
            command = arg;
        } else {
            operand = arg;
        }
    }

    if (command == "submit" && !operand.empty())
        return doSubmit(spool_dir, operand);
    if (command == "expand" && !operand.empty())
        return doExpand(operand);
    if (command == "status")
        return doStatus(spool_dir);
    if (command == "results")
        return doResults(spool_dir);
    g5p_throw(ConfigError, "g5p_sweep", 0,
              "usage: g5p_sweep [--spool=DIR] submit|expand "
              "SPEC.json | status | results");
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded([&] { return runMain(argc, argv); });
}
