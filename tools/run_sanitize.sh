#!/usr/bin/env bash
# Configure, build, and run the test suite under ASan + UBSan using
# the `sanitize` CMake preset (build-sanitize/, G5P_SANITIZE=ON).
#
# Usage:
#   tools/run_sanitize.sh                 # whole suite, sanitized
#   tools/run_sanitize.sh -R Checkpoint   # ctest filter passthrough
#   G5P_SANITIZE_JOBS=4 tools/run_sanitize.sh
#
# Any arguments are forwarded to ctest (e.g. -R <regex>, -j N,
# --rerun-failed). Exit status is ctest's, so this wires directly
# into CI as a sanitizer job.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="${G5P_SANITIZE_JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure (preset: sanitize) =="
cmake --preset sanitize

echo "== build (-j ${jobs}) =="
cmake --build --preset sanitize -j "$jobs"

# The sanitize test preset sets ASAN_OPTIONS=detect_leaks=0 (events
# in flight at simulator teardown are reclaimed by the pool, not
# freed individually) and UBSAN halt_on_error so any UB fails the
# run loudly.
echo "== ctest (preset: sanitize) =="
ctest --preset sanitize "$@"

# The fault-injection/robustness suite doubles as a sanitizer stress
# test: dropped/delayed responses, injected I/O failures and watchdog
# exits walk the error paths normal runs never take, exactly where
# leaks and UB hide. Run it explicitly even when a filter narrowed
# the main pass.
if [ "$#" -gt 0 ]; then
    echo "== ctest robustness suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(Watchdog|FaultInjection|CrashSafety|TypedErrors)'
fi

# Profiler pass: the self-observability layer instruments the event
# loop's hottest path (beginService/endService) and the trace writer
# round-trips every stat and event name through JSON escaping. Run the
# profiler suite and the overhead gate sanitized so that slice-ring
# bookkeeping, span nesting across checkpoint/restore and the string
# paths are exercised under ASan/UBSan even when a filter narrowed the
# main pass.
if [ "$#" -gt 0 ]; then
    echo "== ctest profiler suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(Profiler|RunOptionsApi|ProfilerOverheadGate)'
fi

# Sampling pass: the CPU-switch and sampling driver paths carry state
# across machine lifetimes (drain-and-switch, cross-model checkpoint
# transplants, an in-memory checkpoint farm that is thinned and
# flushed, manifest reuse) — prime territory for lifetime bugs. Run
# the switch/milestone/sampling suites sanitized even when a filter
# narrowed the main pass.
if [ "$#" -gt 0 ]; then
    echo "== ctest sampling suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(SwitchEquivalenceGate|CpuSwitch|InstMilestone|FastForward|Sampling)'
fi

# Coherence pass: the MSI/MESI machinery lives on heap packets and
# MSHRs handed between caches, the xbar, and the tester — use-after-
# free in a race-recovery path (stolen fills, upgrade reissues) is
# exactly what ASan catches and normal runs may survive by luck. Run
# the stress tester, litmus sweep, and multi-core regressions
# sanitized even when a filter narrowed the main pass.
if [ "$#" -gt 0 ]; then
    echo "== ctest coherence suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(CoherenceStress|CoherenceQuick|Litmus|ThreadedGuest|MultiCoreRegression)'
fi

# Timing memory-path pass (PR 10): the packet pool carves THP slabs
# into 64-byte blocks and recycles them LIFO, MSHRs live in a slab
# with intrusive free-listing, and the snoop filter/MSHR index do
# open addressing with backward-shift deletion — manual memory
# management stacked three deep, i.e. exactly what ASan/UBSan are
# for. The pool-vs-heap identity matrix runs every packet lifetime
# twice (pooled and malloc'd), and the quick bench gate runs both
# the optimized and the embedded pre-PR reference paths under
# sanitizers (speed gates demote to report-only; the byte-identity
# checks still must pass).
if [ "$#" -gt 0 ]; then
    echo "== ctest timing memory-path suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(AddrTable|PacketPool|PoolVsHeap|PooledCheckpoint|PoolDrain|TimingMemPathQuick)'
fi

# Dispatch pass: the PR 9 kind table is read through relaxed atomics
# on the hottest path in the tree, the event kind byte lives in tail
# padding, and the THP arenas hand out mmap-backed slabs that the
# event pool and decode cache carve up manually — all prime ASan/
# UBSan territory. The determinism suite also forces the virtual
# path, so both dispatch branches run sanitized. (The wall-clock
# FrontendDispatchGate demotes its speed gates to report-only under
# sanitizers — instrumentation erases the layout effect — but still
# checks service-order digests and writes its JSON.)
if [ "$#" -gt 0 ]; then
    echo "== ctest dispatch suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(EventDispatchTable|DispatchBatching|DispatchDeterminismMulti|FrontendDispatchGate)|Dispatch'
fi

# Sweep-service pass: the chaos suite walks the crash/retry/eviction
# paths on purpose — torn spool files, corrupt cache entries, a
# service killed between a cache store and the state transition —
# which is where use-after-free and uninitialized reads hide in a
# recovery codebase. The quick half smokes spool transitions and
# cold recovery sub-second. Run both sanitized even when a filter
# narrowed the main pass.
if [ "$#" -gt 0 ]; then
    echo "== ctest sweep-service suite (preset: sanitize) =="
    ctest --preset sanitize -R '^(ServiceChaosGate|ServiceSupervision|ServiceCacheGate|ServiceResume|ServiceAdmission|ServiceIncoming|ServiceStop|ServiceJson|ServiceSpec|ServiceJobKey|ServiceSpool|ServiceCache)'
fi

# TSan pass: the parallel harness runs whole simulations on pool
# threads, so data races (not just leaks/UB) are the failure mode that
# matters there. TSan and ASan cannot share a build, so this is a
# separate preset (build-tsan/, G5P_THREADS=ON). Skippable for quick
# iteration with G5P_SKIP_TSAN=1; CI should always run it.
if [ "${G5P_SKIP_TSAN:-0}" != "1" ]; then
    echo "== configure (preset: tsan) =="
    cmake --preset tsan

    echo "== build (-j ${jobs}) =="
    cmake --build --preset tsan -j "$jobs"

    # Only the thread-bearing suites: the parallel determinism and
    # isolation tests exercise every cross-thread edge (registry
    # reads, pooled recorders, result hand-back), the checkpoint
    # suite covers restore inside a pooled job, and the sampling
    # driver runs its detailed intervals on the pool. The rest of the
    # suite is single-threaded and adds nothing under TSan but
    # runtime.
    # Coherence rides along: pooled sweeps may run multi-core guests,
    # so the protocol paths must also be clean under TSan. The sweep
    # service dispatches batches onto the same pool (and its commit
    # loop reads outcomes the workers wrote), so its suites ride
    # along too. The dispatch suites join because the kind table is
    # the one structure registered by any thread and read by all
    # service loops — exactly the publish/read edge TSan checks.
    echo "== ctest parallel suites (preset: tsan) =="
    # The timing-path suites join because the packet pool and THP
    # arenas are thread-local by design — TSan proves no state leaks
    # across the pool threads that run whole simulations.
    ctest --preset tsan -R '^(Parallel|Checkpoint|Sampling|Coherence|Service)|Dispatch|Pool|MemPath'
fi
