#!/usr/bin/env bash
# Two-phase PGO driver for mg5 (PR 9).
#
#   tools/pgo.sh [training-command...]
#
# 1. Configures + builds the pgo-gen preset (instrumented).
# 2. Runs the training workload — by default the event-service
#    microbench plus one profiled simulation example, i.e. exactly
#    the code the optimization targets. Pass a custom command to
#    train on something else.
# 3. Reconfigures the same tree as pgo-use and rebuilds, consuming
#    the .gcda profiles left in place by step 2.
#
# The result lives in build-pgo/. Compare against a plain release
# build with: build-pgo/bench/abl_frontend --json /tmp/pgo.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== PGO phase 1: instrumented build (pgo-gen)"
cmake --preset pgo-gen
cmake --build --preset pgo-gen -j"$(nproc)"

echo "== PGO phase 2: training run"
if [ "$#" -gt 0 ]; then
    "$@"
else
    # Default training: the frontend microbench exercises the
    # service loop; the example exercises a full profiled run.
    ./build-pgo/bench/abl_frontend --json /tmp/g5p_pgo_train.json \
        --no-gates
    if [ -x ./build-pgo/examples/profile_simulation ]; then
        ./build-pgo/examples/profile_simulation >/dev/null
    fi
fi

echo "== PGO phase 3: optimized rebuild (pgo-use)"
cmake --preset pgo-use
cmake --build --preset pgo-use -j"$(nproc)"

echo "PGO build ready in build-pgo/"
