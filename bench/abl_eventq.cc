/**
 * @file
 * Event-queue microbenchmark: measures the intrusive indexed 4-ary
 * heap (src/sim/eventq.hh) against a faithful reimplementation of the
 * seed design (std::priority_queue + lazy dead-sequence deletion +
 * compaction) on the access patterns that dominate simulation:
 *
 *   - schedule_service:   steady schedule/pop at random future ticks
 *   - reschedule_churn:   in-place reschedule storms (timer patterns)
 *   - deschedule_churn:   schedule/cancel pairs with no service
 *   - same_tick_burst:    many events at one tick, drained at once
 *   - autodelete_storm:   pooled one-shot callback events
 *
 * Prints ns/op per scenario and writes machine-readable results to
 * BENCH_eventq.json so later PRs have a perf trajectory to compare
 * against. Gates: >= 1.3x on reschedule_churn (the indexed-heap PR's
 * headline) and >= 0.95x everywhere (no scenario may fall behind the
 * seed queue; same_tick_burst did until the equal-key burst chains).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <deque>
#include <queue>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/eventq.hh"
#include "trace/recorder.hh"

using namespace g5p;
using sim::EventQueue;
using sim::Event;

namespace
{

// ---------------------------------------------------------------------
// Reference implementation: the seed event queue, verbatim semantics.
// Kept here (not in src/) purely as the measurement baseline.
// ---------------------------------------------------------------------

class RefEvent
{
  public:
    virtual ~RefEvent() = default;
    virtual void process() = 0;

    Tick when = 0;
    std::uint64_t sequence = 0;
    std::int16_t priority = 0;
    bool scheduled = false;
    bool autoDelete = false;
};

class RefQueue
{
  public:
    void
    schedule(RefEvent &event, Tick when)
    {
        // The seed paid scope instrumentation per schedule and per
        // serviceOne; the reference must pay it too or the baseline
        // is flattered.
        G5P_TRACE_SCOPE("RefQueue::schedule", EventLoop, false);
        event.when = when;
        event.sequence = nextSequence_++;
        event.scheduled = true;
        heap_.push(Entry{when, event.priority, event.sequence,
                         &event});
        ++liveCount_;
    }

    void
    deschedule(RefEvent &event)
    {
        event.scheduled = false;
        deadSeqs_.insert(event.sequence);
        --liveCount_;
        if (deadSeqs_.size() > 64 && deadSeqs_.size() > 2 * liveCount_)
            compact();
    }

    void
    reschedule(RefEvent &event, Tick when)
    {
        if (event.scheduled)
            deschedule(event);
        schedule(event, when);
    }

    bool empty() const { return liveCount_ == 0; }

    Tick
    nextTick()
    {
        purge();
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    RefEvent *
    serviceOne()
    {
        G5P_TRACE_SCOPE("RefQueue::serviceOne", EventLoop, false);
        purge();
        if (heap_.empty())
            return nullptr;
        Entry top = heap_.top();
        heap_.pop();
        RefEvent *ev = top.event;
        curTick_ = top.when;
        ev->scheduled = false;
        --liveCount_;
        bool auto_delete = ev->autoDelete;
        ev->process();
        if (auto_delete && !ev->scheduled)
            delete ev;
        return ev;
    }

    std::uint64_t
    serviceUntil(Tick limit)
    {
        G5P_TRACE_SCOPE("RefQueue::serviceUntil", EventLoop, false);
        std::uint64_t serviced = 0;
        while (true) {
            Tick next = nextTick();
            if (next == maxTick || next > limit)
                break;
            serviceOne();
            ++serviced;
        }
        return serviced;
    }

    Tick curTick() const { return curTick_; }

  private:
    struct Entry
    {
        Tick when;
        std::int16_t priority;
        std::uint64_t sequence;
        RefEvent *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    void
    purge()
    {
        while (!heap_.empty()) {
            auto it = deadSeqs_.find(heap_.top().sequence);
            if (it == deadSeqs_.end())
                break;
            deadSeqs_.erase(it);
            heap_.pop();
        }
    }

    void
    compact()
    {
        std::vector<Entry> live;
        live.reserve(liveCount_);
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            if (!deadSeqs_.count(top.sequence))
                live.push_back(top);
            heap_.pop();
        }
        heap_ = std::priority_queue<Entry, std::vector<Entry>,
                                    std::greater<Entry>>(
            std::greater<Entry>(), std::move(live));
        deadSeqs_.clear();
    }

    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::size_t liveCount_ = 0;
    std::unordered_set<std::uint64_t> deadSeqs_;
    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> heap_;
};

/** Counter event for the indexed queue. */
class CountEvent : public Event
{
  public:
    explicit CountEvent(std::uint64_t &count) : count_(count) {}
    void process() override { ++count_; }

  private:
    std::uint64_t &count_;
};

/** Counter event for the reference queue. */
class RefCountEvent : public RefEvent
{
  public:
    explicit RefCountEvent(std::uint64_t &count) : count_(count) {}
    void process() override { ++count_; }

  private:
    std::uint64_t &count_;
};

/** One-shot callback event for the reference queue: plain heap, the
 *  std::function + name-string shape the seed allocated per event. */
class RefCallbackEvent : public RefEvent
{
  public:
    RefCallbackEvent(std::function<void()> cb, std::string name)
        : cb_(std::move(cb)), name_(std::move(name))
    {
        autoDelete = true;
    }

    void process() override { cb_(); }

  private:
    std::function<void()> cb_;
    std::string name_;
};

// ---------------------------------------------------------------------
// Timing harness
// ---------------------------------------------------------------------

double
nsPerOp(std::uint64_t ops, std::function<void()> body)
{
    using clock = std::chrono::steady_clock;
    body(); // warm up caches, pools, and the allocator
    auto start = clock::now();
    body();
    auto end = clock::now();
    double ns = (double)std::chrono::duration_cast<
        std::chrono::nanoseconds>(end - start).count();
    return ns / (double)ops;
}

struct Scenario
{
    std::string name;
    std::uint64_t ops;
    double indexedNs;
    double referenceNs;

    double
    speedup() const
    {
        return indexedNs > 0 ? referenceNs / indexedNs : 0.0;
    }
};


template <typename E>
std::deque<E>
makeEvents(int n, std::uint64_t &count)
{
    std::deque<E> events;
    for (int i = 0; i < n; ++i)
        events.emplace_back(count);
    return events;
}

// ---------------------------------------------------------------------
// Scenarios (identical op streams on both queues)
// ---------------------------------------------------------------------

constexpr int numEvents = 4096;
constexpr std::uint64_t seed = 0x5eed'e7e9ULL;

Scenario
scheduleService()
{
    constexpr int rounds = 200;
    std::uint64_t ops = (std::uint64_t)rounds * numEvents;
    std::uint64_t count = 0;

    double indexed = nsPerOp(ops, [&] {
        EventQueue eq;
        auto events = makeEvents<CountEvent>(numEvents, count);
        std::mt19937_64 rng(seed);
        for (int r = 0; r < rounds; ++r) {
            Tick base = eq.curTick();
            for (auto &ev : events)
                eq.schedule(ev, base + 1 + rng() % 10000);
            eq.serviceUntil(maxTick - 1);
        }
    });

    double reference = nsPerOp(ops, [&] {
        RefQueue eq;
        auto events = makeEvents<RefCountEvent>(numEvents, count);
        std::mt19937_64 rng(seed);
        for (int r = 0; r < rounds; ++r) {
            Tick base = eq.curTick();
            for (auto &ev : events)
                eq.schedule(ev, base + 1 + rng() % 10000);
            eq.serviceUntil(maxTick - 1);
        }
    });

    return {"schedule_service", ops, indexed, reference};
}

Scenario
rescheduleChurn()
{
    // The paper-motivated hot pattern: timers and tick events moved
    // again and again before they fire. The seed design turns every
    // move into a dead heap entry (hash insert + eventual compaction
    // sweep); the indexed heap re-keys in place.
    constexpr std::uint64_t moves = 2'000'000;
    std::uint64_t count = 0;

    double indexed = nsPerOp(moves, [&] {
        EventQueue eq;
        auto events = makeEvents<CountEvent>(numEvents, count);
        std::mt19937_64 rng(seed);
        for (int i = 0; i < numEvents; ++i)
            eq.schedule(events[i], 1 + (Tick)i);
        for (std::uint64_t m = 0; m < moves; ++m) {
            auto &ev = events[rng() % numEvents];
            eq.reschedule(ev, 1 + rng() % 100000);
        }
        for (auto &ev : events)
            eq.deschedule(ev);
    });

    double reference = nsPerOp(moves, [&] {
        RefQueue eq;
        auto events = makeEvents<RefCountEvent>(numEvents, count);
        std::mt19937_64 rng(seed);
        for (int i = 0; i < numEvents; ++i)
            eq.schedule(events[i], 1 + (Tick)i);
        for (std::uint64_t m = 0; m < moves; ++m) {
            auto &ev = events[rng() % numEvents];
            eq.reschedule(ev, 1 + rng() % 100000);
        }
        for (auto &ev : events)
            eq.deschedule(ev);
    });

    return {"reschedule_churn", moves, indexed, reference};
}

Scenario
descheduleChurn()
{
    constexpr std::uint64_t pairs = 2'000'000;
    std::uint64_t count = 0;

    double indexed = nsPerOp(pairs, [&] {
        EventQueue eq;
        CountEvent far_event(count);
        eq.schedule(far_event, maxTick - 2);
        auto events = makeEvents<CountEvent>(64, count);
        std::mt19937_64 rng(seed);
        for (std::uint64_t p = 0; p < pairs; ++p) {
            auto &ev = events[p % events.size()];
            eq.schedule(ev, 1 + rng() % 4096);
            eq.deschedule(ev);
        }
        eq.deschedule(far_event);
    });

    double reference = nsPerOp(pairs, [&] {
        RefQueue eq;
        RefCountEvent far_event(count);
        eq.schedule(far_event, maxTick - 2);
        auto events = makeEvents<RefCountEvent>(64, count);
        std::mt19937_64 rng(seed);
        for (std::uint64_t p = 0; p < pairs; ++p) {
            auto &ev = events[p % events.size()];
            eq.schedule(ev, 1 + rng() % 4096);
            eq.deschedule(ev);
        }
        eq.deschedule(far_event);
    });

    return {"deschedule_churn", pairs, indexed, reference};
}

Scenario
sameTickBurst()
{
    // Clocked systems put whole bursts (every CPU + cache + DRAM
    // event of a cycle) on one tick and drain them back-to-back.
    constexpr int rounds = 2000;
    constexpr int burst = 512;
    std::uint64_t ops = (std::uint64_t)rounds * burst;
    std::uint64_t count = 0;

    double indexed = nsPerOp(ops, [&] {
        EventQueue eq;
        auto events = makeEvents<CountEvent>(burst, count);
        for (int r = 0; r < rounds; ++r) {
            Tick tick = eq.curTick() + 1;
            for (auto &ev : events)
                eq.schedule(ev, tick);
            eq.serviceUntil(tick);
        }
    });

    double reference = nsPerOp(ops, [&] {
        RefQueue eq;
        auto events = makeEvents<RefCountEvent>(burst, count);
        for (int r = 0; r < rounds; ++r) {
            Tick tick = eq.curTick() + 1;
            for (auto &ev : events)
                eq.schedule(ev, tick);
            eq.serviceUntil(tick);
        }
    });

    return {"same_tick_burst", ops, indexed, reference};
}

Scenario
autodeleteStorm()
{
    // Dynamic one-shot events at simulation rate: pooled wrapper vs
    // the seed's global-heap std::function wrapper.
    constexpr int rounds = 5000;
    constexpr int storm = 256;
    std::uint64_t ops = (std::uint64_t)rounds * storm;
    std::uint64_t count = 0;

    double indexed = nsPerOp(ops, [&] {
        EventQueue eq;
        for (int r = 0; r < rounds; ++r) {
            Tick tick = eq.curTick() + 1;
            for (int i = 0; i < storm; ++i) {
                auto *ev = new sim::EventFunctionWrapper(
                    [&count] { ++count; }, "storm");
                ev->setAutoDelete(true);
                eq.schedule(*ev, tick + i % 7);
            }
            eq.serviceUntil(maxTick - 1);
        }
    });

    double reference = nsPerOp(ops, [&] {
        RefQueue eq;
        for (int r = 0; r < rounds; ++r) {
            Tick tick = eq.curTick() + 1;
            for (int i = 0; i < storm; ++i) {
                auto *ev = new RefCallbackEvent(
                    [&count] { ++count; }, "storm");
                eq.schedule(*ev, tick + i % 7);
            }
            eq.serviceUntil(maxTick - 1);
        }
    });

    return {"autodelete_storm", ops, indexed, reference};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_eventq.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg == "--help") {
            std::printf("options: --json <path>\n");
            return 0;
        }
    }

    std::vector<Scenario> scenarios = {
        scheduleService(),
        rescheduleChurn(),
        descheduleChurn(),
        sameTickBurst(),
        autodeleteStorm(),
    };

    std::printf("# abl_eventq: indexed 4-ary heap vs seed "
                "lazy-delete queue\n");
    std::printf("%-20s %12s %14s %14s %9s\n", "scenario", "ops",
                "indexed ns/op", "reference ns/op", "speedup");
    for (const auto &s : scenarios) {
        std::printf("%-20s %12llu %14.2f %14.2f %8.2fx\n",
                    s.name.c_str(), (unsigned long long)s.ops,
                    s.indexedNs, s.referenceNs, s.speedup());
    }

    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"eventq\",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto &s = scenarios[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"ops\": %llu, "
                      "\"ns_per_op_indexed\": %.3f, "
                      "\"ns_per_op_reference\": %.3f, "
                      "\"speedup\": %.3f}%s\n",
                      s.name.c_str(), (unsigned long long)s.ops,
                      s.indexedNs, s.referenceNs, s.speedup(),
                      i + 1 < scenarios.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    if (!json) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    // Acceptance gates: the headline reschedule win must hold, and
    // no scenario may regress below the seed queue — same_tick_burst
    // used to (0.63x before the equal-key burst chains).
    bool ok = true;
    for (const auto &s : scenarios) {
        if (s.name == "reschedule_churn" && s.speedup() < 1.3) {
            std::printf("FAIL: reschedule_churn speedup %.2fx "
                        "< 1.3x\n", s.speedup());
            ok = false;
        }
        if (s.speedup() < 0.95) {
            std::printf("FAIL: %s speedup %.2fx < 0.95x of the seed "
                        "queue\n", s.name.c_str(), s.speedup());
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
