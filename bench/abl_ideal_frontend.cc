/**
 * @file
 * Ablation for the paper's §VI discussion: if one built the
 * "specialized CPU for event-driven simulation" the authors propose,
 * how much is on the table? Each row idealizes one front-end
 * resource on the Xeon (perfect iCache, perfect iTLB, perfect
 * branch prediction, M1-style wide decode), then all at once — an
 * upper bound on fine-grained front-end acceleration of gem5.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

namespace
{

using Mutator = void (*)(host::HostPlatformConfig &);

void
idealIcache(host::HostPlatformConfig &cfg)
{
    cfg.icache = {16 * 1024 * 1024, 16, cfg.lineBytes};
}

void
idealItlb(host::HostPlatformConfig &cfg)
{
    cfg.itlb = {16384, 8};
}

void
idealBranches(host::HostPlatformConfig &cfg)
{
    cfg.bpred = {20, 1u << 16, 64, 1u << 16};
    cfg.mispredictPenalty = 0;
    cfg.resteerCycles = 0;
    cfg.unknownBranchCycles = 0;
}

void
idealDecode(host::HostPlatformConfig &cfg)
{
    cfg.miteUopsPerCycle = cfg.dispatchWidth;
    cfg.dsbUopsPerCycle = cfg.dispatchWidth;
}

void
idealAll(host::HostPlatformConfig &cfg)
{
    idealIcache(cfg);
    idealItlb(cfg);
    idealBranches(cfg);
    idealDecode(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Ablation (paper SVI): acceleration headroom from an "
        "idealized front-end (O3 CPU model, water_nsquared)");

    struct Row
    {
        const char *label;
        Mutator mutate;
    };
    const Row rows[] = {
        {"Xeon baseline", nullptr},
        {"+ perfect iCache", idealIcache},
        {"+ perfect iTLB", idealItlb},
        {"+ perfect branch handling", idealBranches},
        {"+ full-width decode", idealDecode},
        {"all idealized", idealAll},
    };

    core::RunConfig base;
    base.workload = "water_nsquared";
    base.workloadScale = opts.scale;
    base.cpuModel = os::CpuModel::O3;
    base.platform = host::xeonConfig();
    double base_sec = core::runProfiledSimulation(base).hostSeconds;

    core::Table table({"Front-end variant", "sim time speedup",
                       "FE bound", "retiring"});
    for (const auto &row : rows) {
        core::RunConfig cfg = base;
        if (row.mutate)
            row.mutate(cfg.platform);
        auto r = core::runProfiledSimulation(cfg);
        table.addRow({row.label,
                      fmtDouble(base_sec / r.hostSeconds, 2) + "x",
                      fmtPercent(r.topdown.frontendBound()),
                      fmtPercent(r.topdown.retiring)});
    }
    table.print(os);

    os << "\nThe paper's conclusion holds: no single fix dominates; "
          "only attacking the whole\nfront-end (what a specialized "
          "simulation core would do) recovers the stalls.\n";
    return 0;
}
