/**
 * @file
 * Fig. 13: gem5 simulation time vs Intel_Xeon core frequency, plus
 * TurboBoost, normalized to the 3.1GHz run. The paper: time rises
 * almost exactly linearly as frequency drops (2.67x at 1.2GHz),
 * because gem5 barely touches DRAM.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 13: normalized simulation time vs host frequency "
        "(Intel_Xeon, Timing CPU)");

    core::RunConfig cfg;
    cfg.workload = "water_nsquared";
    cfg.cpuModel = os::CpuModel::Timing;
    cfg.platform = host::xeonConfig();
    const auto &base = cache.get(cfg);

    core::Table table({"Frequency", "norm. sim time",
                       "linear prediction"});
    for (double ghz : tuning::xeonFrequencyLadderGHz()) {
        tuning::applyFrequency(cfg.tuning, ghz);
        const auto &run = cache.get(cfg);
        table.addRow({fmtDouble(ghz, 1) + "GHz",
                      fmtDouble(tuning::normalizedTime(base, run),
                                3),
                      fmtDouble(3.1 / ghz, 3)});
    }
    cfg.tuning.freqGHzOverride = 0.0;
    tuning::applyTurbo(cfg.tuning);
    const auto &turbo = cache.get(cfg);
    table.addRow({"3.1GHz + TurboBoost",
                  fmtDouble(tuning::normalizedTime(base, turbo), 3),
                  fmtDouble(3.1 / 4.1, 3)});

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: 1.2GHz takes 2.67x the 3.1GHz time "
          "(linear would be 2.58x).\n";
    return 0;
}
