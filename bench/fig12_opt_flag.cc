/**
 * @file
 * Fig. 12: speedup from compiling gem5 with "-O3" per workload and
 * platform. The paper: averages of 1.38% / 0.98% / 0.78% on
 * Intel_Xeon / M1_Pro / M1_Ultra, with a few regressions.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 12: speedup from the -O3 build (Timing CPU)");

    auto platforms = host::tableIIPlatforms();

    // Prefetch the base/-O3 pairs on the worker pool (--jobs N).
    {
        std::vector<core::RunConfig> sweep;
        for (const auto &wl : benchWorkloads(opts)) {
            for (const auto &platform : platforms) {
                core::RunConfig cfg;
                cfg.workload = wl;
                cfg.cpuModel = os::CpuModel::Timing;
                cfg.platform = platform;
                sweep.push_back(cfg);
                tuning::applyO3(cfg.tuning);
                sweep.push_back(cfg);
            }
        }
        cache.prefetch(std::move(sweep));
    }

    std::vector<std::string> headers{"Workload"};
    for (const auto &platform : platforms)
        headers.push_back(platform.name);
    core::Table table(headers);

    std::map<std::string, std::vector<double>> per_platform;
    for (const auto &wl : benchWorkloads(opts)) {
        std::vector<std::string> row{wl};
        for (const auto &platform : platforms) {
            core::RunConfig cfg;
            cfg.workload = wl;
            cfg.cpuModel = os::CpuModel::Timing;
            cfg.platform = platform;
            const auto &base = cache.get(cfg);
            tuning::applyO3(cfg.tuning);
            const auto &opt = cache.get(cfg);
            double pct = tuning::o3SpeedupPercent(base, opt);
            per_platform[platform.name].push_back(pct);
            row.push_back(fmtDouble(pct, 2) + "%");
        }
        table.addRow(row);
    }

    std::vector<std::string> mean_row{"mean"};
    for (const auto &platform : platforms) {
        const auto &v = per_platform[platform.name];
        double sum = 0;
        for (double p : v)
            sum += p;
        mean_row.push_back(fmtDouble(sum / v.size(), 2) + "%");
    }
    table.addRow(mean_row);

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: mean speedups 1.38% (Xeon), 0.98% "
          "(M1_Pro), 0.78% (M1_Ultra);\nindividual workloads can "
          "regress because -O3 also relinks the binary.\n";
    return 0;
}
