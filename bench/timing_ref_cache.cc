/**
 * @file
 * Verbatim pre-optimization copy of the detailed memory path, kept as
 * the timed + byte-identity reference for bench/abl_timing. Do not
 * "fix" or modernize this code: its whole value is being the faithful
 * baseline the optimized path is compared against. Source: the tree
 * as of the commit preceding the timing memory-path optimization
 * round.
 */
#include "timing_ref_cache.hh"

#include "base/addr_utils.hh"
#include "trace/recorder.hh"

namespace g5p::bench::refpath
{

// The parameter structs and the coherence-state enum are shared with
// the optimized path (mem/cache.hh, mem/xbar.hh); only the machinery
// below differs. Everything else (Packet, ports, ClockedObject) is
// the production code, so both legs of the comparison exercise the
// same surrounding simulator.
using namespace g5p::mem;

const char *
coherStateName(CoherState state)
{
    switch (state) {
      case CoherState::Invalid:   return "I";
      case CoherState::Shared:    return "S";
      case CoherState::Exclusive: return "E";
      case CoherState::Modified:  return "M";
    }
    return "?";
}

Cache::Cache(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain, const CacheParams &params)
    : sim::ClockedObject(sim, name, domain, nullptr,
                         // Host-side state: ~16B of tag metadata per
                         // line, which is what mg5 actually touches.
                         (params.sizeBytes / lineBytes) * 16),
      params_(params),
      numSets_((unsigned)(params.sizeBytes / lineBytes / params.assoc)),
      cpuPort_(*this, name + ".cpu_side"),
      memPort_(*this, name + ".mem_side")
{
    g5p_assert(isPowerOf2(numSets_) && numSets_ > 0,
               "%s: sets (%u) must be a nonzero power of two",
               name.c_str(), numSets_);
    lines_.resize((std::size_t)numSets_ * params_.assoc);
}

Cache::~Cache()
{
    for (PacketPtr pkt : deferred_)
        delete pkt;
    for (Mshr &mshr : mshrs_)
        for (PacketPtr pkt : mshr.targets)
            delete pkt;
}

void
Cache::touchTagState(const Line &line) const
{
    std::size_t index = (std::size_t)(&line - lines_.data());
    touchState(index * 16, 16, false);
}

Cache::Line *
Cache::lookup(Addr addr, bool update_lru)
{
    std::uint64_t set = cacheSetIndex(addr, lineBytes, numSets_);
    std::uint64_t tag = cacheTag(addr, lineBytes, numSets_);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            if (update_lru)
                line.lastUsed = ++lruCounter_;
            touchTagState(line);
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::lookupConst(Addr addr) const
{
    return const_cast<Cache *>(this)->lookup(addr, false);
}

bool
Cache::isCached(Addr addr) const
{
    return lookupConst(addr) != nullptr;
}

CoherState
Cache::coherenceStateOf(Addr addr) const
{
    const Line *line = lookupConst(addr);
    if (!line)
        return CoherState::Invalid;
    if (!line->writable)
        return CoherState::Shared;
    return line->dirty ? CoherState::Modified : CoherState::Exclusive;
}

Cache::Line &
Cache::victimFor(Addr addr)
{
    std::uint64_t set = cacheSetIndex(addr, lineBytes, numSets_);
    Line *base = &lines_[set * params_.assoc];
    Line *victim = base;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid)
            return line;
        if (line.lastUsed < victim->lastUsed)
            victim = &line;
    }
    return *victim;
}

Cache::Line &
Cache::insertLine(Addr addr, bool writable, bool timing)
{
    G5P_TRACE_SCOPE("Cache::insertLine", MemAccess, false);
    std::uint64_t set = cacheSetIndex(addr, lineBytes, numSets_);
    Line &victim = victimFor(addr);
    if (victim.valid && victim.dirty) {
        // Reconstruct the victim's address from tag and set.
        Addr victim_addr =
            ((victim.tag << floorLog2(numSets_)) | set) * lineBytes;
        writebacks_ += 1;
        if (timing) {
            auto *wb = new Packet(MemCmd::WritebackDirty, victim_addr,
                                  lineBytes);
            memPort_.sendTimingReq(wb);
        } else {
            Packet wb(MemCmd::WritebackDirty, victim_addr, lineBytes);
            memPort_.sendAtomic(wb);
        }
    }
    victim.valid = true;
    victim.dirty = false;
    victim.writable = writable;
    victim.tag = cacheTag(addr, lineBytes, numSets_);
    victim.lastUsed = ++lruCounter_;
    touchTagState(victim);
    return victim;
}

void
Cache::invalidateLine(Addr addr)
{
    if (Line *line = lookup(addr, false)) {
        // Dirty data is functionally already in PhysicalMemory; the
        // timing cost of the implied writeback is charged to the
        // requester via the xbar's snoop latency.
        line->valid = false;
        invalidations_ += 1;
    }
    // A fill (or upgrade) still in flight for this line carried a
    // permission grant that the invalidating sibling has now voided —
    // and our snoop-filter bit is gone. Mark the MSHR so the response
    // re-arbitrates instead of installing a stale-writable line.
    if (Mshr *mshr = findMshr(addr & ~(Addr)(lineBytes - 1)))
        mshr->stolen = true;
}

Cache::Mshr *
Cache::findMshr(Addr line_addr)
{
    for (Mshr &m : mshrs_)
        if (m.lineAddr == line_addr)
            return &m;
    return nullptr;
}

Tick
Cache::recvAtomic(Packet &pkt)
{
    G5P_TRACE_SCOPE("Cache::recvAtomic", MemAtomic, true);

    if (pkt.isWriteback()) {
        Line *line = lookup(pkt.addr(), true);
        if (!line)
            line = &insertLine(pkt.addr(), true, false);
        line->dirty = true;
        return 0;
    }
    if (pkt.isInvalidate()) {
        invalidateLine(pkt.addr());
        return 0;
    }

    Tick lat = cyclesToTicks(params_.tagLatency);
    Line *line = lookup(pkt.addr(), true);
    bool upgrade = line && pkt.needsExclusive() && !line->writable;
    if (line && !upgrade) {
        hits_ += 1;
        if (pkt.isWrite())
            line->dirty = true;
        return lat + cyclesToTicks(params_.dataLatency);
    }

    misses_ += 1;
    if (upgrade) {
        // S -> M: ownership-only request; the line (and its LRU
        // position) stays put, no data is refetched.
        upgradeMisses_ += 1;
        Packet up(MemCmd::UpgradeReq, pkt.lineAddr(), lineBytes);
        up.setRequestorId(pkt.requestorId());
        Tick up_lat = memPort_.sendAtomic(up);
        // Atomic accesses are indivisible: no sibling can steal the
        // line between the lookup above and the snoop, so the
        // upgrade always lands.
        g5p_assert(line->valid, "%s: atomic upgrade lost the line",
                   name().c_str());
        line->writable = true;
        if (pkt.isWrite())
            line->dirty = true;
        return lat + up_lat + cyclesToTicks(params_.responseLatency);
    }
    MemCmd fill_cmd = pkt.needsExclusive() ? MemCmd::ReadExReq
                                           : MemCmd::ReadReq;
    Packet fill(fill_cmd, pkt.lineAddr(), lineBytes);
    fill.setInstFetch(pkt.isInstFetch());
    fill.setRequestorId(pkt.requestorId());
    Tick fill_lat = memPort_.sendAtomic(fill);
    Line &nl = insertLine(pkt.addr(), fill.writable(), false);
    if (pkt.isWrite())
        nl.dirty = true;
    return lat + fill_lat + cyclesToTicks(params_.responseLatency);
}

void
Cache::recvFunctional(Packet &pkt)
{
    memPort_.sendFunctional(pkt);
}

void
Cache::recvTimingReq(PacketPtr pkt)
{
    G5P_TRACE_SCOPE("Cache::recvTimingReq", MemAccess, true);

    if (pkt->isWriteback()) {
        Line *line = lookup(pkt->addr(), true);
        if (!line)
            line = &insertLine(pkt->addr(), true, true);
        line->dirty = true;
        delete pkt;
        return;
    }
    if (pkt->isInvalidate()) {
        invalidateLine(pkt->addr());
        delete pkt;
        return;
    }

    // Model the tag-lookup pipeline stage, then decide hit/miss.
    scheduleFn(params_.tagLatency, [this, pkt] { satisfyTiming(pkt); });
}

void
Cache::satisfyTiming(PacketPtr pkt)
{
    G5P_TRACE_SCOPE("Cache::satisfyTiming", MemAccess, false);
    Line *line = lookup(pkt->addr(), true);
    bool upgrade = line && pkt->needsExclusive() && !line->writable;

    if (line && !upgrade) {
        hits_ += 1;
        if (pkt->isWrite())
            line->dirty = true;
        scheduleFn(params_.dataLatency, [this, pkt] {
            pkt->makeResponse();
            cpuPort_.sendTimingResp(pkt);
        });
        return;
    }

    misses_ += 1;
    if (upgrade)
        upgradeMisses_ += 1;

    Addr line_addr = pkt->lineAddr();
    if (Mshr *mshr = findMshr(line_addr)) {
        mshrHits_ += 1;
        mshr->needsExclusive |= pkt->needsExclusive();
        mshr->targets.push_back(pkt);
        return;
    }

    if (mshrs_.size() >= params_.numMshrs) {
        // All MSHRs busy: defer the request until one frees (the
        // real cache would exert back-pressure through the port).
        mshrBlocked_ += 1;
        deferred_.push_back(pkt);
        return;
    }
    mshrs_.push_back(Mshr{line_addr, true, pkt->needsExclusive(),
                          upgrade, false, {pkt}});

    // S -> M upgrades keep the (still readable) line in place and
    // request only ownership; real misses fetch data + permission.
    MemCmd fill_cmd = upgrade ? MemCmd::UpgradeReq
                     : pkt->needsExclusive() ? MemCmd::ReadExReq
                                             : MemCmd::ReadReq;
    auto *fill = new Packet(fill_cmd, line_addr, lineBytes);
    fill->setInstFetch(pkt->isInstFetch());
    fill->setRequestorId(pkt->requestorId());
    memPort_.sendTimingReq(fill);
}

void
Cache::recvTimingResp(PacketPtr pkt)
{
    G5P_TRACE_SCOPE("Cache::recvTimingResp", MemAccess, true);
    Addr line_addr = pkt->lineAddr();
    Mshr *mshr = findMshr(line_addr);
    g5p_assert(mshr, "%s: fill response with no MSHR for %#llx",
               name().c_str(), (unsigned long long)line_addr);

    if (pkt->cmd() == MemCmd::UpgradeResp) {
        Line *line = lookup(line_addr, false);
        if (!line) {
            // Transient SM -> IM: a sibling's exclusive request (or a
            // conflicting fill in this set) took the line while the
            // upgrade was in flight. Re-issue the fill as a full
            // ReadEx (data + ownership) on the same MSHR.
            upgradeRaces_ += 1;
            mshr->isUpgrade = false;
            mshr->stolen = false;
            auto *refill = new Packet(MemCmd::ReadExReq, line_addr,
                                      lineBytes);
            refill->setRequestorId(pkt->requestorId());
            delete pkt;
            memPort_.sendTimingReq(refill);
            return;
        }
        line->writable = true;
        mshr->stolen = false;
        delete pkt;
        completeMshr(line_addr, *line);
        return;
    }

    if (mshr->stolen) {
        // Transient IS/IM -> I: a sibling's exclusive request raced
        // ahead of this fill, so the writable flag it carries is
        // stale and our snoop-filter bit is already cleared. Drain
        // every target uncached — data is functional (the backing
        // store is authoritative at completion time), so a write
        // completing without a cached copy is architecturally fine,
        // and never re-requesting is what guarantees forward
        // progress: two cores re-issuing ReadEx against each other
        // would steal each other's in-flight fill forever.
        fillRaces_ += 1;
        mshr->stolen = false;
        delete pkt;
        completeUncached(line_addr);
        return;
    }

    Line &line = insertLine(line_addr, pkt->writable(), true);

    if (!line.writable && mshr->needsExclusive) {
        // The fill went out as a plain read, a write coalesced in
        // behind it, and a sibling kept a copy: enter the upgrade
        // phase (transient SM) before releasing the targets.
        mshr->isUpgrade = true;
        auto *up = new Packet(MemCmd::UpgradeReq, line_addr,
                              lineBytes);
        up->setRequestorId(pkt->requestorId());
        delete pkt;
        memPort_.sendTimingReq(up);
        return;
    }

    delete pkt;
    completeMshr(line_addr, line);
}

void
Cache::completeMshr(Addr line_addr, Line &line)
{
    Mshr *mshr = findMshr(line_addr);
    Cycles delay = params_.responseLatency;
    for (PacketPtr target : mshr->targets) {
        if (target->isWrite()) {
            g5p_assert(line.writable, "write fill without ownership");
            line.dirty = true;
        }
        scheduleFn(delay, [this, target] {
            target->makeResponse();
            cpuPort_.sendTimingResp(target);
        });
        // Consecutive coalesced targets drain one per cycle.
        delay = delay + 1;
    }
    mshrs_.remove_if([line_addr](const Mshr &m) {
        return m.lineAddr == line_addr;
    });

    if (!deferred_.empty()) {
        PacketPtr next = deferred_.front();
        deferred_.pop_front();
        scheduleFn(1, [this, next] { satisfyTiming(next); });
    }
}

void
Cache::completeUncached(Addr line_addr)
{
    Mshr *mshr = findMshr(line_addr);
    Cycles delay = params_.responseLatency;
    for (PacketPtr target : mshr->targets) {
        scheduleFn(delay, [this, target] {
            target->makeResponse();
            cpuPort_.sendTimingResp(target);
        });
        delay = delay + 1;
    }
    mshrs_.remove_if([line_addr](const Mshr &m) {
        return m.lineAddr == line_addr;
    });

    if (!deferred_.empty()) {
        PacketPtr next = deferred_.front();
        deferred_.pop_front();
        scheduleFn(1, [this, next] { satisfyTiming(next); });
    }
}

void
Cache::scheduleFn(Cycles cycles, std::function<void()> fn)
{
    scheduleOneShot(clockEdge(cycles ? cycles : 1), std::move(fn),
                     name() + ".delayed");
}

void
Cache::serialize(sim::CheckpointOut &cp) const
{
    g5p_assert(mshrs_.empty() && deferred_.empty(),
               "%s: cannot checkpoint with in-flight misses",
               name().c_str());
    cp.param("lruCounter", lruCounter_);
    std::vector<std::uint64_t> idx, tags, flags, lastUsed;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const Line &line = lines_[i];
        if (!line.valid)
            continue;
        idx.push_back(i);
        tags.push_back(line.tag);
        flags.push_back((line.dirty ? 1u : 0u) |
                        (line.writable ? 2u : 0u));
        lastUsed.push_back(line.lastUsed);
    }
    cp.paramVector("lineIdx", idx);
    cp.paramVector("lineTag", tags);
    cp.paramVector("lineFlags", flags);
    cp.paramVector("lineLastUsed", lastUsed);
}

void
Cache::unserialize(const sim::CheckpointIn &cp)
{
    cp.param("lruCounter", lruCounter_);
    std::vector<std::uint64_t> idx, tags, flags, lastUsed;
    cp.paramVector("lineIdx", idx);
    cp.paramVector("lineTag", tags);
    cp.paramVector("lineFlags", flags);
    cp.paramVector("lineLastUsed", lastUsed);
    g5p_assert(idx.size() == tags.size() &&
               idx.size() == flags.size() &&
               idx.size() == lastUsed.size(),
               "%s: corrupt cache checkpoint", name().c_str());
    for (Line &line : lines_)
        line = Line{};
    for (std::size_t i = 0; i < idx.size(); ++i) {
        g5p_assert(idx[i] < lines_.size(),
                   "%s: cache checkpoint line out of range",
                   name().c_str());
        Line &line = lines_[idx[i]];
        line.valid = true;
        line.tag = tags[i];
        line.dirty = (flags[i] & 1u) != 0;
        line.writable = (flags[i] & 2u) != 0;
        line.lastUsed = lastUsed[i];
    }
}

void
Cache::regStats()
{
    addStat(&hits_, "hits", "demand hits");
    addStat(&misses_, "misses", "demand misses");
    addStat(&mshrHits_, "mshrHits", "misses coalesced into an MSHR");
    addStat(&mshrBlocked_, "mshrBlocked",
            "requests deferred for want of an MSHR");
    addStat(&writebacks_, "writebacks", "dirty lines written back");
    addStat(&invalidations_, "invalidations",
            "lines invalidated by coherence");
    addStat(&upgradeMisses_, "upgradeMisses",
            "write hits on non-writable lines");
    addStat(&missRate_, "missRate", "demand miss rate");
    missRate_.functor([this] {
        double total = hits_.value() + misses_.value();
        return total > 0 ? misses_.value() / total : 0.0;
    });
}

} // namespace g5p::bench::refpath
