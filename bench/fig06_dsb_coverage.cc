/**
 * @file
 * Fig. 6: DSB (µop cache) coverage — the fraction of µops delivered
 * from the decoded-µop cache — for gem5 and SPEC on Intel_Xeon. The
 * paper: gem5's coverage is much lower than SPEC's regardless of CPU
 * type or workload.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os, "Fig. 6: DSB coverage on Intel_Xeon");

    core::Table table({"Config", "DSB coverage", "uops from DSB",
                       "uops from MITE"});
    auto add_row = [&](const std::string &label,
                       const core::RunResult &run) {
        table.addRow({label,
                      fmtPercent(run.counters.dsbCoverage()),
                      std::to_string(run.counters.uopsFromDsb),
                      std::to_string(run.counters.uopsFromMite)});
    };

    for (const auto &row : gem5ProfileRows(cache, opts))
        add_row(row.label, *row.run);
    for (const auto &[label, run] : specProfileRows())
        add_row(label, run);

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);
    return 0;
}
