/**
 * @file
 * Fig. 15 (+ §VI): cumulative distribution of CPU time over the
 * hottest functions per CPU type, the hottest function's share, and
 * the total number of distinct functions called. The paper: hottest
 * shares 10.1/8.5/2.9/4.2% and 1602/2557/3957/5209 functions for
 * Atomic/Timing/Minor/O3 — no killer function to accelerate.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 15: CDF of CPU time over the hottest functions "
        "(water_nsquared, Intel_Xeon)");

    core::Table table({"CPU type", "functions", "hottest", "top 5",
                       "top 10", "top 25", "top 50"});
    for (os::CpuModel model : os::allCpuModels) {
        core::RunConfig cfg;
        cfg.workload = "water_nsquared";
        cfg.cpuModel = model;
        cfg.platform = host::xeonConfig();
        const auto &run = cache.get(cfg);
        const auto &cdf = run.functionCdf;
        table.addRow({os::cpuModelName(model),
                      std::to_string(run.distinctFunctions),
                      fmtPercent(cdf.hottestShare()),
                      fmtPercent(cdf.cumulativeShare(5)),
                      fmtPercent(cdf.cumulativeShare(10)),
                      fmtPercent(cdf.cumulativeShare(25)),
                      fmtPercent(cdf.cumulativeShare(50))});
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    // Name the few hottest functions for the O3 run, as a profiler
    // report would.
    core::RunConfig cfg;
    cfg.workload = "water_nsquared";
    cfg.cpuModel = os::CpuModel::O3;
    cfg.platform = host::xeonConfig();
    const auto &ranked = cache.get(cfg).functionCdf.ranked();
    os << "\nHottest O3 functions:\n";
    for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
        os << "  " << padLeft(fmtPercent(ranked[i].share), 7) << "  "
           << ranked[i].name << "\n";
    }

    os << "\nPaper reference: hottest function 10.1/8.5/2.9/4.2% "
          "and 1602/2557/3957/5209\ndistinct functions for "
          "Atomic/Timing/Minor/O3 — function counts scale with\n"
          "our smaller simulator but preserve the ordering and the "
          "flattening CDF.\n";
    return 0;
}
